//! Manual benchmarks for the analytical model: the continuous two-voltage
//! optimization (numeric scan) and the discrete `Emin(y)` scan, which
//! together generate the savings surfaces of Figs. 5–11.
//!
//! Run with `cargo bench -p dvs-bench --bench analytic_model`.

use dvs_bench::timing::bench;
use dvs_model::{ContinuousModel, DiscreteModel, ProgramParams};
use dvs_vf::{AlphaPower, VoltageLadder};

fn memory_bound() -> ProgramParams {
    ProgramParams {
        n_overlap: 1.0e6,
        n_dependent: 6.0e5,
        n_cache: 3.0e5,
        t_invariant_us: 2000.0,
    }
}

fn main() {
    {
        let m = ContinuousModel::paper();
        let p = memory_bound();
        let r = bench("continuous_optimal", 20, 10, || {
            m.optimal(&p, 3000.0).expect("feasible")
        });
        println!("{}", r.render());
    }
    {
        let ladder = VoltageLadder::interpolated(&AlphaPower::paper(), 7).expect("ladder");
        let m = DiscreteModel::new(ladder);
        let p = memory_bound();
        let r = bench("discrete_optimal_7_levels", 20, 10, || {
            m.optimal(&p, 3400.0).expect("feasible")
        });
        println!("{}", r.render());
    }
    {
        let ladder = VoltageLadder::interpolated(&AlphaPower::paper(), 7).expect("ladder");
        let m = DiscreteModel::new(ladder);
        let r = bench("fig9_surface_row", 20, 5, || {
            let mut acc = 0.0;
            for i in 0..17 {
                let nov = 2.0e5 + 1.0e5 * f64::from(i);
                let p = ProgramParams {
                    n_overlap: nov,
                    n_dependent: 6.0e5,
                    n_cache: 2.0e5,
                    t_invariant_us: 1000.0,
                };
                acc += m.savings(&p, 5200.0).unwrap_or(0.0);
            }
            acc
        });
        println!("{}", r.render());
    }
}
