//! Manual benchmarks for the MILP layer: the DVS formulation with and
//! without edge filtering (the performance claim behind the paper's
//! Fig. 14), plus a raw branch-and-bound microbenchmark.
//!
//! Run with `cargo bench -p dvs-bench --bench milp_solver`.

use dvs_bench::timing::bench;
use dvs_compiler::{DeadlineScheme, EdgeFilter, MilpFormulation};
use dvs_milp::{solve, LinExpr, Model, Sense};
use dvs_sim::{Machine, ModeProfiler};
use dvs_vf::{AlphaPower, TransitionModel, VoltageLadder};
use dvs_workloads::Benchmark;

fn main() {
    let b = Benchmark::MpegDecode;
    let cfg = b.build_cfg();
    let mut input = b.default_input();
    input.iterations = 8;
    let trace = b.trace(&cfg, &input);
    let machine = Machine::paper_default();
    let ladder = VoltageLadder::xscale3(&AlphaPower::paper());
    let (profile, _) = ModeProfiler::new(machine.clone()).profile(&cfg, &trace, &ladder);
    let scheme = DeadlineScheme::measure(&machine, &cfg, &trace);
    let deadline = scheme.deadline_us(2);
    let tm = TransitionModel::with_capacitance_uf(0.03);

    println!("dvs_milp");
    let m = bench("mpeg_all_edges", 10, 1, || {
        MilpFormulation::new(&cfg, &profile, &ladder, &tm, deadline)
            .with_filter(EdgeFilter::identity(&cfg))
            .solve()
            .expect("feasible")
    });
    println!("  {}", m.render());
    let m = bench("mpeg_filtered", 10, 1, || {
        let filt = EdgeFilter::tail_rule(&cfg, &profile, ladder.len() - 1, 0.02);
        MilpFormulation::new(&cfg, &profile, &ladder, &tm, deadline)
            .with_filter(filt)
            .solve()
            .expect("feasible")
    });
    println!("  {}", m.render());

    let m = bench("milp_assignment_6x6", 10, 5, || {
        // 6x6 assignment with deterministic pseudo-random costs.
        let mut m = Model::new(Sense::Minimize);
        let mut obj = LinExpr::zero();
        let mut vars = vec![vec![]; 6];
        let mut seed = 0x5EEDu64;
        for (w, row) in vars.iter_mut().enumerate() {
            for t in 0..6 {
                let v = m.bool_var(format!("x{w}{t}"));
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                obj += ((seed >> 59) as f64 + 1.0) * v;
                row.push(v);
            }
        }
        m.set_objective(obj);
        for row in &vars {
            let mut s = LinExpr::zero();
            for &v in row {
                s += LinExpr::from(v);
            }
            m.add_eq(s, 1.0);
            m.add_sos1(row.clone());
        }
        for t in 0..6 {
            let mut s = LinExpr::zero();
            for row in &vars {
                s += LinExpr::from(row[t]);
            }
            m.add_eq(s, 1.0);
        }
        solve(&m).expect("assignment solvable")
    });
    println!("  {}", m.render());
}
