//! Criterion benchmarks for the MILP layer: the DVS formulation with and
//! without edge filtering (the performance claim behind the paper's
//! Fig. 14), plus a raw branch-and-bound microbenchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use dvs_compiler::{DeadlineScheme, EdgeFilter, MilpFormulation};
use dvs_milp::{solve, LinExpr, Model, Sense};
use dvs_sim::{Machine, ModeProfiler};
use dvs_vf::{AlphaPower, TransitionModel, VoltageLadder};
use dvs_workloads::Benchmark;

fn dvs_formulation(c: &mut Criterion) {
    let b = Benchmark::MpegDecode;
    let cfg = b.build_cfg();
    let mut input = b.default_input();
    input.iterations = 8;
    let trace = b.trace(&cfg, &input);
    let machine = Machine::paper_default();
    let ladder = VoltageLadder::xscale3(&AlphaPower::paper());
    let (profile, _) = ModeProfiler::new(machine.clone()).profile(&cfg, &trace, &ladder);
    let scheme = DeadlineScheme::measure(&machine, &cfg, &trace);
    let deadline = scheme.deadline_us(2);
    let tm = TransitionModel::with_capacitance_uf(0.03);

    let mut group = c.benchmark_group("dvs_milp");
    group.sample_size(10);
    group.bench_function("mpeg_all_edges", |bench| {
        bench.iter(|| {
            MilpFormulation::new(&cfg, &profile, &ladder, &tm, deadline)
                .with_filter(EdgeFilter::identity(&cfg))
                .solve()
                .expect("feasible")
        });
    });
    group.bench_function("mpeg_filtered", |bench| {
        bench.iter(|| {
            let filt = EdgeFilter::tail_rule(&cfg, &profile, ladder.len() - 1, 0.02);
            MilpFormulation::new(&cfg, &profile, &ladder, &tm, deadline)
                .with_filter(filt)
                .solve()
                .expect("feasible")
        });
    });
    group.finish();
}

fn raw_branch_and_bound(c: &mut Criterion) {
    c.bench_function("milp_assignment_6x6", |bench| {
        bench.iter(|| {
            // 6x6 assignment with deterministic pseudo-random costs.
            let mut m = Model::new(Sense::Minimize);
            let mut obj = LinExpr::zero();
            let mut vars = vec![vec![]; 6];
            let mut seed = 0x5EEDu64;
            for w in 0..6 {
                for t in 0..6 {
                    let v = m.bool_var(format!("x{w}{t}"));
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    obj += ((seed >> 59) as f64 + 1.0) * v;
                    vars[w].push(v);
                }
            }
            m.set_objective(obj);
            for w in 0..6 {
                let mut s = LinExpr::zero();
                for t in 0..6 {
                    s += LinExpr::from(vars[w][t]);
                }
                m.add_eq(s, 1.0);
                m.add_sos1(vars[w].clone());
            }
            for t in 0..6 {
                let mut s = LinExpr::zero();
                for w in 0..6 {
                    s += LinExpr::from(vars[w][t]);
                }
                m.add_eq(s, 1.0);
            }
            solve(&m).expect("assignment solvable")
        });
    });
}

criterion_group!(benches, dvs_formulation, raw_branch_and_bound);
criterion_main!(benches);
