//! Manual benchmarks for the cycle-level simulator: instruction throughput
//! of the fixed-frequency model and of the scheduled (DVS) executor, plus
//! the observability-layer overhead check (disabled collection must not
//! slow the sim hot loop measurably; the ISSUE budget is < 2%).
//!
//! Run with `cargo bench -p dvs-bench --bench simulator`.

use dvs_bench::timing::bench;
use dvs_sim::{EdgeSchedule, Machine};
use dvs_vf::{AlphaPower, ModeId, OperatingPoint, TransitionModel, VoltageLadder};
use dvs_workloads::Benchmark;

fn main() {
    println!("machine_run (fixed frequency)");
    for b in [Benchmark::GsmEncode, Benchmark::Ghostscript] {
        let cfg = b.build_cfg();
        let mut input = b.default_input();
        input.iterations /= 4;
        let trace = b.trace(&cfg, &input);
        let machine = Machine::paper_default();
        let insts = trace.dynamic_inst_count(&cfg);
        let m = bench(b.name(), 10, 1, || {
            machine.run(&cfg, &trace, OperatingPoint::new(1.65, 800.0))
        });
        let minsts_per_s = insts as f64 / m.min_us;
        println!("  {}   {minsts_per_s:.1} Minsts/s", m.render());
    }

    println!("machine_run_scheduled (per-iteration mode switching)");
    {
        let b = Benchmark::GsmEncode;
        let cfg = b.build_cfg();
        let mut input = b.default_input();
        input.iterations /= 4;
        let trace = b.trace(&cfg, &input);
        let machine = Machine::paper_default();
        let ladder = VoltageLadder::xscale3(&AlphaPower::paper());
        let tm = TransitionModel::with_capacitance_uf(0.05);
        let mut schedule = EdgeSchedule::uniform(&cfg, ModeId(1));
        // Force per-iteration switching to benchmark the worst case.
        for e in cfg.edges() {
            if e.src == e.dst {
                schedule.edge_modes[e.id.index()] = ModeId(0);
            }
        }
        let m = bench("gsm_switchy", 10, 1, || {
            machine.run_scheduled(&cfg, &trace, &ladder, &schedule, &tm)
        });
        println!("  {}", m.render());
    }

    println!("obs overhead on the sim hot loop");
    {
        let b = Benchmark::GsmEncode;
        let cfg = b.build_cfg();
        let mut input = b.default_input();
        input.iterations /= 4;
        let trace = b.trace(&cfg, &input);
        let machine = Machine::paper_default();
        let point = OperatingPoint::new(1.65, 800.0);

        dvs_obs::disable();
        let disabled = bench("run_obs_disabled", 12, 1, || {
            machine.run(&cfg, &trace, point)
        });
        dvs_obs::enable();
        dvs_obs::reset();
        let enabled = bench("run_obs_enabled", 12, 1, || {
            machine.run(&cfg, &trace, point)
        });
        dvs_obs::disable();
        println!("  {}", disabled.render());
        println!("  {}", enabled.render());
        let overhead = (enabled.min_us - disabled.min_us) / disabled.min_us * 100.0;
        println!("  enabled-vs-disabled delta: {overhead:.2}% (budget for *disabled* is < 2%; disabled cost is one atomic load per run)");
    }
}
