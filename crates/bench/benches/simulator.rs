//! Criterion benchmarks for the cycle-level simulator: instruction
//! throughput of the fixed-frequency model and of the scheduled (DVS)
//! executor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dvs_sim::{EdgeSchedule, Machine};
use dvs_vf::{AlphaPower, ModeId, OperatingPoint, TransitionModel, VoltageLadder};
use dvs_workloads::Benchmark;

fn sim_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine_run");
    group.sample_size(10);
    for b in [Benchmark::GsmEncode, Benchmark::Ghostscript] {
        let cfg = b.build_cfg();
        let mut input = b.default_input();
        input.iterations = input.iterations / 4;
        let trace = b.trace(&cfg, &input);
        let machine = Machine::paper_default();
        let insts = trace.dynamic_inst_count(&cfg);
        group.throughput(Throughput::Elements(insts));
        group.bench_with_input(BenchmarkId::from_parameter(b.name()), &trace, |bench, t| {
            bench.iter(|| machine.run(&cfg, t, OperatingPoint::new(1.65, 800.0)));
        });
    }
    group.finish();
}

fn scheduled_executor(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine_run_scheduled");
    group.sample_size(10);
    let b = Benchmark::GsmEncode;
    let cfg = b.build_cfg();
    let mut input = b.default_input();
    input.iterations /= 4;
    let trace = b.trace(&cfg, &input);
    let machine = Machine::paper_default();
    let ladder = VoltageLadder::xscale3(&AlphaPower::paper());
    let tm = TransitionModel::with_capacitance_uf(0.05);
    let mut schedule = EdgeSchedule::uniform(&cfg, ModeId(1));
    // Force per-iteration switching to benchmark the worst case.
    for e in cfg.edges() {
        if e.src == e.dst {
            schedule.edge_modes[e.id.index()] = ModeId(0);
        }
    }
    group.throughput(Throughput::Elements(trace.dynamic_inst_count(&cfg)));
    group.bench_function("gsm_switchy", |bench| {
        bench.iter(|| machine.run_scheduled(&cfg, &trace, &ladder, &schedule, &tm));
    });
    group.finish();
}

criterion_group!(benches, sim_throughput, scheduled_executor);
criterion_main!(benches);
