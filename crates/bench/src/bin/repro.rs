//! `repro` — regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro all                # every experiment, in paper order
//! repro table6 fig15       # specific experiments
//! repro all --jobs 4       # run independent experiments concurrently
//! repro --list             # show available ids
//! ```
//!
//! Each report is printed to stdout and written to `results/<id>.txt` and
//! `results/<id>.csv`. A cross-experiment perf baseline (wall-clock plus
//! pipeline metrics per experiment) lands in `results/stats.csv`.
//!
//! `--jobs N` (or the `DVS_JOBS` environment variable) fans independent
//! experiments out over N worker threads. Reports stream to stdout in
//! completion order, but `results/*.csv` files and the row order of
//! `stats.csv` are independent of N: deterministic experiments produce
//! byte-identical files whatever the parallelism (timing columns such as
//! solve times vary run to run even sequentially). When a single
//! experiment id is given, the jobs go to its inner grid cells instead.

use dvs_bench::Report;
use dvs_bench::{run_experiment, Context, ExperimentStats, ALL_EXPERIMENTS};
use dvs_obs::MetricsSnapshot;
use std::fs;
use std::path::Path;
use std::time::Instant;

fn parse_jobs(args: &mut Vec<String>) -> Result<Option<usize>, String> {
    let mut jobs = None;
    let mut i = 0;
    while i < args.len() {
        let take = if args[i] == "--jobs" {
            let v = args
                .get(i + 1)
                .cloned()
                .ok_or_else(|| "--jobs needs a value".to_string())?;
            args.drain(i..=i + 1);
            v
        } else if let Some(v) = args[i].strip_prefix("--jobs=") {
            let v = v.to_string();
            args.remove(i);
            v
        } else {
            i += 1;
            continue;
        };
        let n: usize = take
            .parse()
            .map_err(|_| format!("invalid --jobs value `{take}`"))?;
        if n == 0 {
            return Err("--jobs must be at least 1".to_string());
        }
        jobs = Some(n);
    }
    Ok(jobs)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = match parse_jobs(&mut args) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: repro [--list] [--jobs N] <experiment-id>... | all");
        eprintln!("ids: {}", ALL_EXPERIMENTS.join(", "));
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    if args.iter().any(|a| a == "--list") {
        for id in ALL_EXPERIMENTS {
            println!("{id}");
        }
        return;
    }

    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        ALL_EXPERIMENTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };

    let out_dir = Path::new("results");
    if let Err(e) = fs::create_dir_all(out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        std::process::exit(1);
    }

    // `--jobs` beats `DVS_JOBS` beats sequential. With several experiments
    // the workers run whole experiments; a single experiment instead gets
    // the full job count for its inner grid cells.
    let jobs = jobs.unwrap_or_else(|| {
        std::env::var(dvs_runtime::JOBS_ENV)
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(1)
    });
    let (outer_jobs, inner_jobs) = if ids.len() > 1 { (jobs, 1) } else { (1, jobs) };

    dvs_obs::enable();
    dvs_obs::reset();
    let ctx = Context::with_jobs(inner_jobs);
    let pool = dvs_runtime::Pool::new(outer_jobs);
    let (tx, rx) = dvs_runtime::channel::<Result<String, String>>();

    // Experiments run on the pool; a printer thread streams finished
    // reports in completion order so progress is visible under --jobs.
    let results: Vec<Option<ExperimentStats>> = std::thread::scope(|s| {
        let printer = s.spawn(move || {
            for msg in rx.iter() {
                match msg {
                    Ok(text) => println!("{text}"),
                    Err(e) => eprintln!("error: {e}"),
                }
            }
        });
        let results = pool.map(ids.clone(), |_idx, id| {
            // Domain 0 is the harness itself; each experiment runs under
            // its own registered, named domain so concurrent runs don't
            // bleed metrics into each other's stats.csv rows, and so the
            // domain column in stats.csv distinguishes bench rows from
            // other subsystems' exports (e.g. serve.loadtest).
            let domain_name = format!("bench.{id}");
            let domain = dvs_obs::register_domain(&domain_name);
            let _dg = dvs_obs::enter_domain(domain);
            let t0 = Instant::now();
            match run_experiment(&ctx, id) {
                Ok(report) => {
                    let wall_s = t0.elapsed().as_secs_f64();
                    let text = report.render();
                    tx.send(Ok(format!(
                        "{text}\n   [{id} completed in {wall_s:.2} s]\n"
                    )));
                    let _ = fs::write(out_dir.join(format!("{id}.txt")), &text);
                    let _ = fs::write(out_dir.join(format!("{id}.csv")), report.to_csv());
                    Some(ExperimentStats {
                        id: id.to_string(),
                        domain: domain_name,
                        wall_s,
                        metrics: MetricsSnapshot::capture_domain(domain),
                    })
                }
                Err(e) => {
                    tx.send(Err(e));
                    None
                }
            }
        });
        drop(tx);
        let _ = printer.join();
        results
    });

    let failures = results.iter().filter(|r| r.is_none()).count();
    let stats: Vec<ExperimentStats> = results.into_iter().flatten().collect();
    if !stats.is_empty() {
        let harness = Report::harness_stats(&stats);
        println!("{}", harness.render());
        let _ = fs::write(out_dir.join("stats.csv"), harness.to_csv());
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
