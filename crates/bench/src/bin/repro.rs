//! `repro` — regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro all            # every experiment, in paper order
//! repro table6 fig15   # specific experiments
//! repro --list         # show available ids
//! ```
//!
//! Each report is printed to stdout and written to `results/<id>.txt` and
//! `results/<id>.csv`. A cross-experiment perf baseline (wall-clock plus
//! pipeline metrics per experiment) lands in `results/stats.csv`.

use dvs_bench::Report;
use dvs_bench::{run_experiment, Context, ExperimentStats, ALL_EXPERIMENTS};
use dvs_obs::MetricsSnapshot;
use std::fs;
use std::path::Path;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: repro [--list] <experiment-id>... | all");
        eprintln!("ids: {}", ALL_EXPERIMENTS.join(", "));
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }
    if args.iter().any(|a| a == "--list") {
        for id in ALL_EXPERIMENTS {
            println!("{id}");
        }
        return;
    }

    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        ALL_EXPERIMENTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };

    let out_dir = Path::new("results");
    if let Err(e) = fs::create_dir_all(out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        std::process::exit(1);
    }

    dvs_obs::enable();
    let mut ctx = Context::new();
    let mut failures = 0;
    let mut stats: Vec<ExperimentStats> = Vec::new();
    for id in ids {
        dvs_obs::reset();
        let t0 = Instant::now();
        match run_experiment(&mut ctx, id) {
            Ok(report) => {
                let wall_s = t0.elapsed().as_secs_f64();
                let text = report.render();
                println!("{text}");
                println!("   [{id} completed in {wall_s:.2} s]\n");
                let _ = fs::write(out_dir.join(format!("{id}.txt")), &text);
                let _ = fs::write(out_dir.join(format!("{id}.csv")), report.to_csv());
                stats.push(ExperimentStats {
                    id: id.to_string(),
                    wall_s,
                    metrics: MetricsSnapshot::capture(),
                });
            }
            Err(e) => {
                eprintln!("error: {e}");
                failures += 1;
            }
        }
    }
    if !stats.is_empty() {
        let harness = Report::harness_stats(&stats);
        println!("{}", harness.render());
        let _ = fs::write(out_dir.join("stats.csv"), harness.to_csv());
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
