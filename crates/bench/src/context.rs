use dvs_compiler::DeadlineScheme;
use dvs_ir::{Cfg, Profile};
use dvs_sim::{Machine, ModeProfiler, RunStats, Trace};
use dvs_vf::{AlphaPower, VoltageLadder};
use dvs_workloads::Benchmark;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Cached per-benchmark artifacts: CFG, default-input trace and deadline
/// scheme. Per-ladder profiles live in a separate [`Context`] cache so that
/// `BenchData` is immutable and can be shared across worker threads.
pub struct BenchData {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Its CFG.
    pub cfg: Cfg,
    /// Trace of the suite-default input.
    pub trace: Trace,
    /// Fig.-16 deadline scheme measured at the XScale 200/600/800 points.
    pub scheme: DeadlineScheme,
}

/// The paper's Table 4 runtimes at 200 MHz, in µs, used to scale regulator
/// capacitances so each benchmark keeps the paper's transition-cost to
/// runtime ratio despite our ~10-350x shorter scaled-down inputs.
#[must_use]
pub fn paper_t200_us(benchmark: Benchmark) -> f64 {
    match benchmark {
        Benchmark::AdpcmEncode => 29_500.0,
        Benchmark::MpegDecode => 557_600.0,
        Benchmark::GsmEncode => 334_000.0,
        Benchmark::Epic => 152_600.0,
        Benchmark::Ghostscript => 2_000.0,
        Benchmark::Mpg123 => 177_700.0,
    }
}

/// The scale-equivalent of the paper's "typical" 10 µF regulator for
/// `benchmark`: capacitance shrinks with the runtime ratio, so a transition
/// costs the same *fraction* of the run as the paper's 12 µs / 1.2 µJ did.
#[must_use]
pub fn scaled_capacitance_uf(benchmark: Benchmark, our_t200_us: f64) -> f64 {
    10.0 * our_t200_us / paper_t200_us(benchmark)
}

/// Builds the ladder used throughout the experiments: the paper's exact
/// XScale 3-level ladder, or an interpolated `n`-level one.
#[must_use]
pub fn ladder_of(levels: usize) -> VoltageLadder {
    let law = AlphaPower::paper();
    if levels == 3 {
        VoltageLadder::xscale3(&law)
    } else {
        VoltageLadder::interpolated(&law, levels).expect("levels >= 2")
    }
}

/// A compute-once cell shared between threads: the map lock is held only
/// long enough to hand out the cell, so concurrent requests for *different*
/// keys build in parallel while requests for the *same* key block on the
/// one thread doing the work.
type Slot<T> = Arc<OnceLock<T>>;
type Cache<K, V> = Mutex<HashMap<K, Slot<V>>>;

fn slot_of<K: std::hash::Hash + Eq, V>(map: &Cache<K, V>, key: K) -> Slot<V> {
    map.lock()
        .expect("bench cache lock poisoned")
        .entry(key)
        .or_default()
        .clone()
}

/// Shared experiment context: the machine plus lazily-built benchmark data.
///
/// All caches are internally synchronized, so experiments borrow the
/// context immutably (`&Context`) and may query it from many threads at
/// once — each CFG, trace and per-ladder profile is still built exactly
/// once.
pub struct Context {
    /// The simulated machine (paper Table 2 configuration).
    pub machine: Machine,
    jobs: usize,
    benches: Cache<&'static str, Arc<BenchData>>,
    profiles: Cache<(&'static str, usize), (Profile, Vec<RunStats>)>,
}

impl Context {
    /// A fresh context with the paper-default machine.
    #[must_use]
    pub fn new() -> Self {
        Context::with_jobs(1)
    }

    /// A fresh context whose grid experiments fan cells out over `jobs`
    /// worker threads (clamped to at least 1).
    #[must_use]
    pub fn with_jobs(jobs: usize) -> Self {
        Context {
            machine: Machine::paper_default(),
            jobs: jobs.max(1),
            benches: Mutex::new(HashMap::new()),
            profiles: Mutex::new(HashMap::new()),
        }
    }

    /// Worker threads grid experiments may use for independent cells.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Maps `f` over `items` on a [`dvs_runtime::Pool`] sized to this
    /// context's job count, preserving item order in the results and
    /// propagating the caller's metric domain into the workers (so
    /// per-experiment [`dvs_obs`] attribution survives the fan-out).
    pub fn par_map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I) -> T + Sync,
    {
        let domain = dvs_obs::current_domain();
        dvs_runtime::Pool::new(self.jobs).map(items, |i, item| {
            let _dg = dvs_obs::enter_domain(domain);
            f(i, item)
        })
    }

    /// The (cached) data for `benchmark`, building CFG, trace and deadline
    /// scheme on first use.
    pub fn bench(&self, benchmark: Benchmark) -> Arc<BenchData> {
        let cell = slot_of(&self.benches, benchmark.name());
        cell.get_or_init(|| {
            let cfg = benchmark.build_cfg();
            let trace = benchmark.trace(&cfg, &benchmark.default_input());
            let scheme = DeadlineScheme::measure(&self.machine, &cfg, &trace);
            Arc::new(BenchData {
                benchmark,
                cfg,
                trace,
                scheme,
            })
        })
        .clone()
    }

    /// Convenience: profile of `benchmark` on an `levels`-mode ladder.
    /// Returns clones of the cached data to side-step borrow entanglement
    /// in experiments that hold several benchmarks at once.
    pub fn profile_of(&self, benchmark: Benchmark, levels: usize) -> (Profile, Vec<RunStats>) {
        let cell = slot_of(&self.profiles, (benchmark.name(), levels));
        cell.get_or_init(|| {
            let bd = self.bench(benchmark);
            let ladder = ladder_of(levels);
            ModeProfiler::new(self.machine.clone()).profile(&bd.cfg, &bd.trace, &ladder)
        })
        .clone()
    }
}

impl Default for Context {
    fn default() -> Self {
        Context::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_caches_benchmarks() {
        let ctx = Context::new();
        let b = Benchmark::Ghostscript;
        let t1 = ctx.bench(b).scheme;
        let t2 = ctx.bench(b).scheme;
        assert_eq!(t1, t2);
        assert!(t1.t_slow_us > t1.t_fast_us);
    }

    #[test]
    fn context_is_shareable_across_threads() {
        let ctx = Context::with_jobs(4);
        let b = Benchmark::Ghostscript;
        let schemes = ctx.par_map(vec![(); 8], |_, ()| ctx.bench(b).scheme);
        assert!(schemes.windows(2).all(|w| w[0] == w[1]));
        // The cache holds exactly one entry despite 8 concurrent requests.
        assert_eq!(ctx.benches.lock().unwrap().len(), 1);
    }

    #[test]
    fn profiles_are_computed_once_per_ladder() {
        let ctx = Context::with_jobs(4);
        let b = Benchmark::Ghostscript;
        let profiles = ctx.par_map(vec![(); 4], |_, ()| ctx.profile_of(b, 3).0);
        assert_eq!(ctx.profiles.lock().unwrap().len(), 1);
        let t0 = profiles[0].total_time_at(0);
        assert!(profiles.iter().all(|p| p.total_time_at(0) == t0));
    }

    #[test]
    fn ladders() {
        assert_eq!(ladder_of(3).len(), 3);
        assert_eq!(ladder_of(7).len(), 7);
        assert!((ladder_of(3).fastest().frequency_mhz - 800.0).abs() < 1e-9);
    }
}
