use dvs_compiler::DeadlineScheme;
use dvs_ir::{Cfg, Profile};
use dvs_sim::{Machine, ModeProfiler, RunStats, Trace};
use dvs_vf::{AlphaPower, VoltageLadder};
use dvs_workloads::Benchmark;
use std::collections::HashMap;

/// Cached per-benchmark artifacts: CFG, default-input trace, deadline
/// scheme, and one profile per ladder size.
pub struct BenchData {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Its CFG.
    pub cfg: Cfg,
    /// Trace of the suite-default input.
    pub trace: Trace,
    /// Fig.-16 deadline scheme measured at the XScale 200/600/800 points.
    pub scheme: DeadlineScheme,
    profiles: HashMap<usize, (Profile, Vec<RunStats>)>,
}

impl BenchData {
    /// The cached profile for an `levels`-mode ladder, computing it on
    /// first use.
    pub fn profile(&mut self, machine: &Machine, levels: usize) -> &(Profile, Vec<RunStats>) {
        self.profiles.entry(levels).or_insert_with(|| {
            let ladder = ladder_of(levels);
            ModeProfiler::new(machine.clone()).profile(&self.cfg, &self.trace, &ladder)
        })
    }
}

/// The paper's Table 4 runtimes at 200 MHz, in µs, used to scale regulator
/// capacitances so each benchmark keeps the paper's transition-cost to
/// runtime ratio despite our ~10-350x shorter scaled-down inputs.
#[must_use]
pub fn paper_t200_us(benchmark: Benchmark) -> f64 {
    match benchmark {
        Benchmark::AdpcmEncode => 29_500.0,
        Benchmark::MpegDecode => 557_600.0,
        Benchmark::GsmEncode => 334_000.0,
        Benchmark::Epic => 152_600.0,
        Benchmark::Ghostscript => 2_000.0,
        Benchmark::Mpg123 => 177_700.0,
    }
}

/// The scale-equivalent of the paper's "typical" 10 µF regulator for
/// `benchmark`: capacitance shrinks with the runtime ratio, so a transition
/// costs the same *fraction* of the run as the paper's 12 µs / 1.2 µJ did.
#[must_use]
pub fn scaled_capacitance_uf(benchmark: Benchmark, our_t200_us: f64) -> f64 {
    10.0 * our_t200_us / paper_t200_us(benchmark)
}

/// Builds the ladder used throughout the experiments: the paper's exact
/// XScale 3-level ladder, or an interpolated `n`-level one.
#[must_use]
pub fn ladder_of(levels: usize) -> VoltageLadder {
    let law = AlphaPower::paper();
    if levels == 3 {
        VoltageLadder::xscale3(&law)
    } else {
        VoltageLadder::interpolated(&law, levels).expect("levels >= 2")
    }
}

/// Shared experiment context: the machine plus lazily-built benchmark data.
pub struct Context {
    /// The simulated machine (paper Table 2 configuration).
    pub machine: Machine,
    benches: HashMap<&'static str, BenchData>,
}

impl Context {
    /// A fresh context with the paper-default machine.
    #[must_use]
    pub fn new() -> Self {
        Context {
            machine: Machine::paper_default(),
            benches: HashMap::new(),
        }
    }

    /// The (cached) data for `benchmark`, building CFG, trace and deadline
    /// scheme on first use.
    pub fn bench(&mut self, benchmark: Benchmark) -> &mut BenchData {
        let machine = &self.machine;
        self.benches.entry(benchmark.name()).or_insert_with(|| {
            let cfg = benchmark.build_cfg();
            let trace = benchmark.trace(&cfg, &benchmark.default_input());
            let scheme = DeadlineScheme::measure(machine, &cfg, &trace);
            BenchData {
                benchmark,
                cfg,
                trace,
                scheme,
                profiles: HashMap::new(),
            }
        })
    }

    /// Convenience: profile of `benchmark` on an `levels`-mode ladder.
    /// Returns clones of the cached data to side-step borrow entanglement
    /// in experiments that hold several benchmarks at once.
    pub fn profile_of(&mut self, benchmark: Benchmark, levels: usize) -> (Profile, Vec<RunStats>) {
        let machine = self.machine.clone();
        let b = self.bench(benchmark);
        b.profile(&machine, levels).clone()
    }
}

impl Default for Context {
    fn default() -> Self {
        Context::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_caches_benchmarks() {
        let mut ctx = Context::new();
        let b = Benchmark::Ghostscript;
        let t1 = ctx.bench(b).scheme;
        let t2 = ctx.bench(b).scheme;
        assert_eq!(t1, t2);
        assert!(t1.t_slow_us > t1.t_fast_us);
    }

    #[test]
    fn ladders() {
        assert_eq!(ladder_of(3).len(), 3);
        assert_eq!(ladder_of(7).len(), 7);
        assert!((ladder_of(3).fastest().frequency_mhz - 800.0).abs() < 1e-9);
    }
}
