//! Analytical-model experiments: Figs. 2–11 and Table 1.

use crate::context::ladder_of;
use crate::{Context, Report};
use dvs_compiler::analyze_params;
use dvs_model::{ContinuousModel, DiscreteModel, ProgramParams, Surface, SweepAxis};
use dvs_vf::AlphaPower;
use dvs_workloads::Benchmark;

/// Wide-range continuous model: the theoretical analysis is not limited by
/// any shipping voltage regulator, so the sweep range runs well past the
/// ladder endpoints (the paper's Figs. 2–7 scan v1 up to 3.5 V).
fn wide_continuous() -> ContinuousModel {
    ContinuousModel::new(AlphaPower::paper(), 0.46, 8.0)
}

fn energy_curve(id: &str, title: &str, p: ProgramParams, t_deadline_us: f64) -> Report {
    let m = wide_continuous();
    let mut r = Report::new(id, title);
    r.note(format!(
        "Noverlap={:.3e}  Ndependent={:.3e}  Ncache={:.3e}  tinv={} µs  tdeadline={} µs",
        p.n_overlap, p.n_dependent, p.n_cache, p.t_invariant_us, t_deadline_us
    ));
    r.note(format!("case = {:?}", m.classify(&p, t_deadline_us)));
    if let Some(opt) = m.optimal(&p, t_deadline_us) {
        r.note(format!(
            "optimal: v1={:.3} V (f1={:.0} MHz)  v2={:.3} V (f2={:.0} MHz)  E={:.4e}",
            opt.v1, opt.f1_mhz, opt.v2, opt.f2_mhz, opt.energy
        ));
        if let Some(s) = m.savings(&p, t_deadline_us) {
            r.note(format!("savings vs best single frequency = {s:.4}"));
        }
    } else {
        r.note("deadline infeasible at any voltage in range".to_string());
    }
    r.columns(["v1 (V)", "energy (cycle·V²)"]);
    let mut v = 0.6;
    while v <= 3.5 + 1e-9 {
        match m.energy_at_v1(&p, t_deadline_us, v) {
            Some(e) => r.row([format!("{v:.2}"), format!("{e:.6e}")]),
            None => r.row([format!("{v:.2}"), "infeasible".to_string()]),
        }
        v += 0.05;
    }
    r
}

/// Fig. 2: computation-dominated energy-vs-v1 curve (single minimum at
/// `videal`).
#[must_use]
pub fn fig2() -> Report {
    energy_curve(
        "fig2",
        "Computation dominated: energy vs supply voltage v1",
        ProgramParams {
            n_overlap: 1.0e6,
            n_dependent: 6.0e5,
            n_cache: 1.0e5,
            t_invariant_us: 100.0,
        },
        3000.0,
    )
}

/// Fig. 3: memory-dominated curve (minimum below `videal`, two voltages
/// optimal).
#[must_use]
pub fn fig3() -> Report {
    energy_curve(
        "fig3",
        "Memory dominated: energy vs supply voltage v1",
        ProgramParams {
            n_overlap: 1.0e6,
            n_dependent: 6.0e5,
            n_cache: 3.0e5,
            t_invariant_us: 2000.0,
        },
        3000.0,
    )
}

/// Fig. 4: memory-dominated-with-slack curve (convex, single optimal
/// frequency).
#[must_use]
pub fn fig4() -> Report {
    energy_curve(
        "fig4",
        "Memory dominated with slack: energy vs supply voltage v1",
        ProgramParams {
            n_overlap: 2.0e5,
            n_dependent: 3.0e6,
            n_cache: 1.5e6,
            t_invariant_us: 1000.0,
        },
        5000.0,
    )
}

fn surface_report(id: &str, title: &str, notes: &[String], surface: &Surface) -> Report {
    let mut r = Report::new(id, title);
    for n in notes {
        r.note(n.clone());
    }
    let (ax, ay) = surface.argmax();
    r.note(format!(
        "max savings = {:.4} at ({} = {:.4e}, {} = {:.4e}); fraction of grid with savings > 1% = {:.3}",
        surface.max(),
        surface.x.label,
        ax,
        surface.y.label,
        ay,
        surface.fraction_above(0.01)
    ));
    r.columns([
        surface.x.label.as_str(),
        surface.y.label.as_str(),
        "savings",
    ]);
    for (yi, row) in surface.z.iter().enumerate() {
        for (xi, &z) in row.iter().enumerate() {
            r.row([
                format!("{:.5e}", surface.x.values[xi]),
                format!("{:.5e}", surface.y.values[yi]),
                format!("{z:.4}"),
            ]);
        }
    }
    r
}

/// Fig. 5: continuous savings over (Noverlap, Ndependent).
#[must_use]
pub fn fig5() -> Report {
    let m = wide_continuous();
    let (nc, tinv, tdl) = (3.0e5, 1000.0, 3000.0);
    let s = Surface::sweep(
        SweepAxis::linspace("Noverlap (cycles)", 2.0e5, 1.8e6, 17),
        SweepAxis::linspace("Ndependent (cycles)", 5.0e4, 1.5e6, 15),
        |nov, nd| {
            let p = ProgramParams {
                n_overlap: nov,
                n_dependent: nd,
                n_cache: nc,
                t_invariant_us: tinv,
            };
            m.savings(&p, tdl).unwrap_or(0.0)
        },
    );
    surface_report(
        "fig5",
        "Continuous case: savings vs (Noverlap, Ndependent)",
        &[format!(
            "Ncache={nc:.0} cycles, tdeadline={tdl} µs, tinvariant={tinv} µs"
        )],
        &s,
    )
}

/// Fig. 6: continuous savings over (Ncache, tinvariant).
#[must_use]
pub fn fig6() -> Report {
    let m = wide_continuous();
    let (nov, nd, tdl) = (4.0e6, 5.8e6, 5000.0);
    let s = Surface::sweep(
        SweepAxis::linspace("Ncache (cycles)", 2.0e5, 1.8e6, 17),
        SweepAxis::linspace("tinvariant (µs)", 500.0, 3500.0, 13),
        |nc, tinv| {
            let p = ProgramParams {
                n_overlap: nov,
                n_dependent: nd,
                n_cache: nc,
                t_invariant_us: tinv,
            };
            m.savings(&p, tdl).unwrap_or(0.0)
        },
    );
    surface_report(
        "fig6",
        "Continuous case: savings vs (Ncache, tinvariant)",
        &[format!(
            "Noverlap={nov:.0}, Ndependent={nd:.0} cycles, tdeadline={tdl} µs"
        )],
        &s,
    )
}

/// Fig. 7: continuous savings over (tdeadline, Ncache).
#[must_use]
pub fn fig7() -> Report {
    let m = wide_continuous();
    let (nov, nd, tinv) = (4.0e6, 5.7e6, 1000.0);
    let s = Surface::sweep(
        SweepAxis::linspace("tdeadline (µs)", 1500.0, 5000.0, 15),
        SweepAxis::linspace("Ncache (cycles)", 5.0e5, 3.5e6, 13),
        |tdl, nc| {
            let p = ProgramParams {
                n_overlap: nov,
                n_dependent: nd,
                n_cache: nc,
                t_invariant_us: tinv,
            };
            m.savings(&p, tdl).unwrap_or(0.0)
        },
    );
    surface_report(
        "fig7",
        "Continuous case: savings vs (tdeadline, Ncache)",
        &[format!(
            "Noverlap={nov:.0}, Ndependent={nd:.0} cycles, tinvariant={tinv} µs"
        )],
        &s,
    )
}

/// Fig. 8: the discrete `Emin(y)` staircase scan.
#[must_use]
pub fn fig8() -> Report {
    let model = DiscreteModel::new(ladder_of(7));
    let p = ProgramParams {
        n_overlap: 1.0e6,
        n_dependent: 6.0e5,
        n_cache: 3.0e5,
        t_invariant_us: 2000.0,
    };
    let tdl = 3400.0;
    let mut r = Report::new(
        "fig8",
        "Discrete case: Emin(y) vs execution time y of Ncache",
    );
    r.note(format!(
        "7 voltage levels; Noverlap={:.0}, Ndependent={:.0}, Ncache={:.0}, tinv={} µs, tdeadline={tdl} µs",
        p.n_overlap, p.n_dependent, p.n_cache, p.t_invariant_us
    ));
    if let Some(sol) = model.optimal(&p, tdl) {
        r.note(format!(
            "optimal energy {:.5e} at y = {:?} µs, using {} modes",
            sol.energy,
            sol.y_us.map(|y| (y * 10.0).round() / 10.0),
            sol.plan.modes_used()
        ));
    }
    r.columns(["y (µs)", "Emin(y) (cycle·V²)"]);
    for (y, e) in model.emin_curve(&p, tdl, 120) {
        r.row([format!("{y:.1}"), format!("{e:.6e}")]);
    }
    r
}

#[allow(clippy::too_many_arguments)] // one arg per sweep dimension; a struct would just rename them
fn discrete_surface(
    id: &str,
    title: &str,
    levels: usize,
    notes: Vec<String>,
    x: SweepAxis,
    y: SweepAxis,
    f: impl Fn(f64, f64) -> ProgramParams,
    tdl: impl Fn(f64, f64) -> f64,
) -> Report {
    let model = DiscreteModel::new(ladder_of(levels));
    let s = Surface::sweep(x, y, |xv, yv| {
        model.savings(&f(xv, yv), tdl(xv, yv)).unwrap_or(0.0)
    });
    surface_report(id, title, &notes, &s)
}

/// Fig. 9: discrete savings over (Noverlap, Ndependent), 7 levels.
#[must_use]
pub fn fig9() -> Report {
    let (nc, tinv, tdl) = (2.0e5, 1000.0, 5200.0);
    discrete_surface(
        "fig9",
        "Discrete case (7 levels): savings vs (Noverlap, Ndependent)",
        7,
        vec![format!(
            "Ncache={nc:.0} cycles, tdeadline={tdl} µs, tinvariant={tinv} µs"
        )],
        SweepAxis::linspace("Noverlap (cycles)", 2.0e5, 1.8e6, 17),
        SweepAxis::linspace("Ndependent (cycles)", 5.0e4, 1.5e6, 15),
        move |nov, nd| ProgramParams {
            n_overlap: nov,
            n_dependent: nd,
            n_cache: nc,
            t_invariant_us: tinv,
        },
        move |_, _| tdl,
    )
}

/// Fig. 10: discrete savings over (Ncache, tinvariant), 7 levels.
#[must_use]
pub fn fig10() -> Report {
    let (nov, nd, tdl) = (1.3e7, 7.0e7, 3.5e5);
    discrete_surface(
        "fig10",
        "Discrete case (7 levels): savings vs (Ncache, tinvariant)",
        7,
        vec![format!(
            "Noverlap={nov:.1e}, Ndependent={nd:.1e} cycles, tdeadline={tdl:.1e} µs"
        )],
        SweepAxis::linspace("Ncache (cycles)", 5.0e5, 1.5e7, 15),
        SweepAxis::linspace("tinvariant (µs)", 500.0, 15000.0, 13),
        move |nc, tinv| ProgramParams {
            n_overlap: nov,
            n_dependent: nd,
            n_cache: nc,
            t_invariant_us: tinv,
        },
        move |_, _| tdl,
    )
}

/// Fig. 11: discrete savings over (tdeadline, Ncache), 7 levels.
#[must_use]
pub fn fig11() -> Report {
    let (nov, nd, tinv) = (1.3e7, 7.0e7, 1000.0);
    let mut r = discrete_surface(
        "fig11",
        "Discrete case (7 levels): savings vs (tdeadline, Ncache)",
        7,
        vec![format!(
            "Noverlap={nov:.1e}, Ndependent={nd:.1e} cycles, tinvariant={tinv} µs"
        )],
        SweepAxis::linspace("tdeadline (µs)", 1.05e5, 2.6e5, 16),
        SweepAxis::linspace("Ncache (cycles)", 2.5e5, 1.5e6, 11),
        move |_, nc| ProgramParams {
            n_overlap: nov,
            n_dependent: nd,
            n_cache: nc,
            t_invariant_us: tinv,
        },
        move |tdl, _| tdl,
    );
    r.note(
        "paper caption lists tdeadline = 1340 µs, inconsistent with 8.3e7 cycles \
         at <= 800 MHz; axis interpreted as 10^3 µs (see EXPERIMENTS.md)"
            .to_string(),
    );
    r
}

/// Table 1: analytical savings bounds for the Table 7 benchmarks at 3/7/13
/// levels and the five Fig. 16 deadlines.
#[must_use]
pub fn table1(ctx: &Context) -> Report {
    let mut r = Report::new(
        "table1",
        "Analytical energy-saving ratios: benchmark × voltage levels × deadline",
    );
    r.note("program parameters extracted from cycle-level simulation (see table7)");
    r.columns(["benchmark", "levels", "D1", "D2", "D3", "D4", "D5"]);
    // The profiling runs dominate; fan them out per (benchmark, levels) cell
    // block and assemble rows in benchmark order afterwards.
    let tasks: Vec<(Benchmark, usize)> = Benchmark::table7_set()
        .into_iter()
        .flat_map(|b| [3usize, 7, 13].into_iter().map(move |l| (b, l)))
        .collect();
    let rows = ctx.par_map(tasks, |_, (b, levels)| {
        let (_, runs) = ctx.profile_of(b, 3);
        let params = analyze_params(&runs);
        let deadlines = ctx.bench(b).scheme.deadlines_us();
        let model = DiscreteModel::new(ladder_of(levels));
        let mut cells = vec![b.name().to_string(), levels.to_string()];
        for &d in &deadlines {
            match model.savings(&params, d) {
                Some(s) => cells.push(format!("{s:.2}")),
                None => cells.push("inf.".to_string()),
            }
        }
        cells
    });
    r.rows.extend(rows);
    r
}
