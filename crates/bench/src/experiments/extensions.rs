//! Extension experiments beyond the paper's published tables:
//!
//! * `paths` — Ball–Larus hot-path profiles (§7 proposes moving the MILP
//!   from edges to paths; this measures how concentrated execution is on
//!   few paths, i.e. how much context path-granularity could add);
//! * `gating` — the cost of the paper's perfect-clock-gating assumption 3;
//! * Lee–Sakurai interval hopping joins the granularity ablation.

use crate::context::{ladder_of, scaled_capacitance_uf};
use crate::{Context, Report};
use dvs_compiler::{baseline, emit_instrumented, DvsCompiler, ScheduleAnalysis};
use dvs_ir::{decode_path, BallLarus, PathProfile};
use dvs_sim::{ClockGating, EnergyModel, Machine, SimConfig};
use dvs_vf::{OperatingPoint, TransitionModel};
use dvs_workloads::Benchmark;

/// Hot acyclic paths per benchmark (Ball–Larus numbering over the CFG with
/// back edges cut), with the fraction of dynamic path executions the top-3
/// paths cover.
#[must_use]
pub fn paths(ctx: &Context) -> Report {
    let mut r = Report::new(
        "paths",
        "Ball-Larus acyclic-path profiles (the §7 path-granularity direction)",
    );
    r.note("paths run from the entry or a loop header to the exit or a back edge");
    r.columns([
        "benchmark",
        "static paths",
        "distinct executed",
        "top-3 coverage",
        "hottest path",
    ]);
    for b in Benchmark::all() {
        let bd = ctx.bench(b);
        let bl = BallLarus::compute(&bd.cfg);
        let walk = bd.trace.walk();
        let profile =
            PathProfile::from_walk(&bd.cfg, &bl, &walk).expect("benchmark traces are valid walks");
        let hottest = profile.hottest();
        let total = profile.total() as f64;
        let top3: u64 = hottest.iter().take(3).map(|&(_, c)| c).sum();
        let hot_blocks = hottest
            .first()
            .map(|&(k, _)| {
                decode_path(&bd.cfg, &bl, k)
                    .iter()
                    .map(|&blk| bd.cfg.block(blk).label.clone())
                    .collect::<Vec<_>>()
                    .join("->")
            })
            .unwrap_or_default();
        r.row([
            b.name().to_string(),
            bl.num_paths().to_string(),
            profile.distinct().to_string(),
            format!("{:.3}", top3 as f64 / total),
            hot_blocks,
        ]);
    }
    r
}

/// How much the perfect-clock-gating assumption is worth: processor energy
/// at 800 MHz with and without gating, per benchmark.
#[must_use]
pub fn gating(ctx: &Context) -> Report {
    let mut r = Report::new(
        "gating",
        "Ablation of paper assumption 3: perfect clock gating on memory stalls",
    );
    r.note("fixed 800 MHz runs; Ungated charges the clock tree on every idle cycle");
    r.columns([
        "benchmark",
        "E gated (µJ)",
        "E ungated (µJ)",
        "overhead",
        "stall fraction",
    ]);
    let pt = OperatingPoint::new(1.65, 800.0);
    let ungated_machine = Machine::new(
        SimConfig::default(),
        EnergyModel {
            gating: ClockGating::Ungated,
            ..EnergyModel::default()
        },
    );
    let gated_machine = ctx.machine.clone();
    for b in Benchmark::all() {
        let bd = ctx.bench(b);
        let gated = gated_machine.run(&bd.cfg, &bd.trace, pt);
        let ungated = ungated_machine.run(&bd.cfg, &bd.trace, pt);
        r.row([
            b.name().to_string(),
            format!("{:.1}", gated.processor_energy_uj()),
            format!("{:.1}", ungated.processor_energy_uj()),
            format!(
                "{:+.1}%",
                100.0 * (ungated.processor_energy_uj() / gated.processor_energy_uj() - 1.0)
            ),
            format!("{:.3}", gated.stall_cycles / gated.total_cycles),
        ]);
    }
    r
}

/// Static instrumentation cost: mode-set points before and after the
/// silent-set elision (hoisting) post-pass, at deadline D2.
#[must_use]
pub fn hoisting(ctx: &Context) -> Report {
    let mut r = Report::new(
        "hoisting",
        "Mode-set instruction counts: naive per-edge placement vs after silent-set elision",
    );
    r.note("deadline D2; scale-typical c; listing emitted per benchmark");
    r.columns([
        "benchmark",
        "naive mode-sets",
        "emitted mode-sets",
        "elided",
        "critical-edge sets",
        "silent back edges",
    ]);
    for b in Benchmark::all() {
        let (profile, _) = ctx.profile_of(b, 3);
        let machine = ctx.machine.clone();
        let bd = ctx.bench(b);
        let comp = DvsCompiler::builder(
            machine,
            ladder_of(3),
            TransitionModel::with_capacitance_uf(scaled_capacitance_uf(b, bd.scheme.t_slow_us)),
        )
        .build()
        .expect("experiment compiler settings are valid");
        match comp.compile(&bd.cfg, &profile, bd.scheme.deadline_us(2)) {
            Ok(res) => {
                let analysis = ScheduleAnalysis::new(&bd.cfg, &profile, &res.milp.schedule);
                let (_, stats) =
                    emit_instrumented(&bd.cfg, comp.ladder(), &res.milp.schedule, &analysis);
                let (bs, bt) = analysis.back_edge_summary();
                r.row([
                    b.name().to_string(),
                    stats.naive_mode_sets.to_string(),
                    stats.emitted_mode_sets.to_string(),
                    format!("{:.0}%", 100.0 * stats.elision_ratio()),
                    stats.critical_edge_sets.to_string(),
                    format!("{bs}/{bt}"),
                ]);
            }
            Err(_) => r.row([b.name().to_string(), "infeasible".to_string()]),
        }
    }
    r
}

/// Static verification of every benchmark's emitted schedule at deadline
/// D2: diagnostic counts, modeled time and the loop-collapsed WCET bound,
/// with the deadline margin each bound leaves.
#[must_use]
pub fn verify(ctx: &Context) -> Report {
    let mut r = Report::new(
        "verify",
        "dvs-verify static pass over the emitted schedules (deadline D2)",
    );
    r.note("modeled = profile-weighted time of the emitted schedule;");
    r.note("wcet = longest path over the loop-collapsed DAG with profile trip bounds —");
    r.note("conservative by construction, so wcet >= modeled always holds");
    r.columns([
        "benchmark",
        "errors",
        "warnings",
        "infos",
        "modeled (µs)",
        "wcet (µs)",
        "deadline (µs)",
    ]);
    for b in Benchmark::all() {
        let (profile, _) = ctx.profile_of(b, 3);
        let machine = ctx.machine.clone();
        let bd = ctx.bench(b);
        let transition =
            TransitionModel::with_capacitance_uf(scaled_capacitance_uf(b, bd.scheme.t_slow_us));
        let comp = DvsCompiler::builder(machine, ladder_of(3), transition)
            .build()
            .expect("experiment compiler settings are valid");
        let deadline = bd.scheme.deadline_us(2);
        match comp.compile(&bd.cfg, &profile, deadline) {
            Ok(res) => {
                let mask = res.analysis.emitted_mask();
                let report = dvs_verify::verify(&dvs_verify::VerifyInput {
                    cfg: &bd.cfg,
                    profile: &profile,
                    ladder: comp.ladder(),
                    transition: &transition,
                    schedule: &res.milp.schedule,
                    emitted: Some(&mask),
                    deadline_us: Some(deadline),
                });
                r.row([
                    b.name().to_string(),
                    report.count(dvs_verify::Severity::Error).to_string(),
                    report.count(dvs_verify::Severity::Warning).to_string(),
                    report.count(dvs_verify::Severity::Info).to_string(),
                    format!("{:.1}", report.modeled_time_us),
                    format!("{:.1}", report.wcet.bound_us),
                    format!("{deadline:.1}"),
                ]);
            }
            Err(_) => r.row([b.name().to_string(), "infeasible".to_string()]),
        }
    }
    r
}

/// Lee–Sakurai interval hopping vs the MILP, at the lax deadline where
/// hopping is most natural.
#[must_use]
pub fn interval_hopping(ctx: &Context) -> Report {
    let mut r = Report::new(
        "hopping",
        "Lee-Sakurai interval voltage hopping vs the MILP (deadline D5)",
    );
    r.note("hopping interval = deadline/50; energies in µJ (predicted)");
    r.note("hopping is a run-time technique: time-slicing can split a homogeneous");
    r.note("loop between two modes, which no static per-edge assignment can express —");
    r.note("that is why it can beat the MILP on single-loop benchmarks (adpcm),");
    r.note("at the price of needing timer-driven mode-set injection at run time.");
    r.columns([
        "benchmark",
        "MILP energy",
        "hopping energy",
        "hopping switches",
        "best single",
    ]);
    for b in Benchmark::all() {
        let (profile, _) = ctx.profile_of(b, 3);
        let machine = ctx.machine.clone();
        let bd = ctx.bench(b);
        let cap = scaled_capacitance_uf(b, bd.scheme.t_slow_us);
        let tm = TransitionModel::with_capacitance_uf(cap);
        let comp = DvsCompiler::builder(machine, ladder_of(3), tm)
            .build()
            .expect("experiment compiler settings are valid");
        let deadline = bd.scheme.deadline_us(5);
        let milp = comp
            .compile(&bd.cfg, &profile, deadline)
            .map(|res| res.milp.predicted_energy_uj);
        let ladder = ladder_of(3);
        let tm = TransitionModel::with_capacitance_uf(cap);
        let ls = baseline::lee_sakurai(&profile, &ladder, &tm, deadline, deadline / 50.0);
        let single = baseline::best_single_mode(&profile, &ladder, deadline);
        r.row([
            b.name().to_string(),
            milp.map_or("inf.".to_string(), |e| format!("{e:.1}")),
            ls.map_or("inf.".to_string(), |l| format!("{:.1}", l.energy_uj)),
            ls.map_or("-".to_string(), |l| l.switches.to_string()),
            single.map_or("inf.".to_string(), |(_, _, e)| format!("{e:.1}")),
        ]);
    }
    r
}

/// Cross-input schedule robustness for every benchmark (generalizing
/// Fig. 19 beyond MPEG): optimize on the default input, re-simulate on the
/// small and complex variants, and report whether their own D3 deadlines
/// still hold.
#[must_use]
pub fn inputs(ctx: &Context) -> Report {
    use dvs_compiler::{DeadlineScheme, MilpFormulation};
    let mut r = Report::new(
        "inputs",
        "Schedule robustness across inputs: optimize on default, run on variants",
    );
    r.note("deadline = each input's own D3; times in µs; MISS marks a blown deadline");
    r.columns([
        "benchmark",
        "input",
        "deadline",
        "time under default-opt schedule",
        "verdict",
    ]);
    for b in Benchmark::all() {
        let (profile, _) = ctx.profile_of(b, 3);
        let machine = ctx.machine.clone();
        let bd = ctx.bench(b);
        let cap = scaled_capacitance_uf(b, bd.scheme.t_slow_us);
        let tm = TransitionModel::with_capacitance_uf(cap);
        let ladder = ladder_of(3);
        let Ok(out) =
            MilpFormulation::new(&bd.cfg, &profile, &ladder, &tm, bd.scheme.deadline_us(3)).solve()
        else {
            r.row([b.name().to_string(), "-".into(), "infeasible".into()]);
            continue;
        };
        let cfg = bd.cfg.clone();
        for input in b.inputs() {
            let trace = b.trace(&cfg, &input);
            let scheme = DeadlineScheme::measure(&machine, &cfg, &trace);
            let d3 = scheme.deadline_us(3);
            let run = machine.run_scheduled(&cfg, &trace, &ladder, &out.schedule, &tm);
            let verdict = if run.time_us <= d3 { "ok" } else { "MISS" };
            r.row([
                b.name().to_string(),
                input.name.clone(),
                format!("{d3:.1}"),
                format!("{:.1}", run.time_us),
                verdict.to_string(),
            ]);
        }
    }
    r
}

/// Microarchitectural statistics per benchmark at 800 MHz — the
/// sim-outorder-style numbers behind every other experiment.
#[must_use]
pub fn stats(ctx: &Context) -> Report {
    let mut r = Report::new(
        "simstats",
        "Simulator statistics per benchmark (800 MHz reference run)",
    );
    r.columns([
        "benchmark",
        "insts",
        "cycles",
        "IPC",
        "L1D miss%",
        "L1I miss%",
        "L2 miss%",
        "mispredicts",
        "DRAM accesses",
        "stall%",
    ]);
    let pt = OperatingPoint::new(1.65, 800.0);
    let machine = ctx.machine.clone();
    for b in Benchmark::all() {
        let bd = ctx.bench(b);
        let run = machine.run(&bd.cfg, &bd.trace, pt);
        r.row([
            b.name().to_string(),
            run.committed_insts.to_string(),
            format!("{:.0}", run.total_cycles),
            format!("{:.2}", run.ipc()),
            format!("{:.1}", 100.0 * run.l1d.miss_rate()),
            format!("{:.1}", 100.0 * run.l1i.miss_rate()),
            format!("{:.1}", 100.0 * run.l2.miss_rate()),
            run.mispredicts.to_string(),
            run.dram_accesses.to_string(),
            format!("{:.1}", 100.0 * run.stall_cycles / run.total_cycles),
        ]);
    }
    r
}

/// Ablation: an idealized next-line prefetcher vs the paper's no-prefetch
/// machine. Prefetching shrinks `tinvariant`, which is exactly the window
/// compile-time DVS exploits — quantifying how fragile the opportunity is
/// to memory-system improvements (the paper's "extrapolate into the
/// future" concern, from the other direction).
#[must_use]
pub fn prefetch(ctx: &Context) -> Report {
    let mut r = Report::new(
        "prefetch",
        "Ablation: idealized next-line prefetch vs the paper machine",
    );
    r.note("800 MHz runs; prefetch fills line+1 on every L1D demand miss");
    r.columns([
        "benchmark",
        "t800 base (µs)",
        "t800 prefetch (µs)",
        "tinv base (µs)",
        "tinv prefetch (µs)",
        "DRAM base",
        "DRAM prefetch",
    ]);
    let pt = OperatingPoint::new(1.65, 800.0);
    let base_machine = ctx.machine.clone();
    let pf_machine = Machine::new(
        SimConfig {
            next_line_prefetch: true,
            ..SimConfig::default()
        },
        EnergyModel::default(),
    );
    for b in Benchmark::all() {
        let bd = ctx.bench(b);
        let base = base_machine.run(&bd.cfg, &bd.trace, pt);
        let pf = pf_machine.run(&bd.cfg, &bd.trace, pt);
        r.row([
            b.name().to_string(),
            format!("{:.1}", base.total_time_us),
            format!("{:.1}", pf.total_time_us),
            format!("{:.1}", base.stall_cycles / 800.0),
            format!("{:.1}", pf.stall_cycles / 800.0),
            base.dram_accesses.to_string(),
            pf.dram_accesses.to_string(),
        ]);
    }
    r
}
