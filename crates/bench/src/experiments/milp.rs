//! MILP-pass experiments: Figs. 14, 15, 17, 18 and Tables 3, 5, 6, plus the
//! block-vs-edge granularity ablation.

use crate::context::{ladder_of, scaled_capacitance_uf};
use crate::{Context, Report};
use dvs_compiler::{baseline, DvsCompiler, EdgeFilter, Granularity, MilpFormulation};
use dvs_sim::Machine;
use dvs_vf::TransitionModel;
use dvs_workloads::Benchmark;

fn compiler(machine: &Machine, levels: usize, cap_uf: f64) -> DvsCompiler {
    DvsCompiler::new(
        machine.clone(),
        ladder_of(levels),
        TransitionModel::with_capacitance_uf(cap_uf),
    )
}

/// Fig. 14: MILP solve-time speedup from edge filtering.
#[must_use]
pub fn fig14(ctx: &mut Context) -> Report {
    let mut r = Report::new("fig14", "Speedup in MILP solution time from edge filtering");
    r.note("scale-typical c per benchmark (paper 10 µF x runtime ratio); deadline D2");
    r.columns([
        "benchmark",
        "edges",
        "independent after filter",
        "t_all (µs)",
        "t_filtered (µs)",
        "speedup",
    ]);
    for b in Benchmark::all() {
        let (profile, _) = ctx.profile_of(b, 3);
        let bd = ctx.bench(b);
        let deadline = bd.scheme.deadline_us(2);
        let ladder = ladder_of(3);
        let tm =
            TransitionModel::with_capacitance_uf(scaled_capacitance_uf(b, bd.scheme.t_slow_us));

        let unfiltered = MilpFormulation::new(&bd.cfg, &profile, &ladder, &tm, deadline)
            .with_filter(EdgeFilter::identity(&bd.cfg))
            .solve();
        let filt = EdgeFilter::tail_rule(&bd.cfg, &profile, ladder.len() - 1, 0.02);
        let independent = filt.num_independent();
        let filtered = MilpFormulation::new(&bd.cfg, &profile, &ladder, &tm, deadline)
            .with_filter(filt)
            .solve();
        match (unfiltered, filtered) {
            (Ok(u), Ok(f)) => {
                let tu = u.solve_time.as_secs_f64() * 1e6;
                let tf = f.solve_time.as_secs_f64() * 1e6;
                r.row([
                    b.name().to_string(),
                    bd.cfg.num_edges().to_string(),
                    independent.to_string(),
                    format!("{tu:.0}"),
                    format!("{tf:.0}"),
                    format!("{:.2}", tu / tf.max(1.0)),
                ]);
            }
            _ => r.row([b.name().to_string(), "infeasible".to_string()]),
        }
    }
    r
}

/// Table 3: minimum energy with the full edge set vs the filtered subset.
#[must_use]
pub fn table3(ctx: &mut Context) -> Report {
    let mut r = Report::new(
        "table3",
        "Energy consumption: MILP on all edges vs filtered subset (µJ)",
    );
    r.note("scale-typical c per benchmark (paper 10 µF x runtime ratio); deadline D2; deadlines met in both");
    r.columns([
        "benchmark",
        "All:Energy (µJ)",
        "Subset:Energy (µJ)",
        "delta (%)",
    ]);
    for b in Benchmark::all() {
        let (profile, _) = ctx.profile_of(b, 3);
        let bd = ctx.bench(b);
        let deadline = bd.scheme.deadline_us(2);
        let ladder = ladder_of(3);
        let tm =
            TransitionModel::with_capacitance_uf(scaled_capacitance_uf(b, bd.scheme.t_slow_us));
        let all = MilpFormulation::new(&bd.cfg, &profile, &ladder, &tm, deadline)
            .with_filter(EdgeFilter::identity(&bd.cfg))
            .solve();
        let filt = EdgeFilter::tail_rule(&bd.cfg, &profile, ladder.len() - 1, 0.02);
        let sub = MilpFormulation::new(&bd.cfg, &profile, &ladder, &tm, deadline)
            .with_filter(filt)
            .solve();
        match (all, sub) {
            (Ok(a), Ok(s)) => {
                let delta = 100.0 * (s.predicted_energy_uj - a.predicted_energy_uj)
                    / a.predicted_energy_uj.max(1e-12);
                r.row([
                    b.name().to_string(),
                    format!("{:.1}", a.predicted_energy_uj),
                    format!("{:.1}", s.predicted_energy_uj),
                    format!("{delta:+.3}"),
                ]);
            }
            _ => r.row([b.name().to_string(), "infeasible".to_string()]),
        }
    }
    r
}

/// Fig. 15: impact of the transition cost (regulator capacitance sweep).
#[must_use]
pub fn fig15(ctx: &mut Context) -> Report {
    let mut r = Report::new("fig15", "Impact of transition cost on minimum energy");
    r.note("energy normalized to the all-600MHz run; deadline D5; 3-level ladder");
    r.note("c labelled in paper-equivalent µF; actual values are scaled per benchmark to preserve the paper's transition-cost/runtime ratio");
    r.columns([
        "benchmark",
        "c (µF)",
        "normalized energy",
        "dynamic transitions",
    ]);
    let caps = [100.0, 10.0, 1.0, 0.1, 0.01];
    for b in Benchmark::all() {
        let (profile, _) = ctx.profile_of(b, 3);
        let machine = ctx.machine.clone();
        let bd = ctx.bench(b);
        let deadline = bd.scheme.deadline_us(5);
        let base_600 = profile.total_energy_at(1); // mode 1 = 600 MHz
        let scale = scaled_capacitance_uf(b, bd.scheme.t_slow_us) / 10.0;
        for &c in &caps {
            let comp = compiler(&machine, 3, c * scale);
            match comp.compile_and_validate(&bd.cfg, &bd.trace, &profile, deadline) {
                Ok(res) => {
                    let v = res.validated.expect("validated");
                    r.row([
                        b.name().to_string(),
                        format!("{c}"),
                        format!("{:.4}", res.milp.predicted_energy_uj / base_600),
                        v.transitions.to_string(),
                    ]);
                }
                Err(_) => r.row([b.name().to_string(), format!("{c}"), "infeasible".into()]),
            }
        }
    }
    r
}

/// Fig. 17: impact of the deadline on optimized energy.
#[must_use]
pub fn fig17(ctx: &mut Context) -> Report {
    let mut r = Report::new("fig17", "Impact of deadline on energy");
    r.note("energy normalized to the best single-frequency setting meeting the deadline; scale-typical c");
    r.columns(["benchmark", "deadline", "normalized energy", "savings"]);
    for b in Benchmark::all() {
        let (profile, _) = ctx.profile_of(b, 3);
        let machine = ctx.machine.clone();
        let bd = ctx.bench(b);
        let comp = compiler(&machine, 3, scaled_capacitance_uf(b, bd.scheme.t_slow_us));
        for i in 1..=5usize {
            let deadline = bd.scheme.deadline_us(i);
            match comp.compile(&bd.cfg, &profile, deadline) {
                Ok(res) => {
                    let cell = match res.single_mode {
                        Some((_, _, se)) if se > 0.0 => {
                            format!("{:.4}", res.milp.predicted_energy_uj / se)
                        }
                        _ => "n/a".to_string(),
                    };
                    let sv = res
                        .savings_vs_single()
                        .map_or("n/a".to_string(), |s| format!("{s:.3}"));
                    r.row([b.name().to_string(), format!("D{i}"), cell, sv]);
                }
                Err(_) => r.row([b.name().to_string(), format!("D{i}"), "infeasible".into()]),
            }
        }
    }
    r
}

/// Fig. 18: MILP solution time for different deadlines.
#[must_use]
pub fn fig18(ctx: &mut Context) -> Report {
    let mut r = Report::new("fig18", "MILP solution time vs deadline");
    r.note("wall-clock µs of branch-and-bound (CPLEX in the paper reported seconds at its scale)");
    r.columns(["benchmark", "deadline", "solve time (µs)", "B&B nodes"]);
    for b in Benchmark::all() {
        let (profile, _) = ctx.profile_of(b, 3);
        let machine = ctx.machine.clone();
        let bd = ctx.bench(b);
        let comp = compiler(&machine, 3, scaled_capacitance_uf(b, bd.scheme.t_slow_us));
        for i in 1..=5usize {
            let deadline = bd.scheme.deadline_us(i);
            match comp.compile(&bd.cfg, &profile, deadline) {
                Ok(res) => r.row([
                    b.name().to_string(),
                    format!("D{i}"),
                    format!("{:.0}", res.milp.solve_time.as_secs_f64() * 1e6),
                    res.milp.solve_stats.nodes.to_string(),
                ]),
                Err(_) => r.row([b.name().to_string(), format!("D{i}"), "infeasible".into()]),
            }
        }
    }
    r
}

/// Table 5: dynamic mode-transition counts per deadline (measured by
/// re-simulating the schedule).
#[must_use]
pub fn table5(ctx: &mut Context) -> Report {
    let mut r = Report::new("table5", "Dynamic mode transition counts");
    r.note("scale-typical c; measured by re-executing each schedule on the simulator");
    r.columns(["benchmark", "D1", "D2", "D3", "D4", "D5"]);
    for b in Benchmark::all() {
        let (profile, _) = ctx.profile_of(b, 3);
        let machine = ctx.machine.clone();
        let bd = ctx.bench(b);
        let comp = compiler(&machine, 3, scaled_capacitance_uf(b, bd.scheme.t_slow_us));
        let mut cells = vec![b.name().to_string()];
        for i in 1..=5usize {
            let deadline = bd.scheme.deadline_us(i);
            match comp.compile_and_validate(&bd.cfg, &bd.trace, &profile, deadline) {
                Ok(res) => cells.push(res.validated.expect("validated").transitions.to_string()),
                Err(_) => cells.push("inf.".to_string()),
            }
        }
        r.row(cells);
    }
    r
}

/// Table 6: MILP energy savings for 3/7/13 voltage levels × 5 deadlines.
#[must_use]
pub fn table6(ctx: &mut Context) -> Report {
    let mut r = Report::new(
        "table6",
        "Simulated (MILP) energy-saving ratios: benchmark × levels × deadline",
    );
    r.note("savings vs best single mode meeting the deadline; scale-typical c per benchmark");
    r.columns(["benchmark", "levels", "D1", "D2", "D3", "D4", "D5"]);
    for b in Benchmark::table7_set() {
        for levels in [3usize, 7, 13] {
            let (profile, _) = ctx.profile_of(b, levels);
            let machine = ctx.machine.clone();
            let bd = ctx.bench(b);
            let comp = compiler(
                &machine,
                levels,
                scaled_capacitance_uf(b, bd.scheme.t_slow_us),
            );
            let mut cells = vec![b.name().to_string(), levels.to_string()];
            for i in 1..=5usize {
                let deadline = bd.scheme.deadline_us(i);
                match comp.compile(&bd.cfg, &profile, deadline) {
                    Ok(res) => cells.push(
                        res.savings_vs_single()
                            .map_or("n/a".to_string(), |s| format!("{s:.2}")),
                    ),
                    Err(_) => cells.push("inf.".to_string()),
                }
            }
            r.row(cells);
        }
    }
    r
}

/// Ablation: the paper's edge-granularity formulation vs the
/// block-granularity formulation of prior work (§7 discussion), plus the
/// Saputra no-transition-cost baseline and the Hsu–Kremer heuristic.
#[must_use]
pub fn ablation_block_vs_edge(ctx: &mut Context) -> Report {
    let mut r = Report::new(
        "ablation",
        "Granularity & baseline ablation: edge-MILP vs block-MILP vs Saputra vs Hsu-Kremer",
    );
    r.note("deadline D2; scale-typical c; 3-level ladder; energies in µJ (predicted)");
    r.columns([
        "benchmark",
        "edge MILP",
        "block MILP",
        "Saputra (no trans. cost)",
        "Hsu-Kremer heuristic",
        "best single",
    ]);
    for b in Benchmark::all() {
        let (profile, _) = ctx.profile_of(b, 3);
        let bd = ctx.bench(b);
        let deadline = bd.scheme.deadline_us(2);
        let ladder = ladder_of(3);
        let tm =
            TransitionModel::with_capacitance_uf(scaled_capacitance_uf(b, bd.scheme.t_slow_us));
        let edge = MilpFormulation::new(&bd.cfg, &profile, &ladder, &tm, deadline).solve();
        let block = MilpFormulation::new(&bd.cfg, &profile, &ladder, &tm, deadline)
            .with_granularity(Granularity::Block)
            .solve();
        let sap = baseline::saputra(&bd.cfg, &profile, &ladder, deadline);
        let hk = baseline::hsu_kremer(&bd.cfg, &profile, &ladder, deadline, 2.0);
        let single = baseline::best_single_mode(&profile, &ladder, deadline);
        let fmt = |o: &Result<dvs_compiler::MilpOutcome, dvs_milp::MilpError>| match o {
            Ok(v) => format!("{:.1}", v.predicted_energy_uj),
            Err(_) => "inf.".to_string(),
        };
        let hk_energy = hk.map_or("inf.".to_string(), |s| {
            // Predicted energy of the heuristic schedule from the profile.
            let mut e = 0.0;
            for edge in bd.cfg.edges() {
                let m = s.edge_modes[edge.id.index()].index();
                e += profile.edge_count(edge.id) as f64 * profile.block_cost(edge.dst, m).energy_uj;
            }
            e += profile
                .block_cost(bd.cfg.entry(), s.initial.index())
                .energy_uj
                * profile.block_count(bd.cfg.entry()) as f64;
            format!("{e:.1}")
        });
        r.row([
            b.name().to_string(),
            fmt(&edge),
            fmt(&block),
            fmt(&sap),
            hk_energy,
            single.map_or("inf.".to_string(), |(_, _, e)| format!("{e:.1}")),
        ]);
    }
    r
}
