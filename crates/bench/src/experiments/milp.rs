//! MILP-pass experiments: Figs. 14, 15, 17, 18 and Tables 3, 5, 6, plus the
//! block-vs-edge granularity ablation.
//!
//! The grid-shaped experiments fan their independent cells out over the
//! context's job count (`Context::par_map` / `DvsCompiler::compile_grid`);
//! rows are assembled in benchmark order afterwards, so the reports are
//! byte-identical whatever the parallelism.

use crate::context::{ladder_of, scaled_capacitance_uf};
use crate::{Context, Report};
use dvs_compiler::{baseline, DvsCompiler, EdgeFilter, Granularity, MilpFormulation};
use dvs_sim::Machine;
use dvs_vf::TransitionModel;
use dvs_workloads::Benchmark;

fn compiler(machine: &Machine, levels: usize, cap_uf: f64) -> DvsCompiler {
    DvsCompiler::builder(
        machine.clone(),
        ladder_of(levels),
        TransitionModel::with_capacitance_uf(cap_uf),
    )
    .build()
    .expect("experiment compiler settings are valid")
}

/// The five Fig.-16 deadlines of `scheme`, in order D1..D5.
fn deadline_grid(scheme: &dvs_compiler::DeadlineScheme) -> Vec<f64> {
    (1..=5).map(|i| scheme.deadline_us(i)).collect()
}

/// Fig. 14: MILP solve-time speedup from edge filtering.
#[must_use]
pub fn fig14(ctx: &Context) -> Report {
    let mut r = Report::new("fig14", "Speedup in MILP solution time from edge filtering");
    r.note("scale-typical c per benchmark (paper 10 µF x runtime ratio); deadline D2");
    r.columns([
        "benchmark",
        "edges",
        "independent after filter",
        "t_all (µs)",
        "t_filtered (µs)",
        "speedup",
    ]);
    let rows = ctx.par_map(Benchmark::all().to_vec(), |_, b| {
        let (profile, _) = ctx.profile_of(b, 3);
        let bd = ctx.bench(b);
        let deadline = bd.scheme.deadline_us(2);
        let ladder = ladder_of(3);
        let tm =
            TransitionModel::with_capacitance_uf(scaled_capacitance_uf(b, bd.scheme.t_slow_us));

        let unfiltered = MilpFormulation::new(&bd.cfg, &profile, &ladder, &tm, deadline)
            .with_filter(EdgeFilter::identity(&bd.cfg))
            .solve();
        let filt = EdgeFilter::tail_rule(&bd.cfg, &profile, ladder.len() - 1, 0.02);
        let independent = filt.num_independent();
        let filtered = MilpFormulation::new(&bd.cfg, &profile, &ladder, &tm, deadline)
            .with_filter(filt)
            .solve();
        match (unfiltered, filtered) {
            (Ok(u), Ok(f)) => {
                let tu = u.solve_time.as_secs_f64() * 1e6;
                let tf = f.solve_time.as_secs_f64() * 1e6;
                vec![
                    b.name().to_string(),
                    bd.cfg.num_edges().to_string(),
                    independent.to_string(),
                    format!("{tu:.0}"),
                    format!("{tf:.0}"),
                    format!("{:.2}", tu / tf.max(1.0)),
                ]
            }
            _ => vec![b.name().to_string(), "infeasible".to_string()],
        }
    });
    r.rows.extend(rows);
    r
}

/// Table 3: minimum energy with the full edge set vs the filtered subset.
#[must_use]
pub fn table3(ctx: &Context) -> Report {
    let mut r = Report::new(
        "table3",
        "Energy consumption: MILP on all edges vs filtered subset (µJ)",
    );
    r.note("scale-typical c per benchmark (paper 10 µF x runtime ratio); deadline D2; deadlines met in both");
    r.columns([
        "benchmark",
        "All:Energy (µJ)",
        "Subset:Energy (µJ)",
        "delta (%)",
    ]);
    let rows = ctx.par_map(Benchmark::all().to_vec(), |_, b| {
        let (profile, _) = ctx.profile_of(b, 3);
        let bd = ctx.bench(b);
        let deadline = bd.scheme.deadline_us(2);
        let ladder = ladder_of(3);
        let tm =
            TransitionModel::with_capacitance_uf(scaled_capacitance_uf(b, bd.scheme.t_slow_us));
        let all = MilpFormulation::new(&bd.cfg, &profile, &ladder, &tm, deadline)
            .with_filter(EdgeFilter::identity(&bd.cfg))
            .solve();
        let filt = EdgeFilter::tail_rule(&bd.cfg, &profile, ladder.len() - 1, 0.02);
        let sub = MilpFormulation::new(&bd.cfg, &profile, &ladder, &tm, deadline)
            .with_filter(filt)
            .solve();
        match (all, sub) {
            (Ok(a), Ok(s)) => {
                let delta = 100.0 * (s.predicted_energy_uj - a.predicted_energy_uj)
                    / a.predicted_energy_uj.max(1e-12);
                vec![
                    b.name().to_string(),
                    format!("{:.1}", a.predicted_energy_uj),
                    format!("{:.1}", s.predicted_energy_uj),
                    format!("{delta:+.3}"),
                ]
            }
            _ => vec![b.name().to_string(), "infeasible".to_string()],
        }
    });
    r.rows.extend(rows);
    r
}

/// Fig. 15: impact of the transition cost (regulator capacitance sweep).
/// Each (benchmark, capacitance) cell is an independent compile, fanned out
/// over the context's job count.
#[must_use]
pub fn fig15(ctx: &Context) -> Report {
    let mut r = Report::new("fig15", "Impact of transition cost on minimum energy");
    r.note("energy normalized to the all-600MHz run; deadline D5; 3-level ladder");
    r.note("c labelled in paper-equivalent µF; actual values are scaled per benchmark to preserve the paper's transition-cost/runtime ratio");
    r.columns([
        "benchmark",
        "c (µF)",
        "normalized energy",
        "dynamic transitions",
    ]);
    let caps = [100.0, 10.0, 1.0, 0.1, 0.01];
    let cells: Vec<(Benchmark, f64)> = Benchmark::all()
        .into_iter()
        .flat_map(|b| caps.into_iter().map(move |c| (b, c)))
        .collect();
    let rows = ctx.par_map(cells, |_, (b, c)| {
        let (profile, _) = ctx.profile_of(b, 3);
        let bd = ctx.bench(b);
        let deadline = bd.scheme.deadline_us(5);
        let base_600 = profile.total_energy_at(1); // mode 1 = 600 MHz
        let scale = scaled_capacitance_uf(b, bd.scheme.t_slow_us) / 10.0;
        let comp = compiler(&ctx.machine, 3, c * scale);
        match comp.compile_and_validate(&bd.cfg, &bd.trace, &profile, deadline) {
            Ok(res) => {
                let v = res.validated.expect("validated");
                vec![
                    b.name().to_string(),
                    format!("{c}"),
                    format!("{:.4}", res.milp.predicted_energy_uj / base_600),
                    v.transitions.to_string(),
                ]
            }
            Err(_) => vec![b.name().to_string(), format!("{c}"), "infeasible".into()],
        }
    });
    r.rows.extend(rows);
    r
}

/// Fig. 17: impact of the deadline on optimized energy. Uses
/// [`DvsCompiler::compile_grid`] to solve one benchmark's five deadlines in
/// parallel over the shared immutable profile.
#[must_use]
pub fn fig17(ctx: &Context) -> Report {
    let mut r = Report::new("fig17", "Impact of deadline on energy");
    r.note("energy normalized to the best single-frequency setting meeting the deadline; scale-typical c");
    r.columns(["benchmark", "deadline", "normalized energy", "savings"]);
    let rows = ctx.par_map(Benchmark::all().to_vec(), |_, b| {
        let (profile, _) = ctx.profile_of(b, 3);
        let bd = ctx.bench(b);
        let comp = DvsCompiler::builder(
            ctx.machine.clone(),
            ladder_of(3),
            TransitionModel::with_capacitance_uf(scaled_capacitance_uf(b, bd.scheme.t_slow_us)),
        )
        .jobs(ctx.jobs())
        .build()
        .expect("experiment compiler settings are valid");
        let results = comp.compile_grid(&bd.cfg, &profile, &deadline_grid(&bd.scheme));
        results
            .into_iter()
            .zip(1..)
            .map(|(res, i)| match res {
                Ok(res) => {
                    let cell = match res.single_mode {
                        Some((_, _, se)) if se > 0.0 => {
                            format!("{:.4}", res.milp.predicted_energy_uj / se)
                        }
                        _ => "n/a".to_string(),
                    };
                    let sv = res
                        .savings_vs_single()
                        .map_or("n/a".to_string(), |s| format!("{s:.3}"));
                    vec![b.name().to_string(), format!("D{i}"), cell, sv]
                }
                Err(_) => vec![b.name().to_string(), format!("D{i}"), "infeasible".into()],
            })
            .collect::<Vec<_>>()
    });
    r.rows.extend(rows.into_iter().flatten());
    r
}

/// Fig. 18: MILP solution time for different deadlines.
#[must_use]
pub fn fig18(ctx: &Context) -> Report {
    let mut r = Report::new("fig18", "MILP solution time vs deadline");
    r.note("wall-clock µs of branch-and-bound (CPLEX in the paper reported seconds at its scale)");
    r.columns(["benchmark", "deadline", "solve time (µs)", "B&B nodes"]);
    let rows = ctx.par_map(Benchmark::all().to_vec(), |_, b| {
        let (profile, _) = ctx.profile_of(b, 3);
        let bd = ctx.bench(b);
        let comp = compiler(
            &ctx.machine,
            3,
            scaled_capacitance_uf(b, bd.scheme.t_slow_us),
        );
        (1..=5usize)
            .map(|i| {
                let deadline = bd.scheme.deadline_us(i);
                match comp.compile(&bd.cfg, &profile, deadline) {
                    Ok(res) => vec![
                        b.name().to_string(),
                        format!("D{i}"),
                        format!("{:.0}", res.milp.solve_time.as_secs_f64() * 1e6),
                        res.milp.solve_stats.nodes.to_string(),
                    ],
                    Err(_) => vec![b.name().to_string(), format!("D{i}"), "infeasible".into()],
                }
            })
            .collect::<Vec<_>>()
    });
    r.rows.extend(rows.into_iter().flatten());
    r
}

/// Table 5: dynamic mode-transition counts per deadline (measured by
/// re-simulating the schedule). Cells fan out per (benchmark, deadline).
#[must_use]
pub fn table5(ctx: &Context) -> Report {
    let mut r = Report::new("table5", "Dynamic mode transition counts");
    r.note("scale-typical c; measured by re-executing each schedule on the simulator");
    r.columns(["benchmark", "D1", "D2", "D3", "D4", "D5"]);
    let cells: Vec<(Benchmark, usize)> = Benchmark::all()
        .into_iter()
        .flat_map(|b| (1..=5usize).map(move |i| (b, i)))
        .collect();
    let counts = ctx.par_map(cells, |_, (b, i)| {
        let (profile, _) = ctx.profile_of(b, 3);
        let bd = ctx.bench(b);
        let comp = compiler(
            &ctx.machine,
            3,
            scaled_capacitance_uf(b, bd.scheme.t_slow_us),
        );
        let deadline = bd.scheme.deadline_us(i);
        match comp.compile_and_validate(&bd.cfg, &bd.trace, &profile, deadline) {
            Ok(res) => res.validated.expect("validated").transitions.to_string(),
            Err(_) => "inf.".to_string(),
        }
    });
    for (bi, b) in Benchmark::all().into_iter().enumerate() {
        let mut row = vec![b.name().to_string()];
        row.extend_from_slice(&counts[bi * 5..bi * 5 + 5]);
        r.rows.push(row);
    }
    r
}

/// Table 6: MILP energy savings for 3/7/13 voltage levels × 5 deadlines.
/// Each (benchmark, levels) pair is an independent parallel task whose five
/// deadline cells run through [`DvsCompiler::compile_grid`].
#[must_use]
pub fn table6(ctx: &Context) -> Report {
    let mut r = Report::new(
        "table6",
        "Simulated (MILP) energy-saving ratios: benchmark × levels × deadline",
    );
    r.note("savings vs best single mode meeting the deadline; scale-typical c per benchmark");
    r.columns(["benchmark", "levels", "D1", "D2", "D3", "D4", "D5"]);
    let tasks: Vec<(Benchmark, usize)> = Benchmark::table7_set()
        .into_iter()
        .flat_map(|b| [3usize, 7, 13].into_iter().map(move |l| (b, l)))
        .collect();
    let rows = ctx.par_map(tasks, |_, (b, levels)| {
        let (profile, _) = ctx.profile_of(b, levels);
        let bd = ctx.bench(b);
        let comp = compiler(
            &ctx.machine,
            levels,
            scaled_capacitance_uf(b, bd.scheme.t_slow_us),
        );
        let mut cells = vec![b.name().to_string(), levels.to_string()];
        for res in comp.compile_grid(&bd.cfg, &profile, &deadline_grid(&bd.scheme)) {
            match res {
                Ok(res) => cells.push(
                    res.savings_vs_single()
                        .map_or("n/a".to_string(), |s| format!("{s:.2}")),
                ),
                Err(_) => cells.push("inf.".to_string()),
            }
        }
        cells
    });
    r.rows.extend(rows);
    r
}

/// Ablation: the paper's edge-granularity formulation vs the
/// block-granularity formulation of prior work (§7 discussion), plus the
/// Saputra no-transition-cost baseline and the Hsu–Kremer heuristic.
#[must_use]
pub fn ablation_block_vs_edge(ctx: &Context) -> Report {
    let mut r = Report::new(
        "ablation",
        "Granularity & baseline ablation: edge-MILP vs block-MILP vs Saputra vs Hsu-Kremer",
    );
    r.note("deadline D2; scale-typical c; 3-level ladder; energies in µJ (predicted)");
    r.columns([
        "benchmark",
        "edge MILP",
        "block MILP",
        "Saputra (no trans. cost)",
        "Hsu-Kremer heuristic",
        "best single",
    ]);
    let rows = ctx.par_map(Benchmark::all().to_vec(), |_, b| {
        let (profile, _) = ctx.profile_of(b, 3);
        let bd = ctx.bench(b);
        let deadline = bd.scheme.deadline_us(2);
        let ladder = ladder_of(3);
        let tm =
            TransitionModel::with_capacitance_uf(scaled_capacitance_uf(b, bd.scheme.t_slow_us));
        let edge = MilpFormulation::new(&bd.cfg, &profile, &ladder, &tm, deadline).solve();
        let block = MilpFormulation::new(&bd.cfg, &profile, &ladder, &tm, deadline)
            .with_granularity(Granularity::Block)
            .solve();
        let sap = baseline::saputra(&bd.cfg, &profile, &ladder, deadline);
        let hk = baseline::hsu_kremer(&bd.cfg, &profile, &ladder, deadline, 2.0);
        let single = baseline::best_single_mode(&profile, &ladder, deadline);
        let fmt = |o: &Result<dvs_compiler::MilpOutcome, dvs_milp::MilpError>| match o {
            Ok(v) => format!("{:.1}", v.predicted_energy_uj),
            Err(_) => "inf.".to_string(),
        };
        let hk_energy = hk.map_or("inf.".to_string(), |s| {
            // Predicted energy of the heuristic schedule from the profile.
            let mut e = 0.0;
            for edge in bd.cfg.edges() {
                let m = s.edge_modes[edge.id.index()].index();
                e += profile.edge_count(edge.id) as f64 * profile.block_cost(edge.dst, m).energy_uj;
            }
            e += profile
                .block_cost(bd.cfg.entry(), s.initial.index())
                .energy_uj
                * profile.block_count(bd.cfg.entry()) as f64;
            format!("{e:.1}")
        });
        vec![
            b.name().to_string(),
            fmt(&edge),
            fmt(&block),
            fmt(&sap),
            hk_energy,
            single.map_or("inf.".to_string(), |(_, _, e)| format!("{e:.1}")),
        ]
    });
    r.rows.extend(rows);
    r
}
