//! One module per experiment family; see DESIGN.md §4 for the mapping
//! from experiment id to paper artifact.

pub mod analytic;
pub mod extensions;
pub mod milp;
pub mod multi;
pub mod setup;
