//! Fig. 19: sensitivity of the schedule to the profiling input, and the
//! multi-category average optimization (§6.4).

use crate::context::{ladder_of, scaled_capacitance_uf};
use crate::{Context, Report};
use dvs_compiler::{CategoryProfile, DeadlineScheme, MultiCategory};
use dvs_sim::{EdgeSchedule, ModeProfiler, Trace};
use dvs_vf::TransitionModel;
use dvs_workloads::{mpeg_input, Benchmark, MpegInput, MPEG_INPUTS};

/// Fig. 19: mpeg runtimes for each input under schedules optimized from
/// (a) the same input, (b) the `flwr` profile, (c) the `bbc` profile,
/// (d) the equal-weight average of `flwr` and `bbc`.
#[must_use]
pub fn fig19(ctx: &Context) -> Report {
    let machine = ctx.machine.clone();
    let b = Benchmark::MpegDecode;
    let cfg = b.build_cfg();
    let ladder = ladder_of(3);
    // Scale-typical capacitance for mpeg (see context::scaled_capacitance_uf).
    let probe_trace = b.trace(&cfg, &mpeg_input(MpegInput::Flwr).spec());
    let probe_scheme = dvs_compiler::DeadlineScheme::measure(&machine, &cfg, &probe_trace);
    let tm = TransitionModel::with_capacitance_uf(scaled_capacitance_uf(b, probe_scheme.t_slow_us));
    let profiler = ModeProfiler::new(machine.clone());

    // Traces, profiles and deadline schemes per input.
    let mut traces: Vec<(MpegInput, Trace)> = Vec::new();
    let mut profiles = std::collections::HashMap::new();
    let mut deadlines = std::collections::HashMap::new();
    for &k in &MPEG_INPUTS {
        let spec = mpeg_input(k).spec();
        let trace = b.trace(&cfg, &spec);
        let (profile, _) = profiler.profile(&cfg, &trace, &ladder);
        let scheme = DeadlineScheme::measure(&machine, &cfg, &trace);
        deadlines.insert(k.name(), scheme.deadline_us(3));
        profiles.insert(k.name(), profile);
        traces.push((k, trace));
    }

    // Schedule builders per strategy.
    let schedule_for = |profile_input: MpegInput| -> Option<EdgeSchedule> {
        let p = &profiles[profile_input.name()];
        let d = deadlines[profile_input.name()];
        dvs_compiler::MilpFormulation::new(&cfg, p, &ladder, &tm, d)
            .solve()
            .ok()
            .map(|o| o.schedule)
    };
    let avg_schedule = || -> Option<EdgeSchedule> {
        let cats: Vec<CategoryProfile> = [MpegInput::Flwr, MpegInput::Bbc]
            .iter()
            .map(|k| CategoryProfile {
                weight: 0.5,
                profile: profiles[k.name()].clone(),
                deadline_us: deadlines[k.name()],
            })
            .collect();
        MultiCategory::new(&cfg, &cats, &ladder, &tm)
            .solve()
            .ok()
            .map(|o| o.schedule)
    };
    // Naive alternative: blend the two profiles into one and run the plain
    // single-category MILP against the tighter of the two deadlines.
    let merged_schedule = || -> Option<EdgeSchedule> {
        let merged = dvs_ir::Profile::weighted_merge(&[
            (0.5, &profiles[MpegInput::Flwr.name()]),
            (0.5, &profiles[MpegInput::Bbc.name()]),
        ]);
        let d = deadlines[MpegInput::Flwr.name()].min(deadlines[MpegInput::Bbc.name()]);
        dvs_compiler::MilpFormulation::new(&cfg, &merged, &ladder, &tm, d)
            .solve()
            .ok()
            .map(|o| o.schedule)
    };

    let mut r = Report::new(
        "fig19",
        "Dependence of program runtime on the input used for MILP profiling",
    );
    r.note("mpeg/decode; runtimes in µs under each schedule; deadline = each input's D3");
    r.note("categories: no-B-frames = {100b, bbc}; 2-B-frames = {flwr, cact}");
    r.columns([
        "input",
        "deadline (µs)",
        "opt. for self",
        "opt. for flwr",
        "opt. for bbc",
        "multi-category MILP",
        "merged profile",
    ]);
    r.note("'multi-category' = §4.3 weighted objective with both deadlines; 'merged' =");
    r.note("naive profile blending + single-category MILP at the tighter deadline");

    let sched_flwr = schedule_for(MpegInput::Flwr);
    let sched_bbc = schedule_for(MpegInput::Bbc);
    let sched_avg = avg_schedule();
    let sched_merged = merged_schedule();
    for (k, trace) in &traces {
        let self_sched = schedule_for(*k);
        let time = |s: &Option<EdgeSchedule>| -> String {
            match s {
                Some(s) => {
                    let run = machine.run_scheduled(&cfg, trace, &ladder, s, &tm);
                    format!("{:.1}", run.time_us)
                }
                None => "inf.".to_string(),
            }
        };
        r.row([
            k.name().to_string(),
            format!("{:.1}", deadlines[k.name()]),
            time(&self_sched),
            time(&sched_flwr),
            time(&sched_bbc),
            time(&sched_avg),
            time(&sched_merged),
        ]);
    }
    r
}
