//! Configuration and methodology tables: Tables 2, 4 and 7.

use crate::{Context, Report};
use dvs_compiler::analyze_params;
use dvs_sim::SimConfig;
use dvs_workloads::Benchmark;

/// Table 2: the simulated machine configuration.
#[must_use]
pub fn table2() -> Report {
    let c = SimConfig::default();
    let mut r = Report::new("table2", "Configuration parameters for CPU simulation");
    r.columns(["parameter", "value"]);
    r.row(["RUU size", &format!("{} instructions", c.ruu_size)]);
    r.row(["LSQ size", &format!("{} instructions", c.lsq_size)]);
    r.row([
        "Fetch queue size",
        &format!("{} instructions", c.fetch_queue),
    ]);
    r.row([
        "Fetch width",
        &format!("{} instructions/cycle", c.fetch_width),
    ]);
    r.row([
        "Decode width",
        &format!("{} instructions/cycle", c.decode_width),
    ]);
    r.row([
        "Issue width",
        &format!("{} instructions/cycle", c.issue_width),
    ]);
    r.row([
        "Commit width",
        &format!("{} instructions/cycle", c.commit_width),
    ]);
    r.row([
        "Functional units".to_string(),
        format!(
            "{} int ALU, {} int mul/div, {} FP add, {} FP mul, {} FP div/sqrt",
            c.int_alus, c.int_mult, c.fp_adders, c.fp_mult, c.fp_div
        ),
    ]);
    r.row([
        "Branch predictor".to_string(),
        format!(
            "combined: bimodal {}-entry; 2-level {}-entry, {}-bit history; {}-entry chooser",
            c.predictor.bimodal_entries,
            c.predictor.two_level_entries,
            c.predictor.history_bits,
            c.predictor.chooser_entries
        ),
    ]);
    r.row([
        "BTB".to_string(),
        format!(
            "{}-entry, {}-way",
            c.predictor.btb_entries, c.predictor.btb_ways
        ),
    ]);
    r.row([
        "L1 data cache".to_string(),
        format!(
            "{}K, {}-way (LRU), {}B blocks, {}-cycle latency",
            c.l1d.size_bytes / 1024,
            c.l1d.ways,
            c.l1d.block_bytes,
            c.l1_latency
        ),
    ]);
    r.row(["L1 instruction cache", "same as L1 data cache"]);
    r.row([
        "L2".to_string(),
        format!(
            "unified, {}K, {}-way (LRU), {}B blocks, {}-cycle latency",
            c.l2.size_bytes / 1024,
            c.l2.ways,
            c.l2.block_bytes,
            c.l2_latency
        ),
    ]);
    r.row([
        "TLBs".to_string(),
        format!("{}-entry, {}-byte pages", c.tlb_entries, c.page_bytes),
    ]);
    r.row([
        "Main memory".to_string(),
        format!(
            "asynchronous, {} ns service time",
            c.mem_latency_us * 1000.0
        ),
    ]);
    r
}

/// Table 4: reference runtimes at 200/600/800 MHz and the five chosen
/// deadlines per benchmark (µs; the paper reports ms at its ~100x scale).
#[must_use]
pub fn table4(ctx: &Context) -> Report {
    let mut r = Report::new(
        "table4",
        "Deadline boundaries and chosen deadlines per benchmark (µs)",
    );
    r.note("the paper's Table 4 is in ms on unscaled inputs; shapes (ratios, orderings) match");
    r.columns([
        "benchmark",
        "t@200MHz",
        "t@600MHz",
        "t@800MHz",
        "D1",
        "D2",
        "D3",
        "D4",
        "D5",
    ]);
    for b in Benchmark::all() {
        let s = ctx.bench(b).scheme;
        let d = s.deadlines_us();
        r.row([
            b.name().to_string(),
            format!("{:.1}", s.t_slow_us),
            format!("{:.1}", s.t_mid_us),
            format!("{:.1}", s.t_fast_us),
            format!("{:.1}", d[0]),
            format!("{:.1}", d[1]),
            format!("{:.1}", d[2]),
            format!("{:.1}", d[3]),
            format!("{:.1}", d[4]),
        ]);
    }
    r
}

/// Table 7: simulated program parameters for the analytical model.
#[must_use]
pub fn table7(ctx: &Context) -> Report {
    let mut r = Report::new("table7", "Simulation results of program parameters");
    r.note("cycle counts in Kcycles at the 800 MHz reference; tinvariant absolute");
    r.columns([
        "benchmark",
        "Ncache (Kcycles)",
        "Noverlap (Kcycles)",
        "Ndependent (Kcycles)",
        "tinvariant (µs)",
    ]);
    for b in Benchmark::table7_set() {
        let (_, runs) = ctx.profile_of(b, 3);
        let p = analyze_params(&runs);
        r.row([
            b.name().to_string(),
            format!("{:.1}", p.n_cache / 1000.0),
            format!("{:.1}", p.n_overlap / 1000.0),
            format!("{:.1}", p.n_dependent / 1000.0),
            format!("{:.1}", p.t_invariant_us),
        ]);
    }
    r
}
