//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation.
//!
//! Each experiment is a function over a shared [`Context`] (which caches
//! CFGs, traces, per-mode profiles and deadline schemes per benchmark) and
//! returns a [`Report`] — a titled block of formatted rows that the `repro`
//! binary prints and writes under `results/`.
//!
//! Run everything:
//!
//! ```text
//! cargo run -p dvs-bench --release -- all
//! ```
//!
//! or a single experiment by id (`table1`, `fig15`, ...). The mapping from
//! experiment id to paper artifact is in DESIGN.md §4; paper-vs-measured
//! numbers are catalogued in EXPERIMENTS.md.

#![forbid(unsafe_code)]

mod context;
pub mod experiments;
mod report;
pub mod timing;

pub use context::{paper_t200_us, scaled_capacitance_uf, BenchData, Context};
pub use report::{ExperimentStats, Report};

/// All experiment ids in paper order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "table1",
    "table2", "fig14", "table3", "fig15", "table4", "fig17", "fig18", "table5", "fig19", "table6",
    "table7", "ablation", "paths", "gating", "hoisting", "hopping", "inputs", "simstats",
    "prefetch", "verify",
];

/// Runs one experiment by id.
///
/// The context is shared immutably: its caches are internally
/// synchronized, so independent experiments may run concurrently on one
/// `Context` (the `repro` binary does exactly that under `--jobs`).
///
/// # Errors
///
/// Returns an error string for unknown ids; individual experiments report
/// infeasibilities inside their tables rather than failing.
pub fn run_experiment(ctx: &Context, id: &str) -> Result<Report, String> {
    match id {
        "fig2" => Ok(experiments::analytic::fig2()),
        "fig3" => Ok(experiments::analytic::fig3()),
        "fig4" => Ok(experiments::analytic::fig4()),
        "fig5" => Ok(experiments::analytic::fig5()),
        "fig6" => Ok(experiments::analytic::fig6()),
        "fig7" => Ok(experiments::analytic::fig7()),
        "fig8" => Ok(experiments::analytic::fig8()),
        "fig9" => Ok(experiments::analytic::fig9()),
        "fig10" => Ok(experiments::analytic::fig10()),
        "fig11" => Ok(experiments::analytic::fig11()),
        "table1" => Ok(experiments::analytic::table1(ctx)),
        "table2" => Ok(experiments::setup::table2()),
        "table4" => Ok(experiments::setup::table4(ctx)),
        "table7" => Ok(experiments::setup::table7(ctx)),
        "fig14" => Ok(experiments::milp::fig14(ctx)),
        "table3" => Ok(experiments::milp::table3(ctx)),
        "fig15" => Ok(experiments::milp::fig15(ctx)),
        "fig17" => Ok(experiments::milp::fig17(ctx)),
        "fig18" => Ok(experiments::milp::fig18(ctx)),
        "table5" => Ok(experiments::milp::table5(ctx)),
        "table6" => Ok(experiments::milp::table6(ctx)),
        "fig19" => Ok(experiments::multi::fig19(ctx)),
        "ablation" => Ok(experiments::milp::ablation_block_vs_edge(ctx)),
        "paths" => Ok(experiments::extensions::paths(ctx)),
        "gating" => Ok(experiments::extensions::gating(ctx)),
        "hoisting" => Ok(experiments::extensions::hoisting(ctx)),
        "hopping" => Ok(experiments::extensions::interval_hopping(ctx)),
        "inputs" => Ok(experiments::extensions::inputs(ctx)),
        "simstats" => Ok(experiments::extensions::stats(ctx)),
        "prefetch" => Ok(experiments::extensions::prefetch(ctx)),
        "verify" => Ok(experiments::extensions::verify(ctx)),
        other => Err(format!("unknown experiment id `{other}`")),
    }
}
