use dvs_obs::MetricsSnapshot;
use std::fmt::Write as _;

/// Wall-clock time plus the observability snapshot for one experiment run
/// under the `repro` harness.
#[derive(Debug, Clone)]
pub struct ExperimentStats {
    /// Experiment id (`"table6"`, `"fig15"`, ...).
    pub id: String,
    /// Registered obs domain name the experiment ran under
    /// (`"bench.table6"`, ...). Carried into `stats.csv` so rows from
    /// concurrent bench runs never alias rows produced by other
    /// subsystems (e.g. `serve.loadtest`).
    pub domain: String,
    /// Wall-clock seconds the experiment took.
    pub wall_s: f64,
    /// Metrics accumulated while the experiment ran (the harness resets
    /// the collector between experiments, so these are per-experiment
    /// deltas).
    pub metrics: MetricsSnapshot,
}

/// Counter columns carried into the harness stats report, in order.
const STAT_COUNTERS: &[&str] = &[
    "sim.runs",
    "sim.cycles",
    "milp.solves",
    "milp.pivots",
    "milp.bnb_nodes",
    "filter.edges_tied",
    "emit.mode_switches",
];

/// A titled experiment result: header lines plus an aligned table.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id (`"table6"`, `"fig15"`, ...).
    pub id: String,
    /// One-line title quoting the paper artifact.
    pub title: String,
    /// Free-form commentary lines (parameters, caveats).
    pub notes: Vec<String>,
    /// Column headers.
    pub columns: Vec<String>,
    /// Table rows.
    pub rows: Vec<Vec<String>>,
}

impl Report {
    /// Starts an empty report.
    #[must_use]
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Report {
            id: id.into(),
            title: title.into(),
            notes: Vec::new(),
            columns: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Adds a commentary line.
    pub fn note(&mut self, line: impl Into<String>) {
        self.notes.push(line.into());
    }

    /// Sets the column headers.
    pub fn columns<S: Into<String>>(&mut self, cols: impl IntoIterator<Item = S>) {
        self.columns = cols.into_iter().map(Into::into).collect();
    }

    /// Appends a row.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Renders the aligned text form.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "== {} — {} ==", self.id, self.title);
        for n in &self.notes {
            let _ = writeln!(s, "   {n}");
        }
        if self.columns.is_empty() && self.rows.is_empty() {
            return s;
        }
        let ncol = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.columns.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncol];
        let measure = |widths: &mut Vec<usize>, row: &[String]| {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        };
        measure(&mut widths, &self.columns);
        for r in &self.rows {
            measure(&mut widths, r);
        }
        let render_row = |row: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map_or("", String::as_str);
                let _ = write!(line, "{cell:>w$}  ", w = w);
            }
            line.trim_end().to_string()
        };
        if !self.columns.is_empty() {
            let _ = writeln!(s, "{}", render_row(&self.columns));
            let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
            let _ = writeln!(s, "{}", "-".repeat(total.min(120)));
        }
        for r in &self.rows {
            let _ = writeln!(s, "{}", render_row(r));
        }
        s
    }

    /// Builds the cross-experiment harness report: one row per experiment
    /// with its wall-clock time and headline pipeline counters, giving the
    /// bench trajectory a perf baseline (written to `results/stats.csv`).
    #[must_use]
    pub fn harness_stats(rows: &[ExperimentStats]) -> Report {
        let mut r = Report::new(
            "stats",
            "Per-experiment wall-clock and pipeline metrics (repro harness)",
        );
        r.note("counters are per-experiment deltas; wall_s is harness wall-clock");
        let mut cols = vec![
            "experiment".to_string(),
            "domain".to_string(),
            "wall_s".to_string(),
        ];
        cols.extend(STAT_COUNTERS.iter().map(|c| (*c).to_string()));
        cols.push("milp.wall_us".to_string());
        r.columns(cols);
        for e in rows {
            let mut cells = vec![e.id.clone(), e.domain.clone(), format!("{:.3}", e.wall_s)];
            cells.extend(
                STAT_COUNTERS
                    .iter()
                    .map(|c| e.metrics.counter(c).to_string()),
            );
            cells.push(
                e.metrics
                    .gauge("pass.solve.wall_us")
                    .map_or_else(|| "-".to_string(), |v| format!("{v:.1}")),
            );
            r.rows.push(cells);
        }
        r
    }

    /// Renders a CSV form (notes as `#` comments).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "# {} — {}", self.id, self.title);
        for n in &self.notes {
            let _ = writeln!(s, "# {n}");
        }
        let esc = |c: &String| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        };
        if !self.columns.is_empty() {
            let _ = writeln!(
                s,
                "{}",
                self.columns.iter().map(esc).collect::<Vec<_>>().join(",")
            );
        }
        for r in &self.rows {
            let _ = writeln!(s, "{}", r.iter().map(esc).collect::<Vec<_>>().join(","));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut r = Report::new("t", "demo");
        r.note("a note");
        r.columns(["name", "value"]);
        r.row(["x", "1"]);
        r.row(["longer", "22"]);
        let out = r.render();
        assert!(out.contains("== t — demo =="));
        assert!(out.contains("a note"));
        assert!(out.contains("name"));
        assert!(out.contains("longer"));
        // Aligned: both value cells end at the same column.
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines.len() >= 5);
    }

    #[test]
    fn harness_stats_has_one_row_per_experiment() {
        let rows = vec![
            ExperimentStats {
                id: "table6".into(),
                domain: "bench.table6".into(),
                wall_s: 1.25,
                metrics: MetricsSnapshot::default(),
            },
            ExperimentStats {
                id: "fig15".into(),
                domain: "bench.fig15".into(),
                wall_s: 0.5,
                metrics: MetricsSnapshot::default(),
            },
        ];
        let r = Report::harness_stats(&rows);
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.columns[0], "experiment");
        assert_eq!(r.columns[1], "domain");
        assert!(r.columns.iter().any(|c| c == "sim.cycles"));
        assert!(r.columns.iter().any(|c| c == "milp.pivots"));
        let csv = r.to_csv();
        assert!(csv.contains("table6,bench.table6,1.250"));
        assert!(csv.contains("fig15,bench.fig15,0.500"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut r = Report::new("t", "demo");
        r.columns(["a,b", "c"]);
        r.row(["1", "he said \"hi\""]);
        let csv = r.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }
}
