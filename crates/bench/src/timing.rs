//! Minimal manual benchmark harness used by the `benches/` targets (the
//! container has no external benchmark framework available).
//!
//! Methodology: a few warm-up runs, then `samples` timed batches of
//! `iters_per_sample` calls each; the reported statistic is the **minimum**
//! batch mean, which is the standard low-noise estimator for short
//! deterministic workloads.

use std::time::Instant;

/// One benchmark measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name.
    pub name: String,
    /// Minimum per-call wall time across batches, in µs.
    pub min_us: f64,
    /// Mean per-call wall time across batches, in µs.
    pub mean_us: f64,
    /// Total calls timed.
    pub calls: u64,
}

impl Measurement {
    /// `name: min X µs, mean Y µs (N calls)` — one line per measurement.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{:<32} min {:>12.3} µs   mean {:>12.3} µs   ({} calls)",
            self.name, self.min_us, self.mean_us, self.calls
        )
    }
}

/// Times `f`, returning per-call statistics. The closure's return value is
/// folded into a black-box sink so the optimizer cannot elide the work.
pub fn bench<T>(
    name: &str,
    samples: usize,
    iters_per_sample: u64,
    mut f: impl FnMut() -> T,
) -> Measurement {
    // Warm-up: populate caches, fault in pages.
    for _ in 0..2 {
        sink(&f());
    }
    let mut batch_means = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters_per_sample {
            sink(&f());
        }
        let us = start.elapsed().as_secs_f64() * 1e6;
        batch_means.push(us / iters_per_sample as f64);
    }
    let min_us = batch_means.iter().copied().fold(f64::INFINITY, f64::min);
    let mean_us = batch_means.iter().sum::<f64>() / batch_means.len() as f64;
    Measurement {
        name: name.to_owned(),
        min_us,
        mean_us,
        calls: samples as u64 * iters_per_sample,
    }
}

/// An opaque read of `v` the optimizer must assume is observed.
pub fn sink<T>(v: &T) {
    // A volatile-ish read through a raw pointer would need unsafe; instead
    // route the reference through a function whose body the optimizer cannot
    // see into from the caller's perspective.
    #[inline(never)]
    fn opaque<T>(_: &T) {}
    opaque(v);
}
