//! The optimality-certificate data model and its JSON round trip.
//!
//! A [`Certificate`] is self-contained: it carries a [`Snapshot`] of the
//! lowered LP (minimization form), the incumbent assignment, the claimed
//! objective with its declared tolerances, and a derivation tree whose
//! leaves prove bounds ([`CertNode::Bound`]) or infeasibility
//! ([`CertNode::Farkas`]) and whose interior nodes are disjunctions over
//! SOS1 groups or single-variable dichotomies. The checker in
//! [`crate::checker`] consumes nothing else — in particular it never sees
//! the solver that produced the proof.
//!
//! Every `f64` is serialized through the shortest-round-trip renderer in
//! [`dvs_obs::json`], so encode → parse is bit-exact for finite values;
//! infinities (legal only in variable bounds) are spelled `"inf"` /
//! `"-inf"` because JSON numbers cannot carry them.

use dvs_obs::json::Json;

/// One variable of the lowered LP: bounds plus integrality.
#[derive(Debug, Clone, PartialEq)]
pub struct CertVar {
    /// Lower bound (may be `-inf`).
    pub lb: f64,
    /// Upper bound (may be `inf`).
    pub ub: f64,
    /// `true` when the variable must take an integer value.
    pub integer: bool,
}

/// Row sense of the lowered LP (`Ge` is normalized away by lowering).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertRowKind {
    /// `Σ aᵢxᵢ ≤ rhs`.
    Le,
    /// `Σ aᵢxᵢ = rhs`.
    Eq,
}

/// One constraint row: sparse terms against a right-hand side.
#[derive(Debug, Clone, PartialEq)]
pub struct CertRow {
    /// Row sense.
    pub kind: CertRowKind,
    /// Right-hand side.
    pub rhs: f64,
    /// Sparse `(var, coefficient)` terms.
    pub terms: Vec<(usize, f64)>,
}

/// The lowered LP the proof talks about, in minimization form.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Variables, index-aligned with the original model.
    pub vars: Vec<CertVar>,
    /// Dense objective coefficients (minimization sense).
    pub obj: Vec<f64>,
    /// Constant added to `c·x` to obtain the reported objective.
    pub obj_offset: f64,
    /// Constraint rows.
    pub rows: Vec<CertRow>,
    /// `true` when the original model maximized and lowering negated the
    /// objective; purely provenance, the proof itself is always about the
    /// minimization form.
    pub flipped: bool,
}

/// A node of the derivation tree.
#[derive(Debug, Clone, PartialEq)]
pub enum CertNode {
    /// Leaf: the dual vector `y` proves, via the exact Lagrangian bound
    /// `L(y) = obj_offset + Σᵢ yᵢ·rhsᵢ + Σⱼ min(dⱼlⱼ, dⱼuⱼ)` with
    /// `dⱼ = cⱼ − (Aᵀy)ⱼ`, that no point in this node's box beats the
    /// claimed objective by more than the declared tolerance.
    Bound {
        /// Sparse `(row, multiplier)` duals; `≤ 0` required on `Le` rows.
        duals: Vec<(usize, f64)>,
    },
    /// Leaf: the same Lagrangian with a zero objective; a strictly
    /// positive value proves the node's box contains no feasible point.
    Farkas {
        /// Sparse `(row, multiplier)` Farkas ray.
        duals: Vec<(usize, f64)>,
    },
    /// Disjunction over an SOS1 group backed by an `Σ x = 1` equality
    /// row: child 0 fixes every variable in `zero_a` to zero, child 1
    /// fixes every variable in `zero_b`. Valid when `zero_a ∪ zero_b`
    /// partitions the row's support (integer, non-negative variables),
    /// because the single variable equal to 1 lies in exactly one half.
    Sos1 {
        /// Index of the justifying equality row.
        row: usize,
        /// Variables fixed to zero in child 0.
        zero_a: Vec<usize>,
        /// Variables fixed to zero in child 1.
        zero_b: Vec<usize>,
        /// Exactly two children (checked, not assumed).
        kids: Vec<CertNode>,
    },
    /// Dichotomy on one integer variable: child 0 adds `x ≤ floor`,
    /// child 1 adds `x ≥ floor + 1`.
    Split {
        /// The branching variable.
        var: usize,
        /// Integral split point.
        floor: f64,
        /// Exactly two children (checked, not assumed).
        kids: Vec<CertNode>,
    },
}

/// A complete, self-contained optimality proof.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// Which prover emitted the proof (`"bnb"` or `"continuous"`);
    /// provenance only, the checker treats both identically.
    pub backend: String,
    /// The lowered LP the proof is about.
    pub snapshot: Snapshot,
    /// The claimed-optimal assignment.
    pub incumbent: Vec<f64>,
    /// Claimed objective of `incumbent` (minimization form, offset
    /// included).
    pub objective: f64,
    /// Bound slack: every leaf must prove `≥ objective − tolerance`.
    pub tolerance: f64,
    /// Row/bound feasibility slack for the incumbent (scaled by
    /// `max(1, |rhs|)` per row).
    pub feas_tol: f64,
    /// Integrality slack for the incumbent.
    pub int_tol: f64,
    /// Allowed gap between the exact incumbent objective and `objective`
    /// (scaled by `max(1, |objective|)`).
    pub obj_tol: f64,
    /// The derivation tree.
    pub tree: CertNode,
    /// Free-form provenance (node counts, solver options…); never
    /// checked.
    pub meta: Json,
}

/// Encodes an `f64` for the certificate: finite values as JSON numbers
/// (bit-exact through the shortest-round-trip writer), infinities as
/// strings.
fn num(v: f64) -> Json {
    if v.is_finite() {
        Json::Num(v)
    } else if v.is_nan() {
        Json::Str("nan".into())
    } else if v > 0.0 {
        Json::Str("inf".into())
    } else {
        Json::Str("-inf".into())
    }
}

/// Inverse of [`num`]; `None` for anything else (including `"nan"`, which
/// a well-formed certificate never contains).
fn f64_of(j: &Json) -> Option<f64> {
    match j {
        Json::Num(v) if v.is_finite() => Some(*v),
        Json::Str(s) if s == "inf" => Some(f64::INFINITY),
        Json::Str(s) if s == "-inf" => Some(f64::NEG_INFINITY),
        _ => None,
    }
}

fn sparse_to_json(terms: &[(usize, f64)]) -> Json {
    Json::Arr(
        terms
            .iter()
            .map(|&(i, v)| Json::Arr(vec![Json::from(i as u64), num(v)]))
            .collect(),
    )
}

fn sparse_from_json(j: &Json, what: &str) -> Result<Vec<(usize, f64)>, String> {
    let arr = j.as_arr().ok_or_else(|| format!("{what}: not an array"))?;
    arr.iter()
        .map(|e| {
            let pair = e.as_arr().filter(|p| p.len() == 2);
            let pair = pair.ok_or_else(|| format!("{what}: entry is not a pair"))?;
            let i = pair[0]
                .as_u64()
                .ok_or_else(|| format!("{what}: bad index"))? as usize;
            let v = f64_of(&pair[1]).ok_or_else(|| format!("{what}: bad value"))?;
            Ok((i, v))
        })
        .collect()
}

fn indices_to_json(ix: &[usize]) -> Json {
    Json::Arr(ix.iter().map(|&i| Json::from(i as u64)).collect())
}

fn indices_from_json(j: &Json, what: &str) -> Result<Vec<usize>, String> {
    let arr = j.as_arr().ok_or_else(|| format!("{what}: not an array"))?;
    arr.iter()
        .map(|e| {
            e.as_u64()
                .map(|v| v as usize)
                .ok_or_else(|| format!("{what}: bad index"))
        })
        .collect()
}

impl CertNode {
    fn to_json(&self) -> Json {
        match self {
            CertNode::Bound { duals } => Json::Obj(vec![
                ("t".into(), Json::from("bound")),
                ("y".into(), sparse_to_json(duals)),
            ]),
            CertNode::Farkas { duals } => Json::Obj(vec![
                ("t".into(), Json::from("farkas")),
                ("y".into(), sparse_to_json(duals)),
            ]),
            CertNode::Sos1 {
                row,
                zero_a,
                zero_b,
                kids,
            } => Json::Obj(vec![
                ("t".into(), Json::from("sos1")),
                ("row".into(), Json::from(*row as u64)),
                ("z0".into(), indices_to_json(zero_a)),
                ("z1".into(), indices_to_json(zero_b)),
                (
                    "kids".into(),
                    Json::Arr(kids.iter().map(CertNode::to_json).collect()),
                ),
            ]),
            CertNode::Split { var, floor, kids } => Json::Obj(vec![
                ("t".into(), Json::from("split")),
                ("var".into(), Json::from(*var as u64)),
                ("floor".into(), num(*floor)),
                (
                    "kids".into(),
                    Json::Arr(kids.iter().map(CertNode::to_json).collect()),
                ),
            ]),
        }
    }

    fn from_json(j: &Json) -> Result<CertNode, String> {
        let t = j
            .get("t")
            .and_then(Json::as_str)
            .ok_or("node: missing tag")?;
        let kids_of = |j: &Json| -> Result<Vec<CertNode>, String> {
            j.get("kids")
                .and_then(Json::as_arr)
                .ok_or("node: missing kids")?
                .iter()
                .map(CertNode::from_json)
                .collect()
        };
        match t {
            "bound" => Ok(CertNode::Bound {
                duals: sparse_from_json(j.get("y").ok_or("bound: missing y")?, "bound duals")?,
            }),
            "farkas" => Ok(CertNode::Farkas {
                duals: sparse_from_json(j.get("y").ok_or("farkas: missing y")?, "farkas duals")?,
            }),
            "sos1" => Ok(CertNode::Sos1 {
                row: j
                    .get("row")
                    .and_then(Json::as_u64)
                    .ok_or("sos1: missing row")? as usize,
                zero_a: indices_from_json(j.get("z0").ok_or("sos1: missing z0")?, "sos1 z0")?,
                zero_b: indices_from_json(j.get("z1").ok_or("sos1: missing z1")?, "sos1 z1")?,
                kids: kids_of(j)?,
            }),
            "split" => Ok(CertNode::Split {
                var: j
                    .get("var")
                    .and_then(Json::as_u64)
                    .ok_or("split: missing var")? as usize,
                floor: f64_of(j.get("floor").ok_or("split: missing floor")?)
                    .ok_or("split: bad floor")?,
                kids: kids_of(j)?,
            }),
            other => Err(format!("node: unknown tag `{other}`")),
        }
    }
}

impl Snapshot {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "vars".into(),
                Json::Arr(
                    self.vars
                        .iter()
                        .map(|v| {
                            Json::Arr(vec![
                                num(v.lb),
                                num(v.ub),
                                Json::from(if v.integer { "i" } else { "c" }),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "obj".into(),
                Json::Arr(self.obj.iter().map(|&c| num(c)).collect()),
            ),
            ("obj_offset".into(), num(self.obj_offset)),
            (
                "rows".into(),
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| {
                            Json::Arr(vec![
                                Json::from(match r.kind {
                                    CertRowKind::Le => "le",
                                    CertRowKind::Eq => "eq",
                                }),
                                num(r.rhs),
                                sparse_to_json(&r.terms),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("flipped".into(), Json::from(self.flipped)),
        ])
    }

    fn from_json(j: &Json) -> Result<Snapshot, String> {
        let vars = j
            .get("vars")
            .and_then(Json::as_arr)
            .ok_or("snapshot: missing vars")?
            .iter()
            .map(|v| {
                let t = v.as_arr().filter(|t| t.len() == 3);
                let t = t.ok_or("snapshot var: not a triple")?;
                Ok(CertVar {
                    lb: f64_of(&t[0]).ok_or("snapshot var: bad lb")?,
                    ub: f64_of(&t[1]).ok_or("snapshot var: bad ub")?,
                    integer: match t[2].as_str() {
                        Some("i") => true,
                        Some("c") => false,
                        _ => return Err("snapshot var: bad kind".to_string()),
                    },
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let obj = j
            .get("obj")
            .and_then(Json::as_arr)
            .ok_or("snapshot: missing obj")?
            .iter()
            .map(|c| f64_of(c).ok_or_else(|| "snapshot: bad obj coefficient".to_string()))
            .collect::<Result<Vec<_>, String>>()?;
        let rows = j
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or("snapshot: missing rows")?
            .iter()
            .map(|r| {
                let t = r.as_arr().filter(|t| t.len() == 3);
                let t = t.ok_or("snapshot row: not a triple")?;
                Ok(CertRow {
                    kind: match t[0].as_str() {
                        Some("le") => CertRowKind::Le,
                        Some("eq") => CertRowKind::Eq,
                        _ => return Err("snapshot row: bad kind".to_string()),
                    },
                    rhs: f64_of(&t[1]).ok_or("snapshot row: bad rhs")?,
                    terms: sparse_from_json(&t[2], "snapshot row terms")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Snapshot {
            vars,
            obj,
            obj_offset: f64_of(j.get("obj_offset").ok_or("snapshot: missing obj_offset")?)
                .ok_or("snapshot: bad obj_offset")?,
            rows,
            flipped: j
                .get("flipped")
                .and_then(Json::as_bool)
                .ok_or("snapshot: missing flipped")?,
        })
    }
}

impl Certificate {
    /// Canonical JSON rendering. Deterministic: equal certificates encode
    /// to equal bytes.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("format".into(), Json::from("dvs-cert.v1")),
            ("backend".into(), Json::from(self.backend.as_str())),
            ("snapshot".into(), self.snapshot.to_json()),
            (
                "incumbent".into(),
                Json::Arr(self.incumbent.iter().map(|&x| num(x)).collect()),
            ),
            ("objective".into(), num(self.objective)),
            ("tolerance".into(), num(self.tolerance)),
            ("feas_tol".into(), num(self.feas_tol)),
            ("int_tol".into(), num(self.int_tol)),
            ("obj_tol".into(), num(self.obj_tol)),
            ("tree".into(), self.tree.to_json()),
            ("meta".into(), self.meta.clone()),
        ])
    }

    /// Compact byte encoding (the canonical JSON, single line). This is
    /// what `certificate_bytes` measures and what the serve cache stores.
    #[must_use]
    pub fn encode(&self) -> String {
        self.to_json().dump()
    }

    /// Parses a certificate back from [`Certificate::to_json`] output.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first structural problem.
    /// Structural only — semantic validation is [`crate::check`]'s job.
    pub fn from_json(j: &Json) -> Result<Certificate, String> {
        match j.get("format").and_then(Json::as_str) {
            Some("dvs-cert.v1") => {}
            Some(other) => return Err(format!("unknown certificate format `{other}`")),
            None => return Err("missing certificate format".to_string()),
        }
        let scalar = |key: &str| -> Result<f64, String> {
            f64_of(j.get(key).ok_or_else(|| format!("missing {key}"))?)
                .ok_or_else(|| format!("bad {key}"))
        };
        Ok(Certificate {
            backend: j
                .get("backend")
                .and_then(Json::as_str)
                .ok_or("missing backend")?
                .to_string(),
            snapshot: Snapshot::from_json(j.get("snapshot").ok_or("missing snapshot")?)?,
            incumbent: j
                .get("incumbent")
                .and_then(Json::as_arr)
                .ok_or("missing incumbent")?
                .iter()
                .map(|x| f64_of(x).ok_or_else(|| "bad incumbent value".to_string()))
                .collect::<Result<Vec<_>, String>>()?,
            objective: scalar("objective")?,
            tolerance: scalar("tolerance")?,
            feas_tol: scalar("feas_tol")?,
            int_tol: scalar("int_tol")?,
            obj_tol: scalar("obj_tol")?,
            tree: CertNode::from_json(j.get("tree").ok_or("missing tree")?)?,
            meta: j.get("meta").cloned().unwrap_or(Json::Null),
        })
    }

    /// Parses a certificate from its [`Certificate::encode`] bytes.
    ///
    /// # Errors
    ///
    /// JSON syntax errors or structural problems, as a message.
    pub fn decode(text: &str) -> Result<Certificate, String> {
        let j = Json::parse(text).map_err(|e| e.to_string())?;
        Certificate::from_json(&j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Certificate {
        Certificate {
            backend: "bnb".into(),
            snapshot: Snapshot {
                vars: vec![
                    CertVar {
                        lb: 0.0,
                        ub: 1.0,
                        integer: true,
                    },
                    CertVar {
                        lb: 0.0,
                        ub: f64::INFINITY,
                        integer: false,
                    },
                ],
                obj: vec![0.1, 2.5e-3],
                obj_offset: -1.25,
                rows: vec![
                    CertRow {
                        kind: CertRowKind::Eq,
                        rhs: 1.0,
                        terms: vec![(0, 1.0)],
                    },
                    CertRow {
                        kind: CertRowKind::Le,
                        rhs: 7.75,
                        terms: vec![(0, 3.0), (1, 1.0)],
                    },
                ],
                flipped: false,
            },
            incumbent: vec![1.0, 0.0],
            objective: -1.15,
            tolerance: 1e-6,
            feas_tol: 1e-6,
            int_tol: 1e-6,
            obj_tol: 1e-7,
            tree: CertNode::Sos1 {
                row: 0,
                zero_a: vec![0],
                zero_b: vec![],
                kids: vec![
                    CertNode::Farkas {
                        duals: vec![(0, 1.0)],
                    },
                    CertNode::Bound {
                        duals: vec![(1, -0.25), (0, 0.1)],
                    },
                ],
            },
            meta: Json::obj([("nodes", Json::from(3_u64))]),
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let c = sample();
        let text = c.encode();
        let back = Certificate::decode(&text).unwrap();
        assert_eq!(back, c);
        // And re-encoding is byte-identical (determinism).
        assert_eq!(back.encode(), text);
    }

    #[test]
    fn infinities_survive_the_round_trip() {
        let c = sample();
        let back = Certificate::decode(&c.encode()).unwrap();
        assert_eq!(back.snapshot.vars[1].ub, f64::INFINITY);
    }

    #[test]
    fn awkward_f64s_round_trip_bit_exactly() {
        let mut c = sample();
        c.objective = 0.1 + 0.2; // not 0.3
        c.snapshot.obj[0] = 5e-324; // subnormal
        c.snapshot.rows[1].rhs = 1e300;
        let back = Certificate::decode(&c.encode()).unwrap();
        assert_eq!(back.objective.to_bits(), c.objective.to_bits());
        assert_eq!(back.snapshot.obj[0].to_bits(), c.snapshot.obj[0].to_bits());
        assert_eq!(
            back.snapshot.rows[1].rhs.to_bits(),
            c.snapshot.rows[1].rhs.to_bits()
        );
    }

    #[test]
    fn malformed_documents_are_rejected_with_messages() {
        for (text, needle) in [
            ("{}", "format"),
            (r#"{"format": "dvs-cert.v2"}"#, "unknown"),
            ("not json", "JSON"),
        ] {
            let err = Certificate::decode(text).unwrap_err();
            assert!(err.contains(needle), "`{err}` should mention `{needle}`");
        }
    }
}
