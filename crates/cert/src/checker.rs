//! The independent certificate checker.
//!
//! [`check`] replays a [`Certificate`]'s derivation tree in exact dyadic
//! arithmetic and accepts only when every step holds:
//!
//! 1. the incumbent is feasible (rows and bounds, within the declared
//!    `feas_tol`), integral where required, and its exactly-recomputed
//!    objective matches the claimed one within `obj_tol`;
//! 2. every branch node is a sound disjunction — an SOS1 split backed by
//!    a `Σx = 1` equality over non-negative integer variables, or an
//!    integer dichotomy — so the leaves jointly cover every integral
//!    assignment;
//! 3. every leaf proves its box: a `Bound` leaf's dual vector must give an
//!    exact Lagrangian value `≥ objective − tolerance`, a `Farkas` leaf's
//!    ray must prove the box empty.
//!
//! Together these say: no integral point anywhere in the root box beats
//! the incumbent by more than `tolerance`. The checker trusts nothing
//! about how the proof was found; duals are checked by the *unconditional*
//! weak-duality bound (any sign-correct multiplier vector yields a valid
//! bound), so no exact dual-feasibility assumptions about the producing
//! simplex are needed.

use crate::certificate::{CertNode, CertRowKind, Certificate};
use crate::dyadic::Dyadic;
use std::cmp::Ordering;

/// Why a certificate was rejected. Each code names a distinct failure
/// class so fuzzers can assert that a given corruption is caught for the
/// right reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectCode {
    /// Structurally broken: out-of-range indices, length mismatches,
    /// non-finite coefficients, negative tolerances.
    Malformed,
    /// The disjunction tree does not cover the integral space: a branch
    /// node with the wrong child count, an unsound SOS1 partition, or a
    /// non-integral split point.
    CoverageGap,
    /// A `Le` row carries a positive multiplier, which weak duality does
    /// not permit.
    DualSignViolation,
    /// A `Bound` leaf's exact Lagrangian value falls short of
    /// `objective − tolerance` (or is `−∞` along an unbounded direction).
    BoundTooWeak,
    /// A `Farkas` leaf's ray fails to prove its box infeasible.
    FarkasNotPositive,
    /// The incumbent violates a row or a variable bound beyond
    /// `feas_tol`.
    IncumbentInfeasible,
    /// The incumbent is fractional on an integer variable beyond
    /// `int_tol`.
    IncumbentNotIntegral,
    /// The exactly-recomputed incumbent objective disagrees with the
    /// claimed objective beyond `obj_tol`.
    ObjectiveMismatch,
}

impl RejectCode {
    /// Stable kebab-case name (used in reports and test assertions).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RejectCode::Malformed => "malformed",
            RejectCode::CoverageGap => "coverage-gap",
            RejectCode::DualSignViolation => "dual-sign-violation",
            RejectCode::BoundTooWeak => "bound-too-weak",
            RejectCode::FarkasNotPositive => "farkas-not-positive",
            RejectCode::IncumbentInfeasible => "incumbent-infeasible",
            RejectCode::IncumbentNotIntegral => "incumbent-not-integral",
            RejectCode::ObjectiveMismatch => "objective-mismatch",
        }
    }
}

impl std::fmt::Display for RejectCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A rejection: the class plus a human-readable locus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reject {
    /// The failure class.
    pub code: RejectCode,
    /// Where and why, for humans.
    pub detail: String,
}

/// The checker's verdict plus proof-shape statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckReport {
    /// `None` when the certificate is accepted.
    pub reject: Option<Reject>,
    /// Leaves proved by a dual bound.
    pub bound_leaves: usize,
    /// Leaves proved infeasible by a Farkas ray.
    pub farkas_leaves: usize,
    /// Leaves whose box was already empty (vacuously covered).
    pub empty_leaves: usize,
    /// Interior disjunction nodes.
    pub branch_nodes: usize,
    /// Deepest leaf, root = 0.
    pub max_depth: usize,
}

impl CheckReport {
    /// `true` when the proof was accepted.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.reject.is_none()
    }

    /// Deterministic JSON rendering for CLIs and caches.
    #[must_use]
    pub fn to_json(&self) -> dvs_obs::json::Json {
        use dvs_obs::json::Json;
        Json::Obj(vec![
            ("ok".into(), Json::from(self.ok())),
            (
                "reject_code".into(),
                self.reject
                    .as_ref()
                    .map_or(Json::Null, |r| Json::from(r.code.as_str())),
            ),
            (
                "reject_detail".into(),
                self.reject
                    .as_ref()
                    .map_or(Json::Null, |r| Json::from(r.detail.as_str())),
            ),
            ("bound_leaves".into(), Json::from(self.bound_leaves as u64)),
            (
                "farkas_leaves".into(),
                Json::from(self.farkas_leaves as u64),
            ),
            ("empty_leaves".into(), Json::from(self.empty_leaves as u64)),
            ("branch_nodes".into(), Json::from(self.branch_nodes as u64)),
            ("max_depth".into(), Json::from(self.max_depth as u64)),
        ])
    }
}

/// Checks a certificate. Never panics on hostile input; the first
/// violation found wins.
#[must_use]
pub fn check(cert: &Certificate) -> CheckReport {
    let mut ck = Checker::new(cert);
    let reject = ck.run().err();
    CheckReport {
        reject,
        bound_leaves: ck.bound_leaves,
        farkas_leaves: ck.farkas_leaves,
        empty_leaves: ck.empty_leaves,
        branch_nodes: ck.branch_nodes,
        max_depth: ck.max_depth,
    }
}

fn dy(v: f64) -> Dyadic {
    // Callers guarantee finiteness (structural validation runs first).
    Dyadic::from_f64(v).expect("finite value")
}

struct Checker<'a> {
    cert: &'a Certificate,
    /// Current node box (mutated along the walk, undone on return).
    lb: Vec<f64>,
    ub: Vec<f64>,
    /// Objective coefficients as dyadics, converted once.
    obj_dy: Vec<Dyadic>,
    /// Every leaf must prove at least this value.
    target: Dyadic,
    bound_leaves: usize,
    farkas_leaves: usize,
    empty_leaves: usize,
    branch_nodes: usize,
    max_depth: usize,
}

fn reject(code: RejectCode, detail: impl Into<String>) -> Reject {
    Reject {
        code,
        detail: detail.into(),
    }
}

impl<'a> Checker<'a> {
    fn new(cert: &'a Certificate) -> Self {
        Checker {
            cert,
            lb: cert.snapshot.vars.iter().map(|v| v.lb).collect(),
            ub: cert.snapshot.vars.iter().map(|v| v.ub).collect(),
            obj_dy: Vec::new(),
            target: Dyadic::zero(),
            bound_leaves: 0,
            farkas_leaves: 0,
            empty_leaves: 0,
            branch_nodes: 0,
            max_depth: 0,
        }
    }

    fn run(&mut self) -> Result<(), Reject> {
        self.validate_structure()?;
        self.obj_dy = self.cert.snapshot.obj.iter().map(|&c| dy(c)).collect();
        self.target = dy(self.cert.objective).sub(&dy(self.cert.tolerance));
        self.check_incumbent()?;
        let tree = self.cert.tree.clone();
        self.walk(&tree, 0)
    }

    fn validate_structure(&self) -> Result<(), Reject> {
        let s = &self.cert.snapshot;
        let n = s.vars.len();
        if s.obj.len() != n {
            return Err(reject(
                RejectCode::Malformed,
                format!("objective has {} coefficients for {} vars", s.obj.len(), n),
            ));
        }
        if self.cert.incumbent.len() != n {
            return Err(reject(
                RejectCode::Malformed,
                format!(
                    "incumbent has {} values for {} vars",
                    self.cert.incumbent.len(),
                    n
                ),
            ));
        }
        for (j, v) in s.vars.iter().enumerate() {
            if v.lb.is_nan() || v.ub.is_nan() {
                return Err(reject(RejectCode::Malformed, format!("var {j}: NaN bound")));
            }
        }
        for (j, &c) in s.obj.iter().enumerate() {
            if !c.is_finite() {
                return Err(reject(
                    RejectCode::Malformed,
                    format!("objective coefficient {j} not finite"),
                ));
            }
        }
        if !s.obj_offset.is_finite() {
            return Err(reject(RejectCode::Malformed, "objective offset not finite"));
        }
        for (i, row) in s.rows.iter().enumerate() {
            if !row.rhs.is_finite() {
                return Err(reject(
                    RejectCode::Malformed,
                    format!("row {i}: rhs not finite"),
                ));
            }
            for &(j, a) in &row.terms {
                if j >= n {
                    return Err(reject(
                        RejectCode::Malformed,
                        format!("row {i}: var index {j} out of range"),
                    ));
                }
                if !a.is_finite() {
                    return Err(reject(
                        RejectCode::Malformed,
                        format!("row {i}: coefficient on var {j} not finite"),
                    ));
                }
            }
        }
        for (&x, name) in [
            (&self.cert.objective, "objective"),
            (&self.cert.tolerance, "tolerance"),
            (&self.cert.feas_tol, "feas_tol"),
            (&self.cert.int_tol, "int_tol"),
            (&self.cert.obj_tol, "obj_tol"),
        ] {
            if !x.is_finite() {
                return Err(reject(RejectCode::Malformed, format!("{name} not finite")));
            }
        }
        for (&x, name) in [
            (&self.cert.tolerance, "tolerance"),
            (&self.cert.feas_tol, "feas_tol"),
            (&self.cert.int_tol, "int_tol"),
            (&self.cert.obj_tol, "obj_tol"),
        ] {
            if x < 0.0 {
                return Err(reject(RejectCode::Malformed, format!("{name} negative")));
            }
        }
        for (j, &x) in self.cert.incumbent.iter().enumerate() {
            if !x.is_finite() {
                return Err(reject(
                    RejectCode::Malformed,
                    format!("incumbent value {j} not finite"),
                ));
            }
        }
        Ok(())
    }

    fn check_incumbent(&self) -> Result<(), Reject> {
        let s = &self.cert.snapshot;
        let x = &self.cert.incumbent;
        for (j, v) in s.vars.iter().enumerate() {
            if v.integer {
                let frac = (x[j] - x[j].round()).abs();
                if frac > self.cert.int_tol {
                    return Err(reject(
                        RejectCode::IncumbentNotIntegral,
                        format!("var {j}: value {} is {frac} from integral", x[j]),
                    ));
                }
            }
            if x[j] < v.lb - self.cert.feas_tol || x[j] > v.ub + self.cert.feas_tol {
                return Err(reject(
                    RejectCode::IncumbentInfeasible,
                    format!("var {j}: value {} outside [{}, {}]", x[j], v.lb, v.ub),
                ));
            }
        }
        // Row activities, exactly.
        for (i, row) in s.rows.iter().enumerate() {
            let mut act = Dyadic::zero();
            for &(j, a) in &row.terms {
                act = act.add(&dy(a).mul(&dy(x[j])));
            }
            let tol = self.cert.feas_tol * row.rhs.abs().max(1.0);
            let hi = dy(row.rhs).add(&dy(tol));
            if act.cmp_val(&hi) == Ordering::Greater {
                return Err(reject(
                    RejectCode::IncumbentInfeasible,
                    format!(
                        "row {i}: activity {} exceeds rhs {}",
                        act.to_f64_lossy(),
                        row.rhs
                    ),
                ));
            }
            if row.kind == CertRowKind::Eq {
                let lo = dy(row.rhs).sub(&dy(tol));
                if act.cmp_val(&lo) == Ordering::Less {
                    return Err(reject(
                        RejectCode::IncumbentInfeasible,
                        format!(
                            "row {i}: activity {} below rhs {}",
                            act.to_f64_lossy(),
                            row.rhs
                        ),
                    ));
                }
            }
        }
        // Exact objective vs the claim.
        let mut obj = dy(s.obj_offset);
        for (j, &c) in s.obj.iter().enumerate() {
            obj = obj.add(&dy(c).mul(&dy(x[j])));
        }
        let tol = self.cert.obj_tol * self.cert.objective.abs().max(1.0);
        let diff = obj.sub(&dy(self.cert.objective));
        let bound = dy(tol);
        if diff.cmp_val(&bound) == Ordering::Greater
            || diff.neg_val().cmp_val(&bound) == Ordering::Greater
        {
            return Err(reject(
                RejectCode::ObjectiveMismatch,
                format!(
                    "exact incumbent objective {} vs claimed {} (allowed {tol})",
                    obj.to_f64_lossy(),
                    self.cert.objective
                ),
            ));
        }
        Ok(())
    }

    fn box_is_empty(&self) -> bool {
        self.lb.iter().zip(&self.ub).any(|(l, u)| l > u)
    }

    fn walk(&mut self, node: &CertNode, depth: usize) -> Result<(), Reject> {
        self.max_depth = self.max_depth.max(depth);
        match node {
            CertNode::Bound { duals } => {
                if self.box_is_empty() {
                    self.empty_leaves += 1;
                    return Ok(());
                }
                self.bound_leaves += 1;
                let val = self.lagrangian(duals, true)?;
                if val.cmp_val(&self.target) == Ordering::Less {
                    return Err(reject(
                        RejectCode::BoundTooWeak,
                        format!(
                            "leaf at depth {depth}: bound {} < objective {} - tolerance {}",
                            val.to_f64_lossy(),
                            self.cert.objective,
                            self.cert.tolerance
                        ),
                    ));
                }
                Ok(())
            }
            CertNode::Farkas { duals } => {
                if self.box_is_empty() {
                    self.empty_leaves += 1;
                    return Ok(());
                }
                self.farkas_leaves += 1;
                let val = self.lagrangian(duals, false)?;
                if val.signum() <= 0 {
                    return Err(reject(
                        RejectCode::FarkasNotPositive,
                        format!(
                            "leaf at depth {depth}: Farkas value {} not positive",
                            val.to_f64_lossy()
                        ),
                    ));
                }
                Ok(())
            }
            CertNode::Sos1 {
                row,
                zero_a,
                zero_b,
                kids,
            } => {
                self.branch_nodes += 1;
                if kids.len() != 2 {
                    return Err(reject(
                        RejectCode::CoverageGap,
                        format!(
                            "sos1 node at depth {depth}: {} children (disjunction truncated)",
                            kids.len()
                        ),
                    ));
                }
                self.validate_sos1(*row, zero_a, zero_b, depth)?;
                for (zero, kid) in [(zero_a, &kids[0]), (zero_b, &kids[1])] {
                    let saved: Vec<(usize, f64)> = zero.iter().map(|&j| (j, self.ub[j])).collect();
                    for &j in zero {
                        self.ub[j] = self.ub[j].min(0.0);
                    }
                    let r = self.walk(kid, depth + 1);
                    for (j, u) in saved {
                        self.ub[j] = u;
                    }
                    r?;
                }
                Ok(())
            }
            CertNode::Split { var, floor, kids } => {
                self.branch_nodes += 1;
                if kids.len() != 2 {
                    return Err(reject(
                        RejectCode::CoverageGap,
                        format!(
                            "split node at depth {depth}: {} children (disjunction truncated)",
                            kids.len()
                        ),
                    ));
                }
                let j = *var;
                if j >= self.cert.snapshot.vars.len() {
                    return Err(reject(
                        RejectCode::Malformed,
                        format!("split node: var {j} out of range"),
                    ));
                }
                if !self.cert.snapshot.vars[j].integer {
                    return Err(reject(
                        RejectCode::CoverageGap,
                        format!("split on continuous var {j} covers no integral disjunction"),
                    ));
                }
                if !floor.is_finite() || floor.fract() != 0.0 {
                    return Err(reject(
                        RejectCode::CoverageGap,
                        format!("split on var {j}: point {floor} not integral"),
                    ));
                }
                let (old_u, old_l) = (self.ub[j], self.lb[j]);
                self.ub[j] = old_u.min(*floor);
                let r = self.walk(&kids[0], depth + 1);
                self.ub[j] = old_u;
                r?;
                self.lb[j] = old_l.max(floor + 1.0);
                let r = self.walk(&kids[1], depth + 1);
                self.lb[j] = old_l;
                r
            }
        }
    }

    /// An SOS1 split over row `r` is sound when the row reads `Σ xⱼ = 1`
    /// over non-negative integer variables (so exactly one support
    /// variable is 1 at any integral point) and no support variable sits
    /// in both zero-halves (so that one variable survives in at least one
    /// child).
    fn validate_sos1(
        &self,
        r: usize,
        zero_a: &[usize],
        zero_b: &[usize],
        depth: usize,
    ) -> Result<(), Reject> {
        let s = &self.cert.snapshot;
        let Some(row) = s.rows.get(r) else {
            return Err(reject(
                RejectCode::Malformed,
                format!("sos1 node: row {r} out of range"),
            ));
        };
        let fail = |msg: String| Err(reject(RejectCode::CoverageGap, msg));
        if row.kind != CertRowKind::Eq {
            return fail(format!("sos1 node at depth {depth}: row {r} is not =="));
        }
        if row.rhs != 1.0 {
            return fail(format!("sos1 node at depth {depth}: row {r} rhs != 1"));
        }
        let mut support = std::collections::BTreeSet::new();
        for &(j, a) in &row.terms {
            if a != 1.0 {
                return fail(format!("sos1 row {r}: coefficient on var {j} != 1"));
            }
            if !s.vars[j].integer {
                return fail(format!("sos1 row {r}: var {j} not integer"));
            }
            if self.lb[j] < 0.0 {
                return fail(format!("sos1 row {r}: var {j} can be negative"));
            }
            support.insert(j);
        }
        for &j in zero_a.iter().chain(zero_b) {
            if !support.contains(&j) {
                return fail(format!("sos1 row {r}: zeroed var {j} outside the group"));
            }
        }
        let za: std::collections::BTreeSet<usize> = zero_a.iter().copied().collect();
        if let Some(&j) = zero_b.iter().find(|j| za.contains(j)) {
            return fail(format!(
                "sos1 row {r}: var {j} zeroed in both halves (its point is uncovered)"
            ));
        }
        Ok(())
    }

    /// The exact Lagrangian `L(y)` over the current box: with the
    /// objective for `Bound` leaves, with `c = 0` for `Farkas` leaves.
    fn lagrangian(&self, duals: &[(usize, f64)], with_obj: bool) -> Result<Dyadic, Reject> {
        let s = &self.cert.snapshot;
        let n = s.vars.len();
        let mut d: Vec<Dyadic> = if with_obj {
            self.obj_dy.clone()
        } else {
            vec![Dyadic::zero(); n]
        };
        let mut sum = if with_obj {
            dy(s.obj_offset)
        } else {
            Dyadic::zero()
        };
        for &(i, y) in duals {
            let Some(row) = s.rows.get(i) else {
                return Err(reject(
                    RejectCode::Malformed,
                    format!("dual on row {i}: out of range"),
                ));
            };
            if !y.is_finite() {
                return Err(reject(
                    RejectCode::Malformed,
                    format!("dual on row {i}: not finite"),
                ));
            }
            if row.kind == CertRowKind::Le && y > 0.0 {
                return Err(reject(
                    RejectCode::DualSignViolation,
                    format!("dual {y} > 0 on <= row {i}"),
                ));
            }
            let yd = dy(y);
            sum = sum.add(&yd.mul(&dy(row.rhs)));
            for &(j, a) in &row.terms {
                d[j] = d[j].sub(&yd.mul(&dy(a)));
            }
        }
        let weak_code = if with_obj {
            RejectCode::BoundTooWeak
        } else {
            RejectCode::FarkasNotPositive
        };
        for (j, dj) in d.iter().enumerate() {
            let sign = dj.signum();
            if sign == 0 {
                continue;
            }
            let b = if sign > 0 { self.lb[j] } else { self.ub[j] };
            if b.is_infinite() {
                return Err(reject(
                    weak_code,
                    format!("reduced cost on var {j} points along an unbounded direction"),
                ));
            }
            sum = sum.add(&dj.mul(&dy(b)));
        }
        Ok(sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certificate::{CertRow, CertVar, Snapshot};
    use dvs_obs::json::Json;

    /// min x0 + 2·x1  s.t.  x0 + x1 = 1,  x binary. Optimum: x = (1, 0),
    /// objective 1.
    fn tiny() -> Certificate {
        Certificate {
            backend: "bnb".into(),
            snapshot: Snapshot {
                vars: vec![
                    CertVar {
                        lb: 0.0,
                        ub: 1.0,
                        integer: true,
                    },
                    CertVar {
                        lb: 0.0,
                        ub: 1.0,
                        integer: true,
                    },
                ],
                obj: vec![1.0, 2.0],
                obj_offset: 0.0,
                rows: vec![CertRow {
                    kind: CertRowKind::Eq,
                    rhs: 1.0,
                    terms: vec![(0, 1.0), (1, 1.0)],
                }],
                flipped: false,
            },
            incumbent: vec![1.0, 0.0],
            objective: 1.0,
            tolerance: 1e-9,
            feas_tol: 1e-6,
            int_tol: 1e-6,
            obj_tol: 1e-7,
            // Root bound: y = 1 on the equality row gives d = (0, 1),
            // L = 1·1 + 0·lb0 + 1·lb1 = 1 ≥ 1 − tol.
            tree: CertNode::Bound {
                duals: vec![(0, 1.0)],
            },
            meta: Json::Null,
        }
    }

    #[test]
    fn accepts_a_valid_root_bound() {
        let r = check(&tiny());
        assert!(r.ok(), "{:?}", r.reject);
        assert_eq!(r.bound_leaves, 1);
    }

    #[test]
    fn accepts_a_valid_sos1_tree_with_farkas_leaf() {
        let mut c = tiny();
        c.tree = CertNode::Sos1 {
            row: 0,
            zero_a: vec![0],
            zero_b: vec![1],
            kids: vec![
                // Child 0 fixes x0 = 0: box forces x1 = 1, objective 2;
                // same dual still proves ≥ 1.
                CertNode::Bound {
                    duals: vec![(0, 1.0)],
                },
                CertNode::Bound {
                    duals: vec![(0, 1.0)],
                },
            ],
        };
        assert!(check(&c).ok());
        // A branch that zeroes the whole group makes child 0 infeasible;
        // the Farkas ray y = 1 proves it: L₀ = 1 > 0.
        c.tree = CertNode::Sos1 {
            row: 0,
            zero_a: vec![0, 1],
            zero_b: vec![],
            kids: vec![
                CertNode::Farkas {
                    duals: vec![(0, 1.0)],
                },
                CertNode::Bound {
                    duals: vec![(0, 1.0)],
                },
            ],
        };
        let r = check(&c);
        assert!(r.ok(), "{:?}", r.reject);
        assert_eq!(r.farkas_leaves, 1);
    }

    #[test]
    fn rejects_weak_bounds() {
        let mut c = tiny();
        c.tree = CertNode::Bound {
            duals: vec![(0, 0.5)],
        };
        // y = 0.5: d = (0.5, 1.5), L = 0.5 < 1 − tol.
        let r = check(&c);
        assert_eq!(r.reject.unwrap().code, RejectCode::BoundTooWeak);
    }

    #[test]
    fn rejects_positive_dual_on_le_row() {
        let mut c = tiny();
        c.snapshot.rows[0].kind = CertRowKind::Le;
        c.tree = CertNode::Bound {
            duals: vec![(0, 1.0)],
        };
        let r = check(&c);
        assert_eq!(r.reject.unwrap().code, RejectCode::DualSignViolation);
    }

    #[test]
    fn rejects_truncated_disjunctions() {
        let mut c = tiny();
        c.tree = CertNode::Sos1 {
            row: 0,
            zero_a: vec![0],
            zero_b: vec![1],
            kids: vec![CertNode::Bound {
                duals: vec![(0, 1.0)],
            }],
        };
        let r = check(&c);
        assert_eq!(r.reject.unwrap().code, RejectCode::CoverageGap);
    }

    #[test]
    fn rejects_overlapping_zero_halves() {
        let mut c = tiny();
        c.tree = CertNode::Sos1 {
            row: 0,
            zero_a: vec![0, 1],
            zero_b: vec![1],
            kids: vec![
                CertNode::Farkas {
                    duals: vec![(0, 1.0)],
                },
                CertNode::Bound {
                    duals: vec![(0, 1.0)],
                },
            ],
        };
        let r = check(&c);
        assert_eq!(r.reject.unwrap().code, RejectCode::CoverageGap);
    }

    #[test]
    fn rejects_infeasible_incumbent() {
        let mut c = tiny();
        c.incumbent = vec![1.0, 1.0]; // sum = 2 != 1
        let r = check(&c);
        assert_eq!(r.reject.unwrap().code, RejectCode::IncumbentInfeasible);
    }

    #[test]
    fn rejects_fractional_incumbent() {
        let mut c = tiny();
        c.incumbent = vec![0.5, 0.5];
        let r = check(&c);
        assert_eq!(r.reject.unwrap().code, RejectCode::IncumbentNotIntegral);
    }

    #[test]
    fn rejects_stale_objective() {
        let mut c = tiny();
        c.objective = 0.75; // incumbent really costs 1.0
        let r = check(&c);
        assert_eq!(r.reject.unwrap().code, RejectCode::ObjectiveMismatch);
    }

    #[test]
    fn rejects_unbounded_direction() {
        let mut c = tiny();
        c.snapshot.vars[1].ub = f64::INFINITY;
        c.snapshot.vars[1].integer = false;
        // y = 2 makes d1 = 2 − 2 = 0 fine, but y = 3 makes d1 = −1 with
        // ub = ∞ → bound is −∞.
        c.tree = CertNode::Bound {
            duals: vec![(0, 3.0)],
        };
        let r = check(&c);
        assert_eq!(r.reject.unwrap().code, RejectCode::BoundTooWeak);
    }

    #[test]
    fn rejects_structural_damage() {
        let mut c = tiny();
        c.incumbent.pop();
        assert_eq!(check(&c).reject.unwrap().code, RejectCode::Malformed);

        let mut c = tiny();
        c.snapshot.rows[0].terms[0].0 = 99;
        assert_eq!(check(&c).reject.unwrap().code, RejectCode::Malformed);

        let mut c = tiny();
        c.tolerance = -1.0;
        assert_eq!(check(&c).reject.unwrap().code, RejectCode::Malformed);
    }

    #[test]
    fn empty_boxes_are_vacuously_covered() {
        let mut c = tiny();
        // Fixing both halves of a split to zero in sequence can empty the
        // box; an empty box needs no proof at all.
        c.tree = CertNode::Split {
            var: 0,
            floor: 0.0,
            kids: vec![
                CertNode::Sos1 {
                    row: 0,
                    zero_a: vec![1],
                    zero_b: vec![0],
                    kids: vec![
                        // x0 ≤ 0 and x1 = 0: infeasible; prove via Farkas.
                        CertNode::Farkas {
                            duals: vec![(0, 1.0)],
                        },
                        // x0 = 0 (already ≤ 0): x1 = 1 is the only point.
                        CertNode::Bound {
                            duals: vec![(0, 1.0)],
                        },
                    ],
                },
                // x0 ≥ 1: x0 = 1, x1 = 0 — the incumbent's cell.
                CertNode::Bound {
                    duals: vec![(0, 1.0)],
                },
            ],
        };
        let r = check(&c);
        assert!(r.ok(), "{:?}", r.reject);
    }
}
