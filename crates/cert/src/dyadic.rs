//! Exact dyadic-rational arithmetic over `f64` inputs.
//!
//! Every finite `f64` is exactly `±mant × 2^exp` with an integer mantissa,
//! so sums and products of `f64`-derived values stay inside the dyadic
//! rationals — no denominators other than powers of two ever appear. The
//! certificate checker only needs `+`, `−`, `×` and comparison (the
//! Lagrangian bound is linear in its inputs and never divides), which lets
//! [`Dyadic`] be far simpler than a full `BigRational`: an arbitrary-width
//! integer mantissa plus a binary exponent.
//!
//! `i128` is not wide enough: a product of three 53-bit mantissas already
//! needs ~159 bits, and row-activity sums accumulate thousands of such
//! terms, so the mantissa is a little-endian `Vec<u64>` limb string.

use std::cmp::Ordering;

/// An exact dyadic rational `(-1)^neg · mant · 2^exp`.
///
/// Canonical form: zero is the empty mantissa with `neg = false` and
/// `exp = 0`; any non-zero value has an odd mantissa (trailing zero bits
/// are folded into the exponent), so the derived equality is value
/// equality.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dyadic {
    neg: bool,
    /// Little-endian base-2⁶⁴ limbs; no zero limbs at the top.
    mant: Vec<u64>,
    exp: i64,
}

impl Dyadic {
    /// The exact zero.
    #[must_use]
    pub fn zero() -> Self {
        Dyadic {
            neg: false,
            mant: Vec::new(),
            exp: 0,
        }
    }

    /// Exact conversion from a finite `f64`. `None` for NaN/±∞.
    #[must_use]
    pub fn from_f64(v: f64) -> Option<Self> {
        if !v.is_finite() {
            return None;
        }
        if v == 0.0 {
            return Some(Self::zero());
        }
        let bits = v.to_bits();
        let neg = bits >> 63 == 1;
        let biased = ((bits >> 52) & 0x7ff) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        let (m, e) = if biased == 0 {
            // Subnormal: no implicit leading bit.
            (frac, -1074i64)
        } else {
            (frac | (1 << 52), biased - 1075)
        };
        Some(Self::new(neg, vec![m], e))
    }

    /// Exact conversion from an integer.
    #[must_use]
    pub fn from_i64(v: i64) -> Self {
        if v == 0 {
            return Self::zero();
        }
        Self::new(v < 0, vec![v.unsigned_abs()], 0)
    }

    /// Canonicalizing constructor: strips zero limbs and trailing zero
    /// bits so equal values have equal representations.
    fn new(neg: bool, mut mant: Vec<u64>, exp: i64) -> Self {
        while mant.last() == Some(&0) {
            mant.pop();
        }
        if mant.is_empty() {
            return Self::zero();
        }
        let tz = trailing_zero_bits(&mant);
        let mant = shr_bits(&mant, tz);
        Dyadic {
            neg,
            mant,
            exp: exp + tz as i64,
        }
    }

    /// `true` iff the value is exactly zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.mant.is_empty()
    }

    /// `-1`, `0` or `+1`.
    #[must_use]
    pub fn signum(&self) -> i32 {
        if self.mant.is_empty() {
            0
        } else if self.neg {
            -1
        } else {
            1
        }
    }

    /// Exact negation.
    #[must_use]
    pub fn neg_val(&self) -> Self {
        if self.is_zero() {
            return Self::zero();
        }
        Dyadic {
            neg: !self.neg,
            mant: self.mant.clone(),
            exp: self.exp,
        }
    }

    /// Exact sum.
    #[must_use]
    pub fn add(&self, other: &Self) -> Self {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        // Align both mantissas to the smaller exponent.
        let e = self.exp.min(other.exp);
        let a = shl_bits(
            &self.mant,
            usize::try_from(self.exp - e).expect("aligned shift"),
        );
        let b = shl_bits(
            &other.mant,
            usize::try_from(other.exp - e).expect("aligned shift"),
        );
        if self.neg == other.neg {
            Self::new(self.neg, mag_add(&a, &b), e)
        } else {
            match mag_cmp(&a, &b) {
                Ordering::Equal => Self::zero(),
                Ordering::Greater => Self::new(self.neg, mag_sub(&a, &b), e),
                Ordering::Less => Self::new(other.neg, mag_sub(&b, &a), e),
            }
        }
    }

    /// Exact difference.
    #[must_use]
    pub fn sub(&self, other: &Self) -> Self {
        self.add(&other.neg_val())
    }

    /// Exact product.
    #[must_use]
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        Self::new(
            self.neg != other.neg,
            mag_mul(&self.mant, &other.mant),
            self.exp + other.exp,
        )
    }

    /// Exact three-way comparison by value.
    #[must_use]
    pub fn cmp_val(&self, other: &Self) -> Ordering {
        match (self.signum(), other.signum()) {
            (a, b) if a != b => a.cmp(&b),
            (0, 0) => Ordering::Equal,
            _ => match self.sub(other).signum() {
                -1 => Ordering::Less,
                0 => Ordering::Equal,
                _ => Ordering::Greater,
            },
        }
    }

    /// Nearest-ish `f64` for diagnostics only: rounds the top 53 mantissa
    /// bits; over/underflow saturates to `±inf`/`0`.
    #[must_use]
    pub fn to_f64_lossy(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        let bl = bit_len(&self.mant);
        let shift = bl.saturating_sub(53);
        let top = shr_bits(&self.mant, shift);
        debug_assert!(top.len() == 1);
        let e = self.exp + shift as i64;
        let mag = top[0] as f64 * pow2(e);
        if self.neg {
            -mag
        } else {
            mag
        }
    }
}

/// `2^e` as an `f64`, saturating outside the representable range.
fn pow2(e: i64) -> f64 {
    if e > 1100 {
        f64::INFINITY
    } else if e < -1150 {
        0.0
    } else {
        // Split so even near-extreme exponents stay representable
        // intermediate values.
        let half = e / 2;
        2f64.powi(half as i32) * 2f64.powi((e - half) as i32)
    }
}

fn bit_len(a: &[u64]) -> usize {
    match a.last() {
        None => 0,
        Some(&top) => 64 * (a.len() - 1) + (64 - top.leading_zeros() as usize),
    }
}

fn trailing_zero_bits(a: &[u64]) -> usize {
    let mut bits = 0;
    for &limb in a {
        if limb == 0 {
            bits += 64;
        } else {
            return bits + limb.trailing_zeros() as usize;
        }
    }
    bits
}

fn shr_bits(a: &[u64], k: usize) -> Vec<u64> {
    let (limbs, bits) = (k / 64, k % 64);
    if limbs >= a.len() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(a.len() - limbs);
    for i in limbs..a.len() {
        let mut v = a[i] >> bits;
        if bits > 0 && i + 1 < a.len() {
            v |= a[i + 1] << (64 - bits);
        }
        out.push(v);
    }
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

fn shl_bits(a: &[u64], k: usize) -> Vec<u64> {
    if a.is_empty() {
        return Vec::new();
    }
    let (limbs, bits) = (k / 64, k % 64);
    let mut out = vec![0u64; limbs];
    if bits == 0 {
        out.extend_from_slice(a);
        return out;
    }
    let mut carry = 0u64;
    for &limb in a {
        out.push((limb << bits) | carry);
        carry = limb >> (64 - bits);
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

fn mag_cmp(a: &[u64], b: &[u64]) -> Ordering {
    if a.len() != b.len() {
        return a.len().cmp(&b.len());
    }
    for i in (0..a.len()).rev() {
        if a[i] != b[i] {
            return a[i].cmp(&b[i]);
        }
    }
    Ordering::Equal
}

fn mag_add(a: &[u64], b: &[u64]) -> Vec<u64> {
    let n = a.len().max(b.len());
    let mut out = Vec::with_capacity(n + 1);
    let mut carry = 0u64;
    for i in 0..n {
        let x = *a.get(i).unwrap_or(&0) as u128;
        let y = *b.get(i).unwrap_or(&0) as u128;
        let s = x + y + carry as u128;
        out.push(s as u64);
        carry = (s >> 64) as u64;
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// `a − b`, requiring `a ≥ b`.
fn mag_sub(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0u64;
    for (i, &x) in a.iter().enumerate() {
        let y = *b.get(i).unwrap_or(&0);
        let (d1, b1) = x.overflowing_sub(y);
        let (d2, b2) = d1.overflowing_sub(borrow);
        out.push(d2);
        borrow = u64::from(b1) + u64::from(b2);
    }
    debug_assert_eq!(borrow, 0, "mag_sub requires a >= b");
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

fn mag_mul(a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &x) in a.iter().enumerate() {
        let mut carry = 0u128;
        for (j, &y) in b.iter().enumerate() {
            let cur = out[i + j] as u128 + x as u128 * y as u128 + carry;
            out[i + j] = cur as u64;
            carry = cur >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let cur = out[k] as u128 + carry;
            out[k] = cur as u64;
            carry = cur >> 64;
            k += 1;
        }
    }
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(v: f64) -> Dyadic {
        Dyadic::from_f64(v).unwrap()
    }

    #[test]
    fn from_f64_round_trips_assorted_values() {
        for v in [
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.1,
            -3.25,
            1e-300,
            -1e300,
            f64::MIN_POSITIVE,
            5e-324, // subnormal
            2f64.powi(52) + 1.0,
            123_456_789.123_456_78,
        ] {
            assert_eq!(d(v).to_f64_lossy(), v, "round trip of {v}");
        }
        assert!(Dyadic::from_f64(f64::NAN).is_none());
        assert!(Dyadic::from_f64(f64::INFINITY).is_none());
    }

    #[test]
    fn equal_values_have_equal_representations() {
        assert_eq!(d(2.0), Dyadic::from_i64(2));
        assert_eq!(d(0.5).add(&d(0.5)), Dyadic::from_i64(1));
        assert_eq!(d(-0.0), Dyadic::zero());
    }

    #[test]
    fn arithmetic_is_exact_where_f64_is_not() {
        // 0.1 + 0.2 != 0.3 in f64; the exact dyadic sum sees the
        // difference even though both round to similar doubles.
        let exact = d(0.1).add(&d(0.2));
        assert_ne!(exact, d(0.3));
        assert_eq!(exact.cmp_val(&d(0.3)), Ordering::Greater);
        // to_f64_lossy truncates: good to ~1 ulp, diagnostics only.
        assert!((exact.to_f64_lossy() - 0.3).abs() < 1e-15);
        // (a+b)·c distributes exactly.
        let (a, b, c) = (d(1e-17), d(3.7), d(-2.5e12));
        assert_eq!(a.add(&b).mul(&c), a.mul(&c).add(&b.mul(&c)));
    }

    #[test]
    fn products_of_three_mantissas_exceed_i128() {
        let big = d(2f64.powi(52) + 1.0);
        let p = big.mul(&big).mul(&big);
        // 159-bit mantissa survives and compares correctly.
        assert_eq!(p.cmp_val(&big.mul(&big)), Ordering::Greater);
        assert_eq!(p.sub(&p), Dyadic::zero());
    }

    #[test]
    fn comparisons_across_magnitudes_and_signs() {
        assert_eq!(d(1e-300).cmp_val(&d(1e300)), Ordering::Less);
        assert_eq!(d(-1e-300).cmp_val(&d(1e-300)), Ordering::Less);
        assert_eq!(d(-5.0).cmp_val(&d(-7.0)), Ordering::Greater);
        assert_eq!(d(3.5).cmp_val(&d(3.5)), Ordering::Equal);
        assert_eq!(Dyadic::zero().cmp_val(&d(-1e-308)), Ordering::Greater);
    }

    #[test]
    fn long_alternating_sum_cancels_exactly() {
        let mut acc = Dyadic::zero();
        for i in 0..1000 {
            let v = d(0.1 * (i as f64 + 1.0));
            acc = acc.add(&v);
            acc = acc.sub(&v);
        }
        assert!(acc.is_zero());
    }

    #[test]
    fn signum_and_negation() {
        assert_eq!(d(2.5).neg_val().signum(), -1);
        assert_eq!(Dyadic::zero().neg_val().signum(), 0);
        assert_eq!(d(1.0).sub(&d(1.0)).signum(), 0);
    }
}
