//! Solver-independent optimality certificates for the DVS MILP.
//!
//! `dvs-milp`'s branch-and-bound answers "this mode assignment is
//! minimum-energy", but nothing outside those ~3k lines of simplex/B&B
//! code could confirm it. This crate is the other half of a proof-logging
//! scheme in the spirit of VIPR-style derivation certificates for exact
//! MIP solvers: the solver emits a [`Certificate`] — a snapshot of the
//! lowered LP, the incumbent, and a derivation tree of dual-bound and
//! Farkas leaves under SOS1/dichotomy disjunctions — and [`check`]
//! replays it in exact [`dyadic::Dyadic`] arithmetic.
//!
//! The trust boundary is deliberate: this crate depends on nothing that
//! produces proofs (never `dvs-milp`), uses no floating-point arithmetic
//! in any accept/reject decision, and accepts a bound leaf only via the
//! *unconditional* weak-duality inequality — valid for any sign-correct
//! multiplier vector — so it needs no assumptions about the producing
//! simplex's tolerances.
//!
//! Rejections carry a [`RejectCode`] naming the failure class, which is
//! what lets `dvsc check`'s certificate oracle assert that each seeded
//! corruption (perturbed duals, truncated disjunction tree, off-by-one
//! incumbent, stale objective) is caught for the right reason.

pub mod certificate;
pub mod checker;
pub mod dyadic;

pub use certificate::{CertNode, CertRow, CertRowKind, CertVar, Certificate, Snapshot};
pub use checker::{check, CheckReport, Reject, RejectCode};
