//! Domain generators: random reducible CFGs with traces, voltage ladders on
//! the alpha-power curve, and regulator transition models.
//!
//! Every generator is total over tapes: the all-zero tape produces the
//! structurally simplest value (a three-block straight-line CFG, the
//! shortest trace, a two-level ladder, a free regulator), and any mutated
//! tape still produces a *valid* case. Structural validity is therefore an
//! invariant of generation, not something the oracles need to re-check —
//! though [`crate::run_case`] does re-check it, as a test of the generators
//! themselves.

use crate::gen::Gen;
use dvs_ir::{BlockId, Cfg, CfgBuilder, Inst, MemWidth, Opcode, Reg};
use dvs_sim::{Trace, TraceBuilder};
use dvs_vf::{AlphaPower, TransitionModel, VoltageLadder};

/// Bounds on generated cases.
#[derive(Debug, Clone)]
pub struct CaseSpec {
    /// Maximum number of basic blocks (including entry and exit). The
    /// brute-force oracle stays exhaustive up to about 6.
    pub max_blocks: usize,
}

impl Default for CaseSpec {
    fn default() -> Self {
        CaseSpec { max_blocks: 6 }
    }
}

/// How the deadline is derived from the profiled execution-time range
/// `[t_fast, t_slow]` (all-fastest and all-slowest uniform schedules).
///
/// The split exists so that roughly one case in ten is *infeasible by
/// construction*, exercising the solvers' infeasibility paths as well as
/// their optima.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeadlineSpec {
    /// `t_fast + frac · (t_slow − t_fast)` with `frac` in `[0.02, 1.2]` —
    /// from barely feasible to slack beyond the all-slowest schedule.
    SpanFraction(f64),
    /// `factor · t_fast` with `factor` in `[0.3, 0.9]` — strictly below the
    /// fastest achievable time, so every schedule misses it.
    BelowFast(f64),
}

impl DeadlineSpec {
    /// Resolves the spec against a profiled time range.
    #[must_use]
    pub fn resolve(self, t_fast: f64, t_slow: f64) -> f64 {
        match self {
            DeadlineSpec::SpanFraction(frac) => t_fast + frac * (t_slow - t_fast).max(0.0),
            DeadlineSpec::BelowFast(factor) => factor * t_fast,
        }
    }
}

/// A complete generated test case. The deadline stays symbolic
/// ([`DeadlineSpec`]) until the case has been profiled, because the
/// interesting deadlines live between the all-fastest and all-slowest
/// execution times, which only the simulator knows.
#[derive(Debug, Clone)]
pub struct CheckCase {
    /// A reducible control-flow graph.
    pub cfg: Cfg,
    /// One entry-to-exit walk of `cfg` with memory addresses.
    pub trace: Trace,
    /// Operating points on the paper's alpha-power law.
    pub ladder: VoltageLadder,
    /// Regulator transition-cost model (possibly free).
    pub transition: TransitionModel,
    /// Symbolic deadline, resolved after profiling.
    pub deadline: DeadlineSpec,
}

/// Generates a full case from `g` under `spec`.
#[must_use]
pub fn gen_case(g: &mut Gen, spec: &CaseSpec) -> CheckCase {
    let cfg = gen_cfg(g, spec.max_blocks);
    let trace = gen_trace(g, &cfg);
    let ladder = gen_ladder(g);
    let transition = gen_transition(g);
    let deadline = gen_deadline(g);
    CheckCase {
        cfg,
        trace,
        ladder,
        transition,
        deadline,
    }
}

/// Grows a reducible CFG by chaining single-entry/single-exit structures
/// (straight block, while-loop, if-then, diamond) between entry and exit.
/// Reducibility is guaranteed by construction: every cycle is a natural
/// loop whose header dominates its body.
pub fn gen_cfg(g: &mut Gen, max_blocks: usize) -> Cfg {
    let mut b = CfgBuilder::new("fuzz");
    let entry = b.block("entry");
    let mut blocks = vec![entry];
    // out-degree per block, tracked so branchy blocks get a branch inst
    let mut outdeg: Vec<usize> = vec![0];

    let mut budget = max_blocks.saturating_sub(2).max(1);
    let mut tail = entry;
    let new_block = |b: &mut CfgBuilder, blocks: &mut Vec<BlockId>, outdeg: &mut Vec<usize>| {
        let id = b.block(format!("b{}", blocks.len() - 1));
        blocks.push(id);
        outdeg.push(0);
        id
    };
    let add_edge = |b: &mut CfgBuilder, outdeg: &mut Vec<usize>, s: BlockId, d: BlockId| {
        b.edge(s, d);
        outdeg[s.index()] += 1;
    };

    while budget > 0 {
        // Shapes by block cost: 0 = straight block (1), 1 = while-loop (2),
        // 2 = if-then (3), 3 = diamond (4). Zero picks the simplest.
        let max_kind = [1, 1, 2, 3, 4]
            .iter()
            .take_while(|&&cost| cost <= budget)
            .count() as u64
            - 1;
        match g.below(max_kind.max(1)) {
            0 => {
                let blk = new_block(&mut b, &mut blocks, &mut outdeg);
                add_edge(&mut b, &mut outdeg, tail, blk);
                // occasional self-loop (zero draw means none)
                if budget >= 2 && g.below(7) == 6 {
                    add_edge(&mut b, &mut outdeg, blk, blk);
                }
                tail = blk;
                budget -= 1;
            }
            1 => {
                let h = new_block(&mut b, &mut blocks, &mut outdeg);
                let body = new_block(&mut b, &mut blocks, &mut outdeg);
                add_edge(&mut b, &mut outdeg, tail, h);
                add_edge(&mut b, &mut outdeg, h, body);
                add_edge(&mut b, &mut outdeg, body, h);
                tail = h;
                budget -= 2;
            }
            2 => {
                let c = new_block(&mut b, &mut blocks, &mut outdeg);
                let t = new_block(&mut b, &mut blocks, &mut outdeg);
                let j = new_block(&mut b, &mut blocks, &mut outdeg);
                add_edge(&mut b, &mut outdeg, tail, c);
                add_edge(&mut b, &mut outdeg, c, t);
                add_edge(&mut b, &mut outdeg, c, j);
                add_edge(&mut b, &mut outdeg, t, j);
                tail = j;
                budget -= 3;
            }
            _ => {
                let c = new_block(&mut b, &mut blocks, &mut outdeg);
                let t = new_block(&mut b, &mut blocks, &mut outdeg);
                let f = new_block(&mut b, &mut blocks, &mut outdeg);
                let j = new_block(&mut b, &mut blocks, &mut outdeg);
                add_edge(&mut b, &mut outdeg, tail, c);
                add_edge(&mut b, &mut outdeg, c, t);
                add_edge(&mut b, &mut outdeg, c, f);
                add_edge(&mut b, &mut outdeg, t, j);
                add_edge(&mut b, &mut outdeg, f, j);
                tail = j;
                budget -= 4;
            }
        }
        if g.chance(0.25) {
            break; // the zero tape stops after one structure
        }
    }
    let exit = b.block("exit");
    blocks.push(exit);
    outdeg.push(0);
    add_edge(&mut b, &mut outdeg, tail, exit);

    // Fill each block with 1–6 instructions drawn from a small mix; blocks
    // with fan-out end in a conditional branch so the predictor is
    // exercised.
    for &blk in &blocks {
        let n = 1 + g.below(5);
        for i in 0..n {
            let dest = Reg((1 + (i % 7)) as u8);
            let src = Reg((1 + ((i + 3) % 7)) as u8);
            let inst = match g.below(6) {
                0 | 1 => Inst::alu(Opcode::IntAlu, dest, &[src]),
                2 => Inst::alu(Opcode::IntMul, dest, &[src, dest]),
                3 => Inst::load(dest, src, MemWidth::B4),
                4 => Inst::store(src, dest, MemWidth::B4),
                _ => Inst::nop(),
            };
            b.push(blk, inst);
        }
        if outdeg[blk.index()] >= 2 {
            b.push(blk, Inst::branch(Reg(1)));
        }
    }

    b.finish(entry, exit)
        .expect("generated CFGs are well-formed by construction")
}

/// Breadth-first distance (in edges) from each block to the exit; used to
/// steer the trace walk home once its fuel runs out.
fn dist_to_exit(cfg: &Cfg) -> Vec<usize> {
    let mut dist = vec![usize::MAX; cfg.num_blocks()];
    let mut queue = std::collections::VecDeque::new();
    dist[cfg.exit().index()] = 0;
    queue.push_back(cfg.exit());
    while let Some(b) = queue.pop_front() {
        for p in cfg.predecessors(b) {
            if dist[p.index()] == usize::MAX {
                dist[p.index()] = dist[b.index()] + 1;
                queue.push_back(p);
            }
        }
    }
    dist
}

/// Random entry-to-exit walk: branch choices are random while fuel lasts,
/// then the walk takes the shortest path to the exit, so it always
/// terminates. Memory instructions get word-aligned addresses from a 16 KiB
/// window (small enough for cache hits and misses to both occur).
pub fn gen_trace(g: &mut Gen, cfg: &Cfg) -> Trace {
    let dist = dist_to_exit(cfg);
    let mut tb = TraceBuilder::new(cfg);
    let mut fuel = 4 + g.below(40);
    let mut cur = cfg.entry();
    loop {
        let mems = cfg.block(cur).mem_inst_count();
        let addrs: Vec<u64> = (0..mems).map(|_| 4 * g.below(4096)).collect();
        tb.step(cur, addrs);
        if cur == cfg.exit() {
            break;
        }
        let succs: Vec<BlockId> = cfg.successors(cur).collect();
        cur = if succs.len() == 1 {
            succs[0]
        } else if fuel > 0 {
            fuel -= 1;
            succs[g.below(succs.len() as u64) as usize]
        } else {
            *succs
                .iter()
                .min_by_key(|s| dist[s.index()])
                .expect("every block reaches the exit")
        };
    }
    tb.finish().expect("walk ends at the exit")
}

/// A 2–4 level ladder on the paper's alpha-power law: the base frequency
/// lands in 120–320 MHz and each level is 1.3–2.2× the previous, clamped to
/// 790 MHz (the law is calibrated at 800 MHz / 1.65 V).
pub fn gen_ladder(g: &mut Gen) -> VoltageLadder {
    let law = AlphaPower::paper();
    let levels = 2 + g.below(3);
    let mut freqs: Vec<f64> = Vec::new();
    let mut f = 120.0 + g.unit() * 200.0;
    for _ in 0..levels {
        freqs.push(f);
        f = (f * (1.3 + g.unit() * 0.9)).min(790.0);
        if f <= freqs[freqs.len() - 1] + 5.0 {
            break;
        }
    }
    if freqs.len() < 2 {
        freqs.push(freqs[0] * 1.5);
    }
    VoltageLadder::from_frequencies(&law, &freqs).unwrap_or_else(|_| VoltageLadder::xscale3(&law))
}

/// Free regulator ~30% of the time, otherwise a capacitance drawn
/// log-uniformly from 0.001–1 µF (spanning negligible to dominant
/// transition costs).
pub fn gen_transition(g: &mut Gen) -> TransitionModel {
    if g.chance(0.3) {
        TransitionModel::free()
    } else {
        TransitionModel::with_capacitance_uf(10f64.powf(-3.0 + 3.0 * g.unit()))
    }
}

/// See [`DeadlineSpec`].
pub fn gen_deadline(g: &mut Gen) -> DeadlineSpec {
    if g.chance(0.1) {
        DeadlineSpec::BelowFast(0.3 + 0.6 * g.unit())
    } else {
        DeadlineSpec::SpanFraction(0.02 + 1.18 * g.unit())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_cfgs_are_valid_and_reducible() {
        for seed in 0..200 {
            let mut g = Gen::from_seed(seed);
            let cfg = gen_cfg(&mut g, 6);
            assert!(cfg.num_blocks() >= 3 && cfg.num_blocks() <= 6, "{seed}");
            assert_eq!(cfg.check_reducible(), Ok(()), "seed {seed}");
        }
    }

    #[test]
    fn zero_tape_generates_the_minimal_case() {
        let mut g = Gen::replay(Vec::new());
        let case = gen_case(&mut g, &CaseSpec::default());
        assert_eq!(case.cfg.num_blocks(), 3);
        assert_eq!(case.cfg.num_edges(), 2);
        assert_eq!(case.ladder.len(), 2);
        assert_eq!(case.transition, TransitionModel::free());
    }

    #[test]
    fn traces_are_valid_walks() {
        for seed in 0..100 {
            let mut g = Gen::from_seed(seed);
            let case = gen_case(&mut g, &CaseSpec { max_blocks: 8 });
            let walk = case.trace.walk();
            assert_eq!(walk.first(), Some(&case.cfg.entry()), "seed {seed}");
            assert_eq!(walk.last(), Some(&case.cfg.exit()), "seed {seed}");
            let mut pb = dvs_ir::ProfileBuilder::new(&case.cfg, 1);
            assert!(pb.try_record_walk(&case.cfg, &walk).is_ok(), "seed {seed}");
            assert_eq!(pb.finish().validate(&case.cfg), Ok(()), "seed {seed}");
        }
    }

    #[test]
    fn ladders_are_monotonic_and_in_range() {
        for seed in 0..200 {
            let mut g = Gen::from_seed(seed);
            let ladder = gen_ladder(&mut g);
            assert!(ladder.len() >= 2 && ladder.len() <= 4, "seed {seed}");
            let pts: Vec<_> = ladder.iter().map(|(_, p)| p).collect();
            for w in pts.windows(2) {
                assert!(w[0].frequency_mhz < w[1].frequency_mhz, "seed {seed}");
                assert!(w[0].voltage < w[1].voltage, "seed {seed}");
            }
        }
    }

    #[test]
    fn case_generation_is_deterministic() {
        let a = gen_case(&mut Gen::from_seed(11), &CaseSpec::default());
        let b = gen_case(&mut Gen::from_seed(11), &CaseSpec::default());
        assert_eq!(a.cfg.num_blocks(), b.cfg.num_blocks());
        assert_eq!(a.cfg.num_edges(), b.cfg.num_edges());
        assert_eq!(a.trace.walk(), b.trace.walk());
        assert_eq!(a.deadline, b.deadline);
    }
}
