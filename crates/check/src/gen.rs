//! Seeded, tape-recording choice source.
//!
//! [`Gen`] is the single source of randomness for every generator in this
//! crate. It operates in one of two modes:
//!
//! * **fresh** ([`Gen::from_seed`]): choices come from a splitmix64 stream,
//!   so a `u64` seed fully determines the generated case;
//! * **replay** ([`Gen::replay`]): choices come from a recorded *tape* of
//!   previous draws. When the tape runs out, every further draw yields `0`.
//!
//! Either way, every choice made is re-recorded onto a fresh tape
//! ([`Gen::tape`]). The shrinker mutates tapes (deleting, zeroing and
//! minimizing entries) and replays them; because each combinator maps the
//! value `0` to its structurally simplest choice, *any* tape — including a
//! truncated or mutated one — regenerates a valid case. This is the
//! Hypothesis-style "shrink the choice sequence, not the value" design: the
//! shrinker never needs to know how to shrink a CFG, only how to shrink a
//! `Vec<u64>`.

/// One splitmix64 step (public-domain constants).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic choice source that records every draw.
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
    replay: Option<Vec<u64>>,
    pos: usize,
    tape: Vec<u64>,
}

impl Gen {
    /// A fresh source whose choices are fully determined by `seed`.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        Gen {
            state: seed,
            replay: None,
            pos: 0,
            tape: Vec::new(),
        }
    }

    /// A source that replays `tape`; draws past the end yield `0`.
    #[must_use]
    pub fn replay(tape: Vec<u64>) -> Self {
        Gen {
            state: 0,
            replay: Some(tape),
            pos: 0,
            tape: Vec::new(),
        }
    }

    /// The choices made so far (already reduced modulo each draw's range).
    #[must_use]
    pub fn tape(&self) -> &[u64] {
        &self.tape
    }

    /// Consumes the source and returns its recorded tape.
    #[must_use]
    pub fn into_tape(self) -> Vec<u64> {
        self.tape
    }

    fn draw(&mut self) -> u64 {
        let v = match &self.replay {
            Some(t) => t.get(self.pos).copied().unwrap_or(0),
            None => splitmix64(&mut self.state),
        };
        self.pos += 1;
        v
    }

    /// A uniform value in `[0, n)`. The recorded tape entry equals the
    /// returned value, so a zeroed entry replays as the first choice.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Gen::below(0)");
        let v = self.draw() % n;
        self.tape.push(v);
        v
    }

    /// A uniform value in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "Gen::range({lo}, {hi})");
        lo + self.below(hi - lo + 1)
    }

    /// A uniform `f64` in `[0, 1)`; a zeroed tape entry replays as `0.0`.
    pub fn unit(&mut self) -> f64 {
        const BITS: u64 = 1 << 53;
        let v = self.draw() % BITS;
        self.tape.push(v);
        v as f64 / BITS as f64
    }

    /// `true` with probability `p`; a zeroed tape entry replays as `true`
    /// whenever `p > 0`, so call sites should put the structurally simpler
    /// alternative on the `true` branch.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Picks one element of `xs` uniformly.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Gen::from_seed(7);
        let mut b = Gen::from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
            assert_eq!(a.unit(), b.unit());
        }
        let mut c = Gen::from_seed(8);
        let diverged = (0..100).any(|_| a.below(1000) != c.below(1000));
        assert!(diverged, "different seeds should diverge");
    }

    #[test]
    fn replay_reproduces_the_recorded_tape() {
        let mut g = Gen::from_seed(42);
        let vals: Vec<u64> = (0..50).map(|_| g.below(97)).collect();
        let tape = g.into_tape();
        let mut r = Gen::replay(tape.clone());
        let replayed: Vec<u64> = (0..50).map(|_| r.below(97)).collect();
        assert_eq!(vals, replayed);
        assert_eq!(r.tape(), &tape[..]);
    }

    #[test]
    fn exhausted_replay_yields_zero() {
        let mut r = Gen::replay(vec![5, 6]);
        assert_eq!(r.below(10), 5);
        assert_eq!(r.below(10), 6);
        assert_eq!(r.below(10), 0);
        assert_eq!(r.unit(), 0.0);
        assert!(r.chance(0.5), "zero draw maps to the true branch");
    }

    #[test]
    fn below_stays_in_range_and_records_reduced_values() {
        let mut g = Gen::from_seed(3);
        for _ in 0..1000 {
            assert!(g.below(7) < 7);
        }
        assert!(g.tape().iter().all(|&v| v < 7));
    }

    #[test]
    fn mutated_tape_still_replays() {
        let mut g = Gen::from_seed(9);
        for _ in 0..20 {
            g.below(50);
        }
        let mut tape = g.into_tape();
        tape.truncate(5);
        tape[2] = u64::MAX; // out-of-range entries are reduced modulo n
        let mut r = Gen::replay(tape);
        for _ in 0..20 {
            assert!(r.below(50) < 50);
        }
    }
}
