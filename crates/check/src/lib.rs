//! Property-based differential testing for the DVS compiler pipeline.
//!
//! This crate is the repo's answer to "how do we know the MILP is right?".
//! It generates random-but-valid compiler inputs from a `u64` seed, runs
//! the full profile → formulate → solve → emit pipeline on each, and
//! cross-checks the result against three independent oracles:
//!
//! * **brute force** — on small CFGs, exhaustively enumerate every
//!   assignment of modes to edge groups and compare optima and feasibility
//!   verdicts ([`OracleKind::BruteForce`]);
//! * **continuous lower bounds** — the LP relaxation of the very model the
//!   solver branched on must lower-bound the integral objective, and the
//!   paper's §3 continuous analytical solution must dominate the discrete
//!   one for compute-bound programs ([`OracleKind::ContinuousLower`]);
//! * **simulator replay** — the emitted schedule, replayed on the
//!   cycle-level simulator, must meet the deadline and land near the
//!   predicted energy ([`OracleKind::SimReplay`]);
//! * **optimality certificates** — a certifying solve must produce a proof
//!   the independent `dvs-cert` checker accepts, and seeded corruptions of
//!   that proof ([`Mutation`]) must each be rejected with the expected
//!   code ([`OracleKind::Certificate`]).
//!
//! Failures shrink automatically: every random choice is recorded on a
//! tape ([`Gen`]), the shrinker ([`shrink_tape`]) deletes, zeroes and
//! minimizes tape entries while the case keeps failing, and the result is
//! a minimal counterexample reproducible from a single `dvsc check
//! --seed-base N` invocation.
//!
//! # Example
//!
//! ```
//! use dvs_check::{run_check, CheckConfig, Tolerances};
//!
//! let report = run_check(
//!     &CheckConfig {
//!         seeds: 4,
//!         seed_base: 42,
//!         max_blocks: 4,
//!         ..CheckConfig::default()
//!     },
//!     &Tolerances::default(),
//! );
//! assert!(report.ok(), "{}", report.render());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cases;
mod gen;
mod mutate;
mod oracle;
mod runner;
mod shrink;

pub use cases::{
    gen_case, gen_cfg, gen_ladder, gen_trace, gen_transition, CaseSpec, CheckCase, DeadlineSpec,
};
pub use gen::Gen;
pub use mutate::Mutation;
pub use oracle::{
    run_case, run_tape, schedule_cost, CaseOutcome, Disagreement, OracleKind, Tolerances,
};
pub use runner::{run_check, CheckConfig, CheckReport, Counterexample};
pub use shrink::{shrink_tape, ShrinkResult};
