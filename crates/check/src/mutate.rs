//! Seeded certificate corruption for the certificate oracle.
//!
//! The checker's rejection contract is only worth something if corrupted
//! proofs are actually rejected, and rejected *for the right reason*. Each
//! [`Mutation`] takes an accepted [`Certificate`] and damages exactly one
//! aspect of it; [`Mutation::expected`] names the [`RejectCode`]s the
//! independent checker is allowed to answer with. The corruptions are
//! chosen so rejection is guaranteed, not merely likely: dual-sign flips
//! are applied to *every* leaf (at least one leaf is non-empty — the one
//! covering the incumbent), truncation hits the first branch node (branch
//! arity is checked before any box test), and incumbent/objective edits
//! trip checks that run before the tree walk.

use dvs_cert::{CertNode, CertRowKind, Certificate, RejectCode};

/// One corruption class. `ALL` enumerates them in a stable order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Flip the sign of every `≤`-row dual (or inject a positive one)
    /// in every leaf: weak duality forbids positive multipliers on `Le`
    /// rows, so any non-empty leaf trips.
    PerturbedDuals,
    /// Drop the second child of the first branch node: the disjunction no
    /// longer covers the integral space.
    TruncatedTree,
    /// Push one incumbent coordinate past its upper bound by exactly 1.
    IncumbentOffByOne,
    /// Move one integer incumbent coordinate half a step off the lattice.
    IncumbentFractional,
    /// Lower the claimed objective by 1% — the exactly-recomputed
    /// incumbent cost no longer matches.
    StaleObjective,
}

impl Mutation {
    /// Every corruption class, in report order.
    pub const ALL: [Mutation; 5] = [
        Mutation::PerturbedDuals,
        Mutation::TruncatedTree,
        Mutation::IncumbentOffByOne,
        Mutation::IncumbentFractional,
        Mutation::StaleObjective,
    ];

    /// Stable kebab-case name for reports and assertions.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Mutation::PerturbedDuals => "perturbed-duals",
            Mutation::TruncatedTree => "truncated-tree",
            Mutation::IncumbentOffByOne => "incumbent-off-by-one",
            Mutation::IncumbentFractional => "incumbent-fractional",
            Mutation::StaleObjective => "stale-objective",
        }
    }

    /// The reject codes the checker may answer this corruption with.
    #[must_use]
    pub fn expected(self) -> &'static [RejectCode] {
        match self {
            Mutation::PerturbedDuals => &[RejectCode::DualSignViolation],
            Mutation::TruncatedTree => &[RejectCode::CoverageGap],
            Mutation::IncumbentOffByOne => &[RejectCode::IncumbentInfeasible],
            Mutation::IncumbentFractional => &[RejectCode::IncumbentNotIntegral],
            Mutation::StaleObjective => &[RejectCode::ObjectiveMismatch],
        }
    }

    /// Applies the corruption to a copy of `cert`. Returns `None` when the
    /// certificate has no site for this class (e.g. a single-leaf tree
    /// cannot be truncated) — never a silently-valid mutant.
    #[must_use]
    pub fn apply(self, cert: &Certificate) -> Option<Certificate> {
        let mut c = cert.clone();
        match self {
            Mutation::PerturbedDuals => {
                let le_row = c
                    .snapshot
                    .rows
                    .iter()
                    .position(|r| r.kind == CertRowKind::Le)?;
                let le_rows: Vec<bool> = c
                    .snapshot
                    .rows
                    .iter()
                    .map(|r| r.kind == CertRowKind::Le)
                    .collect();
                corrupt_leaf_duals(&mut c.tree, le_row, &le_rows);
                Some(c)
            }
            Mutation::TruncatedTree => truncate_first_branch(&mut c.tree).then_some(c),
            Mutation::IncumbentOffByOne => {
                let j = c
                    .snapshot
                    .vars
                    .iter()
                    .zip(&c.incumbent)
                    .position(|(v, &x)| x + 1.0 > v.ub + c.feas_tol)?;
                c.incumbent[j] += 1.0;
                Some(c)
            }
            Mutation::IncumbentFractional => {
                let j = c.snapshot.vars.iter().position(|v| v.integer)?;
                c.incumbent[j] += 0.5;
                Some(c)
            }
            Mutation::StaleObjective => {
                c.objective -= 0.01 * c.objective.abs().max(1.0);
                Some(c)
            }
        }
    }
}

/// Negates any nonzero `Le`-row dual in a leaf, or injects `+1` on
/// `le_row` when the leaf has none. Applied to every leaf so the (always
/// present) non-empty leaf covering the incumbent is guaranteed to carry a
/// sign violation.
fn corrupt_leaf_duals(node: &mut CertNode, le_row: usize, le_rows: &[bool]) {
    match node {
        CertNode::Bound { duals } | CertNode::Farkas { duals } => {
            let mut flipped = false;
            for (r, y) in duals.iter_mut() {
                if le_rows.get(*r).copied().unwrap_or(false) && *y != 0.0 {
                    *y = y.abs();
                    flipped = true;
                }
            }
            if !flipped {
                duals.push((le_row, 1.0));
            }
        }
        CertNode::Sos1 { kids, .. } | CertNode::Split { kids, .. } => {
            for kid in kids {
                corrupt_leaf_duals(kid, le_row, le_rows);
            }
        }
    }
}

/// Pops one child off the first branch node in pre-order; `false` when the
/// tree is a single leaf.
fn truncate_first_branch(node: &mut CertNode) -> bool {
    match node {
        CertNode::Bound { .. } | CertNode::Farkas { .. } => false,
        CertNode::Sos1 { kids, .. } | CertNode::Split { kids, .. } => {
            kids.pop();
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_cert::{check, CertRow, CertVar, Snapshot};
    use dvs_obs::json::Json;

    /// min x0 + 2·x1 s.t. x0 + x1 = 1, x0 + x1 ≤ 1, x binary; proved by an
    /// SOS1 split so every mutation class has a site.
    fn accepted() -> Certificate {
        let cert = Certificate {
            backend: "bnb".into(),
            snapshot: Snapshot {
                vars: vec![
                    CertVar {
                        lb: 0.0,
                        ub: 1.0,
                        integer: true,
                    },
                    CertVar {
                        lb: 0.0,
                        ub: 1.0,
                        integer: true,
                    },
                ],
                obj: vec![1.0, 2.0],
                obj_offset: 0.0,
                rows: vec![
                    CertRow {
                        kind: CertRowKind::Eq,
                        rhs: 1.0,
                        terms: vec![(0, 1.0), (1, 1.0)],
                    },
                    CertRow {
                        kind: CertRowKind::Le,
                        rhs: 1.0,
                        terms: vec![(0, 1.0), (1, 1.0)],
                    },
                ],
                flipped: false,
            },
            incumbent: vec![1.0, 0.0],
            objective: 1.0,
            tolerance: 1e-9,
            feas_tol: 1e-6,
            int_tol: 1e-6,
            obj_tol: 1e-7,
            tree: CertNode::Sos1 {
                row: 0,
                zero_a: vec![0],
                zero_b: vec![1],
                kids: vec![
                    CertNode::Bound {
                        duals: vec![(0, 1.0)],
                    },
                    CertNode::Bound {
                        duals: vec![(0, 1.0), (1, -0.0)],
                    },
                ],
            },
            meta: Json::Null,
        };
        assert!(check(&cert).ok(), "fixture must start accepted");
        cert
    }

    #[test]
    fn every_mutation_applies_and_is_rejected_for_its_code() {
        let cert = accepted();
        for m in Mutation::ALL {
            let bad = m.apply(&cert).expect("fixture has a site for every class");
            let report = check(&bad);
            let reject = report
                .reject
                .unwrap_or_else(|| panic!("{} mutant was accepted", m.name()));
            assert!(
                m.expected().contains(&reject.code),
                "{} mutant rejected as {} ({})",
                m.name(),
                reject.code,
                reject.detail
            );
        }
    }

    #[test]
    fn truncation_needs_a_branch_node() {
        let mut cert = accepted();
        cert.tree = CertNode::Bound {
            duals: vec![(0, 1.0)],
        };
        assert!(Mutation::TruncatedTree.apply(&cert).is_none());
    }

    #[test]
    fn dual_injection_covers_leaves_without_le_duals() {
        // Leaf 0 of the fixture carries no Le-row dual; the mutation must
        // inject one there rather than leaving the leaf valid.
        let cert = accepted();
        let bad = Mutation::PerturbedDuals.apply(&cert).unwrap();
        let CertNode::Sos1 { kids, .. } = &bad.tree else {
            panic!("fixture tree is sos1");
        };
        let CertNode::Bound { duals } = &kids[0] else {
            panic!("kid 0 is a bound leaf");
        };
        assert!(duals.iter().any(|&(r, y)| r == 1 && y > 0.0));
    }
}
