//! Differential oracles: three independent ways to catch the MILP pipeline
//! lying, plus a well-formedness check of the generators themselves.
//!
//! | oracle | claim it checks |
//! |---|---|
//! | [`OracleKind::WellFormed`] | generated CFGs are reducible and profiles conserve flow |
//! | [`OracleKind::BruteForce`] | on small cases the MILP optimum equals exhaustive enumeration of every mode assignment, and feasibility verdicts agree |
//! | [`OracleKind::ContinuousLower`] | the LP relaxation lower-bounds the integral objective, and the §3 continuous analytical bound dominates the discrete one for compute-bound programs |
//! | [`OracleKind::SimReplay`] | the emitted schedule, replayed cycle-by-cycle in the simulator, meets the deadline and lands near the predicted energy |
//! | [`OracleKind::BytecodeReplay`] | the compiled `dvs-replay` bytecode reproduces the simulator's replay of the emitted schedule to 1e-6 relative on every accounting field |
//! | [`OracleKind::StaticVerify`] | the `dvs-verify` static pass accepts every schedule the other oracles accept (no error diagnostics, modeled time matching the shared evaluator, WCET above modeled time) and rejects a deliberately infeasible mutant |
//! | [`OracleKind::Certificate`] | a certifying solve of the same model yields a proof the independent `dvs-cert` checker accepts, the encoding round-trips byte-stably, and every seeded corruption class ([`Mutation`]) is rejected with its expected code |
//!
//! The brute-force comparison and the MILP share one cost evaluator,
//! [`schedule_cost`], which replicates the §4.2 objective exactly: block
//! cost attributed per incoming edge under that edge's mode, the entry
//! block charged at the start mode, and `SE`/`ST` regulator costs charged
//! per profiled local path.

use crate::cases::{gen_case, CaseSpec, CheckCase};
use crate::gen::Gen;
use crate::mutate::Mutation;
use dvs_compiler::{analyze_params, MilpFormulation};
use dvs_ir::{Cfg, EdgeId, Profile};
use dvs_milp::MilpError;
use dvs_model::{CaseKind, ContinuousModel, DiscreteModel};
use dvs_sim::{Machine, ModeProfiler};
use dvs_vf::{ModeId, TransitionModel, VoltageLadder};

/// Comparison tolerances. Objective comparisons are tight (the solver
/// proves optimality to a 1e-6 absolute gap; the slack beyond that absorbs
/// float summation-order noise scaled by integer-tolerance rounding of the
/// binaries). Replay comparisons are loose: per-block profiled costs ignore
/// out-of-order overlap across block boundaries, which a mixed-mode replay
/// re-introduces.
#[derive(Debug, Clone)]
pub struct Tolerances {
    /// Absolute objective tolerance, µJ.
    pub obj_abs_uj: f64,
    /// Relative objective tolerance.
    pub obj_rel: f64,
    /// Relative margin on deadline feasibility claims.
    pub feas_rel: f64,
    /// Relative slack allowed on replay time beyond the deadline.
    pub replay_time_rel: f64,
    /// Absolute slack allowed on replay time, µs.
    pub replay_time_abs_us: f64,
    /// Relative tolerance on replayed vs predicted energy.
    pub replay_energy_rel: f64,
    /// Absolute tolerance on replayed vs predicted energy, µJ.
    pub replay_energy_abs_uj: f64,
    /// Relative tolerance of the bytecode replay vs the cycle-level
    /// simulator. Tight by design: the interpreter reproduces the
    /// simulator's float recurrence bit-for-bit on time and reassociates
    /// only energy sums.
    pub bytecode_rel: f64,
    /// Brute force enumerates at most this many assignments, else skips.
    pub brute_force_limit: u64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            obj_abs_uj: 1e-3,
            obj_rel: 1e-5,
            feas_rel: 1e-7,
            replay_time_rel: 0.15,
            replay_time_abs_us: 1.0,
            replay_energy_rel: 0.15,
            replay_energy_abs_uj: 1.0,
            bytecode_rel: 1e-6,
            brute_force_limit: 2_000_000,
        }
    }
}

/// Which oracle flagged a disagreement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OracleKind {
    /// Generator invariants: reducibility, profile flow conservation.
    WellFormed,
    /// Exhaustive enumeration vs the MILP.
    BruteForce,
    /// Lower bounds: LP relaxation and the §3 continuous model.
    ContinuousLower,
    /// Schedule replay on the cycle-level simulator.
    SimReplay,
    /// Compiled bytecode replay vs the cycle-level simulator.
    BytecodeReplay,
    /// The `dvs-verify` static pass vs the shared cost evaluator.
    StaticVerify,
    /// The `dvs-cert` checker vs the certifying solver replay.
    Certificate,
}

impl std::fmt::Display for OracleKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            OracleKind::WellFormed => "well-formed",
            OracleKind::BruteForce => "brute-force",
            OracleKind::ContinuousLower => "continuous-lower",
            OracleKind::SimReplay => "sim-replay",
            OracleKind::BytecodeReplay => "bytecode-replay",
            OracleKind::StaticVerify => "static-verify",
            OracleKind::Certificate => "certificate",
        })
    }
}

/// One oracle violation.
#[derive(Debug, Clone)]
pub struct Disagreement {
    /// The oracle that fired.
    pub oracle: OracleKind,
    /// Human-readable description with the numbers that disagreed.
    pub detail: String,
}

/// Everything observed while checking one case.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// The recorded choice tape (input to the shrinker).
    pub tape: Vec<u64>,
    /// Blocks in the generated CFG.
    pub blocks: usize,
    /// Edges in the generated CFG.
    pub edges: usize,
    /// Ladder size.
    pub modes: usize,
    /// The resolved deadline, µs.
    pub deadline_us: f64,
    /// Whether the MILP found the case feasible.
    pub feasible: bool,
    /// Whether brute force was skipped for size.
    pub brute_force_skipped: bool,
    /// Oracle violations (empty = the case passed).
    pub disagreements: Vec<Disagreement>,
}

impl CaseOutcome {
    /// `true` when every oracle agreed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.disagreements.is_empty()
    }
}

/// Evaluates the §4.2 cost of a concrete mode assignment: `start` is the
/// mode of the start group (covering the entry block), `edge_modes[e]` the
/// mode of edge `e`'s group. Returns `(energy_uj, time_us)` including
/// regulator transition costs; this mirrors [`MilpFormulation`]'s objective
/// and deadline row term for term.
#[must_use]
pub fn schedule_cost(
    cfg: &Cfg,
    profile: &Profile,
    ladder: &VoltageLadder,
    transition: &TransitionModel,
    start: ModeId,
    edge_modes: &[ModeId],
) -> (f64, f64) {
    let mut energy = 0.0;
    let mut time = 0.0;
    for e in cfg.edges() {
        let g = profile.edge_count(e.id) as f64;
        if g == 0.0 {
            continue;
        }
        let c = profile.block_cost(e.dst, edge_modes[e.id.index()].index());
        energy += g * c.energy_uj;
        time += g * c.time_us;
    }
    let entry_runs = profile.block_count(cfg.entry()) as f64;
    let c = profile.block_cost(cfg.entry(), start.index());
    energy += entry_runs * c.energy_uj;
    time += entry_runs * c.time_us;

    let ce = transition.energy_uj(1.0, 0.0);
    let ct = transition.time_us(1.0, 0.0);
    if ce > 0.0 || ct > 0.0 {
        for (path, d) in profile.local_paths() {
            let Some(exit) = path.exit else { continue };
            if path.enter == Some(exit) {
                continue; // same variable group: never a transition
            }
            let d = d as f64;
            let v_in = match path.enter {
                Some(e) => ladder.point(edge_modes[e.index()]).voltage,
                None => ladder.point(start).voltage,
            };
            let v_out = ladder.point(edge_modes[exit.index()]).voltage;
            energy += d * ce * (v_in * v_in - v_out * v_out).abs();
            time += d * ct * (v_in - v_out).abs();
        }
    }
    (energy, time)
}

/// Result of exhaustively enumerating mode assignments.
#[derive(Debug, Clone, Copy)]
enum BruteForce {
    Skipped,
    Infeasible,
    Optimal { energy_uj: f64, time_us: f64 },
}

/// Enumerates every assignment of modes to the start group and each
/// profile-live edge (dead edges carry no cost and are fixed to mode 0),
/// keeping the cheapest one that meets the deadline.
fn brute_force(
    cfg: &Cfg,
    profile: &Profile,
    ladder: &VoltageLadder,
    transition: &TransitionModel,
    deadline_us: f64,
    limit: u64,
) -> BruteForce {
    let live: Vec<EdgeId> = cfg
        .edges()
        .filter(|e| profile.edge_count(e.id) > 0)
        .map(|e| e.id)
        .collect();
    let slots = live.len() + 1; // slot 0 is the start group
    let n_modes = ladder.len();
    let mut count: u128 = 1;
    for _ in 0..slots {
        count = count.saturating_mul(n_modes as u128);
        if count > u128::from(limit) {
            return BruteForce::Skipped;
        }
    }

    let mut assign = vec![0usize; slots];
    let mut edge_modes = vec![ModeId(0); cfg.num_edges()];
    let mut best: Option<(f64, f64)> = None;
    loop {
        for (i, &e) in live.iter().enumerate() {
            edge_modes[e.index()] = ModeId(assign[i + 1]);
        }
        let (energy, time) = schedule_cost(
            cfg,
            profile,
            ladder,
            transition,
            ModeId(assign[0]),
            &edge_modes,
        );
        if time <= deadline_us && best.is_none_or(|(b, _)| energy < b) {
            best = Some((energy, time));
        }
        // odometer
        let mut i = 0;
        loop {
            assign[i] += 1;
            if assign[i] < n_modes {
                break;
            }
            assign[i] = 0;
            i += 1;
            if i == slots {
                return match best {
                    Some((energy_uj, time_us)) => BruteForce::Optimal { energy_uj, time_us },
                    None => BruteForce::Infeasible,
                };
            }
        }
    }
}

/// Generates the case for `seed` and runs every oracle over it.
#[must_use]
pub fn run_case(seed: u64, spec: &CaseSpec, tol: &Tolerances) -> CaseOutcome {
    let mut g = Gen::from_seed(seed);
    run_generated(&mut g, spec, tol)
}

/// Replays `tape`, regenerates the case it encodes and runs every oracle —
/// the shrinker's evaluation function.
#[must_use]
pub fn run_tape(tape: &[u64], spec: &CaseSpec, tol: &Tolerances) -> CaseOutcome {
    let mut g = Gen::replay(tape.to_vec());
    run_generated(&mut g, spec, tol)
}

fn run_generated(g: &mut Gen, spec: &CaseSpec, tol: &Tolerances) -> CaseOutcome {
    let case = gen_case(g, spec);
    let mut out = CaseOutcome {
        tape: g.tape().to_vec(),
        blocks: case.cfg.num_blocks(),
        edges: case.cfg.num_edges(),
        modes: case.ladder.len(),
        deadline_us: 0.0,
        feasible: false,
        brute_force_skipped: false,
        disagreements: Vec::new(),
    };
    check_oracles(&case, tol, &mut out);
    out
}

fn check_oracles(case: &CheckCase, tol: &Tolerances, out: &mut CaseOutcome) {
    let CheckCase {
        cfg,
        trace,
        ladder,
        transition,
        deadline,
    } = case;

    // --- well-formedness: the generators must uphold their invariants ---
    if let Err(e) = cfg.check_reducible() {
        out.disagreements.push(Disagreement {
            oracle: OracleKind::WellFormed,
            detail: format!("generated CFG is irreducible: {e}"),
        });
        return;
    }

    let machine = Machine::paper_default();
    let profiler = ModeProfiler::new(machine);
    let (profile, runs) = profiler.profile(cfg, trace, ladder);
    if let Err(e) = profile.validate(cfg) {
        out.disagreements.push(Disagreement {
            oracle: OracleKind::WellFormed,
            detail: format!("profile fails validation: {e}"),
        });
        return;
    }

    let fastest = ladder.len() - 1;
    let t_fast = profile.total_time_at(fastest);
    let t_slow = profile.total_time_at(0);
    let deadline_us = deadline.resolve(t_fast, t_slow);
    out.deadline_us = deadline_us;
    let feas_margin = tol.feas_rel * deadline_us.max(1.0);

    let formulation = MilpFormulation::new(cfg, &profile, ladder, transition, deadline_us);
    let milp = match formulation.solve() {
        Ok(o) => Some(o),
        Err(MilpError::Infeasible) => None,
        Err(e) => {
            out.disagreements.push(Disagreement {
                oracle: OracleKind::BruteForce,
                detail: format!("MILP solver error: {e}"),
            });
            return;
        }
    };
    out.feasible = milp.is_some();

    // --- brute force: exhaustive enumeration must agree exactly ---
    let bf = brute_force(
        cfg,
        &profile,
        ladder,
        transition,
        deadline_us,
        tol.brute_force_limit,
    );
    out.brute_force_skipped = matches!(bf, BruteForce::Skipped);
    match (&milp, bf) {
        (_, BruteForce::Skipped) => {}
        (None, BruteForce::Infeasible) => {}
        (None, BruteForce::Optimal { energy_uj, time_us }) => {
            // Only flag assignments strictly inside the deadline; razor-edge
            // feasibility may fall either way in float arithmetic.
            if time_us <= deadline_us - feas_margin {
                out.disagreements.push(Disagreement {
                    oracle: OracleKind::BruteForce,
                    detail: format!(
                        "MILP infeasible but enumeration found {energy_uj:.6} µJ \
                         in {time_us:.6} µs <= deadline {deadline_us:.6} µs"
                    ),
                });
            }
        }
        (Some(o), BruteForce::Infeasible) => {
            let (_, t_re) = schedule_cost(
                cfg,
                &profile,
                ladder,
                transition,
                o.schedule.initial,
                &o.schedule.edge_modes,
            );
            if t_re <= deadline_us + feas_margin {
                out.disagreements.push(Disagreement {
                    oracle: OracleKind::BruteForce,
                    detail: format!(
                        "enumeration says infeasible but the MILP schedule takes \
                         {t_re:.6} µs <= deadline {deadline_us:.6} µs"
                    ),
                });
            } else {
                out.disagreements.push(Disagreement {
                    oracle: OracleKind::BruteForce,
                    detail: format!(
                        "MILP claims feasible but its schedule takes {t_re:.6} µs \
                         > deadline {deadline_us:.6} µs"
                    ),
                });
            }
        }
        (Some(o), BruteForce::Optimal { energy_uj, .. }) => {
            let slack =
                tol.obj_abs_uj + tol.obj_rel * energy_uj.abs().max(o.predicted_energy_uj.abs());
            if (o.predicted_energy_uj - energy_uj).abs() > slack {
                out.disagreements.push(Disagreement {
                    oracle: OracleKind::BruteForce,
                    detail: format!(
                        "objective mismatch: MILP {:.6} µJ vs enumeration {energy_uj:.6} µJ",
                        o.predicted_energy_uj
                    ),
                });
            }
            // Independently re-evaluate the extracted schedule: it must be
            // feasible and must cost what the solver claims.
            let (e_re, t_re) = schedule_cost(
                cfg,
                &profile,
                ladder,
                transition,
                o.schedule.initial,
                &o.schedule.edge_modes,
            );
            if t_re > deadline_us + feas_margin {
                out.disagreements.push(Disagreement {
                    oracle: OracleKind::BruteForce,
                    detail: format!(
                        "extracted schedule misses the deadline: {t_re:.6} µs > {deadline_us:.6} µs"
                    ),
                });
            }
            if (e_re - o.predicted_energy_uj).abs() > slack {
                out.disagreements.push(Disagreement {
                    oracle: OracleKind::BruteForce,
                    detail: format!(
                        "extracted schedule costs {e_re:.6} µJ but the solver \
                         reported {:.6} µJ",
                        o.predicted_energy_uj
                    ),
                });
            }
        }
    }

    // --- continuous lower bounds ---
    if let Some(o) = &milp {
        match formulation.relaxation_bound() {
            Ok(bound) => {
                let slack = tol.obj_abs_uj + tol.obj_rel * o.predicted_energy_uj.abs();
                if bound > o.predicted_energy_uj + slack {
                    out.disagreements.push(Disagreement {
                        oracle: OracleKind::ContinuousLower,
                        detail: format!(
                            "LP relaxation {bound:.6} µJ exceeds the integral \
                             objective {:.6} µJ",
                            o.predicted_energy_uj
                        ),
                    });
                }
            }
            Err(MilpError::Infeasible) => {
                out.disagreements.push(Disagreement {
                    oracle: OracleKind::ContinuousLower,
                    detail: "LP relaxation infeasible although the MILP solved".into(),
                });
            }
            Err(e) => {
                out.disagreements.push(Disagreement {
                    oracle: OracleKind::ContinuousLower,
                    detail: format!("LP relaxation solver error: {e}"),
                });
            }
        }

        // §3 dominance, in the analytical model's own cycle·V² units. The
        // paper proves the continuous optimum lower-bounds any discrete
        // ladder schedule only in the compute-dominated case (its Fig. 6
        // four-frequency construction breaks dominance under memory slack).
        let params = analyze_params(&runs);
        if params.is_valid() {
            let v_lo = ladder.slowest().voltage;
            let v_hi = ladder.fastest().voltage;
            let continuous = ContinuousModel::new(dvs_vf::AlphaPower::paper(), v_lo, v_hi);
            if continuous.classify(&params, deadline_us) == CaseKind::ComputeDominated {
                let discrete = DiscreteModel::new(ladder.clone());
                if let (Some(cs), Some(ds)) = (
                    continuous.optimal(&params, deadline_us),
                    discrete.optimal(&params, deadline_us),
                ) {
                    if cs.energy > ds.energy * (1.0 + 1e-9) + 1e-9 {
                        out.disagreements.push(Disagreement {
                            oracle: OracleKind::ContinuousLower,
                            detail: format!(
                                "continuous bound {:.6} exceeds discrete optimum {:.6} \
                                 (cycle·V²) on a compute-dominated case",
                                cs.energy, ds.energy
                            ),
                        });
                    }
                }
            }
        }
    }

    // --- schedule replay on the cycle-level simulator ---
    if let Some(o) = &milp {
        let machine = Machine::paper_default();
        let run = machine.run_scheduled(cfg, trace, ladder, &o.schedule, transition);
        let time_cap = deadline_us * (1.0 + tol.replay_time_rel) + tol.replay_time_abs_us;
        if run.time_us > time_cap {
            out.disagreements.push(Disagreement {
                oracle: OracleKind::SimReplay,
                detail: format!(
                    "replayed schedule takes {:.3} µs, beyond deadline {:.3} µs \
                     plus tolerance",
                    run.time_us, deadline_us
                ),
            });
        }
        // The MILP objective models processor switching + regulator energy
        // (DRAM energy is mode-invariant and excluded from both sides).
        let replayed = run.processor_energy_uj;
        let slack = tol.replay_energy_abs_uj + tol.replay_energy_rel * o.predicted_energy_uj.abs();
        if (replayed - o.predicted_energy_uj).abs() > slack {
            out.disagreements.push(Disagreement {
                oracle: OracleKind::SimReplay,
                detail: format!(
                    "replayed energy {replayed:.3} µJ vs predicted {:.3} µJ",
                    o.predicted_energy_uj
                ),
            });
        }

        // --- bytecode replay vs the cycle-level simulator ---
        // The schedule-independent bytecode must reproduce the simulator's
        // run of the very same schedule. Time and transition accounting are
        // bit-identical by construction; energy reassociates one sum, so
        // everything sits far inside the 1e-6 gate.
        let code = dvs_replay::compile(&machine, cfg, trace, ladder, transition);
        let fast = code.replay(&o.schedule);
        let fields = [
            ("time_us", fast.time_us, run.time_us),
            (
                "processor_energy_uj",
                fast.processor_energy_uj,
                run.processor_energy_uj,
            ),
            ("dram_energy_uj", fast.dram_energy_uj, run.dram_energy_uj),
            (
                "transition_energy_uj",
                fast.transition_energy_uj,
                run.transition_energy_uj,
            ),
            (
                "transition_time_us",
                fast.transition_time_us,
                run.transition_time_us,
            ),
        ];
        for (name, got, want) in fields {
            if (got - want).abs() > tol.bytecode_rel * want.abs().max(1e-9) {
                out.disagreements.push(Disagreement {
                    oracle: OracleKind::BytecodeReplay,
                    detail: format!("bytecode {name} {got:.9} vs simulator {want:.9}"),
                });
            }
        }
        if fast.transitions != run.transitions {
            out.disagreements.push(Disagreement {
                oracle: OracleKind::BytecodeReplay,
                detail: format!(
                    "bytecode performed {} transitions vs simulator {}",
                    fast.transitions, run.transitions
                ),
            });
        }
    }

    // --- static verification vs the shared evaluator ---
    if let Some(o) = &milp {
        let verify_with = |emitted: Option<&[bool]>| {
            dvs_verify::verify(&dvs_verify::VerifyInput {
                cfg,
                profile: &profile,
                ladder,
                transition,
                schedule: &o.schedule,
                emitted,
                deadline_us: Some(deadline_us),
            })
        };
        let (_, t_re) = schedule_cost(
            cfg,
            &profile,
            ladder,
            transition,
            o.schedule.initial,
            &o.schedule.edge_modes,
        );
        // Naive emission (every mode-set present) and hoisted emission
        // (silent sets elided) must both be accepted: the hoisting analysis
        // only removes sets the executed-path dataflow can prove redundant.
        let analysis = dvs_compiler::ScheduleAnalysis::new(cfg, &profile, &o.schedule);
        let mask = analysis.emitted_mask();
        for (label, report) in [
            ("naive", verify_with(None)),
            ("hoisted", verify_with(Some(&mask))),
        ] {
            for d in report.errors() {
                // A deadline error is only a lie if the shared evaluator
                // says the schedule is feasible; razor-edge cases where
                // both sit within float noise of the deadline are skipped.
                if d.code == dvs_verify::DiagCode::DeadlineModeled && t_re > deadline_us {
                    continue;
                }
                out.disagreements.push(Disagreement {
                    oracle: OracleKind::StaticVerify,
                    detail: format!(
                        "verifier rejects the accepted {label} schedule: {}",
                        d.render()
                    ),
                });
            }
            // The verifier's modeled time implements the same §4.2 sum as
            // schedule_cost; on a fully determined schedule they must agree.
            let slack = 1e-6 * t_re.abs().max(1.0);
            if (report.modeled_time_us - t_re).abs() > slack {
                out.disagreements.push(Disagreement {
                    oracle: OracleKind::StaticVerify,
                    detail: format!(
                        "{label} modeled time {:.9} µs vs shared evaluator {t_re:.9} µs",
                        report.modeled_time_us
                    ),
                });
            }
            // WCET is a worst case over all paths: it can never undercut
            // the profiled execution it also bounds.
            if report.wcet.bound_us < report.modeled_time_us - slack {
                out.disagreements.push(Disagreement {
                    oracle: OracleKind::StaticVerify,
                    detail: format!(
                        "{label} WCET bound {:.9} µs below modeled time {:.9} µs",
                        report.wcet.bound_us, report.modeled_time_us
                    ),
                });
            }
        }

        // Mutant: the all-slow schedule, when it clearly misses the
        // deadline, must draw an error-severity diagnostic. This is the
        // cheap per-case half of the rejection contract (the ≥100-mutant
        // sweep lives in the integration tests).
        let slow = dvs_sim::EdgeSchedule::uniform(cfg, ModeId(0));
        let (_, t_slow_re) = schedule_cost(
            cfg,
            &profile,
            ladder,
            transition,
            slow.initial,
            &slow.edge_modes,
        );
        if t_slow_re > deadline_us * (1.0 + 1e-6) + 1e-3 {
            let report = dvs_verify::verify(&dvs_verify::VerifyInput {
                cfg,
                profile: &profile,
                ladder,
                transition,
                schedule: &slow,
                emitted: None,
                deadline_us: Some(deadline_us),
            });
            if report.ok() {
                out.disagreements.push(Disagreement {
                    oracle: OracleKind::StaticVerify,
                    detail: format!(
                        "verifier accepted an all-slow mutant taking {t_slow_re:.6} µs \
                         against deadline {deadline_us:.6} µs"
                    ),
                });
            }
        }
    }

    // --- certificate: the prover must convince the independent checker ---
    if milp.is_some() {
        certificate_oracle(cfg, &profile, ladder, transition, deadline_us, out);
    }
}

/// Re-solves the case with certification on and holds the result to the
/// full contract: the independent checker accepts the proof, the encoding
/// round-trips byte-stably, and every applicable [`Mutation`] of the proof
/// is rejected with its expected code.
fn certificate_oracle(
    cfg: &Cfg,
    profile: &Profile,
    ladder: &VoltageLadder,
    transition: &TransitionModel,
    deadline_us: f64,
    out: &mut CaseOutcome,
) {
    let mut fail = |detail: String| {
        out.disagreements.push(Disagreement {
            oracle: OracleKind::Certificate,
            detail,
        });
    };
    let outcome = match MilpFormulation::new(cfg, profile, ladder, transition, deadline_us)
        .with_certify(true)
        .solve()
    {
        Ok(o) => o,
        Err(e) => return fail(format!("certifying solve failed: {e}")),
    };
    let Some(cert) = &outcome.certificate else {
        return fail("certification requested but no certificate produced".into());
    };
    if let Some(r) = &cert.report.reject {
        return fail(format!(
            "checker rejected the prover's certificate: {}: {}",
            r.code, r.detail
        ));
    }
    let decoded = match dvs_cert::Certificate::decode(&cert.encoded) {
        Ok(c) => c,
        Err(e) => return fail(format!("certificate decode failed: {e}")),
    };
    if decoded.encode() != cert.encoded {
        fail("certificate encode/decode round trip is not byte-stable".into());
    }
    for m in Mutation::ALL {
        let Some(bad) = m.apply(&decoded) else {
            continue; // no site for this class (e.g. single-leaf tree)
        };
        match dvs_cert::check(&bad).reject {
            None => fail(format!("checker accepted a {} corruption", m.name())),
            Some(r) if !m.expected().contains(&r.code) => fail(format!(
                "{} corruption rejected as {} ({}), expected {:?}",
                m.name(),
                r.code,
                r.detail,
                m.expected().iter().map(|c| c.as_str()).collect::<Vec<_>>()
            )),
            Some(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_case_passes_every_oracle() {
        let out = run_tape(&[], &CaseSpec::default(), &Tolerances::default());
        assert_eq!(out.blocks, 3);
        assert!(
            out.passed(),
            "zero-tape case must pass: {:?}",
            out.disagreements
        );
    }

    #[test]
    fn schedule_cost_matches_the_milp_on_a_uniform_schedule() {
        // On a feasible case, evaluating the MILP's own schedule with the
        // shared evaluator reproduces its objective.
        let spec = CaseSpec::default();
        let tol = Tolerances::default();
        for seed in 0..10 {
            let out = run_case(seed, &spec, &tol);
            assert!(out.passed(), "seed {seed}: {:?}", out.disagreements);
        }
    }

    #[test]
    fn brute_force_skips_when_too_large() {
        let spec = CaseSpec { max_blocks: 6 };
        let tol = Tolerances {
            brute_force_limit: 1,
            ..Tolerances::default()
        };
        let out = run_case(0, &spec, &tol);
        assert!(out.brute_force_skipped);
    }
}
