//! The check runner: fans seeded cases over a worker pool, aggregates
//! outcomes, and shrinks any failures to minimal counterexamples.
//!
//! The rendered report is **byte-identical across worker counts**: the pool
//! returns outcomes in seed order, and the report deliberately contains no
//! timings or job counts. `dvsc check --jobs 1` and `--jobs 8` therefore
//! produce the same bytes for the same seed range — itself a regression
//! test of the runtime's ordered `map`.

use crate::cases::CaseSpec;
use crate::oracle::{run_case, run_tape, CaseOutcome, OracleKind, Tolerances};
use crate::shrink::shrink_tape;
use dvs_runtime::Pool;
use std::fmt::Write as _;

/// Configuration for one check run.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Number of seeded cases.
    pub seeds: u64,
    /// First seed; case `i` uses seed `seed_base + i`.
    pub seed_base: u64,
    /// Maximum blocks per generated CFG.
    pub max_blocks: usize,
    /// Worker threads for case checking (shrinking is sequential).
    pub jobs: usize,
    /// Evaluation budget per shrink.
    pub shrink_evals: usize,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            // The bytecode-replay fast path dropped the per-case cost enough
            // to afford an order of magnitude more default fuzzing.
            seeds: 1000,
            seed_base: 42,
            max_blocks: 6,
            jobs: 1,
            shrink_evals: 400,
        }
    }
}

/// A shrunken failing case.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The seed that found it.
    pub seed: u64,
    /// The first oracle that fired on the original case.
    pub oracle: OracleKind,
    /// Disagreement detail from the original case.
    pub detail: String,
    /// Tape length before shrinking.
    pub original_tape_len: usize,
    /// Tape length after shrinking.
    pub shrunk_tape_len: usize,
    /// Blocks in the shrunken CFG.
    pub shrunk_blocks: usize,
    /// Edges in the shrunken CFG.
    pub shrunk_edges: usize,
    /// Disagreement detail after shrinking.
    pub shrunk_detail: String,
    /// The minimal failing tape (replayable via [`run_tape`]).
    pub shrunk_tape: Vec<u64>,
}

impl Counterexample {
    /// A shell command that reproduces the failure from its seed, annotated
    /// with the oracle that fired so a repro artifact alone says *which*
    /// differential check tripped.
    #[must_use]
    pub fn repro(&self, max_blocks: usize) -> String {
        format!(
            "dvsc check --seeds 1 --seed-base {} --max-blocks {}  # oracle: {}",
            self.seed, max_blocks, self.oracle
        )
    }
}

/// Aggregated result of a check run.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// The configuration that produced this report (jobs excluded from
    /// rendering).
    pub config: CheckConfig,
    /// Cases whose MILP was feasible.
    pub feasible: usize,
    /// Cases whose MILP was infeasible.
    pub infeasible: usize,
    /// Cases where brute force was skipped for size.
    pub brute_force_skipped: usize,
    /// Shrunken failures, in seed order.
    pub counterexamples: Vec<Counterexample>,
}

impl CheckReport {
    /// `true` when every oracle agreed on every case.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.counterexamples.is_empty()
    }

    /// Reproduction command lines, one per counterexample.
    #[must_use]
    pub fn repro_lines(&self) -> Vec<String> {
        self.counterexamples
            .iter()
            .map(|c| c.repro(self.config.max_blocks))
            .collect()
    }

    /// Deterministic human-readable summary (no timings, no job counts).
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "dvs-check: {} cases, max-blocks {}, seed base {}",
            self.config.seeds, self.config.max_blocks, self.config.seed_base
        );
        let _ = writeln!(
            s,
            "  feasible {}, infeasible {}, brute-force skipped {}",
            self.feasible, self.infeasible, self.brute_force_skipped
        );
        let _ = writeln!(s, "  oracle disagreements: {}", self.counterexamples.len());
        for c in &self.counterexamples {
            let _ = writeln!(s, "FAIL seed {} [{}] {}", c.seed, c.oracle, c.detail);
            let _ = writeln!(
                s,
                "  shrunk: {} blocks, {} edges, tape {} -> {} [{}]",
                c.shrunk_blocks,
                c.shrunk_edges,
                c.original_tape_len,
                c.shrunk_tape_len,
                c.shrunk_detail
            );
            let _ = writeln!(s, "  repro: {}", c.repro(self.config.max_blocks));
        }
        let _ = writeln!(s, "{}", if self.ok() { "OK" } else { "FAILED" });
        s
    }
}

/// Runs `config.seeds` cases, in parallel when `config.jobs > 1`, and
/// shrinks every failure sequentially (so the report is deterministic).
#[must_use]
pub fn run_check(config: &CheckConfig, tol: &Tolerances) -> CheckReport {
    let spec = CaseSpec {
        max_blocks: config.max_blocks,
    };
    let pool = Pool::new(config.jobs);
    let seeds: Vec<u64> = (0..config.seeds).map(|i| config.seed_base + i).collect();
    let outcomes: Vec<(u64, CaseOutcome)> =
        pool.map(seeds, |_, seed| (seed, run_case(seed, &spec, tol)));

    let mut report = CheckReport {
        config: config.clone(),
        feasible: 0,
        infeasible: 0,
        brute_force_skipped: 0,
        counterexamples: Vec::new(),
    };
    for (seed, out) in outcomes {
        if out.feasible {
            report.feasible += 1;
        } else {
            report.infeasible += 1;
        }
        if out.brute_force_skipped {
            report.brute_force_skipped += 1;
        }
        if !out.passed() {
            report
                .counterexamples
                .push(shrink_failure(seed, out, &spec, tol, config.shrink_evals));
        }
    }
    report
}

fn shrink_failure(
    seed: u64,
    out: CaseOutcome,
    spec: &CaseSpec,
    tol: &Tolerances,
    budget: usize,
) -> Counterexample {
    let first = &out.disagreements[0];
    let shrunk = shrink_tape(
        &out.tape,
        |tape| !run_tape(tape, spec, tol).passed(),
        budget,
    );
    let replayed = run_tape(&shrunk.tape, spec, tol);
    let shrunk_detail = replayed
        .disagreements
        .first()
        .map_or_else(|| "(no longer fails?)".to_string(), |d| d.detail.clone());
    Counterexample {
        seed,
        oracle: first.oracle,
        detail: first.detail.clone(),
        original_tape_len: out.tape.len(),
        shrunk_tape_len: shrunk.tape.len(),
        shrunk_blocks: replayed.blocks,
        shrunk_edges: replayed.edges,
        shrunk_detail,
        shrunk_tape: shrunk.tape,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_is_clean_and_deterministic_across_jobs() {
        let tol = Tolerances::default();
        let base = CheckConfig {
            seeds: 12,
            seed_base: 1000,
            max_blocks: 5,
            jobs: 1,
            shrink_evals: 100,
        };
        let a = run_check(&base, &tol);
        assert!(a.ok(), "{}", a.render());
        let b = run_check(
            &CheckConfig {
                jobs: 3,
                ..base.clone()
            },
            &tol,
        );
        assert_eq!(a.render(), b.render(), "reports must not depend on jobs");
    }

    #[test]
    fn render_shape_is_stable() {
        let tol = Tolerances::default();
        let r = run_check(
            &CheckConfig {
                seeds: 3,
                seed_base: 7,
                max_blocks: 4,
                jobs: 1,
                shrink_evals: 50,
            },
            &tol,
        );
        let text = r.render();
        assert!(text.starts_with("dvs-check: 3 cases, max-blocks 4, seed base 7\n"));
        assert!(text.ends_with("OK\n") || text.ends_with("FAILED\n"));
    }
}
