//! Tape shrinking: reduce a failing choice sequence to a minimal one.
//!
//! The shrinker knows nothing about CFGs or ladders — it mutates the `u64`
//! tape and asks the caller whether the regenerated case still fails. Three
//! greedy passes run to a fixpoint (or an evaluation budget):
//!
//! 1. **chunk deletion** in decreasing sizes (32, 16, 8, 4, 2, 1) — removes
//!    whole generated sub-structures at once;
//! 2. **chunk zeroing** — replays the simplest choice for a region without
//!    changing tape length;
//! 3. **per-entry binary-search minimization** toward zero.
//!
//! Because the generators map the zero (or missing) choice to their
//! simplest alternative, every candidate tape is a valid case, and the
//! final tape regenerates the *minimal* failing case deterministically.

/// Outcome of a shrink run.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The smallest failing tape found.
    pub tape: Vec<u64>,
    /// Number of candidate evaluations spent.
    pub evals: usize,
}

/// Shrinks `tape` while `fails` keeps returning `true` for the candidate.
/// `tape` itself must already fail; `max_evals` bounds the total number of
/// `fails` calls. Fully deterministic.
pub fn shrink_tape<F>(tape: &[u64], mut fails: F, max_evals: usize) -> ShrinkResult
where
    F: FnMut(&[u64]) -> bool,
{
    let mut cur = tape.to_vec();
    let mut evals = 0usize;
    let mut try_candidate = |cand: &[u64], evals: &mut usize| -> bool {
        if *evals >= max_evals {
            return false;
        }
        *evals += 1;
        fails(cand)
    };

    loop {
        let mut improved = false;

        // Pass 1: delete chunks, largest first.
        for &size in &[32usize, 16, 8, 4, 2, 1] {
            let mut i = 0;
            while i + size <= cur.len() {
                let mut cand = Vec::with_capacity(cur.len() - size);
                cand.extend_from_slice(&cur[..i]);
                cand.extend_from_slice(&cur[i + size..]);
                if try_candidate(&cand, &mut evals) {
                    cur = cand;
                    improved = true;
                    // stay at i: the next chunk has shifted into place
                } else {
                    i += 1;
                }
            }
        }

        // Pass 2: zero chunks.
        for &size in &[8usize, 4, 2, 1] {
            let mut i = 0;
            while i + size <= cur.len() {
                if cur[i..i + size].iter().any(|&v| v != 0) {
                    let mut cand = cur.clone();
                    cand[i..i + size].iter_mut().for_each(|v| *v = 0);
                    if try_candidate(&cand, &mut evals) {
                        cur = cand;
                        improved = true;
                    }
                }
                i += size;
            }
        }

        // Pass 3: minimize each entry by binary search toward zero.
        for i in 0..cur.len() {
            if cur[i] == 0 {
                continue;
            }
            let (mut lo, mut hi) = (0u64, cur[i]);
            // invariant: hi fails (cur does); find the smallest failing value
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                let mut cand = cur.clone();
                cand[i] = mid;
                if try_candidate(&cand, &mut evals) {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            if hi < cur[i] {
                cur[i] = hi;
                improved = true;
            }
        }

        if !improved || evals >= max_evals {
            break;
        }
    }
    ShrinkResult { tape: cur, evals }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_empty_tape_when_anything_fails() {
        let r = shrink_tape(&[9, 8, 7, 6, 5], |_| true, 10_000);
        assert!(r.tape.is_empty());
    }

    #[test]
    fn preserves_a_load_bearing_entry() {
        // Failure requires some entry >= 10; minimal failing tape is [10].
        let tape = vec![3, 57, 4, 12, 99];
        let r = shrink_tape(&tape, |t| t.iter().any(|&v| v >= 10), 10_000);
        assert_eq!(r.tape, vec![10]);
    }

    #[test]
    fn respects_the_evaluation_budget() {
        let mut calls = 0usize;
        let _ = shrink_tape(
            &[1; 64],
            |_| {
                calls += 1;
                true
            },
            7,
        );
        assert!(calls <= 7);
    }

    #[test]
    fn is_deterministic() {
        let tape: Vec<u64> = (0..40).map(|i| (i * 37 + 11) % 100).collect();
        let pred = |t: &[u64]| t.iter().sum::<u64>() >= 50;
        let a = shrink_tape(&tape, pred, 5_000);
        let b = shrink_tape(&tape, pred, 5_000);
        assert_eq!(a.tape, b.tape);
        assert_eq!(a.evals, b.evals);
        assert!(pred(&a.tape), "result must still fail");
    }
}
