//! Shrinker regression: inject a known off-by-one bug into a test-local
//! cost oracle and prove the shrinker drives any failing case down to the
//! minimal 3-block CFG, deterministically, with the shrunken tape still
//! reproducing the failure.

use dvs_check::{gen_case, schedule_cost, CaseSpec, CheckCase, Gen};
use dvs_ir::{BlockModeCost, Profile, ProfileBuilder};
use dvs_vf::ModeId;

/// A synthetic profile that needs no simulator: block time is
/// `insts / f` and block energy `insts · V²`, which is enough structure
/// for cost evaluation to be nontrivial on every mode.
fn synthetic_profile(case: &CheckCase) -> Profile {
    let mut pb = ProfileBuilder::new(&case.cfg, case.ladder.len());
    pb.try_record_walk(&case.cfg, &case.trace.walk())
        .expect("generated traces are valid walks");
    for block in case.cfg.blocks() {
        let insts = block.len() as f64;
        for (mode, point) in case.ladder.iter() {
            pb.set_block_cost(
                block.id,
                mode.index(),
                BlockModeCost {
                    time_us: insts / point.frequency_mhz,
                    energy_uj: insts * point.energy_scale(),
                },
            );
        }
    }
    pb.finish()
}

/// The injected bug: a re-implementation of the block-cost sum whose edge
/// loop stops one short (`..num_edges() - 1`), silently dropping the final
/// edge — on these CFGs always the edge into the exit block.
fn buggy_energy(case: &CheckCase, profile: &Profile, modes: &[ModeId]) -> f64 {
    let cfg = &case.cfg;
    let mut energy = 0.0;
    for e in cfg.edges().take(cfg.num_edges() - 1) {
        let g = profile.edge_count(e.id) as f64;
        energy += g * profile
            .block_cost(e.dst, modes[e.id.index()].index())
            .energy_uj;
    }
    let entry_runs = profile.block_count(cfg.entry()) as f64;
    energy += entry_runs * profile.block_cost(cfg.entry(), 0).energy_uj;
    energy
}

/// `true` when the buggy oracle disagrees with the reference evaluator on
/// the uniform slowest-mode schedule.
fn exposes_the_bug(tape: &[u64]) -> bool {
    let mut g = Gen::replay(tape.to_vec());
    let case = gen_case(&mut g, &CaseSpec { max_blocks: 8 });
    let profile = synthetic_profile(&case);
    let modes = vec![ModeId(0); case.cfg.num_edges()];
    let (reference, _) = schedule_cost(
        &case.cfg,
        &profile,
        &case.ladder,
        &dvs_vf::TransitionModel::free(),
        ModeId(0),
        &modes,
    );
    let buggy = buggy_energy(&case, &profile, &modes);
    (reference - buggy).abs() > 1e-12
}

#[test]
fn shrinker_reduces_the_injected_bug_to_a_minimal_cfg() {
    // Any seeded case exposes the bug (the dropped edge always carries
    // count >= 1 and nonzero energy), so the shrinker should walk all the
    // way down to the smallest CFG the generator can express.
    let seed = 2026;
    let mut g = Gen::from_seed(seed);
    let case = gen_case(&mut g, &CaseSpec { max_blocks: 8 });
    assert!(
        case.cfg.num_blocks() > 3,
        "pick a seed with a non-minimal CFG"
    );
    let tape = g.into_tape();
    assert!(exposes_the_bug(&tape), "original case must fail");

    let shrunk = dvs_check::shrink_tape(&tape, exposes_the_bug, 2000);
    assert!(
        exposes_the_bug(&shrunk.tape),
        "shrinking must preserve the failure"
    );

    let shrunken_case = gen_case(
        &mut Gen::replay(shrunk.tape.clone()),
        &CaseSpec { max_blocks: 8 },
    );
    assert!(
        shrunken_case.cfg.num_blocks() <= 3,
        "minimal counterexample must be the 3-block CFG, got {} blocks",
        shrunken_case.cfg.num_blocks()
    );
    assert_eq!(shrunken_case.cfg.num_edges(), 2);
    assert!(
        shrunk.tape.len() < tape.len(),
        "tape must actually shrink ({} -> {})",
        tape.len(),
        shrunk.tape.len()
    );
}

#[test]
fn shrinking_is_deterministic_for_a_fixed_seed() {
    let seed = 2026;
    let mut g = Gen::from_seed(seed);
    let _ = gen_case(&mut g, &CaseSpec { max_blocks: 8 });
    let tape = g.into_tape();

    let a = dvs_check::shrink_tape(&tape, exposes_the_bug, 2000);
    let b = dvs_check::shrink_tape(&tape, exposes_the_bug, 2000);
    assert_eq!(a.tape, b.tape, "same seed, same minimal tape");
    assert_eq!(a.evals, b.evals, "same seed, same shrink trajectory");
}
