//! Property tests for `dvs-vf` over generated ladders: monotonicity of the
//! voltage/frequency/energy axes, and the algebraic identities of the
//! Burd–Brodersen transition-cost model (symmetry, zero diagonal,
//! telescoping along the monotone ladder, round-trip cost).

use dvs_check::{gen_ladder, gen_transition, Gen};
use dvs_vf::{ModeId, TransitionModel};

const SEEDS: u64 = 200;

#[test]
fn higher_frequency_means_higher_voltage_and_energy_per_cycle() {
    for seed in 0..SEEDS {
        let ladder = gen_ladder(&mut Gen::from_seed(seed));
        let pts: Vec<_> = ladder.iter().map(|(_, p)| p).collect();
        for w in pts.windows(2) {
            assert!(
                w[1].frequency_mhz > w[0].frequency_mhz,
                "seed {seed}: ladder frequencies must ascend"
            );
            assert!(
                w[1].voltage > w[0].voltage,
                "seed {seed}: alpha-power law must map higher f to higher V"
            );
            assert!(
                w[1].energy_scale() > w[0].energy_scale(),
                "seed {seed}: energy per cycle (V²) must rise with f"
            );
        }
        assert_eq!(ladder.slowest(), pts[0]);
        assert_eq!(ladder.fastest(), pts[pts.len() - 1]);
    }
}

#[test]
fn transition_costs_are_symmetric_with_zero_diagonal() {
    for seed in 0..SEEDS {
        let mut g = Gen::from_seed(seed);
        let ladder = gen_ladder(&mut g);
        let tm = gen_transition(&mut g);
        for (a, _) in ladder.iter() {
            for (b, _) in ladder.iter() {
                let se_ab = tm.mode_energy_uj(&ladder, a, b);
                let se_ba = tm.mode_energy_uj(&ladder, b, a);
                let st_ab = tm.mode_time_us(&ladder, a, b);
                let st_ba = tm.mode_time_us(&ladder, b, a);
                assert_eq!(se_ab, se_ba, "seed {seed}: SE({a:?},{b:?}) asymmetric");
                assert_eq!(st_ab, st_ba, "seed {seed}: ST({a:?},{b:?}) asymmetric");
                assert!(se_ab >= 0.0 && st_ab >= 0.0, "seed {seed}: negative cost");
                if a == b {
                    assert_eq!(se_ab, 0.0, "seed {seed}: SE({a:?},{a:?}) must be 0");
                    assert_eq!(st_ab, 0.0, "seed {seed}: ST({a:?},{a:?}) must be 0");
                }
            }
        }
    }
}

/// A round trip `a -> b -> a` costs exactly twice the one-way transition,
/// in both energy and time — the regulator model has no hysteresis.
#[test]
fn round_trip_costs_twice_the_one_way_transition() {
    for seed in 0..SEEDS {
        let mut g = Gen::from_seed(seed);
        let ladder = gen_ladder(&mut g);
        let tm = TransitionModel::with_capacitance_uf(0.001 + g.unit());
        for (a, _) in ladder.iter() {
            for (b, _) in ladder.iter() {
                let one_way_e = tm.mode_energy_uj(&ladder, a, b);
                let one_way_t = tm.mode_time_us(&ladder, a, b);
                let round_e = one_way_e + tm.mode_energy_uj(&ladder, b, a);
                let round_t = one_way_t + tm.mode_time_us(&ladder, b, a);
                assert_eq!(round_e, 2.0 * one_way_e, "seed {seed}");
                assert_eq!(round_t, 2.0 * one_way_t, "seed {seed}");
            }
        }
    }
}

/// Because ladder voltages ascend, `|v(a)² − v(c)²|` telescopes through any
/// middle mode: stepping `a -> b -> c` monotonically costs exactly the same
/// energy and time as jumping `a -> c` directly. (This is why the MILP can
/// charge transitions pairwise without modeling multi-step paths.)
#[test]
fn monotone_steps_telescope_to_the_direct_jump() {
    for seed in 0..SEEDS {
        let mut g = Gen::from_seed(seed);
        let ladder = gen_ladder(&mut g);
        let tm = gen_transition(&mut g);
        let n = ladder.len();
        for a in 0..n {
            for b in a..n {
                for c in b..n {
                    let (a, b, c) = (ModeId(a), ModeId(b), ModeId(c));
                    let stepped_e =
                        tm.mode_energy_uj(&ladder, a, b) + tm.mode_energy_uj(&ladder, b, c);
                    let direct_e = tm.mode_energy_uj(&ladder, a, c);
                    assert!(
                        (stepped_e - direct_e).abs() <= 1e-12 * direct_e.abs().max(1.0),
                        "seed {seed}: SE must telescope over {a:?}<{b:?}<{c:?}"
                    );
                    let stepped_t = tm.mode_time_us(&ladder, a, b) + tm.mode_time_us(&ladder, b, c);
                    let direct_t = tm.mode_time_us(&ladder, a, c);
                    assert!(
                        (stepped_t - direct_t).abs() <= 1e-12 * direct_t.abs().max(1.0),
                        "seed {seed}: ST must telescope over {a:?}<{b:?}<{c:?}"
                    );
                }
            }
        }
    }
}
