use dvs_model::ProgramParams;
use dvs_sim::RunStats;

/// Bridges a profiling run to the analytical model's program parameters —
/// the step that produces the paper's Table 7 and feeds Table 1.
///
/// Uses the fastest run in `runs` as the reference, matching
/// [`dvs_sim::ModeProfiler::extract_params`], but returns the *model*
/// crate's parameter type so callers can evaluate savings bounds directly.
#[must_use]
pub fn analyze_params(runs: &[RunStats]) -> ProgramParams {
    let sim = dvs_sim::ModeProfiler::extract_params(runs);
    ProgramParams {
        n_overlap: sim.n_overlap,
        n_dependent: sim.n_dependent,
        n_cache: sim.n_cache,
        t_invariant_us: sim.t_invariant_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_ir::{CfgBuilder, Inst, MemWidth, Opcode, Reg};
    use dvs_sim::{Machine, TraceBuilder};
    use dvs_vf::OperatingPoint;

    #[test]
    fn params_transfer_to_model_type() {
        let mut b = CfgBuilder::new("t");
        let e = b.block("entry");
        let body = b.block("body");
        let x = b.block("exit");
        b.push(body, Inst::load(Reg(1), Reg(2), MemWidth::B4));
        b.push(body, Inst::alu(Opcode::IntAlu, Reg(3), &[Reg(1)]));
        b.edge(e, body);
        b.edge(body, body);
        b.edge(body, x);
        let cfg = b.finish(e, x).unwrap();
        let mut tb = TraceBuilder::new(&cfg);
        tb.step(e, vec![]);
        for i in 0..500u64 {
            tb.step(body, vec![0x100000 + i * 4096]);
        }
        tb.step(x, vec![]);
        let trace = tb.finish().unwrap();
        let m = Machine::paper_default();
        let runs = vec![
            m.run(&cfg, &trace, OperatingPoint::new(0.7, 200.0)),
            m.run(&cfg, &trace, OperatingPoint::new(1.65, 800.0)),
        ];
        let p = analyze_params(&runs);
        assert!(p.is_valid());
        // Strided misses: a visible invariant memory time.
        assert!(p.t_invariant_us > 0.0);
        // The reference must be the fastest run (tinv measured at 800 MHz).
        let by_hand = runs[1].stall_cycles / 800.0;
        assert!((p.t_invariant_us - by_hand).abs() < 1e-9);
    }
}
