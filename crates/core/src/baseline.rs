//! The comparison points the paper measures against.
//!
//! * [`best_single_mode`] — the "best single-frequency setting that meets
//!   the deadline", the normalization baseline of Figs. 15 and 17;
//! * [`saputra`] — the prior MILP of Saputra et al.: per-region (block)
//!   granularity and **no transition costs** in the objective;
//! * [`hsu_kremer`] — the heuristic of Hsu & Kremer: slow down
//!   memory-bound regions, keep everything else at the slowest single mode
//!   that meets the deadline;
//! * [`lee_sakurai`] — Lee & Sakurai's run-time voltage hopping: mode-sets
//!   at regular time intervals, time-slicing between two neighbouring
//!   modes.

use crate::{Granularity, MilpFormulation, MilpOutcome};
use dvs_ir::{Cfg, Profile};
use dvs_milp::MilpError;
use dvs_sim::EdgeSchedule;
use dvs_vf::{ModeId, TransitionModel, VoltageLadder};

/// The slowest single mode whose total profiled time meets the deadline.
/// Returns `(mode, time_us, energy_uj)`, or `None` when even the fastest
/// mode is too slow.
#[must_use]
pub fn best_single_mode(
    profile: &Profile,
    ladder: &VoltageLadder,
    deadline_us: f64,
) -> Option<(ModeId, f64, f64)> {
    ladder.modes().find_map(|m| {
        let t = profile.total_time_at(m.index());
        (t <= deadline_us).then(|| (m, t, profile.total_energy_at(m.index())))
    })
}

/// The Saputra-et-al. formulation: block-granularity mode variables and a
/// free transition model (their ILP "does not account for any energy
/// penalties incurred by mode switching").
///
/// # Errors
///
/// Same as [`MilpFormulation::solve`].
pub fn saputra(
    cfg: &Cfg,
    profile: &Profile,
    ladder: &VoltageLadder,
    deadline_us: f64,
) -> Result<MilpOutcome, MilpError> {
    let free = TransitionModel::free();
    MilpFormulation::new(cfg, profile, ladder, &free, deadline_us)
        .with_granularity(Granularity::Block)
        .solve()
}

/// The Hsu–Kremer-style heuristic: classify each block as memory-bound if
/// its per-invocation time barely improves from the slowest to the fastest
/// mode (dilation below `threshold`, where pure compute would dilate by the
/// full frequency ratio), then run memory-bound blocks at the slowest mode
/// and everything else at the slowest uniform mode that still meets the
/// deadline. Returns `None` when no such base mode exists.
#[must_use]
pub fn hsu_kremer(
    cfg: &Cfg,
    profile: &Profile,
    ladder: &VoltageLadder,
    deadline_us: f64,
    threshold: f64,
) -> Option<EdgeSchedule> {
    let slow = 0usize;
    let fast = ladder.len() - 1;
    let memory_bound: Vec<bool> = (0..cfg.num_blocks())
        .map(|b| {
            let bid = dvs_ir::BlockId(b);
            let ts = profile.block_cost(bid, slow).time_us;
            let tf = profile.block_cost(bid, fast).time_us;
            tf > 0.0 && ts / tf < threshold
        })
        .collect();

    // Find the slowest base mode that meets the deadline with memory-bound
    // blocks pinned to the slowest mode.
    'base: for base in ladder.modes() {
        let mut total = 0.0;
        for b in cfg.blocks() {
            let m = if memory_bound[b.id.index()] {
                ModeId(slow)
            } else {
                base
            };
            total += profile.block_cost(b.id, m.index()).time_us * profile.block_count(b.id) as f64;
            if total > deadline_us {
                continue 'base;
            }
        }
        // Build the edge schedule: each edge adopts its destination mode.
        let edge_modes = cfg
            .edges()
            .map(|e| {
                if memory_bound[e.dst.index()] {
                    ModeId(slow)
                } else {
                    base
                }
            })
            .collect();
        let initial = if memory_bound[cfg.entry().index()] {
            ModeId(slow)
        } else {
            base
        };
        return Some(EdgeSchedule {
            initial,
            edge_modes,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_ir::{BlockModeCost, CfgBuilder, ProfileBuilder};
    use dvs_vf::AlphaPower;

    fn ladder() -> VoltageLadder {
        VoltageLadder::xscale3(&AlphaPower::paper())
    }

    /// Two-block program: `hot` scales with frequency, `membound` does not.
    fn setup() -> (Cfg, Profile) {
        let mut b = CfgBuilder::new("base");
        let e = b.block("entry");
        let hot = b.block("hot");
        let mem = b.block("membound");
        let x = b.block("exit");
        b.edge(e, hot);
        b.edge(hot, mem);
        b.edge(mem, hot);
        b.edge(mem, x);
        let cfg = b.finish(e, x).unwrap();
        let mut pb = ProfileBuilder::new(&cfg, 3);
        let mut walk = vec![e];
        for _ in 0..10 {
            walk.push(hot);
            walk.push(mem);
        }
        walk.push(x);
        // Make the walk end at exit properly: last mem -> x edge exists.
        assert!(pb.record_walk(&cfg, &walk));
        // hot: pure compute, scales 4x from 200 to 800 MHz.
        for (m, t) in [(0usize, 40.0), (1, 13.3), (2, 10.0)] {
            pb.set_block_cost(
                hot,
                m,
                BlockModeCost {
                    time_us: t,
                    energy_uj: t * 0.5,
                },
            );
        }
        // membound: time barely changes with mode.
        for (m, t) in [(0usize, 22.0), (1, 20.5), (2, 20.0)] {
            pb.set_block_cost(
                mem,
                m,
                BlockModeCost {
                    time_us: t,
                    energy_uj: 5.0,
                },
            );
        }
        for blk in [e, x] {
            for m in 0..3 {
                pb.set_block_cost(
                    blk,
                    m,
                    BlockModeCost {
                        time_us: 0.0,
                        energy_uj: 0.0,
                    },
                );
            }
        }
        (cfg, pb.finish())
    }

    #[test]
    fn best_single_mode_picks_slowest_feasible() {
        let (_, p) = setup();
        let l = ladder();
        // Totals: m0: 10*(40+22)=620; m1: 10*33.8=338; m2: 300.
        let (m, t, _) = best_single_mode(&p, &l, 700.0).unwrap();
        assert_eq!(m, ModeId(0));
        assert!((t - 620.0).abs() < 1e-9);
        let (m, _, _) = best_single_mode(&p, &l, 400.0).unwrap();
        assert_eq!(m, ModeId(1));
        assert!(best_single_mode(&p, &l, 100.0).is_none());
    }

    #[test]
    fn hsu_kremer_slows_memory_bound_blocks() {
        let (cfg, p) = setup();
        let l = ladder();
        // Threshold 2.0: membound dilates 22/20 = 1.1 < 2 (memory bound);
        // hot dilates 4.0 (compute).
        let s = hsu_kremer(&cfg, &p, &l, 500.0, 2.0).unwrap();
        let hot = cfg.block_by_label("hot").unwrap();
        let mem = cfg.block_by_label("membound").unwrap();
        let e_hm = cfg.edge_between(hot, mem).unwrap();
        let e_mh = cfg.edge_between(mem, hot).unwrap();
        assert_eq!(s.edge_modes[e_hm.index()], ModeId(0), "membound runs slow");
        // hot needs a fast-enough base mode to meet 500 µs:
        // mem slow = 220; hot at m1 = 133 -> 353 OK, at m0 = 400 -> 620 no.
        assert_eq!(s.edge_modes[e_mh.index()], ModeId(1));
        // Infeasible deadline.
        assert!(hsu_kremer(&cfg, &p, &l, 100.0, 2.0).is_none());
    }

    #[test]
    fn saputra_block_granularity_solves() {
        let (cfg, p) = setup();
        let l = ladder();
        let out = saputra(&cfg, &p, &l, 500.0).unwrap();
        assert!(out.predicted_time_us <= 500.0 + 1e-6);
        // No transition costs in the objective.
        assert_eq!(out.predicted_transition_energy_uj, 0.0);
        // Block granularity: all edges into the same block share a mode.
        let hot = cfg.block_by_label("hot").unwrap();
        let ins: Vec<_> = cfg.in_edges(hot).collect();
        let m0 = out.schedule.edge_modes[ins[0].index()];
        for e in &ins {
            assert_eq!(out.schedule.edge_modes[e.index()], m0);
        }
    }
}

/// Result of the Lee–Sakurai-style "voltage hopping" baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeeSakurai {
    /// Slower of the two hopping modes.
    pub slow: ModeId,
    /// Faster of the two hopping modes.
    pub fast: ModeId,
    /// Fraction of program (block) time run at the slow mode.
    pub slow_fraction: f64,
    /// Predicted energy, µJ (including switch energy).
    pub energy_uj: f64,
    /// Predicted time, µs (including switch time).
    pub time_us: f64,
    /// Number of mode switches performed.
    pub switches: u64,
}

/// The Lee–Sakurai run-time voltage-hopping baseline: mode-set points are
/// placed at regular *time intervals* rather than on program structure, so
/// the program time-slices between the two modes bracketing its ideal
/// speed. Switches cost `transition` at every interval boundary where the
/// mode changes (we charge one switch per interval, the worst case of a
/// strict alternation).
///
/// Returns `None` when no hopping pair can meet the deadline once switch
/// time is charged.
#[must_use]
pub fn lee_sakurai(
    profile: &Profile,
    ladder: &VoltageLadder,
    transition: &TransitionModel,
    deadline_us: f64,
    interval_us: f64,
) -> Option<LeeSakurai> {
    assert!(interval_us > 0.0, "interval must be positive");
    // Whole-program time/energy per mode.
    let totals: Vec<(f64, f64)> = ladder
        .modes()
        .map(|m| {
            (
                profile.total_time_at(m.index()),
                profile.total_energy_at(m.index()),
            )
        })
        .collect();

    // All at the slowest feasible mode: no switching at all.
    for (ix, &(t, e)) in totals.iter().enumerate() {
        if t <= deadline_us {
            if ix == 0 {
                return Some(LeeSakurai {
                    slow: ModeId(0),
                    fast: ModeId(0),
                    slow_fraction: 1.0,
                    energy_uj: e,
                    time_us: t,
                    switches: 0,
                });
            }
            break;
        }
    }

    // Hop between neighbours (m, m+1), slowest pair first.
    for m in 0..ladder.len() - 1 {
        let (t_slow, e_slow) = totals[m];
        let (t_fast, e_fast) = totals[m + 1];
        if t_fast > deadline_us {
            continue; // even the faster of the pair cannot make it
        }
        let switches = (deadline_us / interval_us).floor().max(0.0) as u64;
        let st = transition.mode_time_us(ladder, ModeId(m), ModeId(m + 1));
        let se = transition.mode_energy_uj(ladder, ModeId(m), ModeId(m + 1));
        let overhead = switches as f64 * st;
        let budget = deadline_us - overhead;
        if budget < t_fast {
            continue; // switching overhead ate the slack
        }
        // alpha·t_slow + (1-alpha)·t_fast = budget.
        let alpha = if t_slow > t_fast {
            ((budget - t_fast) / (t_slow - t_fast)).clamp(0.0, 1.0)
        } else {
            1.0
        };
        let energy = alpha * e_slow + (1.0 - alpha) * e_fast + switches as f64 * se;
        let time = alpha * t_slow + (1.0 - alpha) * t_fast + overhead;
        // Only count switches if the slice actually alternates.
        let (switches, energy, time) = if alpha == 0.0 || alpha == 1.0 {
            (
                0,
                alpha * e_slow + (1.0 - alpha) * e_fast,
                alpha * t_slow + (1.0 - alpha) * t_fast,
            )
        } else {
            (switches, energy, time)
        };
        if time <= deadline_us + 1e-9 {
            return Some(LeeSakurai {
                slow: ModeId(m),
                fast: ModeId(m + 1),
                slow_fraction: alpha,
                energy_uj: energy,
                time_us: time,
                switches,
            });
        }
    }
    None
}

#[cfg(test)]
mod lee_sakurai_tests {
    use super::*;
    use dvs_ir::{BlockModeCost, CfgBuilder, ProfileBuilder};
    use dvs_vf::AlphaPower;

    fn profile() -> Profile {
        let mut b = CfgBuilder::new("ls");
        let e = b.block("entry");
        let w = b.block("work");
        let x = b.block("exit");
        b.edge(e, w);
        b.edge(w, w);
        b.edge(w, x);
        let cfg = b.finish(e, x).unwrap();
        let mut pb = ProfileBuilder::new(&cfg, 3);
        let mut walk = vec![e];
        walk.extend(std::iter::repeat_n(w, 100));
        walk.push(x);
        assert!(pb.record_walk(&cfg, &walk));
        // work: pure compute — time scales exactly with frequency.
        for (m, t, en) in [(0usize, 4.0, 0.49), (1, 4.0 / 3.0, 1.69), (2, 1.0, 2.7225)] {
            pb.set_block_cost(
                w,
                m,
                BlockModeCost {
                    time_us: t,
                    energy_uj: en,
                },
            );
        }
        pb.finish()
    }

    fn ladder() -> VoltageLadder {
        VoltageLadder::xscale3(&AlphaPower::paper())
    }

    #[test]
    fn lax_deadline_hops_nowhere() {
        // Totals: 400 µs at slow, 133 at mid, 100 at fast.
        let p = profile();
        let tm = TransitionModel::with_capacitance_uf(1.0);
        let ls = lee_sakurai(&p, &ladder(), &tm, 500.0, 50.0).unwrap();
        assert_eq!(ls.switches, 0);
        assert_eq!(ls.slow, ModeId(0));
        assert!((ls.slow_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn intermediate_deadline_slices_between_neighbours() {
        let p = profile();
        let tm = TransitionModel::with_capacitance_uf(0.01);
        // 250 µs sits between the 400 µs slow and 133 µs mid totals.
        let ls = lee_sakurai(&p, &ladder(), &tm, 250.0, 25.0).unwrap();
        assert_eq!((ls.slow, ls.fast), (ModeId(0), ModeId(1)));
        assert!(ls.slow_fraction > 0.0 && ls.slow_fraction < 1.0);
        assert!(ls.time_us <= 250.0 + 1e-9);
        assert!(ls.switches > 0);
        // Energy must land between the two pure-mode energies.
        let e_slow = p.total_energy_at(0);
        let e_mid = p.total_energy_at(1);
        assert!(ls.energy_uj > e_slow.min(e_mid));
        assert!(ls.energy_uj < e_slow.max(e_mid) + 1.0);
    }

    #[test]
    fn heavy_switch_cost_forces_faster_pair_or_fails() {
        let p = profile();
        // Hopping every 5 µs at a cost of 12 µs per switch can never work.
        let tm = TransitionModel::with_capacitance_uf(10.0);
        let ls = lee_sakurai(&p, &ladder(), &tm, 140.0, 5.0);
        assert!(ls.is_none(), "overhead should make the deadline infeasible");
    }

    #[test]
    fn infeasible_deadline_is_none() {
        let p = profile();
        let tm = TransitionModel::free();
        assert!(lee_sakurai(&p, &ladder(), &tm, 50.0, 10.0).is_none());
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_rejected() {
        let p = profile();
        let tm = TransitionModel::free();
        let _ = lee_sakurai(&p, &ladder(), &tm, 500.0, 0.0);
    }
}
