use dvs_ir::Cfg;
use dvs_sim::{Machine, Trace};
use dvs_vf::OperatingPoint;

/// The paper's Fig. 16 deadline-selection scheme.
///
/// For each benchmark, five application-specific deadlines are placed
/// between the fastest-mode runtime (`Exec_time3`, below which no schedule
/// is feasible) and the slowest-mode runtime (`Exec_time1`, above which the
/// slowest mode alone suffices):
///
/// * **D1** — just above the fastest-mode runtime (stringent);
/// * **D2** — below the middle-mode runtime, forcing a fast/middle mix;
/// * **D3** — just above the middle-mode runtime;
/// * **D4** — between middle and slowest;
/// * **D5** — just *below* the slowest-mode runtime (lax, but the
///   all-slowest schedule alone cannot meet it — Table 4 of the paper puts
///   Deadline 5 at ~98.5% of the 200 MHz runtime for most benchmarks,
///   which is what makes the Fig. 15 transition-cost sweep interesting).
///
/// The interpolation fractions reproduce the relative positions of the
/// paper's Table 4 deadlines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlineScheme {
    /// Runtime at the slowest reference mode (200 MHz), µs.
    pub t_slow_us: f64,
    /// Runtime at the middle reference mode (600 MHz), µs.
    pub t_mid_us: f64,
    /// Runtime at the fastest reference mode (800 MHz), µs.
    pub t_fast_us: f64,
}

impl DeadlineScheme {
    /// Measures the three reference runtimes by running `trace` at the
    /// paper's 200/600/800 MHz XScale points.
    #[must_use]
    pub fn measure(machine: &Machine, cfg: &Cfg, trace: &Trace) -> Self {
        let t = |v: f64, f: f64| {
            machine
                .run(cfg, trace, OperatingPoint::new(v, f))
                .total_time_us
        };
        DeadlineScheme {
            t_slow_us: t(0.7, 200.0),
            t_mid_us: t(1.3, 600.0),
            t_fast_us: t(1.65, 800.0),
        }
    }

    /// Builds the scheme from known runtimes (µs).
    #[must_use]
    pub fn from_times(t_slow_us: f64, t_mid_us: f64, t_fast_us: f64) -> Self {
        DeadlineScheme {
            t_slow_us,
            t_mid_us,
            t_fast_us,
        }
    }

    /// The five deadlines, most stringent first (`[D1, D2, D3, D4, D5]`).
    #[must_use]
    pub fn deadlines_us(&self) -> [f64; 5] {
        let (ts, tm, tf) = (self.t_slow_us, self.t_mid_us, self.t_fast_us);
        [
            tf + 0.07 * (tm - tf),
            tf + 0.85 * (tm - tf),
            tm + 0.02 * (ts - tm),
            tm + 0.30 * (ts - tm),
            0.985 * ts,
        ]
    }

    /// The deadline for the 1-based paper index `i` (`1` = most stringent,
    /// `5` = most lax).
    ///
    /// # Panics
    ///
    /// Panics if `i` is not in `1..=5`.
    #[must_use]
    pub fn deadline_us(&self, i: usize) -> f64 {
        assert!((1..=5).contains(&i), "deadline index {i} out of range");
        self.deadlines_us()[i - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadlines_are_ordered_and_bracketed() {
        // Use the paper's mpeg/decode Table 4 numbers (ms).
        let s = DeadlineScheme::from_times(557_600.0, 187_300.0, 141_000.0);
        let d = s.deadlines_us();
        for w in d.windows(2) {
            assert!(w[0] < w[1], "deadlines must be increasing");
        }
        assert!(d[0] > s.t_fast_us, "D1 must be feasible at max speed");
        assert!(d[4] < s.t_slow_us, "D5 is just below the slow runtime");
        assert!(d[4] > 0.95 * s.t_slow_us);
        // D2 sits below the middle-mode runtime (forces mixing), D3 above.
        assert!(d[1] < s.t_mid_us);
        assert!(d[2] > s.t_mid_us);
    }

    #[test]
    fn positions_resemble_paper_table4_for_mpeg() {
        let s = DeadlineScheme::from_times(557_600.0, 187_300.0, 141_000.0);
        let d = s.deadlines_us();
        // Paper picks (ms): 151, 181, 190, 300, 557.6. Same ballpark:
        assert!(
            (d[0] / 1000.0 - 151.0).abs() < 10.0,
            "D1 = {}",
            d[0] / 1000.0
        );
        assert!(
            (d[1] / 1000.0 - 181.0).abs() < 10.0,
            "D2 = {}",
            d[1] / 1000.0
        );
        assert!(
            (d[2] / 1000.0 - 190.0).abs() < 10.0,
            "D3 = {}",
            d[2] / 1000.0
        );
        assert!(
            (d[3] / 1000.0 - 300.0).abs() < 15.0,
            "D4 = {}",
            d[3] / 1000.0
        );
        assert!(
            (d[4] / 1000.0 - 549.2).abs() < 1.0,
            "D5 = {}",
            d[4] / 1000.0
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_zero_rejected() {
        let s = DeadlineScheme::from_times(3.0, 2.0, 1.0);
        let _ = s.deadline_us(0);
    }
}
