//! Emission of the instrumented program.
//!
//! The real compiler's output is the original code plus `set_mode`
//! pseudo-instructions on CFG edges. This module renders that artifact as
//! an assembly-like listing, applying the hoisting post-pass: mode-sets
//! proven *silent* by [`crate::ScheduleAnalysis`] (their value always
//! matches the incoming context — e.g. a loop back-edge matching the loop
//! entry) are elided, exactly the optimization §4.2 sketches for heavily
//! executed back edges.

use crate::ScheduleAnalysis;
use dvs_ir::Cfg;
use dvs_sim::EdgeSchedule;
use dvs_vf::VoltageLadder;
use std::fmt::Write as _;

/// Static instrumentation statistics for one emitted program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmitStats {
    /// Mode-set points the naive (one-per-edge) placement would insert.
    pub naive_mode_sets: usize,
    /// Mode-set points remaining after eliding silent ones.
    pub emitted_mode_sets: usize,
    /// Live mode-sets sitting on *critical edges* (source has several
    /// successors and destination several predecessors): each needs a new
    /// block — an extra branch — to host its instruction, the code-growth
    /// concern §7 raises about edge-based placement.
    pub critical_edge_sets: usize,
}

impl EmitStats {
    /// Fraction of mode-set instructions removed by hoisting.
    #[must_use]
    pub fn elision_ratio(&self) -> f64 {
        if self.naive_mode_sets == 0 {
            0.0
        } else {
            1.0 - self.emitted_mode_sets as f64 / self.naive_mode_sets as f64
        }
    }
}

/// Renders `cfg` with `schedule`'s mode-set instructions as an
/// assembly-like listing, eliding silent mode-sets per `analysis`.
/// Returns the listing and its instrumentation statistics.
#[must_use]
pub fn emit_instrumented(
    cfg: &Cfg,
    ladder: &VoltageLadder,
    schedule: &EdgeSchedule,
    analysis: &ScheduleAnalysis,
) -> (String, EmitStats) {
    let mut out = String::new();
    let point = |m: dvs_vf::ModeId| ladder.point(m);
    let _ = writeln!(out, "; program: {}", cfg.name());
    let _ = writeln!(
        out,
        "; initial mode: {} (set at program entry)",
        point(schedule.initial)
    );
    let mut naive = 1; // the initial set
    let mut emitted = 1;
    let mut critical = 0;
    for b in cfg.blocks() {
        let _ = writeln!(out, "\n{}:", b.label);
        for inst in &b.insts {
            let _ = writeln!(out, "    {inst}");
        }
        let succs: Vec<_> = cfg.out_edges(b.id).collect();
        for e in succs {
            naive += 1;
            let edge = cfg.edge(e);
            let dst = &cfg.block(edge.dst).label;
            if analysis.is_silent(e) {
                let _ = writeln!(out, "    ; -> {dst} (mode-set elided: always silent)");
            } else {
                emitted += 1;
                let is_critical =
                    cfg.out_edges(edge.src).count() > 1 && cfg.in_edges(edge.dst).count() > 1;
                if is_critical {
                    critical += 1;
                }
                let _ = writeln!(
                    out,
                    "    -> {dst}: set_mode {}{}",
                    point(schedule.edge_modes[e.index()]),
                    if is_critical {
                        "  ; critical edge: needs a split block"
                    } else {
                        ""
                    }
                );
            }
        }
    }
    (
        out,
        EmitStats {
            naive_mode_sets: naive,
            emitted_mode_sets: emitted,
            critical_edge_sets: critical,
        },
    )
}

/// Renders `cfg` in Graphviz DOT with each edge coloured and labelled by
/// its assigned mode — the visual counterpart of the emitted listing.
/// Silent mode-sets are drawn dashed.
#[must_use]
pub fn schedule_to_dot(
    cfg: &Cfg,
    ladder: &VoltageLadder,
    schedule: &EdgeSchedule,
    analysis: &ScheduleAnalysis,
) -> String {
    use std::fmt::Write as _;
    // A fixed palette cycled by mode index; slow modes cool, fast warm.
    const COLORS: [&str; 6] = [
        "#4575b4", "#91bfdb", "#e0f3f8", "#fee090", "#fc8d59", "#d73027",
    ];
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", cfg.name());
    let _ = writeln!(
        s,
        "  label=\"initial mode: {}\"; node [shape=box fontname=monospace];",
        ladder.point(schedule.initial)
    );
    for b in cfg.blocks() {
        let _ = writeln!(s, "  {} [label=\"{}\"];", b.id.index(), b.label);
    }
    for e in cfg.edges() {
        let mode = schedule.edge_modes[e.id.index()];
        let color = COLORS[mode.index() * COLORS.len() / ladder.len().max(1) % COLORS.len()];
        let style = if analysis.is_silent(e.id) {
            "dashed"
        } else {
            "solid"
        };
        let _ = writeln!(
            s,
            "  {} -> {} [color=\"{color}\" style={style} label=\"{:.0}MHz\"];",
            e.src.index(),
            e.dst.index(),
            ladder.point(mode).frequency_mhz
        );
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_ir::{BlockModeCost, CfgBuilder, Inst, Opcode, ProfileBuilder, Reg};
    use dvs_vf::{AlphaPower, ModeId};

    #[test]
    fn emits_listing_with_elision() {
        let mut b = CfgBuilder::new("emit");
        let e = b.block("entry");
        let h = b.block("head");
        let body = b.block("body");
        let x = b.block("exit");
        b.push(body, Inst::alu(Opcode::IntAlu, Reg(1), &[Reg(1)]));
        b.edge(e, h);
        b.edge(h, body);
        b.edge(body, h);
        b.edge(h, x);
        let cfg = b.finish(e, x).unwrap();

        let mut pb = ProfileBuilder::new(&cfg, 3);
        let mut walk = vec![e];
        for _ in 0..5 {
            walk.push(h);
            walk.push(body);
        }
        walk.push(h);
        walk.push(x);
        assert!(pb.record_walk(&cfg, &walk));
        for blk in [e, h, body, x] {
            for m in 0..3 {
                pb.set_block_cost(
                    blk,
                    m,
                    BlockModeCost {
                        time_us: 1.0,
                        energy_uj: 1.0,
                    },
                );
            }
        }
        let profile = pb.finish();

        // Loop runs slow, exit switches fast: the back edge is silent.
        let mut schedule = dvs_sim::EdgeSchedule::uniform(&cfg, ModeId(0));
        schedule.edge_modes[cfg.edge_between(h, x).unwrap().index()] = ModeId(2);
        let analysis = ScheduleAnalysis::new(&cfg, &profile, &schedule);
        let ladder = dvs_vf::VoltageLadder::xscale3(&AlphaPower::paper());
        let (listing, stats) = emit_instrumented(&cfg, &ladder, &schedule, &analysis);

        assert!(listing.contains("; program: emit"));
        assert!(listing.contains("initial mode: 200 MHz"));
        assert!(listing.contains("set_mode 800 MHz"), "exit switch emitted");
        assert!(listing.contains("elided"), "silent sets marked");
        // 4 edges + initial = 5 naive points; only the h->x switch (plus
        // the initial set) survives.
        assert_eq!(stats.naive_mode_sets, 5);
        assert_eq!(stats.emitted_mode_sets, 2);
        assert!((stats.elision_ratio() - 0.6).abs() < 1e-12);
        // h -> x: h has two successors but x has a single predecessor, so
        // the mode-set can live at the top of x: not critical.
        assert_eq!(stats.critical_edge_sets, 0);
    }

    #[test]
    fn dot_renders_modes_and_silence() {
        let mut b = CfgBuilder::new("dots");
        let e = b.block("entry");
        let x = b.block("exit");
        b.edge(e, x);
        let cfg = b.finish(e, x).unwrap();
        let mut pb = ProfileBuilder::new(&cfg, 3);
        pb.record_walk(&cfg, &[e, x]);
        let profile = pb.finish();
        let schedule = dvs_sim::EdgeSchedule::uniform(&cfg, ModeId(2));
        let analysis = ScheduleAnalysis::new(&cfg, &profile, &schedule);
        let ladder = dvs_vf::VoltageLadder::xscale3(&AlphaPower::paper());
        let dot = schedule_to_dot(&cfg, &ladder, &schedule, &analysis);
        assert!(dot.contains("digraph"));
        assert!(dot.contains("800MHz"));
        assert!(dot.contains("style=dashed"), "uniform edge is silent");
        assert!(dot.contains("initial mode: 800 MHz"));
    }

    #[test]
    fn uniform_schedule_elides_everything_but_initial() {
        let mut b = CfgBuilder::new("u");
        let e = b.block("entry");
        let x = b.block("exit");
        b.edge(e, x);
        let cfg = b.finish(e, x).unwrap();
        let mut pb = ProfileBuilder::new(&cfg, 2);
        pb.record_walk(&cfg, &[e, x]);
        let profile = pb.finish();
        let schedule = dvs_sim::EdgeSchedule::uniform(&cfg, ModeId(1));
        let analysis = ScheduleAnalysis::new(&cfg, &profile, &schedule);
        let ladder = dvs_vf::VoltageLadder::xscale3(&AlphaPower::paper());
        let (_, stats) = emit_instrumented(&cfg, &ladder, &schedule, &analysis);
        assert_eq!(stats.emitted_mode_sets, 1);
    }
}

#[cfg(test)]
mod critical_edge_tests {
    use super::*;
    use dvs_ir::{BlockModeCost, CfgBuilder, ProfileBuilder};
    use dvs_vf::{AlphaPower, ModeId};

    #[test]
    fn critical_edges_are_flagged() {
        // Diamond with a cross edge: entry -> {a, b}, {a, b} -> exit, and
        // a -> b. Edge a->b is critical (a has 2 succs, b has 2 preds).
        let mut bld = CfgBuilder::new("crit");
        let e = bld.block("entry");
        let a = bld.block("a");
        let b = bld.block("b");
        let x = bld.block("exit");
        bld.edge(e, a);
        bld.edge(e, b);
        bld.edge(a, x);
        bld.edge(a, b);
        bld.edge(b, x);
        let cfg = bld.finish(e, x).unwrap();
        let mut pb = ProfileBuilder::new(&cfg, 2);
        pb.record_walk(&cfg, &[e, a, b, x]);
        pb.record_walk(&cfg, &[e, a, x]);
        pb.record_walk(&cfg, &[e, b, x]);
        for blk in [e, a, b, x] {
            for m in 0..2 {
                pb.set_block_cost(
                    blk,
                    m,
                    BlockModeCost {
                        time_us: 1.0,
                        energy_uj: 1.0,
                    },
                );
            }
        }
        let profile = pb.finish();
        // Make the a->b mode-set live: a runs fast, b slow.
        let mut schedule = dvs_sim::EdgeSchedule::uniform(&cfg, ModeId(1));
        let e_ab = cfg.edge_between(a, b).unwrap();
        let e_eb = cfg.edge_between(e, b).unwrap();
        schedule.edge_modes[e_ab.index()] = ModeId(0);
        schedule.edge_modes[e_eb.index()] = ModeId(0);
        let analysis = ScheduleAnalysis::new(&cfg, &profile, &schedule);
        let ladder = dvs_vf::VoltageLadder::xscale3(&AlphaPower::paper());
        let (listing, stats) = emit_instrumented(&cfg, &ladder, &schedule, &analysis);
        assert!(stats.critical_edge_sets >= 1, "a->b should be critical");
        assert!(listing.contains("critical edge"));
    }
}

#[cfg(test)]
mod loop_edge_tests {
    use super::*;
    use dvs_ir::{BlockModeCost, CfgBuilder, ProfileBuilder};
    use dvs_vf::{AlphaPower, ModeId};

    fn costs(pb: &mut ProfileBuilder, blocks: &[dvs_ir::BlockId], modes: usize) {
        for &blk in blocks {
            for m in 0..modes {
                pb.set_block_cost(
                    blk,
                    m,
                    BlockModeCost {
                        time_us: 1.0,
                        energy_uj: 1.0,
                    },
                );
            }
        }
    }

    #[test]
    fn live_back_edge_mode_set_is_placed_on_the_latch() {
        // entry -> head -> body -> head, head -> exit. Body runs fast
        // (mode-set on head->body), the back edge restores slow — a
        // genuinely live back-edge set: the listing must carry it under
        // the latch block, not elide it.
        let mut bld = CfgBuilder::new("live-back");
        let e = bld.block("entry");
        let h = bld.block("head");
        let body = bld.block("body");
        let x = bld.block("exit");
        bld.edge(e, h);
        bld.edge(h, body);
        bld.edge(body, h);
        bld.edge(h, x);
        let cfg = bld.finish(e, x).unwrap();
        let mut pb = ProfileBuilder::new(&cfg, 3);
        let mut walk = vec![e];
        for _ in 0..4 {
            walk.push(h);
            walk.push(body);
        }
        walk.push(h);
        walk.push(x);
        assert!(pb.record_walk(&cfg, &walk));
        costs(&mut pb, &[e, h, body, x], 3);
        let profile = pb.finish();

        let mut schedule = dvs_sim::EdgeSchedule::uniform(&cfg, ModeId(0));
        schedule.edge_modes[cfg.edge_between(h, body).unwrap().index()] = ModeId(2);
        let analysis = ScheduleAnalysis::new(&cfg, &profile, &schedule);
        let back = cfg.edge_between(body, h).unwrap();
        assert!(
            !analysis.is_silent(back),
            "back edge switches m2 -> m0 every iteration"
        );
        let ladder = dvs_vf::VoltageLadder::xscale3(&AlphaPower::paper());
        let (listing, stats) = emit_instrumented(&cfg, &ladder, &schedule, &analysis);
        // The latch block section must emit the restore to 200 MHz (mode
        // 0) on its edge back to the head.
        let body_section = listing
            .split("\nbody:")
            .nth(1)
            .expect("body section present");
        let body_section = body_section.split("\n\n").next().unwrap();
        assert!(
            body_section.contains("-> head: set_mode 200 MHz"),
            "live back-edge set placed in the latch:\n{body_section}"
        );
        // initial + head->body + body->head are live; entry->head and
        // head->exit stay at the initial mode and elide.
        assert_eq!(stats.naive_mode_sets, 5);
        assert_eq!(stats.emitted_mode_sets, 3);
    }

    #[test]
    fn self_loop_mode_set_placement_follows_silence() {
        // A self-loop body: entry -> loop, loop -> loop, loop -> exit.
        // With the self-loop edge at the same mode as loop entry, its set
        // is silent and elided; retargeting the self-loop to a different
        // mode makes it live — and critical (loop has 2 succs and 2
        // preds), so the listing flags the needed split block.
        let mut bld = CfgBuilder::new("self");
        let e = bld.block("entry");
        let l = bld.block("loop");
        let x = bld.block("exit");
        bld.edge(e, l);
        bld.edge(l, l);
        bld.edge(l, x);
        let cfg = bld.finish(e, x).unwrap();
        let mut pb = ProfileBuilder::new(&cfg, 3);
        assert!(pb.record_walk(&cfg, &[e, l, l, l, l, x]));
        costs(&mut pb, &[e, l, x], 3);
        let profile = pb.finish();
        let ladder = dvs_vf::VoltageLadder::xscale3(&AlphaPower::paper());
        let self_edge = cfg.edge_between(l, l).unwrap();

        // Same mode around the loop: the self-loop set is silent.
        let quiet = dvs_sim::EdgeSchedule::uniform(&cfg, ModeId(1));
        let analysis = ScheduleAnalysis::new(&cfg, &profile, &quiet);
        assert!(analysis.is_silent(self_edge));
        let (listing, stats) = emit_instrumented(&cfg, &ladder, &quiet, &analysis);
        assert!(
            listing.contains("; -> loop (mode-set elided: always silent)"),
            "silent self-loop is elided:\n{listing}"
        );
        assert_eq!(stats.emitted_mode_sets, 1, "only the initial set");
        assert_eq!(stats.critical_edge_sets, 0);

        // Self-loop at a different mode: fires every iteration after the
        // first, must be emitted, and sits on a critical edge.
        let mut churn = dvs_sim::EdgeSchedule::uniform(&cfg, ModeId(1));
        churn.edge_modes[self_edge.index()] = ModeId(2);
        let analysis = ScheduleAnalysis::new(&cfg, &profile, &churn);
        assert!(!analysis.is_silent(self_edge));
        let (listing, stats) = emit_instrumented(&cfg, &ladder, &churn, &analysis);
        let self_line = listing
            .lines()
            .find(|l| l.contains("-> loop: set_mode 800 MHz"))
            .unwrap_or_else(|| panic!("live self-loop set is emitted:\n{listing}"));
        assert!(
            self_line.contains("critical edge: needs a split block"),
            "self-loop edge needs a split block: {self_line}"
        );
        assert!(stats.emitted_mode_sets >= 2);
        assert_eq!(stats.critical_edge_sets, 1);
    }
}
