//! The pass-level error type.
//!
//! Historically every `DvsCompiler` entry point surfaced
//! [`dvs_milp::MilpError`], which forced callers to match *solver* errors
//! for failures that had nothing to do with the solver (a bad filter
//! fraction, a profile/ladder mismatch). [`PassError`] names the pipeline
//! stage that failed; solver failures are wrapped, not flattened.

use dvs_milp::MilpError;
use std::fmt;

/// An error from one stage of the compile-time DVS pass.
#[derive(Debug, Clone, PartialEq)]
pub enum PassError {
    /// Profiling input was unusable (e.g. the profile's mode count does not
    /// match the voltage ladder it is being compiled against).
    Profile(String),
    /// Edge filtering was misconfigured (e.g. a tail fraction outside
    /// `[0, 1)`).
    Filter(String),
    /// The MILP could not be formulated from the inputs (e.g. a
    /// non-positive or non-finite deadline).
    Formulate(String),
    /// The MILP solver failed; [`MilpError::Infeasible`] here means the
    /// deadline cannot be met by any mode assignment.
    Solve(MilpError),
    /// Post-solve validation could not run (e.g. schedule/ladder mismatch).
    Validate(String),
    /// The post-emit static verifier rejected the schedule (only reachable
    /// with `CompilerBuilder::verify_emitted(true)`).
    Verify(String),
    /// The independent `dvs-cert` checker rejected the solver's optimality
    /// certificate (only reachable with `CompilerBuilder::certify(true)`).
    /// The payload names the reject code and locus.
    Certify(String),
}

impl PassError {
    /// Whether this is the common "deadline cannot be met" outcome, which
    /// callers sweeping deadlines usually treat as data, not as a fault.
    #[must_use]
    pub fn is_infeasible(&self) -> bool {
        matches!(self, PassError::Solve(MilpError::Infeasible))
    }
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PassError::Profile(msg) => write!(f, "profile stage: {msg}"),
            PassError::Filter(msg) => write!(f, "filter stage: {msg}"),
            PassError::Formulate(msg) => write!(f, "formulate stage: {msg}"),
            PassError::Solve(e) => write!(f, "solve stage: {e}"),
            PassError::Validate(msg) => write!(f, "validate stage: {msg}"),
            PassError::Verify(msg) => write!(f, "verify stage: {msg}"),
            PassError::Certify(msg) => write!(f, "certify stage: {msg}"),
        }
    }
}

impl std::error::Error for PassError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PassError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MilpError> for PassError {
    fn from(e: MilpError) -> Self {
        PassError::Solve(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_stage() {
        assert_eq!(
            PassError::Filter("tail fraction 1.5 outside [0, 1)".into()).to_string(),
            "filter stage: tail fraction 1.5 outside [0, 1)"
        );
        assert!(PassError::from(MilpError::Infeasible)
            .to_string()
            .starts_with("solve stage:"));
        assert_eq!(
            PassError::Verify("2 errors".into()).to_string(),
            "verify stage: 2 errors"
        );
        assert_eq!(
            PassError::Certify("bound-too-weak: leaf 3".into()).to_string(),
            "certify stage: bound-too-weak: leaf 3"
        );
    }

    #[test]
    fn infeasible_is_recognized_through_the_wrapper() {
        assert!(PassError::from(MilpError::Infeasible).is_infeasible());
        assert!(!PassError::Profile("x".into()).is_infeasible());
        assert!(!PassError::from(MilpError::SimplexStalled).is_infeasible());
    }

    #[test]
    fn source_exposes_the_solver_error() {
        use std::error::Error as _;
        let e = PassError::from(MilpError::Unbounded);
        assert!(e.source().is_some());
        assert!(PassError::Validate("v".into()).source().is_none());
    }
}
