use dvs_ir::{Cfg, EdgeId, Profile};

/// The §5.2 edge filter.
///
/// Edges whose *total destination energy* (`G(i,j) · E(j, m_ref)`, for an
/// arbitrary reference mode) lies in the cumulative tail comprising less
/// than 2% of total energy give up their independent mode variable: each is
/// tied to the incoming edge of its **source** block with the largest
/// profile count, so the mode never changes along the filtered edge when
/// the source was entered the common way. Timing constraints still see the
/// filtered edges, so deadlines are met exactly; only achievable energy is
/// affected (Table 3 shows the loss is negligible).
#[derive(Debug, Clone)]
pub struct EdgeFilter {
    /// `rep[e]` is the representative edge whose mode variable edge `e`
    /// shares. Unfiltered edges are their own representative.
    rep: Vec<EdgeId>,
    /// `tie[e]` is the edge `e` was *immediately* tied to by the tail
    /// rule, before chains were resolved to fixed points — the provenance
    /// diagnostics need to point at original edges. `None` for edges that
    /// kept their own variable.
    tie: Vec<Option<EdgeId>>,
    /// Number of edges that kept their own variable.
    independent: usize,
}

impl EdgeFilter {
    /// The identity filter: every edge independent.
    #[must_use]
    pub fn identity(cfg: &Cfg) -> Self {
        EdgeFilter {
            rep: cfg.edges().map(|e| e.id).collect(),
            tie: vec![None; cfg.num_edges()],
            independent: cfg.num_edges(),
        }
    }

    /// Applies the 2%-tail rule using `profile` counts and per-block energy
    /// at `ref_mode`.
    #[must_use]
    pub fn tail_rule(cfg: &Cfg, profile: &Profile, ref_mode: usize, tail_fraction: f64) -> Self {
        // Total destination energy per edge.
        let energy: Vec<f64> = cfg
            .edges()
            .map(|e| {
                profile.edge_count(e.id) as f64 * profile.block_cost(e.dst, ref_mode).energy_uj
            })
            .collect();
        let total: f64 = energy.iter().sum();
        let mut order: Vec<usize> = (0..energy.len()).collect();
        order.sort_by(|&a, &b| energy[a].partial_cmp(&energy[b]).expect("finite energies"));

        let mut filtered = vec![false; energy.len()];
        let mut acc = 0.0;
        for &ix in &order {
            acc += energy[ix];
            if acc < tail_fraction * total {
                filtered[ix] = true;
            } else {
                break;
            }
        }

        // Tie each filtered edge (i, j) to the hottest incoming edge of its
        // source block i. Edges from the CFG entry have no incoming edge
        // and stay independent.
        let mut rep: Vec<EdgeId> = cfg.edges().map(|e| e.id).collect();
        let mut tie: Vec<Option<EdgeId>> = vec![None; cfg.num_edges()];
        for e in cfg.edges() {
            if !filtered[e.id.index()] {
                continue;
            }
            let hottest = cfg.in_edges(e.src).max_by_key(|&ie| profile.edge_count(ie));
            if let Some(h) = hottest {
                rep[e.id.index()] = h;
                tie[e.id.index()] = Some(h);
            }
        }
        // Resolve chains (a filtered edge tied to another filtered edge),
        // guarding against cycles by bounding the walk.
        let n = rep.len();
        for e in 0..n {
            let mut cur = rep[e];
            for _ in 0..n {
                let nxt = rep[cur.index()];
                if nxt == cur {
                    break;
                }
                cur = nxt;
            }
            rep[e] = cur;
        }
        let independent = (0..n).filter(|&e| rep[e] == EdgeId(e)).count();
        if dvs_obs::enabled() {
            dvs_obs::counter("filter.edges_tied", (n - independent) as u64);
            dvs_obs::gauge("filter.independent_edges", independent as f64);
        }
        EdgeFilter {
            rep,
            tie,
            independent,
        }
    }

    /// The representative edge carrying `e`'s mode variable.
    #[must_use]
    pub fn rep(&self, e: EdgeId) -> EdgeId {
        self.rep[e.index()]
    }

    /// The edge `e` was *directly* tied to by the tail rule, before chain
    /// resolution — `rep(e)` may sit several hops away, but diagnostics
    /// about `e` should name this immediate dominant predecessor.
    /// `None` when `e` kept its own variable.
    #[must_use]
    pub fn tie_source(&self, e: EdgeId) -> Option<EdgeId> {
        self.tie[e.index()]
    }

    /// All `(filtered edge, immediate tie)` pairs, in edge-id order.
    pub fn ties(&self) -> impl Iterator<Item = (EdgeId, EdgeId)> + '_ {
        self.tie
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.map(|h| (EdgeId(i), h)))
    }

    /// Whether `e` kept its own variable.
    #[must_use]
    pub fn is_independent(&self, e: EdgeId) -> bool {
        self.rep[e.index()] == e
    }

    /// Number of independent edges.
    #[must_use]
    pub fn num_independent(&self) -> usize {
        self.independent
    }

    /// Total number of edges covered.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.rep.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_ir::{BlockModeCost, CfgBuilder, ProfileBuilder};

    /// diamond with a hot path (entry->a->exit) and a cold path via b.
    fn setup() -> (Cfg, Profile) {
        let mut b = CfgBuilder::new("f");
        let e = b.block("entry");
        let a = b.block("a");
        let cold = b.block("b");
        let x = b.block("exit");
        b.edge(e, a);
        b.edge(e, cold);
        b.edge(a, x);
        b.edge(cold, x);
        let cfg = b.finish(e, x).unwrap();
        let mut pb = ProfileBuilder::new(&cfg, 1);
        for _ in 0..99 {
            pb.record_walk(&cfg, &[e, a, x]);
        }
        pb.record_walk(&cfg, &[e, cold, x]);
        for blk in [e, a, cold, x] {
            pb.set_block_cost(
                blk,
                0,
                BlockModeCost {
                    time_us: 1.0,
                    energy_uj: 1.0,
                },
            );
        }
        (cfg, pb.finish())
    }

    #[test]
    fn identity_keeps_all_edges() {
        let (cfg, _) = setup();
        let f = EdgeFilter::identity(&cfg);
        assert_eq!(f.num_independent(), cfg.num_edges());
        for e in cfg.edges() {
            assert!(f.is_independent(e.id));
        }
    }

    #[test]
    fn tail_rule_ties_cold_edges() {
        let (cfg, p) = setup();
        // Energies per edge: e->a: 99, e->b: 1, a->x: 99, b->x: 1.
        // Total 200; 2% = 4. Ascending: (e->b, 1), (b->x, 1), then 99 > 4.
        // So the two cold edges are filtered.
        let f = EdgeFilter::tail_rule(&cfg, &p, 0, 0.02);
        let e = cfg.entry();
        let cold = cfg.block_by_label("b").unwrap();
        let x = cfg.exit();
        let e_cold = cfg.edge_between(e, cold).unwrap();
        let cold_x = cfg.edge_between(cold, x).unwrap();
        // e->cold leaves the entry block (no incoming edges): stays
        // independent.
        assert!(f.is_independent(e_cold));
        // cold->x is tied to cold's hottest (only) incoming edge e->cold.
        assert!(!f.is_independent(cold_x));
        assert_eq!(f.rep(cold_x), e_cold);
        assert_eq!(f.num_independent(), cfg.num_edges() - 1);
        // Provenance: the immediate tie is recorded and enumerable.
        assert_eq!(f.tie_source(cold_x), Some(e_cold));
        assert_eq!(f.tie_source(e_cold), None);
        assert_eq!(f.ties().collect::<Vec<_>>(), vec![(cold_x, e_cold)]);
    }

    #[test]
    fn tie_provenance_survives_chain_resolution() {
        // A three-hop chain entry -> a -> b -> c -> exit where the last
        // two edges are filtered: c->exit ties immediately to b->c, which
        // itself ties to a->b. After chain resolution rep(c->exit) jumps
        // to a->b, but tie_source must still name b->c.
        let mut builder = CfgBuilder::new("chain");
        let e = builder.block("entry");
        let a = builder.block("a");
        let bb = builder.block("b");
        let c = builder.block("c");
        let x = builder.block("exit");
        builder.edge(e, a);
        builder.edge(a, bb);
        builder.edge(bb, c);
        builder.edge(c, x);
        let cfg = builder.finish(e, x).unwrap();
        let mut pb = ProfileBuilder::new(&cfg, 1);
        pb.record_walk(&cfg, &[e, a, bb, c, x]);
        // Give the tail blocks tiny energies so the last two edges fall
        // in the cumulative tail.
        for (blk, uj) in [(e, 100.0), (a, 100.0), (bb, 100.0), (c, 0.1), (x, 0.1)] {
            pb.set_block_cost(
                blk,
                0,
                BlockModeCost {
                    time_us: 1.0,
                    energy_uj: uj,
                },
            );
        }
        let p = pb.finish();
        let f = EdgeFilter::tail_rule(&cfg, &p, 0, 0.01);
        let b_c = cfg.edge_between(bb, c).unwrap();
        let c_x = cfg.edge_between(c, x).unwrap();
        let a_b = cfg.edge_between(a, bb).unwrap();
        assert!(!f.is_independent(b_c));
        assert!(!f.is_independent(c_x));
        // Fixed-point representative vs immediate provenance.
        assert_eq!(f.rep(c_x), a_b);
        assert_eq!(f.tie_source(c_x), Some(b_c));
        assert_eq!(f.tie_source(b_c), Some(a_b));
        // Every tie source is a real CFG edge into the filtered edge's
        // source block.
        for (edge, tied_to) in f.ties() {
            assert_eq!(cfg.edge(tied_to).dst, cfg.edge(edge).src);
        }
    }

    #[test]
    fn zero_tail_filters_nothing() {
        let (cfg, p) = setup();
        let f = EdgeFilter::tail_rule(&cfg, &p, 0, 0.0);
        assert_eq!(f.num_independent(), cfg.num_edges());
    }

    #[test]
    fn full_tail_ties_everything_tieable() {
        let (cfg, p) = setup();
        let f = EdgeFilter::tail_rule(&cfg, &p, 0, 1.1);
        // Edges out of the entry block cannot be tied; everything else can.
        let tied = cfg.edges().filter(|e| !f.is_independent(e.id)).count();
        assert!(tied >= 2, "tied {tied}");
        // Chains resolve to independent representatives.
        for e in cfg.edges() {
            let r = f.rep(e.id);
            assert_eq!(f.rep(r), r, "rep must be a fixed point");
        }
    }
}
