//! Canonical content hashing for compile requests.
//!
//! The serve daemon keys its solve cache by *content*: two requests that
//! would run the exact same profile → filter → MILP pipeline must hash to
//! the same 64-bit digest, and any semantic difference (a different ladder
//! point, tail fraction, hoisting toggle, deadline, workload) must change
//! it. The hasher is a hand-rolled FNV-1a over a canonical byte encoding —
//! no `std::hash::Hasher` involvement, because `Hash` implementations are
//! allowed to change between compiler releases while cache keys should
//! only depend on bytes we feed in deliberately.
//!
//! Floats are hashed by their IEEE-754 bit pattern (`to_bits`), so `0.02`
//! always hashes the same way and `-0.0`/`0.0` are distinct; every
//! variable-length field is prefixed with its length so concatenations
//! cannot collide (`"ab" + "c"` vs `"a" + "bc"`).

/// A 64-bit FNV-1a hasher over a canonical byte encoding.
///
/// ```
/// use dvs_compiler::fingerprint::Fnv64;
/// let mut h = Fnv64::new();
/// h.write_str("gsm/encode");
/// h.write_u64(3);
/// let a = h.finish();
/// let mut h2 = Fnv64::new();
/// h2.write_str("gsm/encode");
/// h2.write_u64(3);
/// assert_eq!(a, h2.finish());
/// ```
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes (no length prefix — compose with the typed
    /// writers for collision-safe encodings).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` as 8 little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `usize` (widened to `u64` so 32- and 64-bit hosts agree).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs a boolean as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_bytes(&[u8::from(v)]);
    }

    /// Absorbs an `f64` by IEEE-754 bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorbs a string with a length prefix.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The current digest. The hasher may keep absorbing afterwards.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_fnv1a_reference_vectors() {
        // Published FNV-1a 64 vectors.
        let digest = |s: &str| {
            let mut h = Fnv64::new();
            h.write_bytes(s.as_bytes());
            h.finish()
        };
        assert_eq!(digest(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(digest("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(digest("foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn length_prefixes_prevent_concatenation_collisions() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn float_bits_distinguish_signed_zero() {
        let mut a = Fnv64::new();
        a.write_f64(0.0);
        let mut b = Fnv64::new();
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }
}
