use crate::EdgeFilter;
use dvs_ir::{Cfg, EdgeId, LocalPath, Profile};
use dvs_milp::{
    solve_seeded, solve_with_choice, LinExpr, MilpError, Model, Sense, SolveOptions, SolveStats,
    SolverChoice, Var,
};
use dvs_sim::EdgeSchedule;
use dvs_vf::{ModeId, TransitionModel, VoltageLadder};
use std::time::{Duration, Instant};

/// Mode-variable granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// One mode variable group per CFG edge — the paper's formulation.
    /// Blocks may run at different modes depending on the entry path.
    Edge,
    /// One group per basic block (all incoming edges tied) — the coarser
    /// granularity of prior work (Saputra et al.), kept as an ablation.
    Block,
}

/// Result of building and solving the DVS MILP.
#[derive(Debug, Clone)]
pub struct MilpOutcome {
    /// The extracted per-edge mode assignment.
    pub schedule: EdgeSchedule,
    /// Objective value: predicted total energy (µJ), including transition
    /// energy.
    pub predicted_energy_uj: f64,
    /// Predicted run time (µs) of the chosen schedule, including transition
    /// time.
    pub predicted_time_us: f64,
    /// Predicted dynamic transition energy (µJ).
    pub predicted_transition_energy_uj: f64,
    /// Branch-and-bound statistics.
    pub solve_stats: SolveStats,
    /// Wall-clock MILP solve time.
    pub solve_time: Duration,
    /// Number of binary variables in the model.
    pub binary_vars: usize,
    /// Number of constraints in the model.
    pub constraints: usize,
    /// Optimality certificate plus the independent checker's verdict, when
    /// requested via [`MilpFormulation::with_certify`].
    pub certificate: Option<CertifyOutcome>,
}

/// An optimality certificate for a solved MILP together with the verdict
/// of the independent `dvs-cert` checker. The checker shares no code with
/// the solver (it depends only on the certificate format and exact dyadic
/// arithmetic), so an accepting report is evidence the solver did not
/// merely agree with itself.
#[derive(Debug, Clone)]
pub struct CertifyOutcome {
    /// The certificate in its canonical encoded form ([`dvs_cert`]'s
    /// `dvs-cert.v1` compact JSON). Byte-stable for a fixed model and
    /// solver configuration.
    pub encoded: String,
    /// The independent checker's verdict and proof-shape statistics.
    pub report: dvs_cert::CheckReport,
    /// Wall-clock microseconds the independent check took
    /// (nondeterministic; excluded from canonical serializations).
    pub check_us: f64,
}

/// Builder for the §4.2 MILP (single input category).
#[derive(Debug)]
pub struct MilpFormulation<'a> {
    cfg: &'a Cfg,
    profile: &'a Profile,
    ladder: &'a VoltageLadder,
    transition: &'a TransitionModel,
    filter: EdgeFilter,
    granularity: Granularity,
    deadline_us: f64,
    pinned: Vec<(EdgeId, ModeId)>,
    solver_jobs: usize,
    solver: SolverChoice,
    certify: bool,
}

/// Internal handle: variables of one mode group.
pub(crate) struct GroupVars {
    /// `k[m]` binaries, one per ladder mode.
    pub k: Vec<Var>,
}

/// A fully assembled model plus the handles needed to warm-start it and to
/// read the solution back out. Shared between the integral solve and the
/// continuous relaxation.
struct BuiltMilp {
    model: Model,
    groups: Vec<Option<GroupVars>>,
    start: Vec<Var>,
    time: LinExpr,
    transition_energy: LinExpr,
    /// Auxiliary absolute-value variables and the expressions they bound
    /// (`aux >= |expr|`): at any candidate point, setting `aux = |expr|`
    /// makes the four linearization rows tight — used when assembling
    /// warm-start vectors.
    aux_abs: Vec<(Var, LinExpr)>,
}

impl BuiltMilp {
    /// The `k` variables of the group owning `slot` (`None` = start mode).
    fn kvars(&self, rep: Option<EdgeId>) -> &[Var] {
        match rep {
            Some(r) => {
                &self.groups[r.index()]
                    .as_ref()
                    .expect("group created for every rep")
                    .k
            }
            None => &self.start,
        }
    }
}

impl<'a> MilpFormulation<'a> {
    /// Starts a formulation with no filtering at edge granularity.
    #[must_use]
    pub fn new(
        cfg: &'a Cfg,
        profile: &'a Profile,
        ladder: &'a VoltageLadder,
        transition: &'a TransitionModel,
        deadline_us: f64,
    ) -> Self {
        MilpFormulation {
            cfg,
            profile,
            ladder,
            transition,
            filter: EdgeFilter::identity(cfg),
            granularity: Granularity::Edge,
            deadline_us,
            pinned: Vec::new(),
            solver_jobs: 1,
            solver: SolverChoice::Auto,
            certify: false,
        }
    }

    /// Requests an optimality certificate: after solving, the solver's
    /// branch-and-bound (or continuous-voltage) proof is exported as a
    /// [`dvs_cert::Certificate`] and replayed by the independent
    /// exact-arithmetic checker. The encoded certificate and the checker's
    /// report land in [`MilpOutcome::certificate`]; a prover failure (the
    /// solution could not be re-derived) surfaces as a solve error, while a
    /// checker rejection is recorded in the report for the caller to gate
    /// on.
    #[must_use]
    pub fn with_certify(mut self, on: bool) -> Self {
        self.certify = on;
        self
    }

    /// Solver threads for the MILP's root branch split (see
    /// [`SolveOptions`]'s `jobs`). `1` (the default) is fully sequential.
    #[must_use]
    pub fn with_solver_jobs(mut self, jobs: usize) -> Self {
        self.solver_jobs = jobs.max(1);
        self
    }

    /// Selects the solver backend. [`SolverChoice::Auto`] (the default)
    /// runs branch-and-bound on the integral model; forcing
    /// [`SolverChoice::Continuous`] solves the exact continuous-voltage
    /// relaxation and rounds (only valid for transition-free ladder
    /// models — anything else returns [`MilpError::Unsupported`]).
    #[must_use]
    pub fn with_solver(mut self, solver: SolverChoice) -> Self {
        self.solver = solver;
        self
    }

    /// Forces the mode on `edge` to `mode` — e.g. pinning an I/O or
    /// latency-critical region to a specific speed regardless of what the
    /// optimizer would choose. Pins apply to the edge's representative
    /// group, so tied edges inherit them.
    #[must_use]
    pub fn with_pinned_edge(mut self, edge: EdgeId, mode: ModeId) -> Self {
        self.pinned.push((edge, mode));
        self
    }

    /// Installs an [`EdgeFilter`] (variable tying).
    #[must_use]
    pub fn with_filter(mut self, filter: EdgeFilter) -> Self {
        self.filter = filter;
        self
    }

    /// Switches the mode-variable granularity.
    #[must_use]
    pub fn with_granularity(mut self, granularity: Granularity) -> Self {
        self.granularity = granularity;
        self
    }

    /// Effective representative of `e` under filter + granularity.
    fn rep(&self, e: EdgeId) -> EdgeId {
        match self.granularity {
            Granularity::Edge => self.filter.rep(e),
            Granularity::Block => {
                // All edges into the same block share the lowest-id edge.
                let dst = self.cfg.edge(e).dst;
                self.cfg
                    .in_edges(dst)
                    .min()
                    .expect("non-entry blocks have in-edges")
            }
        }
    }

    /// Assembles the §4.2 model: one binary group per representative edge
    /// plus the start group, block costs attributed per incoming edge,
    /// transition costs per local path, and the deadline row.
    fn build_model(&self) -> BuiltMilp {
        let formulate_span = dvs_obs::span!("pass.formulate");
        let build_start = Instant::now();
        let n_modes = self.ladder.len();
        let mut model = Model::new(Sense::Minimize);

        // --- mode variable groups: one per representative edge + start ---
        let mut groups: Vec<Option<GroupVars>> = (0..self.cfg.num_edges()).map(|_| None).collect();
        for e in self.cfg.edges() {
            let r = self.rep(e.id);
            if groups[r.index()].is_none() {
                let k: Vec<Var> = (0..n_modes)
                    .map(|m| model.bool_var(format!("k_{}_{m}", r.index())))
                    .collect();
                let mut sum = LinExpr::zero();
                for &v in &k {
                    sum += LinExpr::from(v);
                }
                model.add_eq(sum, 1.0);
                model.add_sos1(k.clone());
                groups[r.index()] = Some(GroupVars { k });
            }
        }
        let start: Vec<Var> = (0..n_modes)
            .map(|m| model.bool_var(format!("k_start_{m}")))
            .collect();
        {
            let mut sum = LinExpr::zero();
            for &v in &start {
                sum += LinExpr::from(v);
            }
            model.add_eq(sum, 1.0);
            model.add_sos1(start.clone());
        }
        let kvars = |slot: Option<EdgeId>| -> &[Var] {
            match slot {
                Some(e) => {
                    &groups[self.rep(e).index()]
                        .as_ref()
                        .expect("group created for every rep")
                        .k
                }
                None => &start,
            }
        };

        // --- block energy & time, attributed per incoming edge ---
        let mut energy = LinExpr::zero();
        let mut time = LinExpr::zero();
        for e in self.cfg.edges() {
            let g = self.profile.edge_count(e.id) as f64;
            if g == 0.0 {
                continue;
            }
            let ks = kvars(Some(e.id));
            for (m, &kv) in ks.iter().enumerate() {
                let c = self.profile.block_cost(e.dst, m);
                energy += (g * c.energy_uj) * kv;
                time += (g * c.time_us) * kv;
            }
        }
        // Entry block runs under the start mode once per run.
        let entry_runs = self.profile.block_count(self.cfg.entry()) as f64;
        for (m, &kv) in start.iter().enumerate() {
            let c = self.profile.block_cost(self.cfg.entry(), m);
            energy += (entry_runs * c.energy_uj) * kv;
            time += (entry_runs * c.time_us) * kv;
        }

        // --- transition costs per local path ---
        let ce = self.transition.energy_uj(1.0, 0.0); // (1-u)·c
        let ct = self.transition.time_us(1.0, 0.0); // 2c/IMAX
        let mut transition_energy = LinExpr::zero();
        let mut aux_abs: Vec<(Var, LinExpr)> = Vec::new();
        if ce > 0.0 || ct > 0.0 {
            for (path, d) in self.profile.local_paths() {
                let Some(exit) = path.exit else { continue };
                let d = d as f64;
                let enter_rep = path.enter.map(|e| self.rep(e));
                let exit_rep = self.rep(exit);
                if enter_rep == Some(exit_rep) {
                    continue; // same variable group: never a transition
                }
                let ke = kvars(path.enter);
                let kx = kvars(Some(exit));
                // X = Σ V²_m (ke_m - kx_m); Y likewise with V.
                let mut x = LinExpr::zero();
                let mut y = LinExpr::zero();
                for (m, pt) in self.ladder.iter() {
                    let (vv, v) = (pt.voltage * pt.voltage, pt.voltage);
                    x += vv * ke[m.index()];
                    x -= vv * kx[m.index()];
                    y += v * ke[m.index()];
                    y -= v * kx[m.index()];
                }
                let ep = model.num_var(format!("e_p{}", path.block.index()), 0.0, f64::INFINITY);
                let tp = model.num_var(format!("t_p{}", path.block.index()), 0.0, f64::INFINITY);
                aux_abs.push((ep, x.clone()));
                aux_abs.push((tp, y.clone()));
                model.add_ge(LinExpr::from(ep) - x.clone(), 0.0);
                model.add_ge(LinExpr::from(ep) + x, 0.0);
                model.add_ge(LinExpr::from(tp) - y.clone(), 0.0);
                model.add_ge(LinExpr::from(tp) + y, 0.0);
                transition_energy += (d * ce) * ep;
                time += (d * ct) * tp;
            }
        }

        // User pins: the chosen group member is fixed to 1.
        for &(edge, mode) in &self.pinned {
            let ks = kvars(Some(edge));
            model.add_eq(LinExpr::from(ks[mode.index()]), 1.0);
        }

        let objective = energy + transition_energy.clone();
        model.set_objective(objective);
        model.add_le(time.clone(), self.deadline_us);

        if dvs_obs::enabled() {
            dvs_obs::gauge("milp.num_vars", model.num_vars() as f64);
            dvs_obs::gauge("milp.num_binary_vars", model.num_int_vars() as f64);
            dvs_obs::gauge("milp.num_constraints", model.num_constraints() as f64);
            dvs_obs::gauge(
                "pass.formulate.wall_us",
                build_start.elapsed().as_secs_f64() * 1e6,
            );
        }
        drop(formulate_span);

        BuiltMilp {
            model,
            groups,
            start,
            time,
            transition_energy,
            aux_abs,
        }
    }

    /// A warm-start point from the exact continuous-voltage algorithm:
    /// project the model onto its pure ladder shape (group selection rows
    /// plus the block-cost part of the deadline row, transitions ignored),
    /// solve that with the [`dvs_milp::ContinuousYds`] backend, and take
    /// its rounded incumbent. Transition aux variables are then set to
    /// their tight values; if the reassembled point misses the real
    /// deadline (transition time the projection ignored), `None`.
    fn yds_rounded_start(&self, built: &BuiltMilp) -> Option<Vec<f64>> {
        let ecoef: std::collections::HashMap<usize, f64> = built
            .model
            .objective()
            .terms()
            .map(|(v, c)| (v.index(), c))
            .collect();
        let tcoef: std::collections::HashMap<usize, f64> =
            built.time.terms().map(|(v, c)| (v.index(), c)).collect();
        let mut sub = Model::new(Sense::Minimize);
        let mut sobj = LinExpr::zero();
        let mut stime = LinExpr::zero();
        let mut map: Vec<(usize, Var)> = Vec::new();
        for ks in built
            .groups
            .iter()
            .flatten()
            .map(|g| &g.k)
            .chain(std::iter::once(&built.start))
        {
            let mut sum = LinExpr::zero();
            for &kv in ks {
                let v = sub.bool_var(format!("s{}", kv.index()));
                sobj += ecoef.get(&kv.index()).copied().unwrap_or(0.0) * v;
                stime += tcoef.get(&kv.index()).copied().unwrap_or(0.0) * v;
                sum += LinExpr::from(v);
                map.push((kv.index(), v));
            }
            sub.add_eq(sum, 1.0);
        }
        sub.set_objective(sobj);
        sub.add_le(stime, self.deadline_us);
        let sol =
            solve_with_choice(&sub, SolverChoice::Continuous, &SolveOptions::default()).ok()?;
        let mut x = vec![0.0; built.model.num_vars()];
        for &(bi, sv) in &map {
            x[bi] = sol.value(sv).round();
        }
        for (av, expr) in &built.aux_abs {
            x[av.index()] = expr.eval(&x).abs();
        }
        (built.time.eval(&x) <= self.deadline_us).then_some(x)
    }

    /// Builds and solves the MILP.
    ///
    /// # Errors
    ///
    /// [`MilpError::Infeasible`] when no assignment meets the deadline, or
    /// solver resource errors.
    pub fn solve(&self) -> Result<MilpOutcome, MilpError> {
        let built = self.build_model();
        let binary_vars = built.model.num_int_vars();
        let constraints = built.model.num_constraints();

        // Warm start, best of two candidates: the slowest single mode that
        // meets the deadline (always feasible: all groups at one mode,
        // zero transition cost), and the rounded continuous-voltage (YDS)
        // point, which mixes modes per group and usually prunes far
        // harder. Either is rejected by the solver's feasibility check if
        // a user pin contradicts it, so seeding is always safe.
        let uniform: Option<Vec<f64>> = self
            .ladder
            .modes()
            .find(|m| self.profile.total_time_at(m.index()) <= self.deadline_us)
            .map(|m| {
                let mut x = vec![0.0; built.model.num_vars()];
                for g in built.groups.iter().flatten() {
                    x[g.k[m.index()].index()] = 1.0;
                }
                x[built.start[m.index()].index()] = 1.0;
                for (av, expr) in &built.aux_abs {
                    x[av.index()] = expr.eval(&x).abs();
                }
                x
            });
        let warm: Option<Vec<f64>> = match (uniform, self.yds_rounded_start(&built)) {
            (Some(a), Some(b)) => {
                let obj = built.model.objective();
                Some(if obj.eval(&b) < obj.eval(&a) { b } else { a })
            }
            (a, b) => a.or(b),
        };

        let t0 = Instant::now();
        let opts = SolveOptions {
            jobs: self.solver_jobs,
            ..SolveOptions::default()
        };
        let sol = {
            let _span = dvs_obs::span!("pass.solve");
            match self.solver {
                SolverChoice::Continuous => {
                    solve_with_choice(&built.model, SolverChoice::Continuous, &opts)?
                }
                // Auto resolves to branch-and-bound here (the integral DVS
                // model is never a pure continuous ladder), which is the
                // only backend that accepts a seed.
                SolverChoice::Auto | SolverChoice::BranchAndBound => {
                    solve_seeded(&built.model, &opts, warm.as_deref())?
                }
            }
        };
        let solve_time = t0.elapsed();
        dvs_obs::gauge("pass.solve.wall_us", solve_time.as_secs_f64() * 1e6);

        let certificate = if self.certify {
            // Certify what actually ran: the Auto arm above always took the
            // seeded branch-and-bound path, so the prover must not
            // re-dispatch on the model shape.
            let choice = match self.solver {
                SolverChoice::Continuous => SolverChoice::Continuous,
                SolverChoice::Auto | SolverChoice::BranchAndBound => SolverChoice::BranchAndBound,
            };
            let cert = {
                let _span = dvs_obs::span!("pass.certify");
                dvs_milp::certify_solution(&built.model, &opts, choice, &sol)?
            };
            let encoded = cert.encode();
            let tc = Instant::now();
            let report = {
                let _span = dvs_obs::span!("cert-check");
                dvs_cert::check(&cert)
            };
            let check_us = tc.elapsed().as_secs_f64() * 1e6;
            if dvs_obs::enabled() {
                dvs_obs::counter("certificate_bytes", encoded.len() as u64);
                dvs_obs::counter("cert_check_us", check_us as u64);
            }
            Some(CertifyOutcome {
                encoded,
                report,
                check_us,
            })
        } else {
            None
        };

        // --- extract the schedule ---
        let pick = |ks: &[Var]| -> ModeId {
            let mut best = 0;
            let mut bv = f64::NEG_INFINITY;
            for (m, &kv) in ks.iter().enumerate() {
                let v = sol.value(kv);
                if v > bv {
                    bv = v;
                    best = m;
                }
            }
            ModeId(best)
        };
        let edge_modes: Vec<ModeId> = self
            .cfg
            .edges()
            .map(|e| pick(built.kvars(Some(self.rep(e.id)))))
            .collect();
        let schedule = EdgeSchedule {
            initial: pick(&built.start),
            edge_modes,
        };

        Ok(MilpOutcome {
            schedule,
            predicted_energy_uj: sol.objective,
            predicted_time_us: built.time.eval(&sol.values),
            predicted_transition_energy_uj: built.transition_energy.eval(&sol.values),
            solve_stats: sol.stats,
            solve_time,
            binary_vars,
            constraints,
            certificate,
        })
    }

    /// Solves the *continuous relaxation* of the same model — every mode
    /// binary becomes a fractional weight in `[0, 1]` — and returns its
    /// objective (µJ). The relaxation admits every integral assignment, so
    /// its objective is a guaranteed lower bound on
    /// [`MilpOutcome::predicted_energy_uj`]; the §3 continuous-setting
    /// analysis bounds the discrete schedule the same way, and the
    /// `dvs-check` `ContinuousLower` oracle asserts the dominance on every
    /// generated case.
    ///
    /// # Errors
    ///
    /// [`MilpError::Infeasible`] exactly when the integral model is
    /// infeasible (the fractional and integral feasibility thresholds
    /// coincide: both are "the all-fastest assignment meets the deadline").
    pub fn relaxation_bound(&self) -> Result<f64, MilpError> {
        let built = self.build_model();
        // One shared path with the branch-and-bound root bound
        // (`dvs_milp::relaxation_bound` relaxes and dispatches through the
        // backend API), so the check oracle and the solver can never drift.
        dvs_milp::relaxation_bound(&built.model, &SolveOptions::default())
    }

    /// [`MilpFormulation::relaxation_bound`] through an explicitly chosen
    /// backend instead of [`SolverChoice::Auto`] — the solver benchmark
    /// uses this to pin the exact continuous-voltage algorithm against the
    /// branch-and-bound LP on the same relaxation.
    ///
    /// # Errors
    ///
    /// Same as [`MilpFormulation::relaxation_bound`], plus
    /// [`MilpError::Unsupported`] if the forced backend cannot represent
    /// the relaxed model.
    pub fn relaxation_bound_via(&self, solver: SolverChoice) -> Result<f64, MilpError> {
        let built = self.build_model();
        let relaxed = built.model.relax();
        solve_with_choice(&relaxed, solver, &SolveOptions::default()).map(|s| s.objective)
    }

    /// The filter in use (for reporting).
    #[must_use]
    pub fn filter(&self) -> &EdgeFilter {
        &self.filter
    }

    /// The local paths that would receive transition variables.
    #[must_use]
    pub fn transition_paths(&self) -> Vec<(LocalPath, u64)> {
        self.profile
            .local_paths()
            .filter(|(p, _)| p.exit.is_some())
            .collect()
    }
}
