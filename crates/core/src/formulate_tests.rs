//! Hand-computed checks of the MILP formulation on a tiny profile where
//! the optimum is known in closed form.

use crate::{EdgeFilter, Granularity, MilpFormulation};
use dvs_ir::{BlockModeCost, Cfg, CfgBuilder, Profile, ProfileBuilder};
use dvs_vf::{AlphaPower, ModeId, TransitionModel, VoltageLadder};

/// Chain entry -> a -> b -> exit, executed once; hand-set costs.
///
/// Block a: 10 µs / 1 µJ at slow, 5 µs / 4 µJ at fast.
/// Block b: 20 µs / 2 µJ at slow, 10 µs / 8 µJ at fast.
/// Entry/exit are free.
fn setup() -> (Cfg, Profile) {
    let mut bld = CfgBuilder::new("hand");
    let e = bld.block("entry");
    let a = bld.block("a");
    let b = bld.block("b");
    let x = bld.block("exit");
    bld.edge(e, a);
    bld.edge(a, b);
    bld.edge(b, x);
    let cfg = bld.finish(e, x).expect("valid");
    let mut pb = ProfileBuilder::new(&cfg, 2);
    assert!(pb.record_walk(&cfg, &[e, a, b, x]));
    pb.set_block_cost(
        a,
        0,
        BlockModeCost {
            time_us: 10.0,
            energy_uj: 1.0,
        },
    );
    pb.set_block_cost(
        a,
        1,
        BlockModeCost {
            time_us: 5.0,
            energy_uj: 4.0,
        },
    );
    pb.set_block_cost(
        b,
        0,
        BlockModeCost {
            time_us: 20.0,
            energy_uj: 2.0,
        },
    );
    pb.set_block_cost(
        b,
        1,
        BlockModeCost {
            time_us: 10.0,
            energy_uj: 8.0,
        },
    );
    for blk in [e, x] {
        for m in 0..2 {
            pb.set_block_cost(
                blk,
                m,
                BlockModeCost {
                    time_us: 0.0,
                    energy_uj: 0.0,
                },
            );
        }
    }
    (cfg, pb.finish())
}

fn two_level_ladder() -> VoltageLadder {
    // Voltages 1 V and 2 V: SE per switch = (1-u)·c·|1-4| = 0.1c·3,
    // ST = 2c·1.
    VoltageLadder::from_points(vec![
        dvs_vf::OperatingPoint::new(1.0, 100.0),
        dvs_vf::OperatingPoint::new(2.0, 400.0),
    ])
    .expect("valid ladder")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_transitions_pick_the_obvious_optimum() {
        let (cfg, profile) = setup();
        let ladder = two_level_ladder();
        let free = TransitionModel::free();
        // Deadline 25 µs: all-slow takes 30, all-fast takes 15.
        // Candidates: a slow + b fast = 10 + 10 = 20 µs, 1 + 8 = 9 µJ;
        //             a fast + b slow = 5 + 20 = 25 µs, 4 + 2 = 6 µJ. <- best
        let out = MilpFormulation::new(&cfg, &profile, &ladder, &free, 25.0)
            .solve()
            .expect("feasible");
        assert!(
            (out.predicted_energy_uj - 6.0).abs() < 1e-6,
            "E = {}",
            out.predicted_energy_uj
        );
        assert!((out.predicted_time_us - 25.0).abs() < 1e-6);
        let a = cfg.block_by_label("a").expect("a");
        let b = cfg.block_by_label("b").expect("b");
        let e_a = cfg.in_edges(a).next().expect("edge into a");
        let e_b = cfg.in_edges(b).next().expect("edge into b");
        assert_eq!(out.schedule.edge_modes[e_a.index()], ModeId(1), "a fast");
        assert_eq!(out.schedule.edge_modes[e_b.index()], ModeId(0), "b slow");
    }

    #[test]
    fn transition_cost_tips_the_balance() {
        let (cfg, profile) = setup();
        let ladder = two_level_ladder();
        // With a fast->slow switch between a and b (and an initial set to
        // fast), the a-fast/b-slow plan pays 2 switches' time and energy.
        // Make transitions expensive enough that the all-fast plan
        // (15 µs, 12 µJ, zero transitions) wins over
        // a-fast/b-slow (6 µJ + 2·SE, 25 µs + ST...). With c = 25 µF:
        // SE = 0.1·25·3 = 7.5 µJ per switch -> 6 + 7.5 = 13.5 µJ (one
        // switch fast->slow after a; initial set silent at fast) and
        // ST = 50 µs blows the deadline anyway. All-fast is optimal.
        let tm = TransitionModel::new(25.0, 0.9, 1.0).expect("valid");
        let out = MilpFormulation::new(&cfg, &profile, &ladder, &tm, 25.0)
            .solve()
            .expect("feasible");
        assert!(
            (out.predicted_energy_uj - 12.0).abs() < 1e-6,
            "expected all-fast 12 µJ, got {}",
            out.predicted_energy_uj
        );
        assert_eq!(out.predicted_transition_energy_uj, 0.0);
    }

    #[test]
    fn block_granularity_matches_edge_granularity_on_chains() {
        // On a chain every block has one incoming edge, so both
        // granularities describe the same space.
        let (cfg, profile) = setup();
        let ladder = two_level_ladder();
        let free = TransitionModel::free();
        let edge = MilpFormulation::new(&cfg, &profile, &ladder, &free, 25.0)
            .solve()
            .expect("feasible");
        let block = MilpFormulation::new(&cfg, &profile, &ladder, &free, 25.0)
            .with_granularity(Granularity::Block)
            .solve()
            .expect("feasible");
        assert!((edge.predicted_energy_uj - block.predicted_energy_uj).abs() < 1e-9);
    }

    #[test]
    fn filter_that_ties_everything_still_meets_deadline() {
        let (cfg, profile) = setup();
        let ladder = two_level_ladder();
        let free = TransitionModel::free();
        // Tie every tieable edge (tail fraction > 1).
        let filter = EdgeFilter::tail_rule(&cfg, &profile, 1, 2.0);
        let out = MilpFormulation::new(&cfg, &profile, &ladder, &free, 25.0)
            .with_filter(filter)
            .solve()
            .expect("feasible");
        // With all edges tied to the entry chain, only uniform schedules
        // remain: all-fast (15 µs / 12 µJ) is the single feasible one.
        assert!(out.predicted_time_us <= 25.0 + 1e-9);
        assert!(
            out.predicted_energy_uj >= 6.0,
            "cannot beat the unfiltered optimum"
        );
    }

    #[test]
    fn pinned_edges_override_the_optimizer() {
        let (cfg, profile) = setup();
        let ladder = two_level_ladder();
        let free = TransitionModel::free();
        let a = cfg.block_by_label("a").expect("a");
        let e_a = cfg.in_edges(a).next().expect("edge into a");
        // Unpinned optimum runs a fast (see free_transitions test); pin it
        // slow and the solver must re-plan: a slow (10 µs, 1 µJ) forces
        // b fast (10 µs, 8 µJ) to stay within 25 µs. Energy 9 > 6.
        let out = MilpFormulation::new(&cfg, &profile, &ladder, &free, 25.0)
            .with_pinned_edge(e_a, ModeId(0))
            .solve()
            .expect("still feasible");
        assert_eq!(out.schedule.edge_modes[e_a.index()], ModeId(0));
        assert!(
            (out.predicted_energy_uj - 9.0).abs() < 1e-6,
            "E = {}",
            out.predicted_energy_uj
        );
        // Pinning both blocks slow is infeasible at this deadline.
        let b = cfg.block_by_label("b").expect("b");
        let e_b = cfg.in_edges(b).next().expect("edge into b");
        let err = MilpFormulation::new(&cfg, &profile, &ladder, &free, 25.0)
            .with_pinned_edge(e_a, ModeId(0))
            .with_pinned_edge(e_b, ModeId(0))
            .solve()
            .unwrap_err();
        assert!(matches!(err, dvs_milp::MilpError::Infeasible));
    }

    #[test]
    fn relaxation_lower_bounds_the_integral_objective() {
        let (cfg, profile) = setup();
        let ladder = two_level_ladder();
        let free = TransitionModel::free();
        for deadline in [15.0, 20.0, 25.0, 30.0] {
            let f = MilpFormulation::new(&cfg, &profile, &ladder, &free, deadline);
            let integral = f.solve().expect("feasible").predicted_energy_uj;
            let bound = f.relaxation_bound().expect("relaxation feasible");
            assert!(
                bound <= integral + 1e-6,
                "D={deadline}: relaxation {bound} must lower-bound MILP {integral}"
            );
        }
    }

    #[test]
    fn relaxation_gap_is_strict_off_the_frontier() {
        // One hot block, slow 10 µs / 1 µJ vs fast 5 µs / 10 µJ, deadline
        // 7.5 µs: the integral model must run it fast (10 µJ) while the
        // fractional mixture splits 50/50 (5.5 µJ) — a strict gap.
        let mut bld = CfgBuilder::new("gap");
        let e = bld.block("entry");
        let a = bld.block("a");
        let x = bld.block("exit");
        bld.edge(e, a);
        bld.edge(a, x);
        let cfg = bld.finish(e, x).expect("valid");
        let mut pb = ProfileBuilder::new(&cfg, 2);
        assert!(pb.record_walk(&cfg, &[e, a, x]));
        pb.set_block_cost(
            a,
            0,
            BlockModeCost {
                time_us: 10.0,
                energy_uj: 1.0,
            },
        );
        pb.set_block_cost(
            a,
            1,
            BlockModeCost {
                time_us: 5.0,
                energy_uj: 10.0,
            },
        );
        for blk in [e, x] {
            for m in 0..2 {
                pb.set_block_cost(
                    blk,
                    m,
                    BlockModeCost {
                        time_us: 0.0,
                        energy_uj: 0.0,
                    },
                );
            }
        }
        let profile = pb.finish();
        let ladder = two_level_ladder();
        let free = TransitionModel::free();
        let f = MilpFormulation::new(&cfg, &profile, &ladder, &free, 7.5);
        let integral = f.solve().expect("feasible").predicted_energy_uj;
        assert!((integral - 10.0).abs() < 1e-6, "integral = {integral}");
        let bound = f.relaxation_bound().expect("feasible");
        assert!((bound - 5.5).abs() < 1e-6, "bound = {bound}");
    }

    #[test]
    fn relaxation_matches_integral_infeasibility() {
        let (cfg, profile) = setup();
        let ladder = two_level_ladder();
        let free = TransitionModel::free();
        let f = MilpFormulation::new(&cfg, &profile, &ladder, &free, 10.0);
        assert!(matches!(f.solve(), Err(dvs_milp::MilpError::Infeasible)));
        assert!(matches!(
            f.relaxation_bound(),
            Err(dvs_milp::MilpError::Infeasible)
        ));
    }

    #[test]
    fn infeasible_deadline_errors() {
        let (cfg, profile) = setup();
        let ladder = two_level_ladder();
        let free = TransitionModel::free();
        let err = MilpFormulation::new(&cfg, &profile, &ladder, &free, 10.0)
            .solve()
            .unwrap_err();
        assert!(matches!(err, dvs_milp::MilpError::Infeasible));
    }

    #[test]
    fn xscale_ladder_on_same_profile() {
        // Sanity: a 3-level ladder on the same profile (costs only defined
        // for 2 modes would break, so rebuild with 3).
        let mut bld = CfgBuilder::new("hand3");
        let e = bld.block("entry");
        let a = bld.block("a");
        let x = bld.block("exit");
        bld.edge(e, a);
        bld.edge(a, x);
        let cfg = bld.finish(e, x).expect("valid");
        let mut pb = ProfileBuilder::new(&cfg, 3);
        assert!(pb.record_walk(&cfg, &[e, a, x]));
        for (m, t, en) in [(0usize, 40.0, 4.9), (1, 13.3, 16.9), (2, 10.0, 27.2)] {
            pb.set_block_cost(
                a,
                m,
                BlockModeCost {
                    time_us: t,
                    energy_uj: en,
                },
            );
        }
        for blk in [e, x] {
            for m in 0..3 {
                pb.set_block_cost(
                    blk,
                    m,
                    BlockModeCost {
                        time_us: 0.0,
                        energy_uj: 0.0,
                    },
                );
            }
        }
        let profile = pb.finish();
        let ladder = VoltageLadder::xscale3(&AlphaPower::paper());
        let free = TransitionModel::free();
        // Deadline exactly the slow time: all-slow optimal.
        let out = MilpFormulation::new(&cfg, &profile, &ladder, &free, 40.0)
            .solve()
            .expect("feasible");
        assert!((out.predicted_energy_uj - 4.9).abs() < 1e-9);
    }
}
