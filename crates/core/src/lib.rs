//! The paper's contribution: compile-time placement of DVS mode-set
//! instructions by profile-driven mixed-integer linear programming.
//!
//! Pipeline (Fig. 13 of the paper):
//!
//! 1. **Profile** the program once per DVS mode on the cycle-level
//!    simulator ([`dvs_sim::ModeProfiler`]) to obtain per-block time/energy
//!    `T(j,m)`, `E(j,m)`, edge counts `G(i,j)` and local-path counts
//!    `D(h,i,j)`.
//! 2. **Filter** edges whose destination energy falls in the cumulative 2%
//!    tail, tying each to its source block's hottest incoming edge
//!    ([`EdgeFilter`]) — this shrinks the MILP without violating deadlines.
//! 3. **Formulate** the MILP of §4.2 ([`MilpFormulation`]): binary mode
//!    variables `k(i,j,m)` per (representative) edge, regulator transition
//!    costs `SE`/`ST` charged per local path through auxiliary
//!    absolute-value variables, one deadline constraint.
//! 4. **Solve** with [`dvs_milp::solve`] and extract an
//!    [`dvs_sim::EdgeSchedule`], plus a hoisting post-pass that identifies
//!    statically silent mode-sets ([`ScheduleAnalysis`]).
//!
//! Also provided: the multi-input-category formulation of §4.3
//! ([`MultiCategory`]), the baselines the paper compares against
//! ([`baseline`]), the Fig. 16 deadline-selection scheme
//! ([`DeadlineScheme`]), and the bridge from simulator runs to the
//! analytical model's program parameters ([`analyze_params`]).
//!
//! # Example
//!
//! ```
//! use dvs_compiler::DvsCompiler;
//! use dvs_ir::{CfgBuilder, Inst, Opcode, Reg};
//! use dvs_sim::{Machine, TraceBuilder};
//! use dvs_vf::{AlphaPower, TransitionModel, VoltageLadder};
//!
//! // A two-block loop program and one execution of it.
//! let mut b = CfgBuilder::new("demo");
//! let entry = b.block("entry");
//! let work = b.block("work");
//! let exit = b.block("exit");
//! for _ in 0..8 {
//!     b.push(work, Inst::alu(Opcode::IntAlu, Reg(1), &[Reg(1)]));
//! }
//! b.edge(entry, work);
//! b.edge(work, work);
//! b.edge(work, exit);
//! let cfg = b.finish(entry, exit).unwrap();
//! let mut tb = TraceBuilder::new(&cfg);
//! tb.step(entry, vec![]);
//! for _ in 0..50 {
//!     tb.step(work, vec![]);
//! }
//! tb.step(exit, vec![]);
//! let trace = tb.finish().unwrap();
//!
//! // Profile and compile against a deadline between all-fast and all-slow.
//! let compiler = DvsCompiler::builder(
//!     Machine::paper_default(),
//!     VoltageLadder::xscale3(&AlphaPower::paper()),
//!     TransitionModel::with_capacitance_uf(0.01),
//! )
//! .build()
//! .unwrap();
//! let (profile, runs) = compiler.profile(&cfg, &trace);
//! let deadline = runs.last().unwrap().total_time_us * 1.5;
//! let result = compiler.compile(&cfg, &profile, deadline).unwrap();
//! assert!(result.milp.predicted_time_us <= deadline);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyze;
pub mod baseline;
mod deadline;
mod emit;
mod error;
mod filter;
pub mod fingerprint;
mod formulate;
#[cfg(test)]
mod formulate_tests;
mod multi;
mod pass;
mod schedule;

pub use analyze::analyze_params;
pub use baseline::{lee_sakurai, LeeSakurai};
pub use deadline::DeadlineScheme;
pub use dvs_milp::SolverChoice;
pub use emit::{emit_instrumented, schedule_to_dot, EmitStats};
pub use error::PassError;
pub use filter::EdgeFilter;
pub use formulate::{CertifyOutcome, Granularity, MilpFormulation, MilpOutcome};
pub use multi::{CategoryProfile, MultiCategory, MultiOutcome};
pub use pass::{CompileResult, CompilerBuilder, DvsCompiler};
pub use schedule::ScheduleAnalysis;
