//! The §4.3 multi-input-category formulation.
//!
//! Different inputs fall into categories (for MPEG: streams with vs
//! without B frames). One profile is gathered per category; the MILP then
//! minimizes the *weighted average* energy across categories while
//! enforcing each category's deadline, with a single shared mode
//! assignment.

use crate::EdgeFilter;
use dvs_ir::{Cfg, Profile};
use dvs_milp::{solve_with, LinExpr, MilpError, Model, Sense, SolveOptions, Var};
use dvs_sim::EdgeSchedule;
use dvs_vf::{ModeId, TransitionModel, VoltageLadder};
use std::time::Instant;

/// One input category: its probability weight, its profile, and its
/// deadline (§4.3 allows per-category deadlines).
#[derive(Debug, Clone)]
pub struct CategoryProfile {
    /// Probability `p_g` of inputs from this category (weights should sum
    /// to 1, but are used as given).
    pub weight: f64,
    /// Profile gathered on this category's representative input.
    pub profile: Profile,
    /// Deadline for this category, µs.
    pub deadline_us: f64,
}

/// Result of the multi-category optimization.
#[derive(Debug, Clone)]
pub struct MultiOutcome {
    /// The shared schedule.
    pub schedule: EdgeSchedule,
    /// Weighted-average predicted energy, µJ.
    pub predicted_energy_uj: f64,
    /// Predicted time per category, µs.
    pub predicted_times_us: Vec<f64>,
    /// MILP solve wall-clock time.
    pub solve_time: std::time::Duration,
}

/// Builder/solver for the multi-category MILP.
#[derive(Debug)]
pub struct MultiCategory<'a> {
    cfg: &'a Cfg,
    categories: &'a [CategoryProfile],
    ladder: &'a VoltageLadder,
    transition: &'a TransitionModel,
    filter: EdgeFilter,
}

impl<'a> MultiCategory<'a> {
    /// Starts an unfiltered multi-category formulation.
    ///
    /// # Panics
    ///
    /// Panics if `categories` is empty.
    #[must_use]
    pub fn new(
        cfg: &'a Cfg,
        categories: &'a [CategoryProfile],
        ladder: &'a VoltageLadder,
        transition: &'a TransitionModel,
    ) -> Self {
        assert!(!categories.is_empty(), "need at least one category");
        MultiCategory {
            cfg,
            categories,
            ladder,
            transition,
            filter: EdgeFilter::identity(cfg),
        }
    }

    /// Installs an edge filter (typically computed from the highest-weight
    /// category's profile).
    #[must_use]
    pub fn with_filter(mut self, filter: EdgeFilter) -> Self {
        self.filter = filter;
        self
    }

    /// Builds and solves.
    ///
    /// # Errors
    ///
    /// [`MilpError::Infeasible`] when no shared assignment meets every
    /// category deadline; solver resource errors otherwise.
    pub fn solve(&self) -> Result<MultiOutcome, MilpError> {
        let n_modes = self.ladder.len();
        let mut model = Model::new(Sense::Minimize);

        let mut groups: Vec<Option<Vec<Var>>> = (0..self.cfg.num_edges()).map(|_| None).collect();
        for e in self.cfg.edges() {
            let r = self.filter.rep(e.id);
            if groups[r.index()].is_none() {
                let k: Vec<Var> = (0..n_modes)
                    .map(|m| model.bool_var(format!("k_{}_{m}", r.index())))
                    .collect();
                let mut sum = LinExpr::zero();
                for &v in &k {
                    sum += LinExpr::from(v);
                }
                model.add_eq(sum, 1.0);
                model.add_sos1(k.clone());
                groups[r.index()] = Some(k);
            }
        }
        let start: Vec<Var> = (0..n_modes)
            .map(|m| model.bool_var(format!("k_start_{m}")))
            .collect();
        {
            let mut sum = LinExpr::zero();
            for &v in &start {
                sum += LinExpr::from(v);
            }
            model.add_eq(sum, 1.0);
            model.add_sos1(start.clone());
        }
        let kvars = |slot: Option<dvs_ir::EdgeId>| -> &[Var] {
            match slot {
                Some(e) => groups[self.filter.rep(e).index()]
                    .as_ref()
                    .expect("group exists"),
                None => &start,
            }
        };

        // Transition variables shared across categories; D counts differ.
        let ce = self.transition.energy_uj(1.0, 0.0);
        let ct = self.transition.time_us(1.0, 0.0);
        let mut path_vars: std::collections::BTreeMap<dvs_ir::LocalPath, (Var, Var)> =
            std::collections::BTreeMap::new();
        if ce > 0.0 || ct > 0.0 {
            for cat in self.categories {
                for (path, d) in cat.profile.local_paths() {
                    let Some(exit) = path.exit else { continue };
                    if d == 0 || path_vars.contains_key(&path) {
                        continue;
                    }
                    let enter_rep = path.enter.map(|e| self.filter.rep(e));
                    if enter_rep == Some(self.filter.rep(exit)) {
                        continue;
                    }
                    let ke = kvars(path.enter).to_vec();
                    let kx = kvars(Some(exit)).to_vec();
                    let mut x = LinExpr::zero();
                    let mut y = LinExpr::zero();
                    for (m, pt) in self.ladder.iter() {
                        x += (pt.voltage * pt.voltage) * ke[m.index()];
                        x -= (pt.voltage * pt.voltage) * kx[m.index()];
                        y += pt.voltage * ke[m.index()];
                        y -= pt.voltage * kx[m.index()];
                    }
                    let ep = model.num_var("e_p", 0.0, f64::INFINITY);
                    let tp = model.num_var("t_p", 0.0, f64::INFINITY);
                    model.add_ge(LinExpr::from(ep) - x.clone(), 0.0);
                    model.add_ge(LinExpr::from(ep) + x, 0.0);
                    model.add_ge(LinExpr::from(tp) - y.clone(), 0.0);
                    model.add_ge(LinExpr::from(tp) + y, 0.0);
                    path_vars.insert(path, (ep, tp));
                }
            }
        }

        // Weighted objective + per-category deadline rows.
        let mut objective = LinExpr::zero();
        let mut time_exprs = Vec::with_capacity(self.categories.len());
        for cat in self.categories {
            let mut energy = LinExpr::zero();
            let mut time = LinExpr::zero();
            for e in self.cfg.edges() {
                let g = cat.profile.edge_count(e.id) as f64;
                if g == 0.0 {
                    continue;
                }
                let ks = kvars(Some(e.id));
                for (m, &kv) in ks.iter().enumerate() {
                    let c = cat.profile.block_cost(e.dst, m);
                    energy += (g * c.energy_uj) * kv;
                    time += (g * c.time_us) * kv;
                }
            }
            let entry_runs = cat.profile.block_count(self.cfg.entry()) as f64;
            for (m, &kv) in start.iter().enumerate() {
                let c = cat.profile.block_cost(self.cfg.entry(), m);
                energy += (entry_runs * c.energy_uj) * kv;
                time += (entry_runs * c.time_us) * kv;
            }
            for (path, &(ep, tp)) in &path_vars {
                let d = cat.profile.local_path_count(*path) as f64;
                if d > 0.0 {
                    energy += (d * ce) * ep;
                    time += (d * ct) * tp;
                }
            }
            model.add_le(time.clone(), cat.deadline_us);
            objective += cat.weight * energy;
            time_exprs.push(time);
        }
        model.set_objective(objective);

        let t0 = Instant::now();
        let sol = solve_with(&model, &SolveOptions::default())?;
        let solve_time = t0.elapsed();

        let pick = |ks: &[Var]| -> ModeId {
            let mut best = 0;
            let mut bv = f64::NEG_INFINITY;
            for (m, &kv) in ks.iter().enumerate() {
                if sol.value(kv) > bv {
                    bv = sol.value(kv);
                    best = m;
                }
            }
            ModeId(best)
        };
        let edge_modes = self.cfg.edges().map(|e| pick(kvars(Some(e.id)))).collect();
        let schedule = EdgeSchedule {
            initial: pick(&start),
            edge_modes,
        };
        let predicted_times_us = time_exprs.iter().map(|t| t.eval(&sol.values)).collect();

        Ok(MultiOutcome {
            schedule,
            predicted_energy_uj: sol.objective,
            predicted_times_us,
            solve_time,
        })
    }
}
