use crate::{baseline, EdgeFilter, MilpFormulation, MilpOutcome, PassError, ScheduleAnalysis};
use dvs_ir::{Cfg, Profile};
use dvs_milp::SolverChoice;
use dvs_sim::{Machine, ModeProfiler, RunStats, ScheduledRun, Trace};
use dvs_vf::{TransitionModel, VoltageLadder};

/// Runs `f` under a named span and records its wall time as a
/// `pass.<stage>.wall_us` gauge. Costs one atomic load when observability
/// is disabled.
fn timed<T>(span_name: &'static str, gauge_name: &'static str, f: impl FnOnce() -> T) -> T {
    if !dvs_obs::enabled() {
        return f();
    }
    let _span = dvs_obs::span(span_name);
    let start = std::time::Instant::now();
    let out = f();
    dvs_obs::gauge(gauge_name, start.elapsed().as_secs_f64() * 1e6);
    out
}

/// Everything the end-to-end pass produces for one `(program, deadline)`
/// pair.
#[derive(Debug, Clone)]
pub struct CompileResult {
    /// The MILP solution (schedule + predictions + solver stats).
    pub milp: MilpOutcome,
    /// Static schedule analysis (silent mode-sets, predicted transitions).
    pub analysis: ScheduleAnalysis,
    /// Baseline: best single mode `(mode, time_us, energy_uj)`, if any
    /// single mode meets the deadline.
    pub single_mode: Option<(dvs_vf::ModeId, f64, f64)>,
    /// Simulator validation of the schedule (measured, not predicted), when
    /// requested.
    pub validated: Option<ScheduledRun>,
    /// The edge filter the MILP was solved with, including tie provenance
    /// so downstream diagnostics can name original edges.
    pub filter: EdgeFilter,
    /// Static verification of the emitted schedule, when requested via
    /// [`CompilerBuilder::verify_emitted`].
    pub verify: Option<dvs_verify::VerifyReport>,
}

impl CompileResult {
    /// Energy-savings ratio vs the best single mode, from MILP predictions.
    /// `None` when no single mode is feasible (nothing to normalize by).
    #[must_use]
    pub fn savings_vs_single(&self) -> Option<f64> {
        let (_, _, single_e) = self.single_mode?;
        if single_e <= 0.0 {
            return Some(0.0);
        }
        Some(((single_e - self.milp.predicted_energy_uj) / single_e).max(0.0))
    }

    /// Canonical JSON rendering of the result: every *deterministic* output
    /// of the pass, and nothing that varies run-to-run.
    ///
    /// Wall-clock fields ([`dvs_milp`]'s solve time) are deliberately
    /// excluded so two compiles of identical inputs serialize to identical
    /// bytes — that byte-stability is what lets the serve daemon's
    /// content-addressed cache return a stored result that is
    /// indistinguishable from a fresh solve.
    #[must_use]
    pub fn to_json(&self) -> dvs_obs::json::Json {
        use dvs_obs::json::Json;
        let schedule = Json::obj([
            (
                "initial",
                Json::from(self.milp.schedule.initial.index() as u64),
            ),
            (
                "edge_modes",
                Json::Arr(
                    self.milp
                        .schedule
                        .edge_modes
                        .iter()
                        .map(|m| Json::from(m.index() as u64))
                        .collect(),
                ),
            ),
        ]);
        let milp = Json::obj([
            ("predicted_time_us", Json::from(self.milp.predicted_time_us)),
            (
                "predicted_energy_uj",
                Json::from(self.milp.predicted_energy_uj),
            ),
            (
                "predicted_transition_energy_uj",
                Json::from(self.milp.predicted_transition_energy_uj),
            ),
            ("bnb_nodes", Json::from(self.milp.solve_stats.nodes as u64)),
            (
                "bnb_nodes_pruned",
                Json::from(self.milp.solve_stats.nodes_pruned as u64),
            ),
            (
                "lp_iterations",
                Json::from(self.milp.solve_stats.lp_iterations as u64),
            ),
            (
                "simplex_pivots",
                Json::from(self.milp.solve_stats.pivots as u64),
            ),
            (
                "degenerate_pivots",
                Json::from(self.milp.solve_stats.degenerate_pivots as u64),
            ),
            (
                "bound_flips",
                Json::from(self.milp.solve_stats.bound_flips as u64),
            ),
            (
                "refactorizations",
                Json::from(self.milp.solve_stats.refactorizations as u64),
            ),
            (
                "dual_pivots",
                Json::from(self.milp.solve_stats.dual_pivots as u64),
            ),
            (
                "presolve_rows_removed",
                Json::from(self.milp.solve_stats.presolve_rows_removed as u64),
            ),
            (
                "presolve_bounds_tightened",
                Json::from(self.milp.solve_stats.presolve_bounds_tightened as u64),
            ),
            ("best_bound", Json::from(self.milp.solve_stats.best_bound)),
            (
                "mip_gap",
                Json::from(if self.milp.solve_stats.mip_gap.is_finite() {
                    self.milp.solve_stats.mip_gap
                } else {
                    -1.0
                }),
            ),
            // Incumbent objectives and the node at which each was found are
            // deterministic; their wall-clock stamps (`at_us`) are not and
            // must stay out of this canonical form.
            (
                "incumbents",
                Json::Arr(
                    self.milp
                        .solve_stats
                        .incumbents
                        .iter()
                        .map(|i| {
                            Json::obj([
                                ("node", Json::from(i.node as u64)),
                                ("objective", Json::from(i.objective)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("binary_vars", Json::from(self.milp.binary_vars as u64)),
            ("constraints", Json::from(self.milp.constraints as u64)),
        ]);
        let analysis = Json::obj([
            ("num_live", Json::from(self.analysis.num_live() as u64)),
            ("num_silent", Json::from(self.analysis.num_silent() as u64)),
            (
                "predicted_dynamic_transitions",
                Json::from(self.analysis.predicted_dynamic_transitions()),
            ),
            (
                "emitted",
                Json::Arr(
                    self.analysis
                        .emitted_mask()
                        .into_iter()
                        .map(Json::from)
                        .collect(),
                ),
            ),
        ]);
        let single = self.single_mode.map_or(Json::Null, |(m, t, e)| {
            Json::obj([
                ("mode", Json::from(m.index() as u64)),
                ("time_us", Json::from(t)),
                ("energy_uj", Json::from(e)),
            ])
        });
        let validated = self.validated.as_ref().map_or(Json::Null, |v| {
            Json::obj([
                ("time_us", Json::from(v.time_us)),
                ("processor_energy_uj", Json::from(v.processor_energy_uj)),
                ("transitions", Json::from(v.transitions)),
            ])
        });
        let verify = self
            .verify
            .as_ref()
            .map_or(Json::Null, dvs_verify::VerifyReport::to_json);
        // The encoded certificate is byte-stable, so its length and the
        // checker's report are canonical; the check's wall time is not and
        // stays out.
        let certificate = self.milp.certificate.as_ref().map_or(Json::Null, |c| {
            Json::obj([
                ("bytes", Json::from(c.encoded.len() as u64)),
                ("report", c.report.to_json()),
            ])
        });
        Json::Obj(vec![
            ("schedule".to_string(), schedule),
            ("milp".to_string(), milp),
            ("analysis".to_string(), analysis),
            ("single_mode".to_string(), single),
            (
                "savings_vs_single".to_string(),
                self.savings_vs_single().map_or(Json::Null, Json::from),
            ),
            ("validated".to_string(), validated),
            ("verify".to_string(), verify),
            ("certificate".to_string(), certificate),
        ])
    }
}

/// Configures and builds a [`DvsCompiler`] with named settings instead of
/// the positional constructor arguments the pass accumulated over time.
///
/// ```no_run
/// use dvs_compiler::DvsCompiler;
/// use dvs_sim::Machine;
/// use dvs_vf::{AlphaPower, TransitionModel, VoltageLadder};
///
/// let compiler = DvsCompiler::builder(
///     Machine::paper_default(),
///     VoltageLadder::xscale3(&AlphaPower::paper()),
///     TransitionModel::with_capacitance_uf(0.05),
/// )
/// .tail_fraction(0.02)
/// .hoisting(true)
/// .validation(true)
/// .jobs(4)
/// .build()
/// .unwrap();
/// # let _ = compiler;
/// ```
#[derive(Debug)]
pub struct CompilerBuilder {
    machine: Machine,
    ladder: VoltageLadder,
    transition: TransitionModel,
    tail_fraction: f64,
    hoisting: bool,
    validation: bool,
    verify_emitted: bool,
    certify: bool,
    jobs: usize,
    solver_jobs: usize,
    solver: SolverChoice,
}

impl CompilerBuilder {
    /// Starts a builder from the three mandatory inputs. Defaults: the
    /// paper's 2% filter tail, hoisting on, validation on, one job.
    #[must_use]
    pub fn new(machine: Machine, ladder: VoltageLadder, transition: TransitionModel) -> Self {
        CompilerBuilder {
            machine,
            ladder,
            transition,
            tail_fraction: 0.02,
            hoisting: true,
            validation: true,
            verify_emitted: false,
            certify: false,
            jobs: 1,
            solver_jobs: 1,
            solver: SolverChoice::Auto,
        }
    }

    /// Cumulative-energy tail fraction for edge filtering (the paper's §5
    /// rule uses 0.02). `0.0` disables filtering. Must lie in `[0, 1)`.
    #[must_use]
    pub fn tail_fraction(mut self, fraction: f64) -> Self {
        self.tail_fraction = fraction;
        self
    }

    /// Enables or disables the hoisting post-pass that marks silent
    /// mode-sets for removal (§4.2's loop-back-edge observation). With
    /// hoisting off, every mode-set is reported live to the emitter.
    #[must_use]
    pub fn hoisting(mut self, on: bool) -> Self {
        self.hoisting = on;
        self
    }

    /// Enables or disables simulator re-validation in
    /// [`DvsCompiler::compile_and_validate`]. With validation off that
    /// entry point behaves like [`DvsCompiler::compile`].
    #[must_use]
    pub fn validation(mut self, on: bool) -> Self {
        self.validation = on;
        self
    }

    /// Enables the post-emit static verification gate: after scheduling
    /// and hoisting, every compile runs the `dvs-verify` pass over the
    /// emitted schedule (mode confluence, deadline, lints) and fails with
    /// [`PassError::Verify`] if any error-severity diagnostic fires. The
    /// report is stored in [`CompileResult::verify`] either way.
    #[must_use]
    pub fn verify_emitted(mut self, on: bool) -> Self {
        self.verify_emitted = on;
        self
    }

    /// Enables the certified-optimality gate: every solve exports an
    /// optimality certificate ([`dvs_cert::Certificate`]) which the
    /// independent exact-arithmetic checker replays. A checker rejection
    /// fails the compile with [`PassError::Certify`]; an accepted
    /// certificate (encoded form plus the checker's report) is stored in
    /// [`crate::MilpOutcome::certificate`] and rendered into
    /// [`CompileResult::to_json`].
    #[must_use]
    pub fn certify(mut self, on: bool) -> Self {
        self.certify = on;
        self
    }

    /// Worker threads for [`DvsCompiler::compile_grid`]'s per-deadline
    /// cells. `0` is treated as 1. Grid results are byte-identical for
    /// every jobs value.
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Worker threads for the MILP's root branch split (see
    /// [`dvs_milp::SolveOptions`]'s `jobs`). Unlike [`CompilerBuilder::jobs`]
    /// this can perturb which optimal-within-gap solution is returned, so
    /// it is a separate opt-in and [`DvsCompiler::compile_grid`] always
    /// solves its cells sequentially.
    #[must_use]
    pub fn solver_jobs(mut self, jobs: usize) -> Self {
        self.solver_jobs = jobs;
        self
    }

    /// Selects the MILP solver backend (see [`dvs_milp::SolverChoice`]).
    /// [`SolverChoice::Auto`] — the default — runs branch-and-bound on the
    /// integral model; [`SolverChoice::Continuous`] forces the exact
    /// continuous-voltage algorithm (transition-free models only) and
    /// reports its rounded schedule.
    #[must_use]
    pub fn solver(mut self, solver: SolverChoice) -> Self {
        self.solver = solver;
        self
    }

    /// Validates the configuration and builds the compiler.
    ///
    /// # Errors
    ///
    /// [`PassError::Filter`] for a tail fraction outside `[0, 1)`;
    /// [`PassError::Profile`] for an empty voltage ladder.
    pub fn build(self) -> Result<DvsCompiler, PassError> {
        if !self.tail_fraction.is_finite() || !(0.0..1.0).contains(&self.tail_fraction) {
            return Err(PassError::Filter(format!(
                "tail fraction {} outside [0, 1)",
                self.tail_fraction
            )));
        }
        if self.ladder.is_empty() {
            return Err(PassError::Profile("voltage ladder has no modes".into()));
        }
        Ok(DvsCompiler {
            machine: self.machine,
            ladder: self.ladder,
            transition: self.transition,
            tail_fraction: self.tail_fraction,
            hoisting: self.hoisting,
            validation: self.validation,
            verify_emitted: self.verify_emitted,
            certify: self.certify,
            jobs: self.jobs.max(1),
            solver_jobs: self.solver_jobs.max(1),
            solver: self.solver,
        })
    }
}

/// The end-to-end compile-time DVS pass (profile → filter → MILP →
/// schedule → optional simulator validation).
///
/// Construct one with [`DvsCompiler::builder`]. The compiler is immutable
/// and internally share-nothing, so `&DvsCompiler` may be used freely from
/// many threads ([`DvsCompiler::compile_grid`] does exactly that).
#[derive(Debug)]
pub struct DvsCompiler {
    machine: Machine,
    ladder: VoltageLadder,
    transition: TransitionModel,
    tail_fraction: f64,
    hoisting: bool,
    validation: bool,
    verify_emitted: bool,
    certify: bool,
    jobs: usize,
    solver_jobs: usize,
    solver: SolverChoice,
}

impl DvsCompiler {
    /// Starts a [`CompilerBuilder`] with named, validated settings.
    #[must_use]
    pub fn builder(
        machine: Machine,
        ladder: VoltageLadder,
        transition: TransitionModel,
    ) -> CompilerBuilder {
        CompilerBuilder::new(machine, ladder, transition)
    }

    /// The voltage ladder in use.
    #[must_use]
    pub fn ladder(&self) -> &VoltageLadder {
        &self.ladder
    }

    /// The transition model in use.
    #[must_use]
    pub fn transition(&self) -> &TransitionModel {
        &self.transition
    }

    /// The machine used for profiling and validation.
    #[must_use]
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The configured edge-filter tail fraction.
    #[must_use]
    pub fn tail_fraction(&self) -> f64 {
        self.tail_fraction
    }

    /// Worker threads used by [`DvsCompiler::compile_grid`].
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// A canonical 64-bit digest of every setting that can change what
    /// [`DvsCompiler::compile`] produces: the voltage ladder's operating
    /// points, the regulator transition model, the filter tail fraction and
    /// the hoisting/verify/certify toggles.
    ///
    /// Parallelism knobs (`jobs`) and the validation toggle are excluded —
    /// `jobs` only trades wall-clock, and callers that cache validated
    /// results should fold `solver_jobs`/validation into their own request
    /// key the way `dvs-serve` does. Two compilers with equal digests given
    /// byte-equal inputs produce byte-equal [`CompileResult::to_json`]
    /// output (for a sequential solver).
    #[must_use]
    pub fn config_digest(&self) -> u64 {
        let mut h = crate::fingerprint::Fnv64::new();
        h.write_str("dvs-compiler.config.v1");
        h.write_usize(self.ladder.len());
        for (_, point) in self.ladder.iter() {
            h.write_f64(point.voltage);
            h.write_f64(point.frequency_mhz);
        }
        h.write_f64(self.transition.capacitance_uf);
        h.write_f64(self.transition.efficiency);
        h.write_f64(self.transition.i_max_a);
        h.write_f64(self.tail_fraction);
        h.write_bool(self.hoisting);
        h.write_bool(self.verify_emitted);
        h.write_bool(self.certify);
        h.write_str(self.solver.as_str());
        h.finish()
    }

    /// Profiles `trace` at every ladder mode. Profiles are reusable across
    /// deadlines and transition models, so call this once per
    /// (program, input) and feed the result to [`DvsCompiler::compile`]
    /// repeatedly.
    #[must_use]
    pub fn profile(&self, cfg: &Cfg, trace: &Trace) -> (Profile, Vec<RunStats>) {
        timed("pass.profile", "pass.profile.wall_us", || {
            ModeProfiler::new(self.machine.clone()).profile(cfg, trace, &self.ladder)
        })
    }

    /// Validates the (profile, deadline) inputs shared by every compile
    /// entry point.
    fn check_inputs(&self, profile: &Profile, deadline_us: f64) -> Result<(), PassError> {
        if profile.num_modes() != self.ladder.len() {
            return Err(PassError::Profile(format!(
                "profile has {} modes but the ladder has {}",
                profile.num_modes(),
                self.ladder.len()
            )));
        }
        if !deadline_us.is_finite() || deadline_us <= 0.0 {
            return Err(PassError::Formulate(format!(
                "deadline {deadline_us} µs is not a positive finite time"
            )));
        }
        Ok(())
    }

    /// Runs filter + MILP for one deadline on an existing profile.
    ///
    /// # Errors
    ///
    /// [`PassError::Solve`] wrapping [`dvs_milp::MilpError::Infeasible`]
    /// when the deadline cannot be met (see [`PassError::is_infeasible`]);
    /// [`PassError::Profile`]/[`PassError::Formulate`] for malformed
    /// inputs.
    pub fn compile(
        &self,
        cfg: &Cfg,
        profile: &Profile,
        deadline_us: f64,
    ) -> Result<CompileResult, PassError> {
        self.compile_cell(cfg, profile, deadline_us, self.solver_jobs)
    }

    /// [`DvsCompiler::compile`] with an explicit MILP `solver_jobs` — the
    /// grid path pins this to 1 so cell results cannot depend on the
    /// worker count.
    fn compile_cell(
        &self,
        cfg: &Cfg,
        profile: &Profile,
        deadline_us: f64,
        solver_jobs: usize,
    ) -> Result<CompileResult, PassError> {
        self.check_inputs(profile, deadline_us)?;
        let ref_mode = self.ladder.len() - 1;
        let filter = timed("pass.filter", "pass.filter.wall_us", || {
            if self.tail_fraction > 0.0 {
                EdgeFilter::tail_rule(cfg, profile, ref_mode, self.tail_fraction)
            } else {
                EdgeFilter::identity(cfg)
            }
        });
        let milp = MilpFormulation::new(cfg, profile, &self.ladder, &self.transition, deadline_us)
            .with_filter(filter.clone())
            .with_solver_jobs(solver_jobs)
            .with_solver(self.solver)
            .with_certify(self.certify)
            .solve()?;
        if let Some(cert) = &milp.certificate {
            if let Some(reject) = &cert.report.reject {
                return Err(PassError::Certify(format!(
                    "{}: {}",
                    reject.code, reject.detail
                )));
            }
        }
        let analysis = timed("pass.schedule", "pass.schedule.wall_us", || {
            let a = ScheduleAnalysis::new(cfg, profile, &milp.schedule);
            if self.hoisting {
                a
            } else {
                a.without_hoisting()
            }
        });
        let verify = if self.verify_emitted {
            let report = timed("pass.verify", "pass.verify.wall_us", || {
                let emitted = analysis.emitted_mask();
                dvs_verify::verify(&dvs_verify::VerifyInput {
                    cfg,
                    profile,
                    ladder: &self.ladder,
                    transition: &self.transition,
                    schedule: &milp.schedule,
                    emitted: Some(&emitted),
                    deadline_us: Some(deadline_us),
                })
            });
            if !report.ok() {
                let first = report
                    .errors()
                    .next()
                    .map(dvs_verify::Diagnostic::render)
                    .unwrap_or_default();
                return Err(PassError::Verify(format!(
                    "{} error(s) in emitted schedule; first: {first}",
                    report.count(dvs_verify::Severity::Error)
                )));
            }
            Some(report)
        } else {
            None
        };
        let single_mode = baseline::best_single_mode(profile, &self.ladder, deadline_us);
        Ok(CompileResult {
            milp,
            analysis,
            single_mode,
            validated: None,
            filter,
            verify,
        })
    }

    /// Compiles one shared profile against many deadlines concurrently on a
    /// [`dvs_runtime::Pool`] of [`CompilerBuilder::jobs`] workers.
    ///
    /// Results are index-aligned with `deadlines_us`, and every cell is
    /// solved with a sequential MILP regardless of
    /// [`CompilerBuilder::solver_jobs`], so the output is identical for
    /// every jobs value — `jobs` trades wall-clock only. Metrics recorded
    /// by cells land in the caller's `dvs_obs` domain.
    pub fn compile_grid(
        &self,
        cfg: &Cfg,
        profile: &Profile,
        deadlines_us: &[f64],
    ) -> Vec<Result<CompileResult, PassError>> {
        let pool = dvs_runtime::Pool::new(self.jobs);
        let domain = dvs_obs::current_domain();
        pool.map(deadlines_us.to_vec(), |_, deadline_us| {
            let _dg = dvs_obs::enter_domain(domain);
            self.compile_cell(cfg, profile, deadline_us, 1)
        })
    }

    /// The §4.3 multi-category pass: one shared schedule minimizing the
    /// weighted-average energy across `categories`, validated by
    /// re-simulating every category's trace under the shared schedule.
    /// Returns the outcome plus per-category measured runs (same order as
    /// `categories`).
    ///
    /// # Errors
    ///
    /// [`PassError::Solve`] wrapping [`dvs_milp::MilpError::Infeasible`]
    /// when no shared assignment meets every category deadline.
    pub fn compile_multi(
        &self,
        cfg: &Cfg,
        categories: &[crate::CategoryProfile],
        traces: &[&Trace],
    ) -> Result<(crate::MultiOutcome, Vec<ScheduledRun>), PassError> {
        assert_eq!(
            categories.len(),
            traces.len(),
            "one trace per category required"
        );
        let ref_mode = self.ladder.len() - 1;
        let filter = if self.tail_fraction > 0.0 {
            // Filter from the heaviest-weight category's profile.
            let heaviest = categories
                .iter()
                .max_by(|a, b| a.weight.partial_cmp(&b.weight).expect("finite weights"))
                .expect("at least one category");
            EdgeFilter::tail_rule(cfg, &heaviest.profile, ref_mode, self.tail_fraction)
        } else {
            EdgeFilter::identity(cfg)
        };
        let outcome = crate::MultiCategory::new(cfg, categories, &self.ladder, &self.transition)
            .with_filter(filter)
            .solve()?;
        let runs = traces
            .iter()
            .map(|t| {
                self.machine.run_scheduled(
                    cfg,
                    t,
                    &self.ladder,
                    &outcome.schedule,
                    &self.transition,
                )
            })
            .collect();
        Ok((outcome, runs))
    }

    /// [`DvsCompiler::compile`] plus a re-simulation of the schedule to
    /// measure (rather than predict) time, energy and transition counts.
    /// With the builder's [`CompilerBuilder::validation`] turned off, the
    /// re-simulation is skipped and `validated` stays `None`.
    ///
    /// # Errors
    ///
    /// Same as [`DvsCompiler::compile`].
    pub fn compile_and_validate(
        &self,
        cfg: &Cfg,
        trace: &Trace,
        profile: &Profile,
        deadline_us: f64,
    ) -> Result<CompileResult, PassError> {
        let mut result = self.compile(cfg, profile, deadline_us)?;
        if self.validation {
            let run = timed("pass.validate", "pass.validate.wall_us", || {
                self.machine.run_scheduled(
                    cfg,
                    trace,
                    &self.ladder,
                    &result.milp.schedule,
                    &self.transition,
                )
            });
            result.validated = Some(run);
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_ir::{CfgBuilder, Inst, MemWidth, Opcode, Reg};
    use dvs_sim::TraceBuilder;
    use dvs_vf::AlphaPower;

    /// A program with a memory-bound loop followed by a compute-bound loop,
    /// the canonical shape that benefits from intra-program DVS.
    fn two_phase_program() -> (Cfg, Trace) {
        let mut b = CfgBuilder::new("two-phase");
        let e = b.block("entry");
        let mem = b.block("memloop");
        let comp = b.block("comploop");
        let x = b.block("exit");
        // memloop: strided load + thin compute.
        b.push(mem, Inst::load(Reg(1), Reg(2), MemWidth::B4));
        b.push(mem, Inst::alu(Opcode::IntAlu, Reg(3), &[Reg(1)]));
        b.push(mem, Inst::branch(Reg(3)));
        // comploop: dependent ALU chain.
        for _ in 0..10 {
            b.push(comp, Inst::alu(Opcode::IntAlu, Reg(4), &[Reg(4)]));
        }
        b.push(comp, Inst::branch(Reg(4)));
        b.edge(e, mem);
        b.edge(mem, mem);
        b.edge(mem, comp);
        b.edge(comp, comp);
        b.edge(comp, x);
        let cfg = b.finish(e, x).unwrap();
        let mut tb = TraceBuilder::new(&cfg);
        let (e, mem, comp, x) = (
            cfg.entry(),
            cfg.block_by_label("memloop").unwrap(),
            cfg.block_by_label("comploop").unwrap(),
            cfg.exit(),
        );
        tb.step(e, vec![]);
        for i in 0..400u64 {
            tb.step(mem, vec![0x10_0000 + i * 4096]);
        }
        for _ in 0..400 {
            tb.step(comp, vec![]);
        }
        tb.step(x, vec![]);
        let t = tb.finish().unwrap();
        (cfg, t)
    }

    fn compiler() -> DvsCompiler {
        DvsCompiler::builder(
            Machine::paper_default(),
            VoltageLadder::xscale3(&AlphaPower::paper()),
            TransitionModel::with_capacitance_uf(10.0),
        )
        .build()
        .unwrap()
    }

    #[test]
    fn end_to_end_meets_deadline_and_beats_single_mode() {
        let (cfg, trace) = two_phase_program();
        let c = compiler();
        let (profile, runs) = c.profile(&cfg, &trace);
        // Deadline between the all-fast and all-slow runtimes.
        let t_fast = runs.last().unwrap().total_time_us;
        let t_slow = runs[0].total_time_us;
        let deadline = t_fast + 0.5 * (t_slow - t_fast);
        let r = c
            .compile_and_validate(&cfg, &trace, &profile, deadline)
            .unwrap();

        assert!(r.milp.predicted_time_us <= deadline + 1e-6);
        // The MILP may never do worse than the best single mode.
        let (_, _, single_e) = r.single_mode.unwrap();
        assert!(
            r.milp.predicted_energy_uj <= single_e + 1e-6,
            "milp {} vs single {}",
            r.milp.predicted_energy_uj,
            single_e
        );
        // Validation: measured time should be near the prediction and must
        // respect the deadline with a small modelling tolerance.
        let v = r.validated.unwrap();
        assert!(
            v.time_us <= deadline * 1.05,
            "validated {} vs deadline {}",
            v.time_us,
            deadline
        );
    }

    #[test]
    fn infeasible_deadline_is_reported() {
        let (cfg, trace) = two_phase_program();
        let c = compiler();
        let (profile, runs) = c.profile(&cfg, &trace);
        let t_fast = runs.last().unwrap().total_time_us;
        let err = c.compile(&cfg, &profile, t_fast * 0.5).unwrap_err();
        assert!(err.is_infeasible(), "got {err}");
    }

    #[test]
    fn lax_deadline_runs_everything_slow() {
        let (cfg, trace) = two_phase_program();
        let c = compiler();
        let (profile, runs) = c.profile(&cfg, &trace);
        let t_slow = runs[0].total_time_us;
        let r = c.compile(&cfg, &profile, t_slow * 1.5).unwrap();
        // All-slow single mode is optimal: no transitions worth paying for.
        assert_eq!(r.analysis.predicted_dynamic_transitions(), 0);
        assert_eq!(r.milp.schedule.initial, dvs_vf::ModeId(0));
        assert!(r.savings_vs_single().unwrap() < 1e-9);
    }

    #[test]
    fn builder_rejects_bad_settings() {
        let mk = || {
            DvsCompiler::builder(
                Machine::paper_default(),
                VoltageLadder::xscale3(&AlphaPower::paper()),
                TransitionModel::free(),
            )
        };
        let err = mk().tail_fraction(1.5).build().unwrap_err();
        assert!(matches!(err, PassError::Filter(_)), "got {err}");
        let err = mk().tail_fraction(f64::NAN).build().unwrap_err();
        assert!(matches!(err, PassError::Filter(_)), "got {err}");
        // Jobs are clamped, not rejected.
        assert_eq!(mk().jobs(0).build().unwrap().jobs(), 1);
    }

    #[test]
    fn malformed_inputs_name_the_failing_stage() {
        let (cfg, trace) = two_phase_program();
        let c = compiler();
        let (profile, _) = c.profile(&cfg, &trace);
        let err = c.compile(&cfg, &profile, f64::NAN).unwrap_err();
        assert!(matches!(err, PassError::Formulate(_)), "got {err}");
        let err = c.compile(&cfg, &profile, -3.0).unwrap_err();
        assert!(matches!(err, PassError::Formulate(_)), "got {err}");
        // A profile built for a different ladder size is a profile error.
        let five = DvsCompiler::builder(
            Machine::paper_default(),
            VoltageLadder::interpolated(&AlphaPower::paper(), 5).unwrap(),
            TransitionModel::free(),
        )
        .build()
        .unwrap();
        let (p5, _) = five.profile(&cfg, &trace);
        let err = c.compile(&cfg, &p5, 1000.0).unwrap_err();
        assert!(matches!(err, PassError::Profile(_)), "got {err}");
    }

    #[test]
    fn compile_grid_matches_sequential_compiles() {
        let (cfg, trace) = two_phase_program();
        let seq = compiler();
        let par = DvsCompiler::builder(
            Machine::paper_default(),
            VoltageLadder::xscale3(&AlphaPower::paper()),
            TransitionModel::with_capacitance_uf(10.0),
        )
        .jobs(4)
        .build()
        .unwrap();
        let (profile, runs) = seq.profile(&cfg, &trace);
        let t_fast = runs.last().unwrap().total_time_us;
        let t_slow = runs[0].total_time_us;
        // Includes one infeasible cell on purpose.
        let deadlines: Vec<f64> = vec![
            t_fast * 0.5,
            t_fast + 0.25 * (t_slow - t_fast),
            t_fast + 0.5 * (t_slow - t_fast),
            t_fast + 0.75 * (t_slow - t_fast),
            t_slow * 1.2,
        ];
        let grid = par.compile_grid(&cfg, &profile, &deadlines);
        assert_eq!(grid.len(), deadlines.len());
        for (i, d) in deadlines.iter().enumerate() {
            match (&grid[i], seq.compile(&cfg, &profile, *d)) {
                (Ok(g), Ok(s)) => {
                    assert_eq!(
                        g.milp.schedule, s.milp.schedule,
                        "cell {i}: schedules differ"
                    );
                    assert!(
                        (g.milp.predicted_energy_uj - s.milp.predicted_energy_uj).abs() < 1e-12
                    );
                }
                (Err(ge), Err(se)) => assert_eq!(ge.to_string(), se.to_string()),
                (g, s) => panic!("cell {i}: grid {g:?} vs sequential {s:?}"),
            }
        }
    }

    #[test]
    fn validation_toggle_skips_resimulation() {
        let (cfg, trace) = two_phase_program();
        let c = DvsCompiler::builder(
            Machine::paper_default(),
            VoltageLadder::xscale3(&AlphaPower::paper()),
            TransitionModel::with_capacitance_uf(10.0),
        )
        .validation(false)
        .build()
        .unwrap();
        let (profile, runs) = c.profile(&cfg, &trace);
        let t_slow = runs[0].total_time_us;
        let r = c
            .compile_and_validate(&cfg, &trace, &profile, t_slow * 1.5)
            .unwrap();
        assert!(r.validated.is_none());
    }

    #[test]
    fn hoisting_toggle_marks_everything_live() {
        let (cfg, trace) = two_phase_program();
        let mk = |hoist: bool| {
            DvsCompiler::builder(
                Machine::paper_default(),
                VoltageLadder::xscale3(&AlphaPower::paper()),
                TransitionModel::with_capacitance_uf(10.0),
            )
            .hoisting(hoist)
            .build()
            .unwrap()
        };
        let on = mk(true);
        let off = mk(false);
        let (profile, runs) = on.profile(&cfg, &trace);
        let t_slow = runs[0].total_time_us;
        let d = t_slow * 1.5;
        let r_on = on.compile(&cfg, &profile, d).unwrap();
        let r_off = off.compile(&cfg, &profile, d).unwrap();
        // Same schedule either way; hoisting only changes the analysis.
        assert_eq!(r_on.milp.schedule, r_off.milp.schedule);
        assert!(r_on.analysis.num_silent() > 0);
        assert_eq!(r_off.analysis.num_silent(), 0);
        assert_eq!(r_off.analysis.num_live(), cfg.num_edges());
        assert_eq!(
            r_on.analysis.predicted_dynamic_transitions(),
            r_off.analysis.predicted_dynamic_transitions()
        );
    }

    #[test]
    fn verify_gate_accepts_emitted_schedules_and_stores_the_report() {
        let (cfg, trace) = two_phase_program();
        let c = DvsCompiler::builder(
            Machine::paper_default(),
            VoltageLadder::xscale3(&AlphaPower::paper()),
            TransitionModel::with_capacitance_uf(10.0),
        )
        .verify_emitted(true)
        .build()
        .unwrap();
        let (profile, runs) = c.profile(&cfg, &trace);
        let t_fast = runs.last().unwrap().total_time_us;
        let t_slow = runs[0].total_time_us;
        let deadline = t_fast + 0.5 * (t_slow - t_fast);
        let r = c.compile(&cfg, &profile, deadline).unwrap();
        let report = r.verify.as_ref().expect("verify requested");
        assert!(
            report.ok(),
            "emitted schedule must verify:\n{}",
            report.render()
        );
        // The verifier's modeled time agrees with the MILP's prediction
        // under the same profile (both sum executed edges + transitions).
        assert!(
            (report.modeled_time_us - r.milp.predicted_time_us).abs()
                <= 1e-6 * r.milp.predicted_time_us.max(1.0),
            "modeled {} vs predicted {}",
            report.modeled_time_us,
            r.milp.predicted_time_us
        );
        // Without the flag, no report is produced.
        let off = compiler();
        let r_off = off.compile(&cfg, &profile, deadline).unwrap();
        assert!(r_off.verify.is_none());
        // Tie provenance rides along for downstream diagnostics.
        assert_eq!(r.filter.num_edges(), cfg.num_edges());
    }

    #[test]
    fn certify_gate_attaches_an_accepted_certificate() {
        let (cfg, trace) = two_phase_program();
        let c = DvsCompiler::builder(
            Machine::paper_default(),
            VoltageLadder::xscale3(&AlphaPower::paper()),
            TransitionModel::with_capacitance_uf(10.0),
        )
        .certify(true)
        .build()
        .unwrap();
        let (profile, runs) = c.profile(&cfg, &trace);
        let t_fast = runs.last().unwrap().total_time_us;
        let t_slow = runs[0].total_time_us;
        let deadline = t_fast + 0.5 * (t_slow - t_fast);
        let r = c.compile(&cfg, &profile, deadline).unwrap();
        let cert = r.milp.certificate.as_ref().expect("certificate requested");
        assert!(
            cert.report.ok(),
            "checker rejected: {:?}",
            cert.report.reject
        );
        assert!(!cert.encoded.is_empty());
        assert!(cert.report.bound_leaves >= 1, "proof must bound some leaf");
        // The canonical JSON carries the certificate size and report but
        // never the check's wall time.
        let dump = r.to_json().dump();
        assert!(dump.contains("\"certificate\""));
        assert!(!dump.contains("check_us"));
        // Without the flag no certificate is produced (and the JSON member
        // is null).
        let off = compiler();
        let r_off = off.compile(&cfg, &profile, deadline).unwrap();
        assert!(r_off.milp.certificate.is_none());
        assert!(r_off.to_json().dump().contains("\"certificate\":null"));
    }

    #[test]
    fn compile_multi_meets_both_category_deadlines() {
        // Two "categories" = the same program with different iteration
        // balances (memory-heavy vs compute-heavy executions).
        let (cfg, trace_a) = two_phase_program();
        let trace_b = {
            let mut tb = dvs_sim::TraceBuilder::new(&cfg);
            let (e, mem, comp, x) = (
                cfg.entry(),
                cfg.block_by_label("memloop").unwrap(),
                cfg.block_by_label("comploop").unwrap(),
                cfg.exit(),
            );
            tb.step(e, vec![]);
            for i in 0..150u64 {
                tb.step(mem, vec![0x60_0000 + i * 4096]);
            }
            for _ in 0..900 {
                tb.step(comp, vec![]);
            }
            tb.step(x, vec![]);
            tb.finish().unwrap()
        };
        let c = compiler();
        let (pa, runs_a) = c.profile(&cfg, &trace_a);
        let (pb, runs_b) = c.profile(&cfg, &trace_b);
        let mk_deadline = |runs: &[dvs_sim::RunStats]| {
            let tf = runs.last().unwrap().total_time_us;
            let ts = runs[0].total_time_us;
            tf + 0.5 * (ts - tf)
        };
        let da = mk_deadline(&runs_a);
        let db = mk_deadline(&runs_b);
        let cats = vec![
            crate::CategoryProfile {
                weight: 0.5,
                profile: pa,
                deadline_us: da,
            },
            crate::CategoryProfile {
                weight: 0.5,
                profile: pb,
                deadline_us: db,
            },
        ];
        let (outcome, measured) = c
            .compile_multi(&cfg, &cats, &[&trace_a, &trace_b])
            .expect("joint deadlines feasible");
        assert_eq!(measured.len(), 2);
        assert!(outcome.predicted_times_us[0] <= da + 1e-6);
        assert!(outcome.predicted_times_us[1] <= db + 1e-6);
        assert!(
            measured[0].time_us <= da * 1.05,
            "cat A measured over deadline"
        );
        assert!(
            measured[1].time_us <= db * 1.05,
            "cat B measured over deadline"
        );
    }

    #[test]
    fn config_digest_separates_semantic_settings_only() {
        let mk = || {
            DvsCompiler::builder(
                Machine::paper_default(),
                VoltageLadder::xscale3(&AlphaPower::paper()),
                TransitionModel::with_capacitance_uf(10.0),
            )
        };
        let base = mk().build().unwrap().config_digest();
        assert_eq!(base, mk().build().unwrap().config_digest(), "stable");
        // Parallelism and validation knobs don't change results → same key.
        assert_eq!(
            base,
            mk().jobs(4)
                .validation(false)
                .build()
                .unwrap()
                .config_digest()
        );
        // Semantic knobs do.
        for other in [
            mk().tail_fraction(0.05).build().unwrap().config_digest(),
            mk().hoisting(false).build().unwrap().config_digest(),
            mk().verify_emitted(true).build().unwrap().config_digest(),
            mk().certify(true).build().unwrap().config_digest(),
            DvsCompiler::builder(
                Machine::paper_default(),
                VoltageLadder::interpolated(&AlphaPower::paper(), 5).unwrap(),
                TransitionModel::with_capacitance_uf(10.0),
            )
            .build()
            .unwrap()
            .config_digest(),
            DvsCompiler::builder(
                Machine::paper_default(),
                VoltageLadder::xscale3(&AlphaPower::paper()),
                TransitionModel::with_capacitance_uf(0.05),
            )
            .build()
            .unwrap()
            .config_digest(),
        ] {
            assert_ne!(base, other);
        }
    }

    #[test]
    fn result_json_is_byte_stable_across_recompiles() {
        let (cfg, trace) = two_phase_program();
        let c = compiler();
        let (profile, runs) = c.profile(&cfg, &trace);
        let t_fast = runs.last().unwrap().total_time_us;
        let t_slow = runs[0].total_time_us;
        let deadline = t_fast + 0.5 * (t_slow - t_fast);
        let a = c
            .compile_and_validate(&cfg, &trace, &profile, deadline)
            .unwrap();
        let b = c
            .compile_and_validate(&cfg, &trace, &profile, deadline)
            .unwrap();
        assert_eq!(a.to_json().dump(), b.to_json().dump());
        // Wall-clock never leaks into the canonical form.
        assert!(!a.to_json().dump().contains("solve_time"));
    }

    #[test]
    fn transition_costs_reduce_switching() {
        let (cfg, trace) = two_phase_program();
        let ladder = VoltageLadder::xscale3(&AlphaPower::paper());
        let mk = |cap_uf: f64, ladder: VoltageLadder| {
            DvsCompiler::builder(
                Machine::paper_default(),
                ladder,
                TransitionModel::with_capacitance_uf(cap_uf),
            )
            .build()
            .unwrap()
        };
        let cheap = mk(0.01, ladder.clone());
        let pricey = mk(100.0, ladder);
        let (profile, runs) = cheap.profile(&cfg, &trace);
        let t_fast = runs.last().unwrap().total_time_us;
        let t_slow = runs[0].total_time_us;
        let deadline = t_fast + 0.4 * (t_slow - t_fast);
        let r_cheap = cheap.compile(&cfg, &profile, deadline).unwrap();
        let r_pricey = pricey.compile(&cfg, &profile, deadline).unwrap();
        assert!(
            r_pricey.analysis.predicted_dynamic_transitions()
                <= r_cheap.analysis.predicted_dynamic_transitions(),
            "expensive transitions must not increase switching"
        );
        // And expensive-transition energy is never below cheap-transition.
        assert!(r_pricey.milp.predicted_energy_uj >= r_cheap.milp.predicted_energy_uj - 1e-9);
    }
}
