use crate::{baseline, EdgeFilter, MilpFormulation, MilpOutcome, ScheduleAnalysis};
use dvs_ir::{Cfg, Profile};
use dvs_milp::MilpError;
use dvs_sim::{Machine, ModeProfiler, RunStats, ScheduledRun, Trace};
use dvs_vf::{TransitionModel, VoltageLadder};

/// Runs `f` under a named span and records its wall time as a
/// `pass.<stage>.wall_us` gauge. Costs one atomic load when observability
/// is disabled.
fn timed<T>(span_name: &'static str, gauge_name: &'static str, f: impl FnOnce() -> T) -> T {
    if !dvs_obs::enabled() {
        return f();
    }
    let _span = dvs_obs::span(span_name);
    let start = std::time::Instant::now();
    let out = f();
    dvs_obs::gauge(gauge_name, start.elapsed().as_secs_f64() * 1e6);
    out
}

/// Everything the end-to-end pass produces for one `(program, deadline)`
/// pair.
#[derive(Debug, Clone)]
pub struct CompileResult {
    /// The MILP solution (schedule + predictions + solver stats).
    pub milp: MilpOutcome,
    /// Static schedule analysis (silent mode-sets, predicted transitions).
    pub analysis: ScheduleAnalysis,
    /// Baseline: best single mode `(mode, time_us, energy_uj)`, if any
    /// single mode meets the deadline.
    pub single_mode: Option<(dvs_vf::ModeId, f64, f64)>,
    /// Simulator validation of the schedule (measured, not predicted), when
    /// requested.
    pub validated: Option<ScheduledRun>,
}

impl CompileResult {
    /// Energy-savings ratio vs the best single mode, from MILP predictions.
    /// `None` when no single mode is feasible (nothing to normalize by).
    #[must_use]
    pub fn savings_vs_single(&self) -> Option<f64> {
        let (_, _, single_e) = self.single_mode?;
        if single_e <= 0.0 {
            return Some(0.0);
        }
        Some(((single_e - self.milp.predicted_energy_uj) / single_e).max(0.0))
    }
}

/// The end-to-end compile-time DVS pass (profile → filter → MILP →
/// schedule → optional simulator validation).
#[derive(Debug)]
pub struct DvsCompiler {
    machine: Machine,
    ladder: VoltageLadder,
    transition: TransitionModel,
    /// Cumulative-energy tail fraction for edge filtering; the paper uses
    /// 2% (0.02). Zero disables filtering.
    pub tail_fraction: f64,
}

impl DvsCompiler {
    /// Creates a pass with the given machine, ladder and regulator model,
    /// filtering at the paper's 2% tail.
    #[must_use]
    pub fn new(machine: Machine, ladder: VoltageLadder, transition: TransitionModel) -> Self {
        DvsCompiler {
            machine,
            ladder,
            transition,
            tail_fraction: 0.02,
        }
    }

    /// The voltage ladder in use.
    #[must_use]
    pub fn ladder(&self) -> &VoltageLadder {
        &self.ladder
    }

    /// The transition model in use.
    #[must_use]
    pub fn transition(&self) -> &TransitionModel {
        &self.transition
    }

    /// The machine used for profiling and validation.
    #[must_use]
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Profiles `trace` at every ladder mode. Profiles are reusable across
    /// deadlines and transition models, so call this once per
    /// (program, input) and feed the result to [`DvsCompiler::compile`]
    /// repeatedly.
    #[must_use]
    pub fn profile(&self, cfg: &Cfg, trace: &Trace) -> (Profile, Vec<RunStats>) {
        timed("pass.profile", "pass.profile.wall_us", || {
            ModeProfiler::new(self.machine.clone()).profile(cfg, trace, &self.ladder)
        })
    }

    /// Runs filter + MILP for one deadline on an existing profile.
    ///
    /// # Errors
    ///
    /// [`MilpError::Infeasible`] when the deadline cannot be met.
    pub fn compile(
        &self,
        cfg: &Cfg,
        profile: &Profile,
        deadline_us: f64,
    ) -> Result<CompileResult, MilpError> {
        let ref_mode = self.ladder.len() - 1;
        let filter = timed("pass.filter", "pass.filter.wall_us", || {
            if self.tail_fraction > 0.0 {
                EdgeFilter::tail_rule(cfg, profile, ref_mode, self.tail_fraction)
            } else {
                EdgeFilter::identity(cfg)
            }
        });
        let milp = MilpFormulation::new(cfg, profile, &self.ladder, &self.transition, deadline_us)
            .with_filter(filter)
            .solve()?;
        let analysis = timed("pass.schedule", "pass.schedule.wall_us", || {
            ScheduleAnalysis::new(cfg, profile, &milp.schedule)
        });
        let single_mode = baseline::best_single_mode(profile, &self.ladder, deadline_us);
        Ok(CompileResult {
            milp,
            analysis,
            single_mode,
            validated: None,
        })
    }

    /// The §4.3 multi-category pass: one shared schedule minimizing the
    /// weighted-average energy across `categories`, validated by
    /// re-simulating every category's trace under the shared schedule.
    /// Returns the outcome plus per-category measured runs (same order as
    /// `categories`).
    ///
    /// # Errors
    ///
    /// [`MilpError::Infeasible`] when no shared assignment meets every
    /// category deadline.
    pub fn compile_multi(
        &self,
        cfg: &Cfg,
        categories: &[crate::CategoryProfile],
        traces: &[&Trace],
    ) -> Result<(crate::MultiOutcome, Vec<ScheduledRun>), MilpError> {
        assert_eq!(
            categories.len(),
            traces.len(),
            "one trace per category required"
        );
        let ref_mode = self.ladder.len() - 1;
        let filter = if self.tail_fraction > 0.0 {
            // Filter from the heaviest-weight category's profile.
            let heaviest = categories
                .iter()
                .max_by(|a, b| a.weight.partial_cmp(&b.weight).expect("finite weights"))
                .expect("at least one category");
            EdgeFilter::tail_rule(cfg, &heaviest.profile, ref_mode, self.tail_fraction)
        } else {
            EdgeFilter::identity(cfg)
        };
        let outcome = crate::MultiCategory::new(cfg, categories, &self.ladder, &self.transition)
            .with_filter(filter)
            .solve()?;
        let runs = traces
            .iter()
            .map(|t| {
                self.machine.run_scheduled(
                    cfg,
                    t,
                    &self.ladder,
                    &outcome.schedule,
                    &self.transition,
                )
            })
            .collect();
        Ok((outcome, runs))
    }

    /// [`DvsCompiler::compile`] plus a re-simulation of the schedule to
    /// measure (rather than predict) time, energy and transition counts.
    ///
    /// # Errors
    ///
    /// Same as [`DvsCompiler::compile`].
    pub fn compile_and_validate(
        &self,
        cfg: &Cfg,
        trace: &Trace,
        profile: &Profile,
        deadline_us: f64,
    ) -> Result<CompileResult, MilpError> {
        let mut result = self.compile(cfg, profile, deadline_us)?;
        let run = timed("pass.validate", "pass.validate.wall_us", || {
            self.machine.run_scheduled(
                cfg,
                trace,
                &self.ladder,
                &result.milp.schedule,
                &self.transition,
            )
        });
        result.validated = Some(run);
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_ir::{CfgBuilder, Inst, MemWidth, Opcode, Reg};
    use dvs_sim::TraceBuilder;
    use dvs_vf::AlphaPower;

    /// A program with a memory-bound loop followed by a compute-bound loop,
    /// the canonical shape that benefits from intra-program DVS.
    fn two_phase_program() -> (Cfg, Trace) {
        let mut b = CfgBuilder::new("two-phase");
        let e = b.block("entry");
        let mem = b.block("memloop");
        let comp = b.block("comploop");
        let x = b.block("exit");
        // memloop: strided load + thin compute.
        b.push(mem, Inst::load(Reg(1), Reg(2), MemWidth::B4));
        b.push(mem, Inst::alu(Opcode::IntAlu, Reg(3), &[Reg(1)]));
        b.push(mem, Inst::branch(Reg(3)));
        // comploop: dependent ALU chain.
        for _ in 0..10 {
            b.push(comp, Inst::alu(Opcode::IntAlu, Reg(4), &[Reg(4)]));
        }
        b.push(comp, Inst::branch(Reg(4)));
        b.edge(e, mem);
        b.edge(mem, mem);
        b.edge(mem, comp);
        b.edge(comp, comp);
        b.edge(comp, x);
        let cfg = b.finish(e, x).unwrap();
        let mut tb = TraceBuilder::new(&cfg);
        let (e, mem, comp, x) = (
            cfg.entry(),
            cfg.block_by_label("memloop").unwrap(),
            cfg.block_by_label("comploop").unwrap(),
            cfg.exit(),
        );
        tb.step(e, vec![]);
        for i in 0..400u64 {
            tb.step(mem, vec![0x10_0000 + i * 4096]);
        }
        for _ in 0..400 {
            tb.step(comp, vec![]);
        }
        tb.step(x, vec![]);
        let t = tb.finish().unwrap();
        (cfg, t)
    }

    fn compiler() -> DvsCompiler {
        DvsCompiler::new(
            Machine::paper_default(),
            VoltageLadder::xscale3(&AlphaPower::paper()),
            TransitionModel::with_capacitance_uf(10.0),
        )
    }

    #[test]
    fn end_to_end_meets_deadline_and_beats_single_mode() {
        let (cfg, trace) = two_phase_program();
        let c = compiler();
        let (profile, runs) = c.profile(&cfg, &trace);
        // Deadline between the all-fast and all-slow runtimes.
        let t_fast = runs.last().unwrap().total_time_us;
        let t_slow = runs[0].total_time_us;
        let deadline = t_fast + 0.5 * (t_slow - t_fast);
        let r = c
            .compile_and_validate(&cfg, &trace, &profile, deadline)
            .unwrap();

        assert!(r.milp.predicted_time_us <= deadline + 1e-6);
        // The MILP may never do worse than the best single mode.
        let (_, _, single_e) = r.single_mode.unwrap();
        assert!(
            r.milp.predicted_energy_uj <= single_e + 1e-6,
            "milp {} vs single {}",
            r.milp.predicted_energy_uj,
            single_e
        );
        // Validation: measured time should be near the prediction and must
        // respect the deadline with a small modelling tolerance.
        let v = r.validated.unwrap();
        assert!(
            v.time_us <= deadline * 1.05,
            "validated {} vs deadline {}",
            v.time_us,
            deadline
        );
    }

    #[test]
    fn infeasible_deadline_is_reported() {
        let (cfg, trace) = two_phase_program();
        let c = compiler();
        let (profile, runs) = c.profile(&cfg, &trace);
        let t_fast = runs.last().unwrap().total_time_us;
        let err = c.compile(&cfg, &profile, t_fast * 0.5).unwrap_err();
        assert!(matches!(err, MilpError::Infeasible));
    }

    #[test]
    fn lax_deadline_runs_everything_slow() {
        let (cfg, trace) = two_phase_program();
        let c = compiler();
        let (profile, runs) = c.profile(&cfg, &trace);
        let t_slow = runs[0].total_time_us;
        let r = c.compile(&cfg, &profile, t_slow * 1.5).unwrap();
        // All-slow single mode is optimal: no transitions worth paying for.
        assert_eq!(r.analysis.predicted_dynamic_transitions(), 0);
        assert_eq!(r.milp.schedule.initial, dvs_vf::ModeId(0));
        assert!(r.savings_vs_single().unwrap() < 1e-9);
    }

    #[test]
    fn compile_multi_meets_both_category_deadlines() {
        // Two "categories" = the same program with different iteration
        // balances (memory-heavy vs compute-heavy executions).
        let (cfg, trace_a) = two_phase_program();
        let trace_b = {
            let mut tb = dvs_sim::TraceBuilder::new(&cfg);
            let (e, mem, comp, x) = (
                cfg.entry(),
                cfg.block_by_label("memloop").unwrap(),
                cfg.block_by_label("comploop").unwrap(),
                cfg.exit(),
            );
            tb.step(e, vec![]);
            for i in 0..150u64 {
                tb.step(mem, vec![0x60_0000 + i * 4096]);
            }
            for _ in 0..900 {
                tb.step(comp, vec![]);
            }
            tb.step(x, vec![]);
            tb.finish().unwrap()
        };
        let c = compiler();
        let (pa, runs_a) = c.profile(&cfg, &trace_a);
        let (pb, runs_b) = c.profile(&cfg, &trace_b);
        let mk_deadline = |runs: &[dvs_sim::RunStats]| {
            let tf = runs.last().unwrap().total_time_us;
            let ts = runs[0].total_time_us;
            tf + 0.5 * (ts - tf)
        };
        let da = mk_deadline(&runs_a);
        let db = mk_deadline(&runs_b);
        let cats = vec![
            crate::CategoryProfile {
                weight: 0.5,
                profile: pa,
                deadline_us: da,
            },
            crate::CategoryProfile {
                weight: 0.5,
                profile: pb,
                deadline_us: db,
            },
        ];
        let (outcome, measured) = c
            .compile_multi(&cfg, &cats, &[&trace_a, &trace_b])
            .expect("joint deadlines feasible");
        assert_eq!(measured.len(), 2);
        assert!(outcome.predicted_times_us[0] <= da + 1e-6);
        assert!(outcome.predicted_times_us[1] <= db + 1e-6);
        assert!(
            measured[0].time_us <= da * 1.05,
            "cat A measured over deadline"
        );
        assert!(
            measured[1].time_us <= db * 1.05,
            "cat B measured over deadline"
        );
    }

    #[test]
    fn transition_costs_reduce_switching() {
        let (cfg, trace) = two_phase_program();
        let ladder = VoltageLadder::xscale3(&AlphaPower::paper());
        let cheap = DvsCompiler::new(
            Machine::paper_default(),
            ladder.clone(),
            TransitionModel::with_capacitance_uf(0.01),
        );
        let pricey = DvsCompiler::new(
            Machine::paper_default(),
            ladder,
            TransitionModel::with_capacitance_uf(100.0),
        );
        let (profile, runs) = cheap.profile(&cfg, &trace);
        let t_fast = runs.last().unwrap().total_time_us;
        let t_slow = runs[0].total_time_us;
        let deadline = t_fast + 0.4 * (t_slow - t_fast);
        let r_cheap = cheap.compile(&cfg, &profile, deadline).unwrap();
        let r_pricey = pricey.compile(&cfg, &profile, deadline).unwrap();
        assert!(
            r_pricey.analysis.predicted_dynamic_transitions()
                <= r_cheap.analysis.predicted_dynamic_transitions(),
            "expensive transitions must not increase switching"
        );
        // And expensive-transition energy is never below cheap-transition.
        assert!(r_pricey.milp.predicted_energy_uj >= r_cheap.milp.predicted_energy_uj - 1e-9);
    }
}
