use dvs_ir::{Cfg, Dominators, EdgeId, LoopForest, Profile};
use dvs_sim::EdgeSchedule;

/// Static analysis of a finished [`EdgeSchedule`]: which mode-set
/// instructions are *silent* (their value always matches the incoming
/// context, so a post-pass can hoist or delete them — §4.2's loop-back-edge
/// observation), and how many dynamic transitions the profile predicts.
#[derive(Debug, Clone)]
pub struct ScheduleAnalysis {
    silent: Vec<bool>,
    predicted_dynamic_transitions: u64,
    back_edge_silent: usize,
    back_edge_total: usize,
}

impl ScheduleAnalysis {
    /// Analyzes `schedule` against the profile's local-path counts.
    #[must_use]
    pub fn new(cfg: &Cfg, profile: &Profile, schedule: &EdgeSchedule) -> Self {
        let mode_of = |e: Option<EdgeId>| match e {
            Some(e) => schedule.edge_modes[e.index()],
            None => schedule.initial,
        };

        // An edge's mode-set is silent if every executed local path that
        // exits through it enters at the same mode.
        let mut silent = vec![true; cfg.num_edges()];
        let mut dynamic = 0u64;
        for (path, count) in profile.local_paths() {
            let Some(exit) = path.exit else { continue };
            if count == 0 {
                continue;
            }
            if mode_of(path.enter) != mode_of(Some(exit)) {
                silent[exit.index()] = false;
                dynamic += count;
            }
        }
        // Edges that never executed keep their (vacuously silent) setting.

        let dom = Dominators::compute(cfg);
        let loops = LoopForest::compute(cfg, &dom);
        let back_edge_total = loops.len();
        let back_edge_silent = loops
            .loops()
            .iter()
            .filter(|l| silent[l.back_edge.index()])
            .count();

        ScheduleAnalysis {
            silent,
            predicted_dynamic_transitions: dynamic,
            back_edge_silent,
            back_edge_total,
        }
    }

    /// This analysis with the hoisting post-pass disabled: every mode-set
    /// is reported live, so an emitter keeps all naive mode-sets. Dynamic
    /// transition prediction is unchanged — it is a property of the
    /// schedule, not of hoisting.
    #[must_use]
    pub fn without_hoisting(mut self) -> Self {
        for s in &mut self.silent {
            *s = false;
        }
        self.back_edge_silent = 0;
        self
    }

    /// Whether the mode-set on `e` never fires at run time.
    #[must_use]
    pub fn is_silent(&self, e: EdgeId) -> bool {
        self.silent[e.index()]
    }

    /// Number of statically removable (always-silent) mode-set points.
    #[must_use]
    pub fn num_silent(&self) -> usize {
        self.silent.iter().filter(|&&s| s).count()
    }

    /// Mode-set instructions that must remain after hoisting.
    #[must_use]
    pub fn num_live(&self) -> usize {
        self.silent.len() - self.num_silent()
    }

    /// Per-edge emission mask: `true` where the mode-set instruction is
    /// actually emitted (i.e. not elided as silent). This is the shape the
    /// static verifier consumes.
    #[must_use]
    pub fn emitted_mask(&self) -> Vec<bool> {
        self.silent.iter().map(|&s| !s).collect()
    }

    /// Dynamic mode transitions predicted from the profile (should match
    /// the simulator's measured count when the profile input is replayed).
    #[must_use]
    pub fn predicted_dynamic_transitions(&self) -> u64 {
        self.predicted_dynamic_transitions
    }

    /// `(silent, total)` loop back edges — the paper's motivating case for
    /// the hoisting post-pass.
    #[must_use]
    pub fn back_edge_summary(&self) -> (usize, usize) {
        (self.back_edge_silent, self.back_edge_total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_ir::{BlockId, BlockModeCost, CfgBuilder, ProfileBuilder};
    use dvs_vf::ModeId;

    fn loop_cfg() -> (Cfg, Vec<BlockId>) {
        let mut b = CfgBuilder::new("l");
        let e = b.block("entry");
        let h = b.block("head");
        let body = b.block("body");
        let x = b.block("exit");
        b.edge(e, h);
        b.edge(h, body);
        b.edge(body, h);
        b.edge(h, x);
        let cfg = b.finish(e, x).unwrap();
        (cfg, vec![e, h, body, x])
    }

    fn profile(cfg: &Cfg, blocks: &[BlockId], iters: usize) -> Profile {
        let mut pb = ProfileBuilder::new(cfg, 3);
        let (e, h, body, x) = (blocks[0], blocks[1], blocks[2], blocks[3]);
        let mut walk = vec![e];
        for _ in 0..iters {
            walk.push(h);
            walk.push(body);
        }
        walk.push(h);
        walk.push(x);
        assert!(pb.record_walk(cfg, &walk));
        for &b in blocks {
            for m in 0..3 {
                pb.set_block_cost(
                    b,
                    m,
                    BlockModeCost {
                        time_us: 1.0,
                        energy_uj: 1.0,
                    },
                );
            }
        }
        pb.finish()
    }

    #[test]
    fn uniform_schedule_is_all_silent() {
        let (cfg, blocks) = loop_cfg();
        let p = profile(&cfg, &blocks, 10);
        let s = EdgeSchedule::uniform(&cfg, ModeId(1));
        let a = ScheduleAnalysis::new(&cfg, &p, &s);
        assert_eq!(a.num_silent(), cfg.num_edges());
        assert_eq!(a.predicted_dynamic_transitions(), 0);
        let (bs, bt) = a.back_edge_summary();
        assert_eq!(bt, 1);
        assert_eq!(bs, 1);
    }

    #[test]
    fn loop_back_edge_with_matching_mode_is_silent() {
        let (cfg, blocks) = loop_cfg();
        let p = profile(&cfg, &blocks, 10);
        let (e, h, body, x) = (blocks[0], blocks[1], blocks[2], blocks[3]);
        // Loop runs slow (mode 0), exit edge switches to fast (mode 2).
        let mut s = EdgeSchedule::uniform(&cfg, ModeId(0));
        s.edge_modes[cfg.edge_between(h, x).unwrap().index()] = ModeId(2);
        let a = ScheduleAnalysis::new(&cfg, &p, &s);
        let back = cfg.edge_between(body, h).unwrap();
        assert!(a.is_silent(back), "back edge mode matches loop mode");
        let exit_edge = cfg.edge_between(h, x).unwrap();
        assert!(!a.is_silent(exit_edge));
        // Exactly one dynamic transition (at loop exit).
        assert_eq!(a.predicted_dynamic_transitions(), 1);
        let _ = (e, body);
    }

    #[test]
    fn mode_change_inside_loop_fires_every_iteration() {
        let (cfg, blocks) = loop_cfg();
        let p = profile(&cfg, &blocks, 10);
        let (h, body) = (blocks[1], blocks[2]);
        let mut s = EdgeSchedule::uniform(&cfg, ModeId(0));
        // body runs fast, head slow: two transitions per iteration.
        s.edge_modes[cfg.edge_between(h, body).unwrap().index()] = ModeId(2);
        let a = ScheduleAnalysis::new(&cfg, &p, &s);
        // 10 h->body switches + 10 body->h switches back.
        assert_eq!(a.predicted_dynamic_transitions(), 20);
        assert!(a.num_live() >= 2);
    }
}
