//! Ball–Larus path profiling.
//!
//! §7 of the paper proposes moving the MILP from edges to *paths*, citing
//! Ball & Larus' efficient path profiling. This module implements the
//! classic algorithm: number all acyclic paths of the CFG (back edges are
//! conceptually cut, so a "path" runs from the entry or a loop header to
//! the exit or a back edge) such that each path maps to a unique integer in
//! `0..num_paths`, computable at run time by summing per-edge increments.
//!
//! The companion [`PathProfile`] replays a dynamic block walk and counts
//! how often each acyclic path executes — the profile a path-granularity
//! DVS formulation would consume.

use crate::{BlockId, Cfg, Dominators, EdgeId, LoopForest};
use std::collections::BTreeMap;

/// Ball–Larus path numbering for a CFG.
///
/// Back edges (in the dominator sense) are excluded from the numbering; a
/// dynamic run decomposes into a sequence of acyclic paths, each starting
/// at the entry or the target of a back edge (a loop header), and ending at
/// the exit or the source of a back edge (a latch).
///
/// # Example
///
/// ```
/// use dvs_ir::{BallLarus, CfgBuilder, PathProfile};
///
/// let mut b = CfgBuilder::new("diamond");
/// let e = b.block("entry");
/// let t = b.block("then");
/// let f = b.block("else");
/// let x = b.block("exit");
/// b.edge(e, t);
/// b.edge(e, f);
/// b.edge(t, x);
/// b.edge(f, x);
/// let cfg = b.finish(e, x).unwrap();
///
/// let bl = BallLarus::compute(&cfg);
/// assert_eq!(bl.num_paths(), 2);
/// let profile = PathProfile::from_walk(&cfg, &bl, &[e, t, x]).unwrap();
/// assert_eq!(profile.total(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct BallLarus {
    /// `increment[e]` for each non-back edge; back edges map to `None`.
    increments: Vec<Option<u64>>,
    /// Number of acyclic paths from entry to exit in the back-edge-free
    /// graph. (Paths that begin/end at loop boundaries reuse the same
    /// numbering, offset by where they enter.)
    num_paths: u64,
    /// `num_from[b]`: acyclic paths from `b` to the exit.
    num_from: Vec<u64>,
}

impl BallLarus {
    /// Computes the numbering. Back edges are identified through the
    /// dominator tree, exactly as [`LoopForest`] does.
    #[must_use]
    pub fn compute(cfg: &Cfg) -> Self {
        let dom = Dominators::compute(cfg);
        let is_back: Vec<bool> = cfg.edges().map(|e| dom.dominates(e.dst, e.src)).collect();

        // NumPaths(v) over the DAG in reverse topological order.
        let order = cfg.reverse_post_order();
        let mut num_from = vec![0u64; cfg.num_blocks()];
        let mut increments: Vec<Option<u64>> = cfg
            .edges()
            .map(|e| if is_back[e.id.index()] { None } else { Some(0) })
            .collect();
        for &b in order.iter().rev() {
            let outs: Vec<EdgeId> = cfg.out_edges(b).filter(|e| !is_back[e.index()]).collect();
            if outs.is_empty() {
                num_from[b.0] = 1; // exit (or a latch whose only exits are back edges)
            } else {
                let mut acc = 0u64;
                for e in outs {
                    increments[e.index()] = Some(acc);
                    acc = acc
                        .checked_add(num_from[cfg.edge(e).dst.0])
                        .expect("path count overflow");
                }
                num_from[b.0] = acc.max(1);
            }
        }
        BallLarus {
            increments,
            num_paths: num_from[cfg.entry().0],
            num_from,
        }
    }

    /// Number of distinct acyclic entry-to-exit paths in the
    /// back-edge-free graph.
    #[must_use]
    pub fn num_paths(&self) -> u64 {
        self.num_paths
    }

    /// Number of acyclic paths from `b` to the exit (the local numbering
    /// space for paths that begin at `b`, e.g. a loop header).
    #[must_use]
    pub fn num_paths_from(&self, b: BlockId) -> u64 {
        self.num_from[b.0]
    }

    /// The run-time increment for `e`, or `None` if `e` is a back edge
    /// (which terminates the current path instead).
    #[must_use]
    pub fn increment(&self, e: EdgeId) -> Option<u64> {
        self.increments[e.index()]
    }
}

/// A dynamic acyclic-path segment: where it started, its Ball–Larus number
/// in that start block's numbering space, and how it ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PathKey {
    /// First block of the segment (the CFG entry or a loop header).
    pub start: BlockId,
    /// Ball–Larus path number accumulated along the segment.
    pub id: u64,
}

/// Counts of executed acyclic paths, produced by replaying a block walk.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PathProfile {
    counts: BTreeMap<PathKey, u64>,
}

impl PathProfile {
    /// Replays `walk` (an entry-to-exit block sequence) against the
    /// numbering, counting each completed acyclic segment. Returns `None`
    /// if the walk does not follow CFG edges.
    #[must_use]
    pub fn from_walk(cfg: &Cfg, bl: &BallLarus, walk: &[BlockId]) -> Option<Self> {
        if walk.first() != Some(&cfg.entry()) {
            return None;
        }
        let mut counts = BTreeMap::new();
        let mut start = cfg.entry();
        let mut acc = 0u64;
        for w in walk.windows(2) {
            let e = cfg.edge_between(w[0], w[1])?;
            match bl.increment(e) {
                Some(inc) => acc += inc,
                None => {
                    // Back edge: the current path ends at the latch, and a
                    // new one begins at the loop header.
                    *counts.entry(PathKey { start, id: acc }).or_insert(0) += 1;
                    start = w[1];
                    acc = 0;
                }
            }
        }
        if walk.last() == Some(&cfg.exit()) {
            *counts.entry(PathKey { start, id: acc }).or_insert(0) += 1;
        }
        Some(PathProfile { counts })
    }

    /// Iterates `(path, count)` pairs, most frequent first.
    #[must_use]
    pub fn hottest(&self) -> Vec<(PathKey, u64)> {
        let mut v: Vec<(PathKey, u64)> = self.counts.iter().map(|(&k, &c)| (k, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// The count for one path.
    #[must_use]
    pub fn count(&self, key: PathKey) -> u64 {
        self.counts.get(&key).copied().unwrap_or(0)
    }

    /// Number of distinct executed paths.
    #[must_use]
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Total path executions (dynamic segments).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }
}

/// Reconstructs the block sequence of the path `key` names: walks from
/// `key.start`, at each block choosing the outgoing non-back edge whose
/// increment interval contains the remaining id. The inverse of the
/// numbering; useful for reporting hot paths by name.
#[must_use]
pub fn decode_path(cfg: &Cfg, bl: &BallLarus, key: PathKey) -> Vec<BlockId> {
    let mut blocks = vec![key.start];
    let mut remaining = key.id;
    let mut cur = key.start;
    loop {
        let mut outs: Vec<EdgeId> = cfg
            .out_edges(cur)
            .filter(|e| bl.increment(*e).is_some())
            .collect();
        if outs.is_empty() {
            return blocks;
        }
        // Pick the edge with the largest increment <= remaining.
        outs.sort_by_key(|e| bl.increment(*e).expect("non-back edge"));
        let mut chosen = outs[0];
        for e in outs {
            if bl.increment(e).expect("non-back edge") <= remaining {
                chosen = e;
            }
        }
        remaining -= bl.increment(chosen).expect("non-back edge");
        cur = cfg.edge(chosen).dst;
        blocks.push(cur);
    }
}

/// Finds the natural-loop headers of `cfg` — the possible path start
/// blocks besides the entry.
#[must_use]
pub fn path_start_blocks(cfg: &Cfg) -> Vec<BlockId> {
    let dom = Dominators::compute(cfg);
    let loops = LoopForest::compute(cfg, &dom);
    let mut starts = vec![cfg.entry()];
    for l in loops.loops() {
        if !starts.contains(&l.header) {
            starts.push(l.header);
        }
    }
    starts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CfgBuilder;

    /// The canonical Ball–Larus example: a diamond with two independent
    /// branches has 4 acyclic paths.
    fn double_diamond() -> (Cfg, Vec<BlockId>) {
        let mut b = CfgBuilder::new("dd");
        let ids: Vec<BlockId> = ["entry", "a1", "a2", "m", "b1", "b2", "exit"]
            .iter()
            .map(|l| b.block(*l))
            .collect();
        let (e, a1, a2, m, b1, b2, x) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5], ids[6]);
        b.edge(e, a1);
        b.edge(e, a2);
        b.edge(a1, m);
        b.edge(a2, m);
        b.edge(m, b1);
        b.edge(m, b2);
        b.edge(b1, x);
        b.edge(b2, x);
        (b.finish(e, x).unwrap(), ids)
    }

    #[test]
    fn double_diamond_has_four_paths_with_unique_ids() {
        let (cfg, ids) = double_diamond();
        let bl = BallLarus::compute(&cfg);
        assert_eq!(bl.num_paths(), 4);
        // Every entry-to-exit walk yields a distinct id in 0..4.
        let (e, a1, a2, m, b1, b2, x) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5], ids[6]);
        let mut seen = std::collections::BTreeSet::new();
        for first in [a1, a2] {
            for second in [b1, b2] {
                let walk = [e, first, m, second, x];
                let p = PathProfile::from_walk(&cfg, &bl, &walk).unwrap();
                let hot = p.hottest();
                assert_eq!(hot.len(), 1);
                assert!(hot[0].0.id < 4);
                seen.insert(hot[0].0.id);
            }
        }
        assert_eq!(seen.len(), 4, "ids must be distinct: {seen:?}");
    }

    #[test]
    fn decode_inverts_numbering() {
        let (cfg, ids) = double_diamond();
        let bl = BallLarus::compute(&cfg);
        let (e, a1, _a2, m, b1, _b2, x) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5], ids[6]);
        let walk = [e, a1, m, b1, x];
        let p = PathProfile::from_walk(&cfg, &bl, &walk).unwrap();
        let key = p.hottest()[0].0;
        let decoded = decode_path(&cfg, &bl, key);
        assert_eq!(decoded, walk.to_vec());
    }

    #[test]
    fn loops_split_paths_at_back_edges() {
        let mut b = CfgBuilder::new("loop");
        let e = b.block("entry");
        let h = b.block("head");
        let body = b.block("body");
        let x = b.block("exit");
        b.edge(e, h);
        b.edge(h, body);
        b.edge(body, h);
        b.edge(h, x);
        let cfg = b.finish(e, x).unwrap();
        let bl = BallLarus::compute(&cfg);
        // Walk with 3 loop iterations: entry->h->body | h->body | h->body |
        // h->exit: 4 path segments.
        let walk = [e, h, body, h, body, h, body, h, x];
        let p = PathProfile::from_walk(&cfg, &bl, &walk).unwrap();
        assert_eq!(p.total(), 4);
        // Two distinct segment shapes: (entry..body) and (h..body) repeated,
        // plus the final (h..exit).
        assert!(p.distinct() >= 2);
        assert_eq!(path_start_blocks(&cfg), vec![e, h]);
    }

    #[test]
    fn invalid_walks_rejected() {
        let (cfg, ids) = double_diamond();
        let bl = BallLarus::compute(&cfg);
        let (e, a1, _a2, _m, b1, _b2, _x) =
            (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5], ids[6]);
        assert!(PathProfile::from_walk(&cfg, &bl, &[a1, b1]).is_none());
        assert!(PathProfile::from_walk(&cfg, &bl, &[e, b1]).is_none());
    }

    #[test]
    fn straight_line_has_one_path() {
        let mut b = CfgBuilder::new("s");
        let e = b.block("entry");
        let m = b.block("m");
        let x = b.block("exit");
        b.edge(e, m);
        b.edge(m, x);
        let cfg = b.finish(e, x).unwrap();
        let bl = BallLarus::compute(&cfg);
        assert_eq!(bl.num_paths(), 1);
        let p = PathProfile::from_walk(&cfg, &bl, &[e, m, x]).unwrap();
        assert_eq!(p.total(), 1);
        assert_eq!(p.count(PathKey { start: e, id: 0 }), 1);
    }
}
