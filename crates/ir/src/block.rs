use crate::Inst;
use std::fmt;

/// Identifier of a basic block within its [`crate::Cfg`]. Dense indices,
/// assigned in creation order by [`crate::CfgBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub usize);

impl BlockId {
    /// The raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// A straight-line sequence of instructions with a single entry and a
/// single exit.
///
/// Blocks are also the paper's "regions": profiling attributes a time
/// `T(j,m)` and energy `E(j,m)` to each block `j` under each DVS mode `m`.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicBlock {
    /// This block's id.
    pub id: BlockId,
    /// Human-readable label (unique within the CFG).
    pub label: String,
    /// The instructions, in program order. If the block ends in a branch it
    /// is the last instruction.
    pub insts: Vec<Inst>,
}

impl BasicBlock {
    /// Creates an empty block.
    #[must_use]
    pub fn new(id: BlockId, label: impl Into<String>) -> Self {
        BasicBlock {
            id,
            label: label.into(),
            insts: Vec::new(),
        }
    }

    /// Number of static instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the block holds no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Count of instructions that access memory.
    #[must_use]
    pub fn mem_inst_count(&self) -> usize {
        self.insts.iter().filter(|i| i.opcode.is_mem()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemWidth, Opcode, Reg};

    #[test]
    fn empty_block() {
        let b = BasicBlock::new(BlockId(3), "loop.body");
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert_eq!(b.id, BlockId(3));
        assert_eq!(b.label, "loop.body");
    }

    #[test]
    fn mem_inst_count_counts_loads_and_stores() {
        let mut b = BasicBlock::new(BlockId(0), "b");
        b.insts.push(Inst::alu(Opcode::IntAlu, Reg(1), &[Reg(2)]));
        b.insts.push(Inst::load(Reg(3), Reg(1), MemWidth::B4));
        b.insts.push(Inst::store(Reg(3), Reg(1), MemWidth::B4));
        b.insts.push(Inst::branch(Reg(3)));
        assert_eq!(b.mem_inst_count(), 2);
        assert_eq!(b.len(), 4);
    }

    #[test]
    fn block_id_display() {
        assert_eq!(BlockId(12).to_string(), "B12");
        assert_eq!(BlockId(12).index(), 12);
    }
}
