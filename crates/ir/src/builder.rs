use crate::{BasicBlock, BlockId, Cfg, Edge, EdgeId, Inst, IrError};

/// Incremental builder for [`Cfg`]s.
///
/// Blocks and edges can be added in any order; [`CfgBuilder::finish`]
/// validates the full set of CFG invariants at once and returns every
/// violation as a typed [`IrError`].
///
/// # Example
///
/// ```
/// use dvs_ir::{CfgBuilder, Inst, Opcode, Reg};
/// let mut b = CfgBuilder::new("tiny");
/// let entry = b.block("entry");
/// let exit = b.block("exit");
/// b.push(entry, Inst::alu(Opcode::IntAlu, Reg(1), &[Reg(1)]));
/// b.edge(entry, exit);
/// let cfg = b.finish(entry, exit).unwrap();
/// assert_eq!(cfg.block(entry).len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CfgBuilder {
    name: String,
    blocks: Vec<BasicBlock>,
    edges: Vec<Edge>,
}

impl CfgBuilder {
    /// Starts building a CFG called `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        CfgBuilder {
            name: name.into(),
            blocks: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Adds an empty block labelled `label` and returns its id.
    pub fn block(&mut self, label: impl Into<String>) -> BlockId {
        let id = BlockId(self.blocks.len());
        self.blocks.push(BasicBlock::new(id, label));
        id
    }

    /// Appends an instruction to `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` was not created by this builder.
    pub fn push(&mut self, block: BlockId, inst: Inst) {
        self.blocks[block.0].insts.push(inst);
    }

    /// Appends many instructions to `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` was not created by this builder.
    pub fn push_all(&mut self, block: BlockId, insts: impl IntoIterator<Item = Inst>) {
        self.blocks[block.0].insts.extend(insts);
    }

    /// Adds the edge `src -> dst` and returns its id. Duplicates are
    /// detected at [`CfgBuilder::finish`] time.
    pub fn edge(&mut self, src: BlockId, dst: BlockId) -> EdgeId {
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge { id, src, dst });
        id
    }

    /// Number of blocks added so far.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Validates and produces the immutable [`Cfg`].
    ///
    /// # Errors
    ///
    /// Any violated invariant, as an [`IrError`]; see [`Cfg`] for the list.
    pub fn finish(self, entry: BlockId, exit: BlockId) -> Result<Cfg, IrError> {
        Cfg::new(self.name, self.blocks, self.edges, entry, exit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Opcode, Reg};

    #[test]
    fn builder_accumulates_instructions() {
        let mut b = CfgBuilder::new("t");
        let e = b.block("entry");
        let x = b.block("exit");
        b.push(e, Inst::nop());
        b.push_all(e, vec![Inst::nop(), Inst::alu(Opcode::IntAlu, Reg(1), &[])]);
        b.edge(e, x);
        assert_eq!(b.num_blocks(), 2);
        let cfg = b.finish(e, x).unwrap();
        assert_eq!(cfg.block(e).len(), 3);
        assert_eq!(cfg.static_inst_count(), 3);
    }

    #[test]
    fn single_block_graph() {
        let mut b = CfgBuilder::new("one");
        let only = b.block("only");
        let cfg = b.finish(only, only).unwrap();
        assert_eq!(cfg.num_blocks(), 1);
        assert_eq!(cfg.entry(), cfg.exit());
    }

    #[test]
    fn empty_graph_rejected() {
        let b = CfgBuilder::new("none");
        assert!(matches!(
            b.finish(BlockId(0), BlockId(0)),
            Err(IrError::Empty)
        ));
    }

    #[test]
    fn edge_ids_are_dense_in_insertion_order() {
        let mut b = CfgBuilder::new("t");
        let e = b.block("entry");
        let m = b.block("mid");
        let x = b.block("exit");
        let e0 = b.edge(e, m);
        let e1 = b.edge(m, x);
        assert_eq!(e0, EdgeId(0));
        assert_eq!(e1, EdgeId(1));
        let cfg = b.finish(e, x).unwrap();
        assert_eq!(cfg.edge(e0).dst, m);
        assert_eq!(cfg.edge(e1).src, m);
    }
}
