use crate::{BasicBlock, BlockId, Inst, IrError, MemWidth, Opcode, Reg};
use dvs_obs::json::Json;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a control-flow edge within its [`Cfg`]. Dense indices,
/// assigned in insertion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub usize);

impl EdgeId {
    /// The raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A directed control-flow edge `src -> dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// This edge's id.
    pub id: EdgeId,
    /// Source block.
    pub src: BlockId,
    /// Destination block.
    pub dst: BlockId,
}

/// A validated control-flow graph with designated entry and exit blocks.
///
/// Invariants established by [`crate::CfgBuilder::finish`]:
///
/// * every block is reachable from `entry` and reaches `exit`;
/// * `entry` has no predecessors and `exit` no successors;
/// * edges are unique and labels are unique.
///
/// The graph is immutable after construction, so analyses can cache dense
/// per-block/per-edge tables indexed by [`BlockId`]/[`EdgeId`].
///
/// Serialization stores only the definitional data (blocks, edges, entry,
/// exit); adjacency and lookup tables are rebuilt — and the invariants
/// revalidated — on deserialization.
#[derive(Debug, Clone, PartialEq)]
pub struct Cfg {
    name: String,
    blocks: Vec<BasicBlock>,
    edges: Vec<Edge>,
    succ: Vec<Vec<EdgeId>>,
    pred: Vec<Vec<EdgeId>>,
    entry: BlockId,
    exit: BlockId,
    edge_lookup: HashMap<(BlockId, BlockId), EdgeId>,
}

fn malformed(what: impl Into<String>) -> IrError {
    IrError::Malformed(what.into())
}

fn get_u64(j: &Json, key: &str) -> Result<u64, IrError> {
    j.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| malformed(format!("missing or non-integer field `{key}`")))
}

fn opcode_name(op: Opcode) -> &'static str {
    match op {
        Opcode::IntAlu => "ialu",
        Opcode::IntMul => "imul",
        Opcode::IntDiv => "idiv",
        Opcode::FpAdd => "fadd",
        Opcode::FpMul => "fmul",
        Opcode::FpDiv => "fdiv",
        Opcode::Load => "ld",
        Opcode::Store => "st",
        Opcode::Branch => "br",
        Opcode::Nop => "nop",
    }
}

fn opcode_from_name(name: &str) -> Result<Opcode, IrError> {
    Ok(match name {
        "ialu" => Opcode::IntAlu,
        "imul" => Opcode::IntMul,
        "idiv" => Opcode::IntDiv,
        "fadd" => Opcode::FpAdd,
        "fmul" => Opcode::FpMul,
        "fdiv" => Opcode::FpDiv,
        "ld" => Opcode::Load,
        "st" => Opcode::Store,
        "br" => Opcode::Branch,
        "nop" => Opcode::Nop,
        other => return Err(malformed(format!("unknown opcode `{other}`"))),
    })
}

fn inst_to_json(i: &Inst) -> Json {
    Json::obj([
        ("opcode", Json::from(opcode_name(i.opcode))),
        ("dest", Json::from(u64::from(i.dest.0))),
        (
            "srcs",
            Json::Arr(i.srcs.iter().map(|r| Json::from(u64::from(r.0))).collect()),
        ),
        ("width", Json::from(i.width.bytes())),
    ])
}

fn inst_from_json(j: &Json) -> Result<Inst, IrError> {
    let opcode = opcode_from_name(
        j.get("opcode")
            .and_then(Json::as_str)
            .ok_or_else(|| malformed("inst missing `opcode`"))?,
    )?;
    let dest =
        Reg(u8::try_from(get_u64(j, "dest")?).map_err(|_| malformed("register out of range"))?);
    let srcs = j
        .get("srcs")
        .and_then(Json::as_arr)
        .ok_or_else(|| malformed("inst missing `srcs`"))?
        .iter()
        .map(|s| {
            s.as_u64()
                .and_then(|v| u8::try_from(v).ok())
                .map(Reg)
                .ok_or_else(|| malformed("bad source register"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let width = match get_u64(j, "width")? {
        1 => MemWidth::B1,
        2 => MemWidth::B2,
        4 => MemWidth::B4,
        8 => MemWidth::B8,
        w => return Err(malformed(format!("bad memory width {w}"))),
    };
    Ok(Inst {
        opcode,
        dest,
        srcs,
        width,
    })
}

impl Cfg {
    pub(crate) fn new(
        name: String,
        blocks: Vec<BasicBlock>,
        edges: Vec<Edge>,
        entry: BlockId,
        exit: BlockId,
    ) -> Result<Self, IrError> {
        if blocks.is_empty() {
            return Err(IrError::Empty);
        }
        let n = blocks.len();
        let mut succ = vec![Vec::new(); n];
        let mut pred = vec![Vec::new(); n];
        let mut edge_lookup = HashMap::new();
        for e in &edges {
            if e.src.0 >= n {
                return Err(IrError::UnknownBlock(e.src));
            }
            if e.dst.0 >= n {
                return Err(IrError::UnknownBlock(e.dst));
            }
            if edge_lookup.insert((e.src, e.dst), e.id).is_some() {
                return Err(IrError::DuplicateEdge(e.src, e.dst));
            }
            succ[e.src.0].push(e.id);
            pred[e.dst.0].push(e.id);
        }
        let cfg = Cfg {
            name,
            blocks,
            edges,
            succ,
            pred,
            entry,
            exit,
            edge_lookup,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    fn validate(&self) -> Result<(), IrError> {
        if !self.pred[self.entry.0].is_empty() {
            return Err(IrError::EntryHasPredecessors(self.entry));
        }
        if !self.succ[self.exit.0].is_empty() {
            return Err(IrError::ExitHasSuccessors(self.exit));
        }
        let mut labels = HashMap::new();
        for b in &self.blocks {
            if labels.insert(b.label.clone(), b.id).is_some() {
                return Err(IrError::DuplicateLabel(b.label.clone()));
            }
        }
        // Forward reachability from entry.
        let fwd = self.reach(self.entry, |b| self.successors(b).collect::<Vec<_>>());
        if let Some(b) = (0..self.blocks.len()).find(|&i| !fwd[i]) {
            return Err(IrError::Unreachable(BlockId(b)));
        }
        // Backward reachability from exit.
        let bwd = self.reach(self.exit, |b| self.predecessors(b).collect::<Vec<_>>());
        if let Some(b) = (0..self.blocks.len()).find(|&i| !bwd[i]) {
            return Err(IrError::NoPathToExit(BlockId(b)));
        }
        Ok(())
    }

    fn reach(&self, start: BlockId, next: impl Fn(BlockId) -> Vec<BlockId>) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![start];
        seen[start.0] = true;
        while let Some(b) = stack.pop() {
            for s in next(b) {
                if !seen[s.0] {
                    seen[s.0] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }

    /// The graph's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The entry block.
    #[must_use]
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// The exit block.
    #[must_use]
    pub fn exit(&self) -> BlockId {
        self.exit
    }

    /// Number of blocks.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The block with id `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    #[must_use]
    pub fn block(&self, b: BlockId) -> &BasicBlock {
        &self.blocks[b.0]
    }

    /// The edge with id `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[must_use]
    pub fn edge(&self, e: EdgeId) -> Edge {
        self.edges[e.0]
    }

    /// All blocks in id order.
    pub fn blocks(&self) -> impl Iterator<Item = &BasicBlock> {
        self.blocks.iter()
    }

    /// All edges in id order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.edges.iter().copied()
    }

    /// Ids of edges leaving `b`.
    pub fn out_edges(&self, b: BlockId) -> impl Iterator<Item = EdgeId> + '_ {
        self.succ[b.0].iter().copied()
    }

    /// Ids of edges entering `b`.
    pub fn in_edges(&self, b: BlockId) -> impl Iterator<Item = EdgeId> + '_ {
        self.pred[b.0].iter().copied()
    }

    /// Successor blocks of `b`.
    pub fn successors(&self, b: BlockId) -> impl Iterator<Item = BlockId> + '_ {
        self.succ[b.0].iter().map(move |&e| self.edges[e.0].dst)
    }

    /// Predecessor blocks of `b`.
    pub fn predecessors(&self, b: BlockId) -> impl Iterator<Item = BlockId> + '_ {
        self.pred[b.0].iter().map(move |&e| self.edges[e.0].src)
    }

    /// The edge `a -> b`, if present.
    #[must_use]
    pub fn edge_between(&self, a: BlockId, b: BlockId) -> Option<EdgeId> {
        self.edge_lookup.get(&(a, b)).copied()
    }

    /// Looks up a block by label.
    #[must_use]
    pub fn block_by_label(&self, label: &str) -> Option<BlockId> {
        self.blocks.iter().find(|b| b.label == label).map(|b| b.id)
    }

    /// Blocks in reverse post-order of a depth-first search from the entry —
    /// the canonical iteration order for forward dataflow analyses.
    #[must_use]
    pub fn reverse_post_order(&self) -> Vec<BlockId> {
        let mut state = vec![0u8; self.blocks.len()]; // 0=unseen 1=open 2=done
        let mut post = Vec::with_capacity(self.blocks.len());
        // Iterative DFS with an explicit stack of (block, next-successor-ix).
        let mut stack: Vec<(BlockId, usize)> = vec![(self.entry, 0)];
        state[self.entry.0] = 1;
        while let Some(&mut (b, ref mut ix)) = stack.last_mut() {
            let succs = &self.succ[b.0];
            if *ix < succs.len() {
                let nxt = self.edges[succs[*ix].0].dst;
                *ix += 1;
                if state[nxt.0] == 0 {
                    state[nxt.0] = 1;
                    stack.push((nxt, 0));
                }
            } else {
                state[b.0] = 2;
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Total static instruction count across all blocks.
    #[must_use]
    pub fn static_inst_count(&self) -> usize {
        self.blocks.iter().map(BasicBlock::len).sum()
    }

    /// Verifies that the graph is reducible: removing every back edge
    /// (an edge whose destination dominates its source) must leave the
    /// graph acyclic. Loop-aware passes (hoisting, the natural-loop
    /// forest, the property-test generators) assume this.
    ///
    /// # Errors
    ///
    /// [`IrError::Irreducible`] naming one retreating edge of the residual
    /// cycle (the lowest-id such edge, so the report is deterministic).
    pub fn check_reducible(&self) -> Result<(), IrError> {
        let dom = crate::Dominators::compute(self);
        // Kahn's algorithm on the forward (non-back) edges.
        let forward: Vec<Edge> = self
            .edges
            .iter()
            .copied()
            .filter(|e| !dom.dominates(e.dst, e.src))
            .collect();
        let mut indegree = vec![0usize; self.blocks.len()];
        for e in &forward {
            indegree[e.dst.0] += 1;
        }
        let mut queue: Vec<BlockId> = (0..self.blocks.len())
            .map(BlockId)
            .filter(|b| indegree[b.0] == 0)
            .collect();
        let mut removed = 0usize;
        while let Some(b) = queue.pop() {
            removed += 1;
            for e in &forward {
                if e.src == b {
                    indegree[e.dst.0] -= 1;
                    if indegree[e.dst.0] == 0 {
                        queue.push(e.dst);
                    }
                }
            }
        }
        if removed == self.blocks.len() {
            return Ok(());
        }
        // A cycle of non-back edges remains among the blocks with positive
        // residual in-degree. Prune residual blocks that cannot be on a
        // cycle (no residual successors) the same way, then report the
        // lowest-id surviving edge.
        let mut residual: Vec<bool> = indegree.iter().map(|&d| d > 0).collect();
        loop {
            let mut changed = false;
            for b in 0..residual.len() {
                if residual[b] && !forward.iter().any(|e| e.src.0 == b && residual[e.dst.0]) {
                    residual[b] = false;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let offending = forward
            .iter()
            .find(|e| residual[e.src.0] && residual[e.dst.0])
            .expect("residual cycle has at least one internal edge");
        Err(IrError::Irreducible(offending.src, offending.dst))
    }

    /// Serializes the definitional data (blocks, edges, entry, exit) to a
    /// JSON value. Adjacency and lookup tables are *not* stored; they are
    /// rebuilt — and the graph invariants revalidated — by [`Cfg::from_json`].
    #[must_use]
    pub fn to_json(&self) -> Json {
        let blocks = self
            .blocks
            .iter()
            .map(|b| {
                Json::obj([
                    ("id", Json::from(b.id.0 as u64)),
                    ("label", Json::from(b.label.as_str())),
                    (
                        "insts",
                        Json::Arr(b.insts.iter().map(inst_to_json).collect()),
                    ),
                ])
            })
            .collect();
        let edges = self
            .edges
            .iter()
            .map(|e| {
                Json::obj([
                    ("id", Json::from(e.id.0 as u64)),
                    ("src", Json::from(e.src.0 as u64)),
                    ("dst", Json::from(e.dst.0 as u64)),
                ])
            })
            .collect();
        Json::obj([
            ("name", Json::from(self.name.as_str())),
            ("blocks", Json::Arr(blocks)),
            ("edges", Json::Arr(edges)),
            ("entry", Json::from(self.entry.0 as u64)),
            ("exit", Json::from(self.exit.0 as u64)),
        ])
    }

    /// Serializes to a compact JSON string (see [`Cfg::to_json`]).
    #[must_use]
    pub fn to_json_string(&self) -> String {
        self.to_json().dump()
    }

    /// Rebuilds a graph from the JSON produced by [`Cfg::to_json`], running
    /// the full structural validation (`entry`/`exit` discipline,
    /// reachability, unique edges and labels).
    pub fn from_json(j: &Json) -> Result<Self, IrError> {
        let name = j
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| malformed("missing `name`"))?
            .to_owned();
        let blocks = j
            .get("blocks")
            .and_then(Json::as_arr)
            .ok_or_else(|| malformed("missing `blocks`"))?
            .iter()
            .map(|b| {
                let id = BlockId(get_u64(b, "id")? as usize);
                let label = b
                    .get("label")
                    .and_then(Json::as_str)
                    .ok_or_else(|| malformed("block missing `label`"))?
                    .to_owned();
                let insts = b
                    .get("insts")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| malformed("block missing `insts`"))?
                    .iter()
                    .map(inst_from_json)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(BasicBlock { id, label, insts })
            })
            .collect::<Result<Vec<_>, IrError>>()?;
        let edges = j
            .get("edges")
            .and_then(Json::as_arr)
            .ok_or_else(|| malformed("missing `edges`"))?
            .iter()
            .map(|e| {
                Ok(Edge {
                    id: EdgeId(get_u64(e, "id")? as usize),
                    src: BlockId(get_u64(e, "src")? as usize),
                    dst: BlockId(get_u64(e, "dst")? as usize),
                })
            })
            .collect::<Result<Vec<_>, IrError>>()?;
        let entry = BlockId(get_u64(j, "entry")? as usize);
        let exit = BlockId(get_u64(j, "exit")? as usize);
        Cfg::new(name, blocks, edges, entry, exit)
    }

    /// Parses a JSON string and rebuilds the graph (see [`Cfg::from_json`]).
    pub fn from_json_str(s: &str) -> Result<Self, IrError> {
        let j = Json::parse(s).map_err(|e| malformed(format!("invalid JSON: {e}")))?;
        Cfg::from_json(&j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CfgBuilder;

    fn diamond() -> Cfg {
        let mut b = CfgBuilder::new("d");
        let e = b.block("entry");
        let t = b.block("t");
        let f = b.block("f");
        let x = b.block("exit");
        b.edge(e, t);
        b.edge(e, f);
        b.edge(t, x);
        b.edge(f, x);
        b.finish(e, x).unwrap()
    }

    #[test]
    fn diamond_shape() {
        let g = diamond();
        assert_eq!(g.num_blocks(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.successors(g.entry()).count(), 2);
        assert_eq!(g.predecessors(g.exit()).count(), 2);
        assert_eq!(g.out_edges(g.exit()).count(), 0);
        assert_eq!(g.in_edges(g.entry()).count(), 0);
    }

    #[test]
    fn edge_between_lookup() {
        let g = diamond();
        let t = g.block_by_label("t").unwrap();
        assert!(g.edge_between(g.entry(), t).is_some());
        assert!(g.edge_between(t, g.entry()).is_none());
        let e = g.edge_between(g.entry(), t).unwrap();
        assert_eq!(g.edge(e).src, g.entry());
        assert_eq!(g.edge(e).dst, t);
    }

    #[test]
    fn reverse_post_order_starts_at_entry_and_respects_topology() {
        let g = diamond();
        let rpo = g.reverse_post_order();
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], g.entry());
        assert_eq!(*rpo.last().unwrap(), g.exit());
        // entry must come before both branches, which come before exit.
        let pos = |b: BlockId| rpo.iter().position(|&x| x == b).unwrap();
        let t = g.block_by_label("t").unwrap();
        let f = g.block_by_label("f").unwrap();
        assert!(pos(g.entry()) < pos(t));
        assert!(pos(g.entry()) < pos(f));
        assert!(pos(t) < pos(g.exit()));
        assert!(pos(f) < pos(g.exit()));
    }

    #[test]
    fn rpo_handles_loops() {
        let mut b = CfgBuilder::new("loop");
        let e = b.block("entry");
        let h = b.block("head");
        let body = b.block("body");
        let x = b.block("exit");
        b.edge(e, h);
        b.edge(h, body);
        b.edge(body, h); // back edge
        b.edge(h, x);
        let g = b.finish(e, x).unwrap();
        let rpo = g.reverse_post_order();
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], e);
    }

    #[test]
    fn unreachable_block_rejected() {
        let mut b = CfgBuilder::new("bad");
        let e = b.block("entry");
        let orphan = b.block("orphan");
        let x = b.block("exit");
        b.edge(e, x);
        b.edge(orphan, x);
        assert!(matches!(b.finish(e, x), Err(IrError::Unreachable(_))));
    }

    #[test]
    fn block_with_no_exit_path_rejected() {
        let mut b = CfgBuilder::new("bad");
        let e = b.block("entry");
        let sink = b.block("sink");
        let x = b.block("exit");
        b.edge(e, sink);
        b.edge(e, x);
        assert!(matches!(b.finish(e, x), Err(IrError::NoPathToExit(_))));
    }

    #[test]
    fn entry_with_predecessor_rejected() {
        let mut b = CfgBuilder::new("bad");
        let e = b.block("entry");
        let x = b.block("exit");
        b.edge(e, x);
        b.edge(x, e);
        assert!(matches!(
            b.finish(e, x),
            Err(IrError::EntryHasPredecessors(_)) | Err(IrError::ExitHasSuccessors(_))
        ));
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut b = CfgBuilder::new("bad");
        let e = b.block("entry");
        let x = b.block("exit");
        b.edge(e, x);
        b.edge(e, x);
        assert!(matches!(b.finish(e, x), Err(IrError::DuplicateEdge(_, _))));
    }

    #[test]
    fn serde_round_trip_rebuilds_lookup_tables() {
        let g = diamond();
        let json = g.to_json_string();
        let back = Cfg::from_json_str(&json).expect("deserializes");
        assert_eq!(g, back);
        // The rebuilt graph answers adjacency queries (the lookup table is
        // not serialized; it must be reconstructed).
        let t = back.block_by_label("t").unwrap();
        assert!(back.edge_between(back.entry(), t).is_some());
        assert_eq!(back.successors(back.entry()).count(), 2);
    }

    #[test]
    fn serde_rejects_corrupt_graphs() {
        // An edge referencing a missing block must fail to deserialize.
        let json = r#"{
            "name": "bad",
            "blocks": [{"id": 0, "label": "only", "insts": []}],
            "edges": [{"id": 0, "src": 0, "dst": 5}],
            "entry": 0,
            "exit": 0
        }"#;
        assert!(matches!(
            Cfg::from_json_str(json),
            Err(IrError::UnknownBlock(_))
        ));
        // Outright broken JSON fails with a parse error, not a panic.
        assert!(matches!(
            Cfg::from_json_str("{nope"),
            Err(IrError::Malformed(_))
        ));
    }

    #[test]
    fn json_round_trip_preserves_instructions() {
        let mut b = CfgBuilder::new("insts");
        let e = b.block("entry");
        let x = b.block("exit");
        b.edge(e, x);
        let mut g = b.finish(e, x).unwrap();
        // Reach in through the serialized form to attach instructions.
        let j = g.to_json();
        drop(j);
        g = {
            let mut blocks: Vec<BasicBlock> = g.blocks().cloned().collect();
            blocks[0].insts = vec![
                Inst::alu(Opcode::IntAlu, Reg(1), &[Reg(2), Reg(3)]),
                Inst::load(Reg(4), Reg(1), MemWidth::B8),
                Inst::store(Reg(4), Reg(1), MemWidth::B2),
                Inst::branch(Reg(4)),
            ];
            let edges: Vec<Edge> = g.edges().collect();
            Cfg::new("insts".into(), blocks, edges, g.entry(), g.exit()).unwrap()
        };
        let back = Cfg::from_json_str(&g.to_json_string()).unwrap();
        assert_eq!(back, g);
        assert_eq!(back.static_inst_count(), 4);
        assert_eq!(back.block(back.entry()).mem_inst_count(), 2);
    }

    #[test]
    fn duplicate_label_rejected() {
        let mut b = CfgBuilder::new("bad");
        let e = b.block("same");
        let x = b.block("same");
        b.edge(e, x);
        assert!(matches!(b.finish(e, x), Err(IrError::DuplicateLabel(_))));
    }
}
