use crate::{BlockId, Cfg};

/// Dominator tree of a [`Cfg`], computed with the Cooper–Harvey–Kennedy
/// iterative algorithm over reverse post-order.
///
/// Block `a` *dominates* `b` if every path from the entry to `b` passes
/// through `a`. The mode-set hoisting pass uses dominance to prove that a
/// loop back-edge's mode setting is redundant with the loop-entry setting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dominators {
    /// `idom[b]` is the immediate dominator of block `b`; the entry is its
    /// own immediate dominator.
    idom: Vec<BlockId>,
    entry: BlockId,
}

impl Dominators {
    /// Computes the dominator tree for `cfg`.
    #[must_use]
    pub fn compute(cfg: &Cfg) -> Self {
        let rpo = cfg.reverse_post_order();
        let n = cfg.num_blocks();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b.0] = i;
        }
        let entry = cfg.entry();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.0] = Some(entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                // Pick the first processed predecessor as the seed.
                let mut new_idom: Option<BlockId> = None;
                for p in cfg.predecessors(b) {
                    if idom[p.0].is_some() {
                        new_idom = Some(match new_idom {
                            None => p,
                            Some(cur) => intersect(&idom, &rpo_index, p, cur),
                        });
                    }
                }
                let new_idom = new_idom.expect("reachable block has a processed predecessor");
                if idom[b.0] != Some(new_idom) {
                    idom[b.0] = Some(new_idom);
                    changed = true;
                }
            }
        }
        Dominators {
            idom: idom
                .into_iter()
                .map(|d| d.expect("all blocks reachable in a validated CFG"))
                .collect(),
            entry,
        }
    }

    /// Immediate dominator of `b` (the entry returns itself).
    #[must_use]
    pub fn idom(&self, b: BlockId) -> BlockId {
        self.idom[b.0]
    }

    /// Whether `a` dominates `b` (reflexive: every block dominates itself).
    #[must_use]
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            cur = self.idom[cur.0];
        }
    }

    /// Whether `a` strictly dominates `b`.
    #[must_use]
    pub fn strictly_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.dominates(a, b)
    }
}

/// Postdominator tree of a [`Cfg`] — the dominator tree of the reversed
/// graph rooted at the exit.
///
/// Block `a` *postdominates* `b` if every path from `b` to the exit passes
/// through `a`. The verifier's loop-churn lint uses postdominance to tell
/// mandatory switches (on the spine every iteration must cross) from
/// conditional ones.
///
/// Well-defined on every validated [`Cfg`] because construction guarantees
/// every block reaches the exit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PostDominators {
    /// `ipdom[b]` is the immediate postdominator of block `b`; the exit is
    /// its own immediate postdominator.
    ipdom: Vec<BlockId>,
    exit: BlockId,
}

impl PostDominators {
    /// Computes the postdominator tree for `cfg` by running the same
    /// Cooper–Harvey–Kennedy iteration as [`Dominators::compute`] on the
    /// reversed graph: root = exit, predecessors = successors, order =
    /// reverse post-order of the reversed DFS.
    #[must_use]
    pub fn compute(cfg: &Cfg) -> Self {
        let rpo = reverse_post_order_backward(cfg);
        let n = cfg.num_blocks();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b.0] = i;
        }
        let exit = cfg.exit();
        let mut ipdom: Vec<Option<BlockId>> = vec![None; n];
        ipdom[exit.0] = Some(exit);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                // Predecessors in the reversed graph are the successors.
                let mut new_ipdom: Option<BlockId> = None;
                for p in cfg.successors(b) {
                    if ipdom[p.0].is_some() {
                        new_ipdom = Some(match new_ipdom {
                            None => p,
                            Some(cur) => intersect(&ipdom, &rpo_index, p, cur),
                        });
                    }
                }
                let new_ipdom = new_ipdom.expect("every block reaches the exit");
                if ipdom[b.0] != Some(new_ipdom) {
                    ipdom[b.0] = Some(new_ipdom);
                    changed = true;
                }
            }
        }
        PostDominators {
            ipdom: ipdom
                .into_iter()
                .map(|d| d.expect("all blocks reach the exit in a validated CFG"))
                .collect(),
            exit,
        }
    }

    /// Immediate postdominator of `b` (the exit returns itself).
    #[must_use]
    pub fn ipdom(&self, b: BlockId) -> BlockId {
        self.ipdom[b.0]
    }

    /// Whether `a` postdominates `b` (reflexive).
    #[must_use]
    pub fn postdominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.exit {
                return false;
            }
            cur = self.ipdom[cur.0];
        }
    }

    /// Whether `a` strictly postdominates `b`.
    #[must_use]
    pub fn strictly_postdominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.postdominates(a, b)
    }
}

/// Reverse post-order of a DFS over the *reversed* graph, starting at the
/// exit — the canonical iteration order for backward dataflow.
fn reverse_post_order_backward(cfg: &Cfg) -> Vec<BlockId> {
    let mut state = vec![0u8; cfg.num_blocks()]; // 0=unseen 1=open 2=done
    let mut post = Vec::with_capacity(cfg.num_blocks());
    let mut stack: Vec<(BlockId, usize)> = vec![(cfg.exit(), 0)];
    state[cfg.exit().0] = 1;
    while let Some(&mut (b, ref mut ix)) = stack.last_mut() {
        let preds: Vec<BlockId> = cfg.predecessors(b).collect();
        if *ix < preds.len() {
            let nxt = preds[*ix];
            *ix += 1;
            if state[nxt.0] == 0 {
                state[nxt.0] = 1;
                stack.push((nxt, 0));
            }
        } else {
            state[b.0] = 2;
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[a.0] > rpo_index[b.0] {
            a = idom[a.0].expect("processed");
        }
        while rpo_index[b.0] > rpo_index[a.0] {
            b = idom[b.0].expect("processed");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CfgBuilder;

    #[test]
    fn diamond_dominators() {
        let mut b = CfgBuilder::new("d");
        let e = b.block("entry");
        let t = b.block("t");
        let f = b.block("f");
        let x = b.block("exit");
        b.edge(e, t);
        b.edge(e, f);
        b.edge(t, x);
        b.edge(f, x);
        let g = b.finish(e, x).unwrap();
        let dom = Dominators::compute(&g);
        assert_eq!(dom.idom(t), e);
        assert_eq!(dom.idom(f), e);
        assert_eq!(dom.idom(x), e); // join point dominated only by entry
        assert!(dom.dominates(e, x));
        assert!(!dom.dominates(t, x));
        assert!(dom.dominates(x, x));
        assert!(!dom.strictly_dominates(x, x));
        assert!(dom.strictly_dominates(e, t));
    }

    #[test]
    fn loop_dominators() {
        let mut b = CfgBuilder::new("loop");
        let e = b.block("entry");
        let h = b.block("head");
        let body = b.block("body");
        let x = b.block("exit");
        b.edge(e, h);
        b.edge(h, body);
        b.edge(body, h);
        b.edge(h, x);
        let g = b.finish(e, x).unwrap();
        let dom = Dominators::compute(&g);
        assert_eq!(dom.idom(h), e);
        assert_eq!(dom.idom(body), h);
        assert_eq!(dom.idom(x), h);
        assert!(dom.dominates(h, body));
        assert!(!dom.dominates(body, h));
    }

    #[test]
    fn nested_loop_dominators() {
        let mut b = CfgBuilder::new("nest");
        let e = b.block("entry");
        let h1 = b.block("outer");
        let h2 = b.block("inner");
        let body = b.block("body");
        let x = b.block("exit");
        b.edge(e, h1);
        b.edge(h1, h2);
        b.edge(h2, body);
        b.edge(body, h2);
        b.edge(h2, h1);
        b.edge(h1, x);
        let g = b.finish(e, x).unwrap();
        let dom = Dominators::compute(&g);
        assert!(dom.dominates(h1, h2));
        assert!(dom.dominates(h2, body));
        assert!(dom.dominates(h1, body));
        assert!(!dom.dominates(h2, x));
        assert_eq!(dom.idom(x), h1);
    }

    /// The Fig. 5-style shape used throughout the paper's examples: a
    /// counted loop whose body branches (if/else) before the latch.
    fn fig5_cfg() -> (Cfg, Vec<BlockId>) {
        let mut b = CfgBuilder::new("fig5");
        let entry = b.block("entry");
        let head = b.block("head");
        let then_ = b.block("then");
        let else_ = b.block("else");
        let latch = b.block("latch");
        let exit = b.block("exit");
        b.edge(entry, head);
        b.edge(head, then_);
        b.edge(head, else_);
        b.edge(then_, latch);
        b.edge(else_, latch);
        b.edge(latch, head); // back edge
        b.edge(head, exit);
        let g = b.finish(entry, exit).unwrap();
        (g, vec![entry, head, then_, else_, latch, exit])
    }

    #[test]
    fn fig5_postdominators() {
        let (g, ids) = fig5_cfg();
        let (entry, head, then_, else_, latch, exit) =
            (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
        let pdom = PostDominators::compute(&g);
        // The loop head is the only way out: it postdominates everything.
        for &b in &ids {
            assert!(pdom.postdominates(exit, b), "exit postdominates all");
        }
        assert!(pdom.postdominates(head, entry));
        assert!(pdom.postdominates(head, then_));
        assert!(pdom.postdominates(head, else_));
        assert!(pdom.postdominates(head, latch));
        // The branch arms postdominate nothing but themselves.
        assert!(!pdom.postdominates(then_, head));
        assert!(!pdom.postdominates(else_, head));
        // The latch is the join of both arms.
        assert_eq!(pdom.ipdom(then_), latch);
        assert_eq!(pdom.ipdom(else_), latch);
        assert_eq!(pdom.ipdom(latch), head);
        assert_eq!(pdom.ipdom(head), exit);
        assert_eq!(pdom.ipdom(exit), exit);
        assert!(pdom.strictly_postdominates(latch, then_));
        assert!(!pdom.strictly_postdominates(latch, latch));
    }

    #[test]
    fn fig5_dominator_postdominator_duality() {
        let (g, ids) = fig5_cfg();
        let dom = Dominators::compute(&g);
        let pdom = PostDominators::compute(&g);
        // head dominates the body and postdominates it too (single
        // entry/exit of the loop).
        let head = ids[1];
        for &b in &[ids[2], ids[3], ids[4]] {
            assert!(dom.dominates(head, b));
            assert!(pdom.postdominates(head, b));
        }
        // entry dominates everything; nothing but entry/exit chains
        // postdominate the entry besides head and exit.
        for &b in &ids {
            assert!(dom.dominates(ids[0], b));
        }
        assert!(!pdom.postdominates(ids[4], ids[0]));
    }

    #[test]
    fn diamond_postdominators() {
        let mut b = CfgBuilder::new("d");
        let e = b.block("entry");
        let t = b.block("t");
        let f = b.block("f");
        let x = b.block("exit");
        b.edge(e, t);
        b.edge(e, f);
        b.edge(t, x);
        b.edge(f, x);
        let g = b.finish(e, x).unwrap();
        let pdom = PostDominators::compute(&g);
        assert_eq!(pdom.ipdom(t), x);
        assert_eq!(pdom.ipdom(f), x);
        assert_eq!(pdom.ipdom(e), x); // branch point joins only at exit
        assert!(!pdom.postdominates(t, e));
        assert!(pdom.postdominates(x, e));
    }

    #[test]
    fn chain_postdominators_mirror_dominators() {
        let mut b = CfgBuilder::new("chain");
        let ids: Vec<_> = (0..5).map(|i| b.block(format!("b{i}"))).collect();
        for w in ids.windows(2) {
            b.edge(w[0], w[1]);
        }
        let g = b.finish(ids[0], ids[4]).unwrap();
        let pdom = PostDominators::compute(&g);
        for i in 0..4 {
            assert_eq!(pdom.ipdom(ids[i]), ids[i + 1]);
            for j in i + 1..5 {
                assert!(pdom.postdominates(ids[j], ids[i]));
            }
        }
    }

    #[test]
    fn chain_dominators() {
        let mut b = CfgBuilder::new("chain");
        let ids: Vec<_> = (0..5).map(|i| b.block(format!("b{i}"))).collect();
        for w in ids.windows(2) {
            b.edge(w[0], w[1]);
        }
        let g = b.finish(ids[0], ids[4]).unwrap();
        let dom = Dominators::compute(&g);
        for i in 1..5 {
            assert_eq!(dom.idom(ids[i]), ids[i - 1]);
            for j in 0..i {
                assert!(dom.dominates(ids[j], ids[i]));
            }
        }
    }
}
