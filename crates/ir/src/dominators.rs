use crate::{BlockId, Cfg};

/// Dominator tree of a [`Cfg`], computed with the Cooper–Harvey–Kennedy
/// iterative algorithm over reverse post-order.
///
/// Block `a` *dominates* `b` if every path from the entry to `b` passes
/// through `a`. The mode-set hoisting pass uses dominance to prove that a
/// loop back-edge's mode setting is redundant with the loop-entry setting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dominators {
    /// `idom[b]` is the immediate dominator of block `b`; the entry is its
    /// own immediate dominator.
    idom: Vec<BlockId>,
    entry: BlockId,
}

impl Dominators {
    /// Computes the dominator tree for `cfg`.
    #[must_use]
    pub fn compute(cfg: &Cfg) -> Self {
        let rpo = cfg.reverse_post_order();
        let n = cfg.num_blocks();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b.0] = i;
        }
        let entry = cfg.entry();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.0] = Some(entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                // Pick the first processed predecessor as the seed.
                let mut new_idom: Option<BlockId> = None;
                for p in cfg.predecessors(b) {
                    if idom[p.0].is_some() {
                        new_idom = Some(match new_idom {
                            None => p,
                            Some(cur) => intersect(&idom, &rpo_index, p, cur),
                        });
                    }
                }
                let new_idom = new_idom.expect("reachable block has a processed predecessor");
                if idom[b.0] != Some(new_idom) {
                    idom[b.0] = Some(new_idom);
                    changed = true;
                }
            }
        }
        Dominators {
            idom: idom
                .into_iter()
                .map(|d| d.expect("all blocks reachable in a validated CFG"))
                .collect(),
            entry,
        }
    }

    /// Immediate dominator of `b` (the entry returns itself).
    #[must_use]
    pub fn idom(&self, b: BlockId) -> BlockId {
        self.idom[b.0]
    }

    /// Whether `a` dominates `b` (reflexive: every block dominates itself).
    #[must_use]
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            cur = self.idom[cur.0];
        }
    }

    /// Whether `a` strictly dominates `b`.
    #[must_use]
    pub fn strictly_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.dominates(a, b)
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_index[a.0] > rpo_index[b.0] {
            a = idom[a.0].expect("processed");
        }
        while rpo_index[b.0] > rpo_index[a.0] {
            b = idom[b.0].expect("processed");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CfgBuilder;

    #[test]
    fn diamond_dominators() {
        let mut b = CfgBuilder::new("d");
        let e = b.block("entry");
        let t = b.block("t");
        let f = b.block("f");
        let x = b.block("exit");
        b.edge(e, t);
        b.edge(e, f);
        b.edge(t, x);
        b.edge(f, x);
        let g = b.finish(e, x).unwrap();
        let dom = Dominators::compute(&g);
        assert_eq!(dom.idom(t), e);
        assert_eq!(dom.idom(f), e);
        assert_eq!(dom.idom(x), e); // join point dominated only by entry
        assert!(dom.dominates(e, x));
        assert!(!dom.dominates(t, x));
        assert!(dom.dominates(x, x));
        assert!(!dom.strictly_dominates(x, x));
        assert!(dom.strictly_dominates(e, t));
    }

    #[test]
    fn loop_dominators() {
        let mut b = CfgBuilder::new("loop");
        let e = b.block("entry");
        let h = b.block("head");
        let body = b.block("body");
        let x = b.block("exit");
        b.edge(e, h);
        b.edge(h, body);
        b.edge(body, h);
        b.edge(h, x);
        let g = b.finish(e, x).unwrap();
        let dom = Dominators::compute(&g);
        assert_eq!(dom.idom(h), e);
        assert_eq!(dom.idom(body), h);
        assert_eq!(dom.idom(x), h);
        assert!(dom.dominates(h, body));
        assert!(!dom.dominates(body, h));
    }

    #[test]
    fn nested_loop_dominators() {
        let mut b = CfgBuilder::new("nest");
        let e = b.block("entry");
        let h1 = b.block("outer");
        let h2 = b.block("inner");
        let body = b.block("body");
        let x = b.block("exit");
        b.edge(e, h1);
        b.edge(h1, h2);
        b.edge(h2, body);
        b.edge(body, h2);
        b.edge(h2, h1);
        b.edge(h1, x);
        let g = b.finish(e, x).unwrap();
        let dom = Dominators::compute(&g);
        assert!(dom.dominates(h1, h2));
        assert!(dom.dominates(h2, body));
        assert!(dom.dominates(h1, body));
        assert!(!dom.dominates(h2, x));
        assert_eq!(dom.idom(x), h1);
    }

    #[test]
    fn chain_dominators() {
        let mut b = CfgBuilder::new("chain");
        let ids: Vec<_> = (0..5).map(|i| b.block(format!("b{i}"))).collect();
        for w in ids.windows(2) {
            b.edge(w[0], w[1]);
        }
        let g = b.finish(ids[0], ids[4]).unwrap();
        let dom = Dominators::compute(&g);
        for i in 1..5 {
            assert_eq!(dom.idom(ids[i]), ids[i - 1]);
            for j in 0..i {
                assert!(dom.dominates(ids[j], ids[i]));
            }
        }
    }
}
