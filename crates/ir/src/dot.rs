use crate::{Cfg, Profile};
use std::fmt::Write as _;

/// Renders a [`Cfg`] in Graphviz DOT syntax, optionally annotating edges
/// with traversal counts from a [`Profile`].
///
/// # Example
///
/// ```
/// use dvs_ir::{CfgBuilder, cfg_to_dot};
/// let mut b = CfgBuilder::new("g");
/// let e = b.block("entry");
/// let x = b.block("exit");
/// b.edge(e, x);
/// let cfg = b.finish(e, x).unwrap();
/// let dot = cfg_to_dot(&cfg, None);
/// assert!(dot.contains("digraph"));
/// assert!(dot.contains("entry"));
/// ```
#[must_use]
pub fn cfg_to_dot(cfg: &Cfg, profile: Option<&Profile>) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", cfg.name());
    let _ = writeln!(s, "  node [shape=box fontname=\"monospace\"];");
    for b in cfg.blocks() {
        let shape = if b.id == cfg.entry() || b.id == cfg.exit() {
            " peripheries=2"
        } else {
            ""
        };
        let _ = writeln!(
            s,
            "  {} [label=\"{}\\n{} insts\"{shape}];",
            b.id.index(),
            b.label,
            b.len()
        );
    }
    for e in cfg.edges() {
        match profile {
            Some(p) => {
                let _ = writeln!(
                    s,
                    "  {} -> {} [label=\"{}\"];",
                    e.src.index(),
                    e.dst.index(),
                    p.edge_count(e.id)
                );
            }
            None => {
                let _ = writeln!(s, "  {} -> {};", e.src.index(), e.dst.index());
            }
        }
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CfgBuilder, ProfileBuilder};

    #[test]
    fn dot_includes_all_blocks_and_edges() {
        let mut b = CfgBuilder::new("dotg");
        let e = b.block("entry");
        let m = b.block("mid");
        let x = b.block("exit");
        b.edge(e, m);
        b.edge(m, x);
        b.edge(e, x);
        let g = b.finish(e, x).unwrap();
        let dot = cfg_to_dot(&g, None);
        assert!(dot.starts_with("digraph \"dotg\""));
        for label in ["entry", "mid", "exit"] {
            assert!(dot.contains(label), "missing {label}");
        }
        assert_eq!(dot.matches(" -> ").count(), 3);
    }

    #[test]
    fn dot_with_profile_annotates_counts() {
        let mut b = CfgBuilder::new("dotg");
        let e = b.block("entry");
        let x = b.block("exit");
        b.edge(e, x);
        let g = b.finish(e, x).unwrap();
        let mut pb = ProfileBuilder::new(&g, 1);
        pb.record_walk(&g, &[e, x]);
        pb.record_walk(&g, &[e, x]);
        let p = pb.finish();
        let dot = cfg_to_dot(&g, Some(&p));
        assert!(dot.contains("label=\"2\""));
    }
}
