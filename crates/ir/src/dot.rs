use crate::{BlockId, Cfg, EdgeId, Profile};
use std::fmt::Write as _;

/// Fill colors cycled by mode index: slow modes cool, fast modes warm.
const MODE_COLORS: [&str; 6] = [
    "#c6dbef", "#9ecae1", "#fdd0a2", "#fdae6b", "#fb6a4a", "#de2d26",
];

fn mode_color(mode: usize) -> &'static str {
    MODE_COLORS[mode % MODE_COLORS.len()]
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Schedule and diagnostic annotations layered onto a [`Cfg`] rendering by
/// [`cfg_to_dot_overlay`]. All fields are optional: empty vectors mean "no
/// annotation of that kind", so callers only fill in what they know. Plain
/// data — no dependency on the verifier — so any crate can produce one.
#[derive(Debug, Clone, Default)]
pub struct DotOverlay {
    /// Assigned mode per edge, indexed by [`EdgeId`]; `None` = unknown.
    pub edge_modes: Vec<Option<usize>>,
    /// Per-edge flag: `true` when the edge carries an actual (non-elided)
    /// mode-set instruction, rendered solid; elided edges render dashed.
    pub emitted: Vec<bool>,
    /// Settled mode per block, indexed by [`BlockId`]; `None` = mixed or
    /// unknown, rendered uncolored.
    pub block_modes: Vec<Option<usize>>,
    /// Diagnostic notes attached to blocks, e.g. `"[V004] cold code"`.
    pub block_notes: Vec<(BlockId, String)>,
    /// Diagnostic notes attached to edges.
    pub edge_notes: Vec<(EdgeId, String)>,
}

impl DotOverlay {
    fn edge_mode(&self, e: EdgeId) -> Option<usize> {
        self.edge_modes.get(e.index()).copied().flatten()
    }

    fn block_mode(&self, b: BlockId) -> Option<usize> {
        self.block_modes.get(b.index()).copied().flatten()
    }

    fn is_emitted(&self, e: EdgeId) -> bool {
        self.emitted.get(e.index()).copied().unwrap_or(false)
    }

    fn notes_for_block(&self, b: BlockId) -> impl Iterator<Item = &str> {
        self.block_notes
            .iter()
            .filter(move |(id, _)| *id == b)
            .map(|(_, n)| n.as_str())
    }

    fn notes_for_edge(&self, e: EdgeId) -> impl Iterator<Item = &str> {
        self.edge_notes
            .iter()
            .filter(move |(id, _)| *id == e)
            .map(|(_, n)| n.as_str())
    }
}

/// Renders a [`Cfg`] with mode colors and verifier diagnostics overlaid —
/// the engine behind `dvsc verify --dot`.
///
/// Blocks with a settled mode are filled with that mode's color; blocks
/// carrying diagnostic notes get a red border and the note text under the
/// label. Edges with an emitted mode-set are solid and colored by target
/// mode, labelled `set mN`; elided edges are dashed gray. Profile counts,
/// when given, append `×count` to edge labels.
#[must_use]
pub fn cfg_to_dot_overlay(cfg: &Cfg, profile: Option<&Profile>, overlay: &DotOverlay) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", escape(cfg.name()));
    let _ = writeln!(s, "  node [shape=box fontname=\"monospace\"];");
    for b in cfg.blocks() {
        let mut label = format!("{}\\n{} insts", escape(&b.label), b.len());
        let notes: Vec<&str> = overlay.notes_for_block(b.id).collect();
        for n in &notes {
            let _ = write!(label, "\\n{}", escape(n));
        }
        let mut attrs = format!("label=\"{label}\"");
        if b.id == cfg.entry() || b.id == cfg.exit() {
            attrs.push_str(" peripheries=2");
        }
        if let Some(m) = overlay.block_mode(b.id) {
            let _ = write!(attrs, " style=filled fillcolor=\"{}\"", mode_color(m));
        }
        if !notes.is_empty() {
            attrs.push_str(" color=red penwidth=2");
        }
        let _ = writeln!(s, "  {} [{attrs}];", b.id.index());
    }
    for e in cfg.edges() {
        let mut label = String::new();
        if let Some(m) = overlay.edge_mode(e.id) {
            if overlay.is_emitted(e.id) {
                let _ = write!(label, "set m{m}");
            } else {
                let _ = write!(label, "m{m}");
            }
        }
        if let Some(p) = profile {
            if !label.is_empty() {
                label.push_str("\\n");
            }
            let _ = write!(label, "\u{d7}{}", p.edge_count(e.id));
        }
        let notes: Vec<&str> = overlay.notes_for_edge(e.id).collect();
        for n in &notes {
            if !label.is_empty() {
                label.push_str("\\n");
            }
            label.push_str(&escape(n));
        }
        let mut attrs = String::new();
        if !label.is_empty() {
            let _ = write!(attrs, "label=\"{label}\"");
        }
        if overlay.is_emitted(e.id) {
            let color = overlay.edge_mode(e.id).map_or("black", mode_color);
            let _ = write!(
                attrs,
                "{}color=\"{color}\" penwidth=2",
                if attrs.is_empty() { "" } else { " " }
            );
        } else if overlay.edge_mode(e.id).is_some() {
            let _ = write!(
                attrs,
                "{}style=dashed color=gray50",
                if attrs.is_empty() { "" } else { " " }
            );
        }
        if !notes.is_empty() {
            let _ = write!(
                attrs,
                "{}fontcolor=red",
                if attrs.is_empty() { "" } else { " " }
            );
        }
        if attrs.is_empty() {
            let _ = writeln!(s, "  {} -> {};", e.src.index(), e.dst.index());
        } else {
            let _ = writeln!(s, "  {} -> {} [{attrs}];", e.src.index(), e.dst.index());
        }
    }
    s.push_str("}\n");
    s
}

/// Renders a [`Cfg`] in Graphviz DOT syntax, optionally annotating edges
/// with traversal counts from a [`Profile`].
///
/// # Example
///
/// ```
/// use dvs_ir::{CfgBuilder, cfg_to_dot};
/// let mut b = CfgBuilder::new("g");
/// let e = b.block("entry");
/// let x = b.block("exit");
/// b.edge(e, x);
/// let cfg = b.finish(e, x).unwrap();
/// let dot = cfg_to_dot(&cfg, None);
/// assert!(dot.contains("digraph"));
/// assert!(dot.contains("entry"));
/// ```
#[must_use]
pub fn cfg_to_dot(cfg: &Cfg, profile: Option<&Profile>) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", cfg.name());
    let _ = writeln!(s, "  node [shape=box fontname=\"monospace\"];");
    for b in cfg.blocks() {
        let shape = if b.id == cfg.entry() || b.id == cfg.exit() {
            " peripheries=2"
        } else {
            ""
        };
        let _ = writeln!(
            s,
            "  {} [label=\"{}\\n{} insts\"{shape}];",
            b.id.index(),
            b.label,
            b.len()
        );
    }
    for e in cfg.edges() {
        match profile {
            Some(p) => {
                let _ = writeln!(
                    s,
                    "  {} -> {} [label=\"{}\"];",
                    e.src.index(),
                    e.dst.index(),
                    p.edge_count(e.id)
                );
            }
            None => {
                let _ = writeln!(s, "  {} -> {};", e.src.index(), e.dst.index());
            }
        }
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CfgBuilder, ProfileBuilder};

    #[test]
    fn dot_includes_all_blocks_and_edges() {
        let mut b = CfgBuilder::new("dotg");
        let e = b.block("entry");
        let m = b.block("mid");
        let x = b.block("exit");
        b.edge(e, m);
        b.edge(m, x);
        b.edge(e, x);
        let g = b.finish(e, x).unwrap();
        let dot = cfg_to_dot(&g, None);
        assert!(dot.starts_with("digraph \"dotg\""));
        for label in ["entry", "mid", "exit"] {
            assert!(dot.contains(label), "missing {label}");
        }
        assert_eq!(dot.matches(" -> ").count(), 3);
    }

    #[test]
    fn dot_with_profile_annotates_counts() {
        let mut b = CfgBuilder::new("dotg");
        let e = b.block("entry");
        let x = b.block("exit");
        b.edge(e, x);
        let g = b.finish(e, x).unwrap();
        let mut pb = ProfileBuilder::new(&g, 1);
        pb.record_walk(&g, &[e, x]);
        pb.record_walk(&g, &[e, x]);
        let p = pb.finish();
        let dot = cfg_to_dot(&g, Some(&p));
        assert!(dot.contains("label=\"2\""));
    }

    #[test]
    fn overlay_colors_modes_and_marks_diagnostics() {
        let mut b = CfgBuilder::new("ov");
        let e = b.block("entry");
        let m = b.block("mid");
        let x = b.block("exit");
        b.edge(e, m);
        b.edge(m, x);
        let g = b.finish(e, x).unwrap();
        let e_m = g.edge_between(e, m).unwrap();
        let m_x = g.edge_between(m, x).unwrap();
        let overlay = DotOverlay {
            edge_modes: vec![Some(2), Some(0)],
            emitted: vec![true, false],
            block_modes: vec![None, Some(2), Some(0)],
            block_notes: vec![(m, "[V004] cold code".into())],
            edge_notes: vec![(m_x, "[V002] redundant set".into())],
        };
        let dot = cfg_to_dot_overlay(&g, None, &overlay);
        // Emitted edge: solid, colored, labelled with the set.
        assert!(dot.contains("set m2"), "{dot}");
        assert!(dot.contains("penwidth=2"), "{dot}");
        // Elided edge: dashed with its flowing mode.
        assert!(dot.contains("style=dashed"), "{dot}");
        assert!(dot.contains("m0"), "{dot}");
        // Colored blocks and red-bordered diagnostics.
        assert!(dot.contains("style=filled"), "{dot}");
        assert!(dot.contains("[V004] cold code"), "{dot}");
        assert!(dot.contains("color=red"), "{dot}");
        assert!(dot.contains("[V002] redundant set"), "{dot}");
        // Both annotated edges resolved by id, not order.
        assert_eq!(overlay.edge_mode(e_m), Some(2));
        assert_eq!(overlay.edge_mode(m_x), Some(0));
    }

    #[test]
    fn overlay_default_matches_plain_rendering_shape() {
        let mut b = CfgBuilder::new("plain");
        let e = b.block("entry");
        let x = b.block("exit");
        b.edge(e, x);
        let g = b.finish(e, x).unwrap();
        let dot = cfg_to_dot_overlay(&g, None, &DotOverlay::default());
        assert!(dot.starts_with("digraph \"plain\""));
        assert_eq!(dot.matches(" -> ").count(), 1);
        assert!(!dot.contains("style=filled"));
        assert!(!dot.contains("dashed"));
    }

    #[test]
    fn overlay_with_profile_appends_counts() {
        let mut b = CfgBuilder::new("ovp");
        let e = b.block("entry");
        let x = b.block("exit");
        b.edge(e, x);
        let g = b.finish(e, x).unwrap();
        let mut pb = ProfileBuilder::new(&g, 1);
        pb.record_walk(&g, &[e, x]);
        pb.record_walk(&g, &[e, x]);
        pb.record_walk(&g, &[e, x]);
        let p = pb.finish();
        let overlay = DotOverlay {
            edge_modes: vec![Some(1)],
            emitted: vec![true],
            ..DotOverlay::default()
        };
        let dot = cfg_to_dot_overlay(&g, Some(&p), &overlay);
        assert!(dot.contains("set m1"), "{dot}");
        assert!(dot.contains("\u{d7}3"), "{dot}");
    }
}
