use crate::BlockId;
use std::fmt;

/// Errors produced while building or validating a [`crate::Cfg`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A referenced block id does not exist.
    UnknownBlock(BlockId),
    /// The same edge was added twice.
    DuplicateEdge(BlockId, BlockId),
    /// Two blocks share a label.
    DuplicateLabel(String),
    /// The entry block has incoming edges, which would make the paper's
    /// edge-based mode placement ambiguous at program start.
    EntryHasPredecessors(BlockId),
    /// Some block is unreachable from the entry.
    Unreachable(BlockId),
    /// Some block cannot reach the exit.
    NoPathToExit(BlockId),
    /// The exit block has outgoing edges.
    ExitHasSuccessors(BlockId),
    /// The graph has no blocks.
    Empty,
    /// Serialized form could not be parsed or is missing fields.
    Malformed(String),
    /// A retreating edge whose target does not dominate its source: the
    /// graph is not reducible, so natural-loop-based passes (hoisting, the
    /// loop-aware generators) cannot reason about it.
    Irreducible(BlockId, BlockId),
    /// A profile records no executions of the entry block — every derived
    /// count (and the MILP built on them) would be vacuous.
    ZeroFrequencyEntry(BlockId),
    /// A block's invocation count disagrees with the traversal counts of
    /// its incident edges (flow conservation is violated).
    InconsistentFlow(BlockId),
    /// A dynamic walk handed to the profiler is not a valid entry-to-exit
    /// path of the CFG.
    InvalidWalk(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::UnknownBlock(b) => write!(f, "unknown block {b}"),
            IrError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
            IrError::DuplicateLabel(l) => write!(f, "duplicate block label `{l}`"),
            IrError::EntryHasPredecessors(b) => {
                write!(f, "entry block {b} has incoming edges")
            }
            IrError::Unreachable(b) => write!(f, "block {b} is unreachable from entry"),
            IrError::NoPathToExit(b) => write!(f, "block {b} cannot reach the exit"),
            IrError::ExitHasSuccessors(b) => write!(f, "exit block {b} has outgoing edges"),
            IrError::Empty => write!(f, "control-flow graph has no blocks"),
            IrError::Malformed(m) => write!(f, "malformed CFG serialization: {m}"),
            IrError::Irreducible(src, dst) => {
                write!(f, "irreducible control flow: retreating edge {src} -> {dst} whose target does not dominate its source")
            }
            IrError::ZeroFrequencyEntry(b) => {
                write!(f, "profile records zero executions of entry block {b}")
            }
            IrError::InconsistentFlow(b) => {
                write!(f, "profile violates flow conservation at block {b}")
            }
            IrError::InvalidWalk(m) => write!(f, "invalid dynamic walk: {m}"),
        }
    }
}

impl std::error::Error for IrError {}
