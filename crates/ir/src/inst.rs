use std::fmt;

/// An architectural register name. The machine model has 64 integer/FP
/// registers in a flat namespace; `Reg(0)` is a hard-wired zero register
/// that never creates dependences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// Number of architectural registers.
    pub const COUNT: usize = 64;

    /// The hard-wired zero register.
    pub const ZERO: Reg = Reg(0);

    /// Whether this is the zero register (reads never stall, writes are
    /// discarded).
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Width of a memory access in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 1-byte access.
    B1,
    /// 2-byte access.
    B2,
    /// 4-byte access.
    B4,
    /// 8-byte access.
    B8,
}

impl MemWidth {
    /// The width in bytes.
    #[must_use]
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::B1 => 1,
            MemWidth::B2 => 2,
            MemWidth::B4 => 4,
            MemWidth::B8 => 8,
        }
    }
}

/// Operation classes, mirroring the functional units of the simulated
/// machine (4 integer ALUs, 1 integer multiply/divide, 1 FP adder, 1 FP
/// multiplier, 1 FP divide/sqrt, plus memory ports and branches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Simple integer arithmetic/logic (1-cycle).
    IntAlu,
    /// Integer multiply (3-cycle, pipelined).
    IntMul,
    /// Integer divide (20-cycle, unpipelined).
    IntDiv,
    /// Floating-point add/sub/compare (2-cycle, pipelined).
    FpAdd,
    /// Floating-point multiply (4-cycle, pipelined).
    FpMul,
    /// Floating-point divide or square root (12-cycle, unpipelined).
    FpDiv,
    /// Memory load (address generation + cache access).
    Load,
    /// Memory store.
    Store,
    /// Conditional or unconditional branch; always the block terminator when
    /// present.
    Branch,
    /// No-operation (consumes a slot, creates no dependences).
    Nop,
}

impl Opcode {
    /// Execution latency in cycles on its functional unit, excluding any
    /// memory-hierarchy time for loads/stores.
    #[must_use]
    pub fn base_latency(self) -> u32 {
        match self {
            Opcode::IntAlu | Opcode::Nop | Opcode::Branch => 1,
            Opcode::IntMul => 3,
            Opcode::IntDiv => 20,
            Opcode::FpAdd => 2,
            Opcode::FpMul => 4,
            Opcode::FpDiv => 12,
            Opcode::Load | Opcode::Store => 1,
        }
    }

    /// Whether this opcode accesses the data memory hierarchy.
    #[must_use]
    pub fn is_mem(self) -> bool {
        matches!(self, Opcode::Load | Opcode::Store)
    }

    /// Whether this opcode is a control-flow instruction.
    #[must_use]
    pub fn is_branch(self) -> bool {
        matches!(self, Opcode::Branch)
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Opcode::IntAlu => "ialu",
            Opcode::IntMul => "imul",
            Opcode::IntDiv => "idiv",
            Opcode::FpAdd => "fadd",
            Opcode::FpMul => "fmul",
            Opcode::FpDiv => "fdiv",
            Opcode::Load => "ld",
            Opcode::Store => "st",
            Opcode::Branch => "br",
            Opcode::Nop => "nop",
        };
        f.write_str(s)
    }
}

/// A static instruction inside a basic block.
///
/// Source operands express *true* (read-after-write) dependences to the
/// timing model; anti/output dependences are resolved by renaming in the
/// out-of-order core and are not modelled.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Inst {
    /// Operation class.
    pub opcode: Opcode,
    /// Destination register (`Reg::ZERO` when the instruction produces no
    /// value, e.g. stores and branches).
    pub dest: Reg,
    /// Source registers (at most 3 are ever used).
    pub srcs: Vec<Reg>,
    /// Access width for loads/stores; ignored otherwise.
    pub width: MemWidth,
}

impl Inst {
    /// An ALU-class instruction `dest <- op(srcs...)`.
    #[must_use]
    pub fn alu(opcode: Opcode, dest: Reg, srcs: &[Reg]) -> Self {
        debug_assert!(!opcode.is_mem() && !opcode.is_branch());
        Inst {
            opcode,
            dest,
            srcs: srcs.to_vec(),
            width: MemWidth::B4,
        }
    }

    /// A load `dest <- mem[addr(base)]`.
    #[must_use]
    pub fn load(dest: Reg, base: Reg, width: MemWidth) -> Self {
        Inst {
            opcode: Opcode::Load,
            dest,
            srcs: vec![base],
            width,
        }
    }

    /// A store `mem[addr(base)] <- value`.
    #[must_use]
    pub fn store(value: Reg, base: Reg, width: MemWidth) -> Self {
        Inst {
            opcode: Opcode::Store,
            dest: Reg::ZERO,
            srcs: vec![base, value],
            width,
        }
    }

    /// A branch testing `cond`.
    #[must_use]
    pub fn branch(cond: Reg) -> Self {
        Inst {
            opcode: Opcode::Branch,
            dest: Reg::ZERO,
            srcs: vec![cond],
            width: MemWidth::B4,
        }
    }

    /// A no-op.
    #[must_use]
    pub fn nop() -> Self {
        Inst {
            opcode: Opcode::Nop,
            dest: Reg::ZERO,
            srcs: Vec::new(),
            width: MemWidth::B4,
        }
    }

    /// Whether the instruction writes an architectural register.
    #[must_use]
    pub fn writes_reg(&self) -> bool {
        !self.dest.is_zero()
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.opcode, self.dest)?;
        for s in &self.srcs {
            write!(f, ", {s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_match_functional_units() {
        assert_eq!(Opcode::IntAlu.base_latency(), 1);
        assert_eq!(Opcode::IntMul.base_latency(), 3);
        assert_eq!(Opcode::IntDiv.base_latency(), 20);
        assert_eq!(Opcode::FpAdd.base_latency(), 2);
        assert_eq!(Opcode::FpMul.base_latency(), 4);
        assert_eq!(Opcode::FpDiv.base_latency(), 12);
    }

    #[test]
    fn classification_predicates() {
        assert!(Opcode::Load.is_mem());
        assert!(Opcode::Store.is_mem());
        assert!(!Opcode::IntAlu.is_mem());
        assert!(Opcode::Branch.is_branch());
        assert!(!Opcode::Load.is_branch());
    }

    #[test]
    fn constructors_wire_operands() {
        let ld = Inst::load(Reg(5), Reg(3), MemWidth::B8);
        assert_eq!(ld.dest, Reg(5));
        assert_eq!(ld.srcs, vec![Reg(3)]);
        assert_eq!(ld.width.bytes(), 8);
        assert!(ld.writes_reg());

        let st = Inst::store(Reg(7), Reg(3), MemWidth::B4);
        assert!(!st.writes_reg());
        assert_eq!(st.srcs, vec![Reg(3), Reg(7)]);

        let br = Inst::branch(Reg(2));
        assert_eq!(br.opcode, Opcode::Branch);
        assert_eq!(br.srcs, vec![Reg(2)]);

        let nop = Inst::nop();
        assert!(nop.srcs.is_empty());
        assert!(!nop.writes_reg());
    }

    #[test]
    fn zero_register_is_special() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg(1).is_zero());
    }

    #[test]
    fn display_round_trips_basics() {
        assert_eq!(
            Inst::alu(Opcode::IntAlu, Reg(1), &[Reg(2), Reg(3)]).to_string(),
            "ialu r1, r2, r3"
        );
        assert_eq!(Reg(9).to_string(), "r9");
        assert_eq!(Opcode::FpDiv.to_string(), "fdiv");
    }

    #[test]
    fn mem_widths() {
        assert_eq!(MemWidth::B1.bytes(), 1);
        assert_eq!(MemWidth::B2.bytes(), 2);
        assert_eq!(MemWidth::B4.bytes(), 4);
        assert_eq!(MemWidth::B8.bytes(), 8);
    }
}
