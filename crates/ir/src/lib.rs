//! Program representation for the compile-time DVS reproduction.
//!
//! The paper's MILP places DVS *mode-set instructions on control-flow-graph
//! edges*, and charges mode-transition costs per **local path** — the triple
//! `(h, i, j)` of entering block `i` through edge `(h, i)` and leaving it
//! through edge `(i, j)`. This crate provides everything the rest of the
//! system needs to talk about programs at that granularity:
//!
//! * [`Inst`]/[`Opcode`]: a small RISC-flavoured instruction set with
//!   register operands, enough for an out-of-order timing model to track
//!   true dependences;
//! * [`Cfg`]/[`BasicBlock`]/[`Edge`]: control-flow graphs with a designated
//!   entry and exit, built through the panic-free [`CfgBuilder`];
//! * [`Dominators`] and [`LoopForest`]: classic analyses used by the
//!   mode-set hoisting post-pass;
//! * [`LocalPath`] and [`Profile`]: the profiling artifacts the MILP
//!   consumes — edge counts `G(i,j)`, local-path counts `D(h,i,j)`, and
//!   per-block time/energy tables per DVS mode.
//!
//! # Example
//!
//! ```
//! use dvs_ir::{CfgBuilder, Opcode, Inst, Reg};
//!
//! let mut b = CfgBuilder::new("diamond");
//! let entry = b.block("entry");
//! let then_ = b.block("then");
//! let else_ = b.block("else");
//! let exit = b.block("exit");
//! b.push(entry, Inst::alu(Opcode::IntAlu, Reg(1), &[Reg(0)]));
//! b.edge(entry, then_);
//! b.edge(entry, else_);
//! b.edge(then_, exit);
//! b.edge(else_, exit);
//! let cfg = b.finish(entry, exit).unwrap();
//! assert_eq!(cfg.num_blocks(), 4);
//! assert_eq!(cfg.num_edges(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ball_larus;
mod block;
mod builder;
mod cfg;
mod dominators;
mod dot;
mod error;
mod inst;
mod loops;
mod path;
mod profile;

pub use ball_larus::{decode_path, path_start_blocks, BallLarus, PathKey, PathProfile};
pub use block::{BasicBlock, BlockId};
pub use builder::CfgBuilder;
pub use cfg::{Cfg, Edge, EdgeId};
pub use dominators::{Dominators, PostDominators};
pub use dot::{cfg_to_dot, cfg_to_dot_overlay, DotOverlay};
pub use error::IrError;
pub use inst::{Inst, MemWidth, Opcode, Reg};
pub use loops::{LoopForest, NaturalLoop};
pub use path::LocalPath;
pub use profile::{BlockModeCost, Profile, ProfileBuilder};
