use crate::{BlockId, Cfg, Dominators, EdgeId};
use std::collections::BTreeSet;

/// A natural loop: a back edge `latch -> header` where the header dominates
/// the latch, together with the set of blocks that reach the latch without
/// passing through the header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header.
    pub header: BlockId,
    /// The source of the back edge.
    pub latch: BlockId,
    /// The back edge itself.
    pub back_edge: EdgeId,
    /// All blocks in the loop body, including header and latch.
    pub body: BTreeSet<BlockId>,
}

impl NaturalLoop {
    /// Whether `b` belongs to this loop.
    #[must_use]
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.contains(&b)
    }

    /// Number of blocks in the loop.
    #[must_use]
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// Loops always contain at least their header.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// All natural loops of a [`Cfg`], discovered from back edges in the
/// dominator tree. Loops sharing a header are kept separate (one per back
/// edge), matching how the mode-set hoisting pass reasons about individual
/// back edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopForest {
    loops: Vec<NaturalLoop>,
}

impl LoopForest {
    /// Finds every natural loop in `cfg`.
    #[must_use]
    pub fn compute(cfg: &Cfg, dom: &Dominators) -> Self {
        let mut loops = Vec::new();
        for e in cfg.edges() {
            // Back edge: destination dominates source.
            if dom.dominates(e.dst, e.src) {
                let mut body = BTreeSet::new();
                body.insert(e.dst);
                let mut stack = vec![e.src];
                while let Some(b) = stack.pop() {
                    if body.insert(b) {
                        for p in cfg.predecessors(b) {
                            stack.push(p);
                        }
                    }
                }
                loops.push(NaturalLoop {
                    header: e.dst,
                    latch: e.src,
                    back_edge: e.id,
                    body,
                });
            }
        }
        LoopForest { loops }
    }

    /// All loops, in back-edge discovery order.
    #[must_use]
    pub fn loops(&self) -> &[NaturalLoop] {
        &self.loops
    }

    /// Number of natural loops.
    #[must_use]
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// Whether the CFG is loop-free.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// The innermost loop containing `b` (smallest body), if any.
    #[must_use]
    pub fn innermost_containing(&self, b: BlockId) -> Option<&NaturalLoop> {
        self.loops
            .iter()
            .filter(|l| l.contains(b))
            .min_by_key(|l| l.len())
    }

    /// Whether `e` is a back edge of some natural loop.
    #[must_use]
    pub fn is_back_edge(&self, e: EdgeId) -> bool {
        self.loops.iter().any(|l| l.back_edge == e)
    }

    /// Loop nesting depth of `b` (0 when outside all loops).
    #[must_use]
    pub fn depth(&self, b: BlockId) -> usize {
        // Count distinct headers of loops containing b; multiple back edges
        // to the same header count once.
        let headers: BTreeSet<_> = self
            .loops
            .iter()
            .filter(|l| l.contains(b))
            .map(|l| l.header)
            .collect();
        headers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CfgBuilder;

    fn simple_loop() -> (Cfg, BlockId, BlockId, BlockId, BlockId) {
        let mut b = CfgBuilder::new("loop");
        let e = b.block("entry");
        let h = b.block("head");
        let body = b.block("body");
        let x = b.block("exit");
        b.edge(e, h);
        b.edge(h, body);
        b.edge(body, h);
        b.edge(h, x);
        (b.finish(e, x).unwrap(), e, h, body, x)
    }

    #[test]
    fn finds_single_loop() {
        let (g, e, h, body, x) = simple_loop();
        let dom = Dominators::compute(&g);
        let forest = LoopForest::compute(&g, &dom);
        assert_eq!(forest.len(), 1);
        let l = &forest.loops()[0];
        assert_eq!(l.header, h);
        assert_eq!(l.latch, body);
        assert!(l.contains(h));
        assert!(l.contains(body));
        assert!(!l.contains(e));
        assert!(!l.contains(x));
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn loop_free_graph_has_no_loops() {
        let mut b = CfgBuilder::new("straight");
        let e = b.block("entry");
        let x = b.block("exit");
        b.edge(e, x);
        let g = b.finish(e, x).unwrap();
        let dom = Dominators::compute(&g);
        let forest = LoopForest::compute(&g, &dom);
        assert!(forest.is_empty());
        assert_eq!(forest.depth(e), 0);
    }

    #[test]
    fn nested_loops_have_increasing_depth() {
        let mut b = CfgBuilder::new("nest");
        let e = b.block("entry");
        let h1 = b.block("outer");
        let h2 = b.block("inner");
        let body = b.block("body");
        let x = b.block("exit");
        b.edge(e, h1);
        b.edge(h1, h2);
        b.edge(h2, body);
        b.edge(body, h2);
        b.edge(h2, h1);
        b.edge(h1, x);
        let g = b.finish(e, x).unwrap();
        let dom = Dominators::compute(&g);
        let forest = LoopForest::compute(&g, &dom);
        assert_eq!(forest.len(), 2);
        assert_eq!(forest.depth(e), 0);
        assert_eq!(forest.depth(h1), 1);
        assert_eq!(forest.depth(h2), 2);
        assert_eq!(forest.depth(body), 2);
        let inner = forest.innermost_containing(body).unwrap();
        assert_eq!(inner.header, h2);
    }

    #[test]
    fn back_edge_detection() {
        let (g, _, h, body, _) = simple_loop();
        let dom = Dominators::compute(&g);
        let forest = LoopForest::compute(&g, &dom);
        let back = g.edge_between(body, h).unwrap();
        let fwd = g.edge_between(h, body).unwrap();
        assert!(forest.is_back_edge(back));
        assert!(!forest.is_back_edge(fwd));
    }

    #[test]
    fn self_loop() {
        let mut b = CfgBuilder::new("self");
        let e = b.block("entry");
        let s = b.block("spin");
        let x = b.block("exit");
        b.edge(e, s);
        b.edge(s, s);
        b.edge(s, x);
        let g = b.finish(e, x).unwrap();
        let dom = Dominators::compute(&g);
        let forest = LoopForest::compute(&g, &dom);
        assert_eq!(forest.len(), 1);
        let l = &forest.loops()[0];
        assert_eq!(l.header, s);
        assert_eq!(l.latch, s);
        assert_eq!(l.len(), 1);
    }
}
