use crate::{BlockId, Cfg, EdgeId};
use std::fmt;

/// A **local path** through a basic block: the paper's `(h, i, j)` triple —
/// block `i` entered through edge `(h, i)` and exited through edge `(i, j)`.
///
/// The MILP charges a mode-transition cost `D(h,i,j) · SE(k_hi, k_ij)` per
/// local path, because the mode set on the incoming edge is what the block
/// ran at, and the mode set on the outgoing edge is what execution switches
/// to next.
///
/// Two boundary cases use `None`:
/// * `enter == None`: `block` is the CFG entry, reached by program start;
/// * `exit == None`: `block` is the CFG exit, left by program termination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocalPath {
    /// The block being traversed (the paper's region `i`).
    pub block: BlockId,
    /// Incoming edge `(h, i)`, or `None` at program start.
    pub enter: Option<EdgeId>,
    /// Outgoing edge `(i, j)`, or `None` at program end.
    pub exit: Option<EdgeId>,
}

impl LocalPath {
    /// An interior local path `(h, i, j)`.
    ///
    /// Returns `None` if the edges do not share `block` as destination and
    /// source respectively.
    #[must_use]
    pub fn interior(cfg: &Cfg, enter: EdgeId, exit: EdgeId) -> Option<Self> {
        let e = cfg.edge(enter);
        let x = cfg.edge(exit);
        if e.dst != x.src {
            return None;
        }
        Some(LocalPath {
            block: e.dst,
            enter: Some(enter),
            exit: Some(exit),
        })
    }

    /// The local path for program start: entry block left through `exit`.
    #[must_use]
    pub fn from_start(cfg: &Cfg, exit: EdgeId) -> Self {
        LocalPath {
            block: cfg.edge(exit).src,
            enter: None,
            exit: Some(exit),
        }
    }

    /// The local path for program end: exit block entered through `enter`.
    #[must_use]
    pub fn to_end(cfg: &Cfg, enter: EdgeId) -> Self {
        LocalPath {
            block: cfg.edge(enter).dst,
            enter: Some(enter),
            exit: None,
        }
    }

    /// The degenerate whole-program path for a single-block CFG.
    #[must_use]
    pub fn whole(block: BlockId) -> Self {
        LocalPath {
            block,
            enter: None,
            exit: None,
        }
    }
}

impl fmt::Display for LocalPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.enter {
            Some(e) => write!(f, "{e}")?,
            None => f.write_str("start")?,
        }
        write!(f, " -> {} -> ", self.block)?;
        match self.exit {
            Some(e) => write!(f, "{e}"),
            None => f.write_str("end"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CfgBuilder;

    fn chain() -> Cfg {
        let mut b = CfgBuilder::new("chain");
        let a = b.block("a");
        let m = b.block("m");
        let z = b.block("z");
        b.edge(a, m);
        b.edge(m, z);
        b.finish(a, z).unwrap()
    }

    #[test]
    fn interior_paths_require_shared_block() {
        let g = chain();
        let e0 = EdgeId(0);
        let e1 = EdgeId(1);
        let p = LocalPath::interior(&g, e0, e1).unwrap();
        assert_eq!(p.block, g.block_by_label("m").unwrap());
        assert_eq!(p.enter, Some(e0));
        assert_eq!(p.exit, Some(e1));
        // e1 enters z, e0 leaves a: mismatched.
        assert!(LocalPath::interior(&g, e1, e0).is_none());
    }

    #[test]
    fn boundary_paths() {
        let g = chain();
        let start = LocalPath::from_start(&g, EdgeId(0));
        assert_eq!(start.block, g.entry());
        assert_eq!(start.enter, None);
        let end = LocalPath::to_end(&g, EdgeId(1));
        assert_eq!(end.block, g.exit());
        assert_eq!(end.exit, None);
    }

    #[test]
    fn display_shows_endpoints() {
        let g = chain();
        let p = LocalPath::interior(&g, EdgeId(0), EdgeId(1)).unwrap();
        assert_eq!(p.to_string(), "e0 -> B1 -> e1");
        let s = LocalPath::from_start(&g, EdgeId(0));
        assert_eq!(s.to_string(), "start -> B0 -> e0");
    }
}
