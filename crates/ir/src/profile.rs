use crate::{BlockId, Cfg, EdgeId, IrError, LocalPath};
use std::collections::BTreeMap;

/// Per-invocation cost of one basic block under one DVS mode, measured by
/// the profiler: the paper's `T(j,m)` (µs) and `E(j,m)` (µJ).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BlockModeCost {
    /// Average wall-clock time of one invocation, in µs.
    pub time_us: f64,
    /// Average energy of one invocation, in µJ.
    pub energy_uj: f64,
}

/// Profiling data for one program on one input, in exactly the shape the
/// paper's MILP consumes:
///
/// * `G(i,j)` — how many times each edge was traversed ([`Profile::edge_count`]);
/// * `D(h,i,j)` — how many times each [`LocalPath`] was taken
///   ([`Profile::local_path_count`]);
/// * `T(j,m)`, `E(j,m)` — per-invocation time/energy of each block under
///   each mode ([`Profile::block_cost`]).
///
/// Edge and local-path counts are mode-independent (the program's logical
/// behaviour does not change with frequency — paper assumption 1), so they
/// are profiled once; block costs are profiled once per mode.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    num_modes: usize,
    /// `[block][mode]` costs.
    block_costs: Vec<Vec<BlockModeCost>>,
    /// `[edge]` traversal counts.
    edge_counts: Vec<u64>,
    /// Local path counts (BTreeMap for deterministic iteration).
    path_counts: BTreeMap<LocalPath, u64>,
    /// `[block]` invocation counts.
    block_counts: Vec<u64>,
}

impl Profile {
    /// Number of DVS modes profiled.
    #[must_use]
    pub fn num_modes(&self) -> usize {
        self.num_modes
    }

    /// Number of blocks profiled.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.block_costs.len()
    }

    /// Per-invocation cost of `block` under `mode`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn block_cost(&self, block: BlockId, mode: usize) -> BlockModeCost {
        self.block_costs[block.0][mode]
    }

    /// Traversal count of `edge` (the paper's `G(i,j)`).
    #[must_use]
    pub fn edge_count(&self, edge: EdgeId) -> u64 {
        self.edge_counts[edge.0]
    }

    /// Invocation count of `block` (sum of its incoming edge counts, plus
    /// one for the entry block per run).
    #[must_use]
    pub fn block_count(&self, block: BlockId) -> u64 {
        self.block_counts[block.0]
    }

    /// Count of a specific local path (the paper's `D(h,i,j)`); zero if the
    /// path never executed.
    #[must_use]
    pub fn local_path_count(&self, path: LocalPath) -> u64 {
        self.path_counts.get(&path).copied().unwrap_or(0)
    }

    /// All executed local paths with their counts, in deterministic order.
    pub fn local_paths(&self) -> impl Iterator<Item = (LocalPath, u64)> + '_ {
        self.path_counts.iter().map(|(&p, &c)| (p, c))
    }

    /// Total energy (µJ) of the whole profiled run if every block ran at
    /// `mode`, ignoring transition costs (there are none at a single mode).
    #[must_use]
    pub fn total_energy_at(&self, mode: usize) -> f64 {
        self.block_costs
            .iter()
            .zip(&self.block_counts)
            .map(|(costs, &n)| costs[mode].energy_uj * n as f64)
            .sum()
    }

    /// Total run time (µs) at a single `mode`, ignoring transition costs.
    #[must_use]
    pub fn total_time_at(&self, mode: usize) -> f64 {
        self.block_costs
            .iter()
            .zip(&self.block_counts)
            .map(|(costs, &n)| costs[mode].time_us * n as f64)
            .sum()
    }

    /// Total energy attributable to `block` at `mode` across the whole run.
    #[must_use]
    pub fn block_total_energy(&self, block: BlockId, mode: usize) -> f64 {
        self.block_costs[block.0][mode].energy_uj * self.block_counts[block.0] as f64
    }

    /// Checks the profile's counting half against `cfg`: dimensions must
    /// match, the entry must have executed at least once, and every block's
    /// invocation count must conserve flow (equal the traversal counts of
    /// its incoming edges, and of its outgoing edges for non-exit blocks).
    ///
    /// Profiles built by [`ProfileBuilder::record_walk`] satisfy this by
    /// construction; hand-assembled or merged profiles may not, and feeding
    /// an inconsistent profile to the MILP silently skews the objective —
    /// hence a typed check instead of a debug assertion.
    ///
    /// # Errors
    ///
    /// [`IrError::Malformed`] on dimension mismatch,
    /// [`IrError::ZeroFrequencyEntry`] when the entry never executed, and
    /// [`IrError::InconsistentFlow`] naming the first block (lowest id)
    /// whose counts disagree.
    pub fn validate(&self, cfg: &Cfg) -> Result<(), IrError> {
        if self.block_counts.len() != cfg.num_blocks()
            || self.block_costs.len() != cfg.num_blocks()
            || self.edge_counts.len() != cfg.num_edges()
        {
            return Err(IrError::Malformed(format!(
                "profile dimensions ({} blocks, {} edges) do not match CFG ({} blocks, {} edges)",
                self.block_counts.len(),
                self.edge_counts.len(),
                cfg.num_blocks(),
                cfg.num_edges()
            )));
        }
        let runs = self.block_count(cfg.entry());
        if runs == 0 {
            return Err(IrError::ZeroFrequencyEntry(cfg.entry()));
        }
        for b in (0..cfg.num_blocks()).map(BlockId) {
            let count = self.block_count(b);
            if b != cfg.entry() {
                let inflow: u64 = cfg.in_edges(b).map(|e| self.edge_count(e)).sum();
                if inflow != count {
                    return Err(IrError::InconsistentFlow(b));
                }
            }
            if b != cfg.exit() {
                let outflow: u64 = cfg.out_edges(b).map(|e| self.edge_count(e)).sum();
                if outflow != count {
                    return Err(IrError::InconsistentFlow(b));
                }
            }
        }
        Ok(())
    }

    /// Combines profiles of the *same program* on different inputs into a
    /// weighted-average profile: counts are weighted sums (rounded), block
    /// costs are count-weighted averages. This is the naive alternative to
    /// the §4.3 multi-category formulation — one blended profile instead of
    /// per-category deadline constraints — kept as a comparison baseline.
    ///
    /// # Panics
    ///
    /// Panics if the profiles disagree in block/edge/mode dimensions or if
    /// `parts` is empty.
    #[must_use]
    pub fn weighted_merge(parts: &[(f64, &Profile)]) -> Profile {
        let (_, first) = parts.first().expect("at least one profile");
        let num_modes = first.num_modes;
        let nblocks = first.block_costs.len();
        let nedges = first.edge_counts.len();
        for (_, p) in parts {
            assert_eq!(p.num_modes, num_modes, "mode count mismatch");
            assert_eq!(p.block_costs.len(), nblocks, "block count mismatch");
            assert_eq!(p.edge_counts.len(), nedges, "edge count mismatch");
        }
        let wsum: f64 = parts.iter().map(|(w, _)| w).sum();
        assert!(wsum > 0.0, "weights must sum to a positive value");

        let mut block_counts = vec![0u64; nblocks];
        let mut edge_counts = vec![0u64; nedges];
        let mut path_counts: BTreeMap<LocalPath, u64> = BTreeMap::new();
        let mut block_costs = vec![vec![BlockModeCost::default(); num_modes]; nblocks];

        for b in 0..nblocks {
            let weighted_invocations: f64 = parts
                .iter()
                .map(|(w, p)| w * p.block_counts[b] as f64)
                .sum();
            block_counts[b] = (weighted_invocations / wsum).round() as u64;
            for (m, cost) in block_costs[b].iter_mut().enumerate().take(num_modes) {
                // Cost per invocation averaged by invocation mass.
                let mut t = 0.0;
                let mut e = 0.0;
                for (w, p) in parts {
                    let n = w * p.block_counts[b] as f64;
                    t += n * p.block_costs[b][m].time_us;
                    e += n * p.block_costs[b][m].energy_uj;
                }
                if weighted_invocations > 0.0 {
                    *cost = BlockModeCost {
                        time_us: t / weighted_invocations,
                        energy_uj: e / weighted_invocations,
                    };
                }
            }
        }
        for (e, count) in edge_counts.iter_mut().enumerate().take(nedges) {
            let v: f64 = parts.iter().map(|(w, p)| w * p.edge_counts[e] as f64).sum();
            *count = (v / wsum).round() as u64;
        }
        for (w, p) in parts {
            for (path, c) in &p.path_counts {
                *path_counts.entry(*path).or_insert(0) += ((w / wsum) * *c as f64).round() as u64;
            }
        }
        Profile {
            num_modes,
            block_costs,
            edge_counts,
            path_counts,
            block_counts,
        }
    }
}

/// Builder for [`Profile`]s.
///
/// The counting half can be driven either by explicit increments or by
/// [`ProfileBuilder::record_walk`], which replays a dynamic block sequence
/// and derives edge, block and local-path counts in one pass.
#[derive(Debug, Clone)]
pub struct ProfileBuilder {
    num_modes: usize,
    block_costs: Vec<Vec<BlockModeCost>>,
    edge_counts: Vec<u64>,
    path_counts: BTreeMap<LocalPath, u64>,
    block_counts: Vec<u64>,
}

impl ProfileBuilder {
    /// Starts a profile for a CFG with `cfg.num_blocks()` blocks and
    /// `num_modes` DVS modes.
    #[must_use]
    pub fn new(cfg: &Cfg, num_modes: usize) -> Self {
        ProfileBuilder {
            num_modes,
            block_costs: vec![vec![BlockModeCost::default(); num_modes]; cfg.num_blocks()],
            edge_counts: vec![0; cfg.num_edges()],
            path_counts: BTreeMap::new(),
            block_counts: vec![0; cfg.num_blocks()],
        }
    }

    /// Sets the per-invocation cost of `block` under `mode`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn set_block_cost(&mut self, block: BlockId, mode: usize, cost: BlockModeCost) {
        self.block_costs[block.0][mode] = cost;
    }

    /// Adds `n` traversals of `edge`.
    pub fn add_edge_count(&mut self, edge: EdgeId, n: u64) {
        self.edge_counts[edge.0] += n;
    }

    /// Adds `n` occurrences of `path`.
    pub fn add_path_count(&mut self, path: LocalPath, n: u64) {
        *self.path_counts.entry(path).or_insert(0) += n;
    }

    /// Adds `n` invocations of `block`.
    pub fn add_block_count(&mut self, block: BlockId, n: u64) {
        self.block_counts[block.0] += n;
    }

    /// Replays a dynamic execution given as the sequence of blocks visited
    /// (which must be a path in `cfg` from its entry to its exit), deriving
    /// all counts.
    ///
    /// Returns `false` without recording anything if the sequence is not a
    /// valid entry-to-exit path. See [`ProfileBuilder::try_record_walk`]
    /// for the variant that reports *why* the walk was rejected.
    pub fn record_walk(&mut self, cfg: &Cfg, walk: &[BlockId]) -> bool {
        self.try_record_walk(cfg, walk).is_ok()
    }

    /// Like [`ProfileBuilder::record_walk`], but reports the rejection
    /// reason as a typed error instead of a bare `false`.
    ///
    /// # Errors
    ///
    /// * [`IrError::InvalidWalk`] — empty walk, walk not starting at the
    ///   entry, or not ending at the exit;
    /// * [`IrError::UnknownBlock`] — a step names a block outside the CFG;
    /// * [`IrError::Malformed`] — consecutive blocks with no connecting
    ///   edge (reported with both endpoints).
    ///
    /// Nothing is recorded when an error is returned.
    pub fn try_record_walk(&mut self, cfg: &Cfg, walk: &[BlockId]) -> Result<(), IrError> {
        if let Some(&b) = walk.iter().find(|b| b.0 >= cfg.num_blocks()) {
            return Err(IrError::UnknownBlock(b));
        }
        if walk.first() != Some(&cfg.entry()) {
            return Err(IrError::InvalidWalk(format!(
                "walk must start at entry {}",
                cfg.entry()
            )));
        }
        if walk.last() != Some(&cfg.exit()) {
            return Err(IrError::InvalidWalk(format!(
                "walk must end at exit {}",
                cfg.exit()
            )));
        }
        let mut edges = Vec::with_capacity(walk.len().saturating_sub(1));
        for w in walk.windows(2) {
            match cfg.edge_between(w[0], w[1]) {
                Some(e) => edges.push(e),
                None => {
                    return Err(IrError::Malformed(format!(
                        "walk step {} -> {} follows no CFG edge",
                        w[0], w[1]
                    )))
                }
            }
        }
        for &b in walk {
            self.block_counts[b.0] += 1;
        }
        for &e in &edges {
            self.edge_counts[e.0] += 1;
        }
        if edges.is_empty() {
            *self
                .path_counts
                .entry(LocalPath::whole(cfg.entry()))
                .or_insert(0) += 1;
            return Ok(());
        }
        *self
            .path_counts
            .entry(LocalPath::from_start(cfg, edges[0]))
            .or_insert(0) += 1;
        for w in edges.windows(2) {
            let p =
                LocalPath::interior(cfg, w[0], w[1]).expect("consecutive walk edges share a block");
            *self.path_counts.entry(p).or_insert(0) += 1;
        }
        *self
            .path_counts
            .entry(LocalPath::to_end(cfg, *edges.last().expect("non-empty")))
            .or_insert(0) += 1;
        Ok(())
    }

    /// Finalizes the profile.
    #[must_use]
    pub fn finish(self) -> Profile {
        Profile {
            num_modes: self.num_modes,
            block_costs: self.block_costs,
            edge_counts: self.edge_counts,
            path_counts: self.path_counts,
            block_counts: self.block_counts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CfgBuilder;

    fn loop_cfg() -> Cfg {
        let mut b = CfgBuilder::new("loop");
        let e = b.block("entry");
        let h = b.block("head");
        let body = b.block("body");
        let x = b.block("exit");
        b.edge(e, h);
        b.edge(h, body);
        b.edge(body, h);
        b.edge(h, x);
        b.finish(e, x).unwrap()
    }

    #[test]
    fn record_walk_counts_everything() {
        let g = loop_cfg();
        let e = g.entry();
        let h = g.block_by_label("head").unwrap();
        let body = g.block_by_label("body").unwrap();
        let x = g.exit();
        let mut pb = ProfileBuilder::new(&g, 3);
        // entry -> head -> body -> head -> body -> head -> exit
        assert!(pb.record_walk(&g, &[e, h, body, h, body, h, x]));
        let p = pb.finish();

        assert_eq!(p.block_count(h), 3);
        assert_eq!(p.block_count(body), 2);
        assert_eq!(p.block_count(e), 1);
        assert_eq!(p.block_count(x), 1);

        let e_eh = g.edge_between(e, h).unwrap();
        let e_hb = g.edge_between(h, body).unwrap();
        let e_bh = g.edge_between(body, h).unwrap();
        let e_hx = g.edge_between(h, x).unwrap();
        assert_eq!(p.edge_count(e_eh), 1);
        assert_eq!(p.edge_count(e_hb), 2);
        assert_eq!(p.edge_count(e_bh), 2);
        assert_eq!(p.edge_count(e_hx), 1);

        // Local paths through head: (e_eh,h,e_hb) x1, (e_bh,h,e_hb) x1,
        // (e_bh,h,e_hx) x1.
        let p1 = LocalPath::interior(&g, e_eh, e_hb).unwrap();
        let p2 = LocalPath::interior(&g, e_bh, e_hb).unwrap();
        let p3 = LocalPath::interior(&g, e_bh, e_hx).unwrap();
        assert_eq!(p.local_path_count(p1), 1);
        assert_eq!(p.local_path_count(p2), 1);
        assert_eq!(p.local_path_count(p3), 1);
        // Boundary paths.
        assert_eq!(p.local_path_count(LocalPath::from_start(&g, e_eh)), 1);
        assert_eq!(p.local_path_count(LocalPath::to_end(&g, e_hx)), 1);
        // Never-executed path.
        let never = LocalPath::interior(&g, e_eh, e_hx).unwrap();
        assert_eq!(p.local_path_count(never), 0);

        // D sums over exits equal edge count into block: paths through head
        // entered via e_bh = 2 = edge_count(e_bh).
        assert_eq!(
            p.local_path_count(p2) + p.local_path_count(p3),
            p.edge_count(e_bh)
        );
    }

    #[test]
    fn invalid_walks_are_rejected() {
        let g = loop_cfg();
        let e = g.entry();
        let h = g.block_by_label("head").unwrap();
        let body = g.block_by_label("body").unwrap();
        let x = g.exit();
        let mut pb = ProfileBuilder::new(&g, 1);
        assert!(!pb.record_walk(&g, &[h, x])); // doesn't start at entry
        assert!(!pb.record_walk(&g, &[e, h])); // doesn't end at exit
        assert!(!pb.record_walk(&g, &[e, body, x])); // no edge e->body
        let p = pb.finish();
        assert_eq!(p.block_count(e), 0);
    }

    #[test]
    fn totals_aggregate_costs_times_counts() {
        let g = loop_cfg();
        let e = g.entry();
        let h = g.block_by_label("head").unwrap();
        let body = g.block_by_label("body").unwrap();
        let x = g.exit();
        let mut pb = ProfileBuilder::new(&g, 2);
        pb.record_walk(&g, &[e, h, body, h, x]);
        for (i, &b) in [e, h, body, x].iter().enumerate() {
            pb.set_block_cost(
                b,
                0,
                BlockModeCost {
                    time_us: (i + 1) as f64,
                    energy_uj: 10.0 * (i + 1) as f64,
                },
            );
        }
        let p = pb.finish();
        // counts: e=1,h=2,body=1,x=1; times 1,2,3,4; energies 10,20,30,40.
        assert!((p.total_time_at(0) - (1.0 + 2.0 * 2.0 + 3.0 + 4.0)).abs() < 1e-12);
        assert!((p.total_energy_at(0) - (10.0 + 2.0 * 20.0 + 30.0 + 40.0)).abs() < 1e-12);
        assert!((p.block_total_energy(h, 0) - 40.0).abs() < 1e-12);
        // Mode 1 was never set: all zeros.
        assert_eq!(p.total_energy_at(1), 0.0);
    }

    #[test]
    fn weighted_merge_averages_counts_and_costs() {
        let g = loop_cfg();
        let e = g.entry();
        let h = g.block_by_label("head").unwrap();
        let body = g.block_by_label("body").unwrap();
        let x = g.exit();
        let mk = |iters: usize, t: f64| {
            let mut pb = ProfileBuilder::new(&g, 1);
            let mut walk = vec![e];
            for _ in 0..iters {
                walk.push(h);
                walk.push(body);
            }
            walk.push(h);
            walk.push(x);
            assert!(pb.record_walk(&g, &walk));
            for &b in &[e, h, body, x] {
                pb.set_block_cost(
                    b,
                    0,
                    BlockModeCost {
                        time_us: t,
                        energy_uj: 2.0 * t,
                    },
                );
            }
            pb.finish()
        };
        let p_small = mk(2, 1.0);
        let p_large = mk(10, 3.0);
        let merged = Profile::weighted_merge(&[(0.5, &p_small), (0.5, &p_large)]);
        // body invocations: (2 + 10)/2 = 6.
        assert_eq!(merged.block_count(body), 6);
        // Costs averaged by invocation mass: (2*1 + 10*3)/12 = 32/12.
        let c = merged.block_cost(body, 0);
        assert!((c.time_us - 32.0 / 12.0).abs() < 1e-9, "t = {}", c.time_us);
        assert!((c.energy_uj - 64.0 / 12.0).abs() < 1e-9);
        // Edge counts averaged.
        let e_hb = g.edge_between(h, body).unwrap();
        assert_eq!(merged.edge_count(e_hb), 6);
        // Degenerate: merging a profile with itself is the identity on
        // counts.
        let twice = Profile::weighted_merge(&[(1.0, &p_small), (1.0, &p_small)]);
        assert_eq!(twice.block_count(body), p_small.block_count(body));
    }

    #[test]
    #[should_panic(expected = "at least one profile")]
    fn weighted_merge_rejects_empty() {
        let _ = Profile::weighted_merge(&[]);
    }

    #[test]
    fn single_block_walk() {
        let mut b = CfgBuilder::new("one");
        let only = b.block("only");
        let g = b.finish(only, only).unwrap();
        let mut pb = ProfileBuilder::new(&g, 1);
        assert!(pb.record_walk(&g, &[only]));
        let p = pb.finish();
        assert_eq!(p.block_count(only), 1);
        assert_eq!(p.local_path_count(LocalPath::whole(only)), 1);
    }
}
