//! Rejection-path tests: every malformed input must produce a typed
//! [`IrError`], never a panic.

use dvs_ir::{BlockId, CfgBuilder, IrError, ProfileBuilder};

fn diamond() -> dvs_ir::Cfg {
    let mut b = CfgBuilder::new("diamond");
    let e = b.block("entry");
    let t = b.block("then");
    let f = b.block("else");
    let x = b.block("exit");
    b.edge(e, t);
    b.edge(e, f);
    b.edge(t, x);
    b.edge(f, x);
    b.finish(e, x).unwrap()
}

#[test]
fn edge_to_unknown_block_is_typed() {
    let mut b = CfgBuilder::new("bad");
    let e = b.block("entry");
    let x = b.block("exit");
    b.edge(e, x);
    b.edge(e, BlockId(99));
    assert_eq!(b.finish(e, x), Err(IrError::UnknownBlock(BlockId(99))));
}

#[test]
fn edge_from_unknown_block_is_typed() {
    let mut b = CfgBuilder::new("bad");
    let e = b.block("entry");
    let x = b.block("exit");
    b.edge(e, x);
    b.edge(BlockId(7), x);
    assert_eq!(b.finish(e, x), Err(IrError::UnknownBlock(BlockId(7))));
}

#[test]
fn reducible_graphs_pass_the_check() {
    assert_eq!(diamond().check_reducible(), Ok(()));

    // Nested natural loops are reducible.
    let mut b = CfgBuilder::new("nest");
    let e = b.block("entry");
    let h1 = b.block("outer");
    let h2 = b.block("inner");
    let body = b.block("body");
    let x = b.block("exit");
    b.edge(e, h1);
    b.edge(h1, h2);
    b.edge(h2, body);
    b.edge(body, h2);
    b.edge(h2, h1);
    b.edge(h1, x);
    let g = b.finish(e, x).unwrap();
    assert_eq!(g.check_reducible(), Ok(()));
}

#[test]
fn irreducible_two_headed_loop_is_typed() {
    // The classic irreducible shape: a cycle a <-> b entered at both ends,
    // so neither block dominates the other and neither a->b nor b->a is a
    // back edge.
    let mut bld = CfgBuilder::new("irred");
    let e = bld.block("entry");
    let a = bld.block("a");
    let b = bld.block("b");
    let x = bld.block("exit");
    bld.edge(e, a);
    bld.edge(e, b);
    bld.edge(a, b);
    bld.edge(b, a);
    bld.edge(a, x);
    let g = bld.finish(e, x).unwrap();
    match g.check_reducible() {
        Err(IrError::Irreducible(s, d)) => {
            assert!(
                (s, d) == (a, b) || (s, d) == (b, a),
                "offending edge must lie on the a<->b cycle, got {s} -> {d}"
            );
        }
        other => panic!("expected Irreducible, got {other:?}"),
    }
    // The report is deterministic: repeated checks name the same edge.
    assert_eq!(g.check_reducible(), g.check_reducible());
}

#[test]
fn walk_not_starting_at_entry_is_typed() {
    let g = diamond();
    let t = g.block_by_label("then").unwrap();
    let x = g.exit();
    let mut pb = ProfileBuilder::new(&g, 1);
    assert!(matches!(
        pb.try_record_walk(&g, &[t, x]),
        Err(IrError::InvalidWalk(_))
    ));
    // Nothing was recorded.
    assert_eq!(pb.finish().block_count(t), 0);
}

#[test]
fn walk_not_ending_at_exit_is_typed() {
    let g = diamond();
    let e = g.entry();
    let t = g.block_by_label("then").unwrap();
    let mut pb = ProfileBuilder::new(&g, 1);
    assert!(matches!(
        pb.try_record_walk(&g, &[e, t]),
        Err(IrError::InvalidWalk(_))
    ));
}

#[test]
fn walk_with_missing_edge_is_typed() {
    let g = diamond();
    let e = g.entry();
    let t = g.block_by_label("then").unwrap();
    let f = g.block_by_label("else").unwrap();
    let x = g.exit();
    let mut pb = ProfileBuilder::new(&g, 1);
    // then -> else is not an edge.
    assert!(matches!(
        pb.try_record_walk(&g, &[e, t, f, x]),
        Err(IrError::Malformed(_))
    ));
}

#[test]
fn walk_through_unknown_block_is_typed() {
    let g = diamond();
    let e = g.entry();
    let x = g.exit();
    let mut pb = ProfileBuilder::new(&g, 1);
    assert_eq!(
        pb.try_record_walk(&g, &[e, BlockId(42), x]),
        Err(IrError::UnknownBlock(BlockId(42)))
    );
}

#[test]
fn zero_frequency_entry_is_typed() {
    let g = diamond();
    let pb = ProfileBuilder::new(&g, 1);
    let p = pb.finish();
    assert_eq!(p.validate(&g), Err(IrError::ZeroFrequencyEntry(g.entry())));
}

#[test]
fn inconsistent_flow_is_typed() {
    let g = diamond();
    let e = g.entry();
    let t = g.block_by_label("then").unwrap();
    let x = g.exit();
    let mut pb = ProfileBuilder::new(&g, 1);
    assert!(pb.record_walk(&g, &[e, t, x]));
    // Forge an extra invocation of `then` without the matching edge
    // traversals: flow conservation now fails there.
    pb.add_block_count(t, 1);
    let p = pb.finish();
    assert_eq!(p.validate(&g), Err(IrError::InconsistentFlow(t)));
}

#[test]
fn profile_dimension_mismatch_is_typed() {
    let g = diamond();
    let mut small = CfgBuilder::new("small");
    let e = small.block("entry");
    let x = small.block("exit");
    small.edge(e, x);
    let small = small.finish(e, x).unwrap();
    let mut pb = ProfileBuilder::new(&small, 1);
    assert!(pb.record_walk(&small, &[e, x]));
    let p = pb.finish();
    assert!(matches!(p.validate(&g), Err(IrError::Malformed(_))));
}

#[test]
fn valid_profiles_validate() {
    let g = diamond();
    let e = g.entry();
    let t = g.block_by_label("then").unwrap();
    let f = g.block_by_label("else").unwrap();
    let x = g.exit();
    let mut pb = ProfileBuilder::new(&g, 2);
    assert!(pb.record_walk(&g, &[e, t, x]));
    assert!(pb.record_walk(&g, &[e, f, x]));
    assert_eq!(pb.finish().validate(&g), Ok(()));
}
