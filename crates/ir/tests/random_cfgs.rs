//! Randomized tests over generated CFGs: structural invariants of reverse
//! post-order, dominators, natural loops, profiles and the Ball–Larus
//! numbering.
//!
//! Graphs come from a fixed-seed SplitMix64 generator so failures
//! reproduce exactly.

use dvs_ir::{
    BallLarus, BlockId, Cfg, CfgBuilder, Dominators, LoopForest, PathProfile, ProfileBuilder,
};

struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn int(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo)
    }
}

/// Builds a random but always-valid CFG: a backbone chain `b0 -> b1 -> ...
/// -> b(n-1)` guaranteeing reachability and exit paths, plus random extra
/// forward edges and a few back edges.
fn random_cfg(rng: &mut Rng) -> Cfg {
    let n = rng.int(3, 12) as usize;
    let num_extra = rng.int(0, 12) as usize;
    let mut b = CfgBuilder::new("random");
    let ids: Vec<BlockId> = (0..n).map(|i| b.block(format!("b{i}"))).collect();
    for w in ids.windows(2) {
        b.edge(w[0], w[1]);
    }
    let mut present: std::collections::BTreeSet<(usize, usize)> =
        (0..n - 1).map(|i| (i, i + 1)).collect();
    for _ in 0..num_extra {
        let a = rng.int(0, 12) as usize % n;
        let c = rng.int(0, 12) as usize % n;
        // Entry may not gain predecessors; exit no successors;
        // no duplicates or self-edges at the entry/exit boundary.
        if a == c || c == 0 || a == n - 1 {
            continue;
        }
        if present.insert((a, c)) {
            b.edge(ids[a], ids[c]);
        }
    }
    b.finish(ids[0], ids[n - 1])
        .expect("constructed CFG is valid")
}

/// A random walk through a CFG from entry to exit, bounded in length by
/// preferring forward progress.
fn random_walk(cfg: &Cfg, seed: u64, max_len: usize) -> Vec<BlockId> {
    let mut walk = vec![cfg.entry()];
    let mut state = seed | 1;
    let mut cur = cfg.entry();
    while cur != cfg.exit() && walk.len() < max_len {
        let succs: Vec<BlockId> = cfg.successors(cur).collect();
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        // Late in the walk, force the forward (highest-id) successor so we
        // terminate; ids increase along the backbone.
        let pick = if walk.len() + succs.len() >= max_len {
            *succs.iter().max().expect("non-exit block has successors")
        } else {
            succs[(state >> 33) as usize % succs.len()]
        };
        walk.push(pick);
        cur = pick;
    }
    walk
}

#[test]
fn rpo_is_a_permutation_starting_at_entry() {
    let mut rng = Rng(0xD5_5EED_0031);
    for _ in 0..64 {
        let cfg = random_cfg(&mut rng);
        let rpo = cfg.reverse_post_order();
        assert_eq!(rpo.len(), cfg.num_blocks());
        assert_eq!(rpo[0], cfg.entry());
        let mut sorted: Vec<usize> = rpo.iter().map(|b| b.index()).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..cfg.num_blocks()).collect::<Vec<_>>());
    }
}

#[test]
fn dominator_axioms() {
    let mut rng = Rng(0xD5_5EED_0032);
    for _ in 0..64 {
        let cfg = random_cfg(&mut rng);
        let dom = Dominators::compute(&cfg);
        let entry = cfg.entry();
        for b in cfg.blocks() {
            // Entry dominates everything; everything dominates itself.
            assert!(dom.dominates(entry, b.id));
            assert!(dom.dominates(b.id, b.id));
            // The immediate dominator dominates its child strictly.
            if b.id != entry {
                let idom = dom.idom(b.id);
                assert!(dom.strictly_dominates(idom, b.id));
            }
            // A block with a single predecessor is dominated by it.
            let preds: Vec<BlockId> = cfg.predecessors(b.id).collect();
            if preds.len() == 1 {
                assert!(dom.dominates(preds[0], b.id));
            }
        }
    }
}

#[test]
fn loop_bodies_contain_their_headers_and_latches() {
    let mut rng = Rng(0xD5_5EED_0033);
    for _ in 0..64 {
        let cfg = random_cfg(&mut rng);
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::compute(&cfg, &dom);
        for l in forest.loops() {
            assert!(l.contains(l.header));
            assert!(l.contains(l.latch));
            // The header dominates every block in the body.
            for &b in &l.body {
                assert!(dom.dominates(l.header, b));
            }
            // The back edge really is an edge latch -> header.
            let e = cfg.edge(l.back_edge);
            assert_eq!(e.src, l.latch);
            assert_eq!(e.dst, l.header);
        }
    }
}

#[test]
fn profile_counts_are_flow_consistent() {
    let mut rng = Rng(0xD5_5EED_0034);
    for case in 0..64 {
        let cfg = random_cfg(&mut rng);
        let walk = random_walk(&cfg, rng.next_u64(), 200);
        if walk.last() != Some(&cfg.exit()) {
            continue; // walk did not terminate in budget; skip
        }
        let mut pb = ProfileBuilder::new(&cfg, 1);
        assert!(pb.record_walk(&cfg, &walk), "case {case}");
        let p = pb.finish();
        // Block invocations equal total in-edge counts (+1 for entry).
        for b in cfg.blocks() {
            let in_count: u64 = cfg.in_edges(b.id).map(|e| p.edge_count(e)).sum();
            let expect = in_count + u64::from(b.id == cfg.entry());
            assert_eq!(p.block_count(b.id), expect, "case {case}: block {}", b.id);
        }
        // For every edge, local paths exiting through it sum to its count.
        for e in cfg.edges() {
            let through: u64 = p
                .local_paths()
                .filter(|(lp, _)| lp.exit == Some(e.id))
                .map(|(_, c)| c)
                .sum();
            assert_eq!(through, p.edge_count(e.id), "case {case}: edge {}", e.id);
        }
    }
}

#[test]
fn ball_larus_numbering_is_injective() {
    let mut rng = Rng(0xD5_5EED_0035);
    for case in 0..64 {
        let cfg = random_cfg(&mut rng);
        let bl = BallLarus::compute(&cfg);
        // Decode every whole-graph path id: all decodings distinct, all
        // start at entry and end at exit.
        let n = bl.num_paths().min(64);
        let mut seen = std::collections::BTreeSet::new();
        for id in 0..n {
            let blocks = dvs_ir::decode_path(
                &cfg,
                &bl,
                dvs_ir::PathKey {
                    start: cfg.entry(),
                    id,
                },
            );
            assert_eq!(blocks[0], cfg.entry(), "case {case}");
            assert!(
                seen.insert(blocks.clone()),
                "case {case}: duplicate path for id {id}"
            );
        }
        // Replaying a random walk always produces countable segments.
        let walk = random_walk(&cfg, rng.next_u64(), 200);
        if walk.last() == Some(&cfg.exit()) {
            let p = PathProfile::from_walk(&cfg, &bl, &walk);
            assert!(p.is_some(), "case {case}");
            assert!(p.expect("checked").total() >= 1, "case {case}");
        }
    }
}
