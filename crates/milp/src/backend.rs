//! Pluggable solver backends.
//!
//! [`SolverBackend`] is the one entry point every solver implements:
//! `solve(&Model, &SolveOptions) -> Result<Solution, MilpError>`, with
//! [`crate::SolveStats`] — including the incumbent trajectory — part of the
//! contract. Two backends ship:
//!
//! * [`BranchAndBound`] — the general MILP search ([`crate::solve_with`])
//!   with basis-reusing dual-simplex node solves and pseudo-cost branching.
//!   Handles every model.
//! * [`ContinuousYds`] — an exact combinatorial algorithm for the
//!   *continuous-voltage ladder* shape (one exactly-one selection row per
//!   group, at most one non-negative budget row, minimize): per group the
//!   lower convex hull of its `(time, energy)` points is walked
//!   cheapest-rate-first until the time budget is met, in the style of the
//!   Yao–Demers–Shenker / Li–Yao–Yuan continuous DVS algorithms. `O(n log n)`
//!   (well inside the paper's `O(n²)` budget), no simplex at all. On models
//!   with integer variables it reports the exact continuous optimum as
//!   `best_bound` and a feasible rounding as the incumbent.
//!
//! [`SolverChoice::Auto`] picks [`ContinuousYds`] exactly when it is exact:
//! no integer variables and the ladder shape extracts. The branch-and-bound
//! also calls into the ladder core at its root (see
//! [`continuous_lower_bound`]) to seed a global bound that lets the search
//! stop the moment the incumbent provably meets it.

use crate::{Cmp, Incumbent, MilpError, Model, Sense, Solution, SolveOptions, SolveStats, Status};
use std::time::Instant;

const EXT_TOL: f64 = 1e-9;

/// A MILP solver implementation selectable at [`crate::SolveOptions`] level.
///
/// The contract: `solve` returns a [`Solution`] whose
/// [`SolveStats`] carry the work counters and the full incumbent
/// trajectory (minimization form, monotone nonincreasing for sequential
/// runs), or a [`MilpError`] — including
/// [`MilpError::Unsupported`] when the backend cannot represent the model.
pub trait SolverBackend {
    /// Stable, human-readable backend identifier (used in cache keys,
    /// benchmark output, and CLI flags).
    fn name(&self) -> &'static str;

    /// Solves `model` under `opts`.
    ///
    /// # Errors
    ///
    /// Backend-dependent; every backend may return
    /// [`MilpError::Infeasible`], and restricted backends return
    /// [`MilpError::Unsupported`] for models outside their shape.
    fn solve(&self, model: &Model, opts: &SolveOptions) -> Result<Solution, MilpError>;
}

/// Which [`SolverBackend`] to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverChoice {
    /// [`ContinuousYds`] when the model is a pure continuous ladder
    /// (exact), [`BranchAndBound`] otherwise.
    #[default]
    Auto,
    /// Always the branch-and-bound MILP search.
    BranchAndBound,
    /// Always the exact continuous-voltage ladder algorithm; errors with
    /// [`MilpError::Unsupported`] on models outside that shape.
    Continuous,
}

impl SolverChoice {
    /// Parses a CLI/daemon spelling: `auto`, `bnb`/`branch-and-bound`, or
    /// `continuous`/`yds`.
    #[must_use]
    pub fn parse(s: &str) -> Option<SolverChoice> {
        match s {
            "auto" => Some(SolverChoice::Auto),
            "bnb" | "branch-and-bound" => Some(SolverChoice::BranchAndBound),
            "continuous" | "yds" => Some(SolverChoice::Continuous),
            _ => None,
        }
    }

    /// The canonical spelling (round-trips through [`SolverChoice::parse`]).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SolverChoice::Auto => "auto",
            SolverChoice::BranchAndBound => "bnb",
            SolverChoice::Continuous => "continuous",
        }
    }
}

impl std::fmt::Display for SolverChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Resolves a [`SolverChoice`] against a concrete model.
#[must_use]
pub fn backend_for(choice: SolverChoice, model: &Model) -> &'static dyn SolverBackend {
    match choice {
        SolverChoice::BranchAndBound => &BranchAndBound,
        SolverChoice::Continuous => &ContinuousYds,
        SolverChoice::Auto => {
            if model.num_int_vars() == 0 && extract_ladder(model).is_ok() {
                &ContinuousYds
            } else {
                &BranchAndBound
            }
        }
    }
}

/// Solves `model` with the backend selected by `choice`.
///
/// # Errors
///
/// See [`SolverBackend::solve`].
pub fn solve_with_choice(
    model: &Model,
    choice: SolverChoice,
    opts: &SolveOptions,
) -> Result<Solution, MilpError> {
    backend_for(choice, model).solve(model, opts)
}

/// Objective of the LP relaxation of `model` ([`Model::relax`]), solved
/// through the backend API. Both the differential-testing oracle and the
/// branch-and-bound bound go through this single path, so they can never
/// drift apart.
///
/// # Errors
///
/// [`MilpError::Infeasible`], [`MilpError::Unbounded`], or LP-layer errors.
pub fn relaxation_bound(model: &Model, opts: &SolveOptions) -> Result<f64, MilpError> {
    let relaxed = model.relax();
    Ok(backend_for(SolverChoice::Auto, &relaxed)
        .solve(&relaxed, opts)?
        .objective)
}

/// The branch-and-bound backend (see [`crate::solve_with`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct BranchAndBound;

impl SolverBackend for BranchAndBound {
    fn name(&self) -> &'static str {
        "branch-and-bound"
    }

    fn solve(&self, model: &Model, opts: &SolveOptions) -> Result<Solution, MilpError> {
        crate::solve_seeded(model, opts, None)
    }
}

/// The exact continuous-voltage ladder backend (see the module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct ContinuousYds;

impl SolverBackend for ContinuousYds {
    fn name(&self) -> &'static str {
        "continuous-yds"
    }

    fn solve(&self, model: &Model, opts: &SolveOptions) -> Result<Solution, MilpError> {
        let _ = opts;
        let t0 = Instant::now();
        model.validate()?;
        let ladder = extract_ladder(model)?;
        let cont = solve_ladder(&ladder)?;
        if dvs_obs::enabled() {
            dvs_obs::counter("milp.continuous_solves", 1);
        }
        let mut stats = SolveStats {
            nodes: 1,
            best_bound: cont.objective,
            mip_gap: 0.0,
            ..SolveStats::default()
        };
        if model.num_int_vars() == 0 {
            stats.incumbents.push(Incumbent {
                objective: cont.objective,
                node: 0,
                at_us: t0.elapsed().as_secs_f64() * 1e6,
            });
            return Ok(Solution {
                status: Status::Optimal,
                objective: cont.objective,
                values: cont.values,
                stats,
            });
        }
        // Integer model: the continuous optimum is the exact bound; round
        // each fractional group to the *faster* hull endpoint (time can
        // only shrink, so feasibility is preserved).
        let (values, objective, exact) = round_to_fast_endpoints(&ladder, &cont);
        stats.incumbents.push(Incumbent {
            objective,
            node: 0,
            at_us: t0.elapsed().as_secs_f64() * 1e6,
        });
        let status = if exact {
            Status::Optimal
        } else {
            Status::Feasible
        };
        if !exact {
            stats.mip_gap = ((objective - cont.objective) / objective.abs().max(1.0)).max(0.0);
        }
        Ok(Solution {
            status,
            objective,
            values,
            stats,
        })
    }
}

/// Exact continuous ladder bound for `model` in **minimization form**, or
/// `None` when the model does not have the pure ladder shape (integrality
/// is ignored — this is precisely the bound of the continuous relaxation).
/// The branch-and-bound root uses this to seed its global lower bound.
#[must_use]
pub(crate) fn continuous_lower_bound(model: &Model) -> Option<f64> {
    let ladder = extract_ladder(model).ok()?;
    solve_ladder(&ladder).ok().map(|c| c.objective)
}

/// One selectable `(time, energy)` point of a group.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Pt {
    pub(crate) t: f64,
    pub(crate) e: f64,
    pub(crate) var: usize,
}

/// The extracted pure ladder-selection structure.
pub(crate) struct Ladder {
    pub(crate) num_vars: usize,
    pub(crate) groups: Vec<Vec<Pt>>,
    pub(crate) deadline: f64,
    pub(crate) constant: f64,
}

/// Result of the continuous hull walk.
pub(crate) struct ContinuousOpt {
    pub(crate) objective: f64,
    pub(crate) values: Vec<f64>,
    /// Per group: hull points and the fractional level the walk stopped at
    /// (`level ∈ [0, hull.len()-1]`, integral = a single point is chosen).
    pub(crate) hulls: Vec<Vec<Pt>>,
    pub(crate) levels: Vec<f64>,
    /// Marginal energy-per-time rate of the last segment the walk
    /// consumed (0 when the deadline was slack). This is the KKT
    /// multiplier of the deadline row, which the certifier exports.
    pub(crate) rate: f64,
}

fn unsupported(reason: impl Into<String>) -> MilpError {
    MilpError::Unsupported {
        reason: reason.into(),
    }
}

/// Checks the pure ladder shape and pulls out groups, times, energies and
/// the deadline. Integrality is deliberately ignored: the caller decides
/// whether the continuous answer is exact or a bound.
pub(crate) fn extract_ladder(model: &Model) -> Result<Ladder, MilpError> {
    if model.sense() != Sense::Minimize {
        return Err(unsupported("objective sense must be Minimize"));
    }
    let n = model.num_vars();
    let mut group_of: Vec<Option<usize>> = vec![None; n];
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut budget: Option<(Vec<(usize, f64)>, f64)> = None;
    for c in &model.constraints {
        let rhs = c.rhs - c.expr.constant();
        let terms: Vec<(usize, f64)> = c.expr.terms().map(|(v, a)| (v.index(), a)).collect();
        match c.cmp {
            Cmp::Eq => {
                if (rhs - 1.0).abs() > EXT_TOL {
                    return Err(unsupported("equality row is not an exactly-one row"));
                }
                if terms.iter().any(|&(_, a)| (a - 1.0).abs() > EXT_TOL) {
                    return Err(unsupported("selection row has a non-unit coefficient"));
                }
                let gi = groups.len();
                let mut members = Vec::with_capacity(terms.len());
                for &(j, _) in &terms {
                    if group_of[j].is_some() {
                        return Err(unsupported("variable appears in two selection groups"));
                    }
                    group_of[j] = Some(gi);
                    members.push(j);
                }
                groups.push(members);
            }
            Cmp::Le => {
                if budget.is_some() {
                    return Err(unsupported("more than one budget (<=) row"));
                }
                if terms.iter().any(|&(_, a)| a < -EXT_TOL) {
                    return Err(unsupported("budget row has a negative time coefficient"));
                }
                budget = Some((terms, rhs));
            }
            Cmp::Ge => return Err(unsupported("general >= rows are outside the ladder shape")),
        }
    }
    if groups.is_empty() {
        return Err(unsupported("no selection groups"));
    }
    if group_of.iter().any(Option::is_none) {
        return Err(unsupported("variable outside any selection group"));
    }

    let mut times = vec![0.0f64; n];
    let deadline = match &budget {
        Some((terms, rhs)) => {
            for &(j, a) in terms {
                times[j] = a.max(0.0);
            }
            *rhs
        }
        None => f64::INFINITY,
    };
    let mut energies = vec![0.0f64; n];
    for (v, e) in model.objective().terms() {
        energies[v.index()] = e;
    }

    let mut out_groups = Vec::with_capacity(groups.len());
    for members in &groups {
        let mut pts = Vec::with_capacity(members.len());
        for &j in members {
            let (lb, ub) = (model.vars[j].lb, model.vars[j].ub);
            if lb > EXT_TOL {
                return Err(unsupported("group member with a positive lower bound"));
            }
            if ub < 1.0 - EXT_TOL {
                if ub <= EXT_TOL {
                    continue; // member fixed out of the group
                }
                return Err(unsupported("group member with a fractional upper bound"));
            }
            pts.push(Pt {
                t: times[j],
                e: energies[j],
                var: j,
            });
        }
        out_groups.push(pts);
    }
    Ok(Ladder {
        num_vars: n,
        groups: out_groups,
        deadline,
        constant: model.objective().constant(),
    })
}

/// Efficient frontier then lower convex hull of a group's points, sorted
/// fastest-first (`t` strictly ascending, `e` strictly descending).
pub(crate) fn lower_hull(points: &[Pt]) -> Vec<Pt> {
    let mut sorted: Vec<Pt> = points.to_vec();
    sorted.sort_by(|a, b| {
        a.t.partial_cmp(&b.t)
            .unwrap()
            .then(a.e.partial_cmp(&b.e).unwrap())
            .then(a.var.cmp(&b.var))
    });
    // Dominance filter: with `t` ascending, a point earns a place on the
    // frontier only by strictly beating the running energy minimum (an
    // earlier point is faster-or-equal, so equal-or-higher energy here
    // means dominated). The frontier ends up `t` ascending, `e` strictly
    // descending.
    let mut frontier: Vec<Pt> = Vec::with_capacity(sorted.len());
    for p in sorted {
        match frontier.last() {
            Some(last) if p.e >= last.e - EXT_TOL => {} // dominated
            _ => frontier.push(p),
        }
    }
    // Monotone-chain lower hull over the frontier.
    let cross = |o: &Pt, a: &Pt, b: &Pt| (a.t - o.t) * (b.e - o.e) - (a.e - o.e) * (b.t - o.t);
    let mut hull: Vec<Pt> = Vec::with_capacity(frontier.len());
    for p in frontier {
        while hull.len() >= 2 && cross(&hull[hull.len() - 2], &hull[hull.len() - 1], &p) <= 0.0 {
            hull.pop();
        }
        hull.push(p);
    }
    hull
}

/// The exact continuous optimum: start every group at its minimum-energy
/// (slowest) hull point and buy back time along hull segments in
/// ascending marginal-cost order until the deadline is met.
pub(crate) fn solve_ladder(ladder: &Ladder) -> Result<ContinuousOpt, MilpError> {
    let hulls: Vec<Vec<Pt>> = ladder.groups.iter().map(|g| lower_hull(g)).collect();
    if hulls.iter().any(Vec::is_empty) {
        // A selection row whose members are all fixed to zero.
        return Err(MilpError::Infeasible);
    }
    // Start: slowest hull point of each group (maximum t = minimum e).
    let mut levels: Vec<f64> = hulls.iter().map(|h| (h.len() - 1) as f64).collect();
    let mut total_t: f64 = hulls.iter().map(|h| h.last().unwrap().t).sum();
    let mut objective: f64 =
        ladder.constant + hulls.iter().map(|h| h.last().unwrap().e).sum::<f64>();

    let mut need = total_t - ladder.deadline;
    let mut rate = 0.0f64;
    if need > EXT_TOL {
        // All hull segments across groups: moving from point i+1 to i costs
        // `rate` energy per unit of time saved. Consume cheapest first;
        // within a group, slow-end segments have the lowest rates, so the
        // sort (with the index tie-break) respects per-group order.
        struct Seg {
            rate: f64,
            dt: f64,
            de: f64,
            group: usize,
            idx: usize, // segment between hull[idx] and hull[idx + 1]
        }
        let mut segs: Vec<Seg> = Vec::new();
        for (gi, h) in hulls.iter().enumerate() {
            for i in 0..h.len() - 1 {
                let dt = h[i + 1].t - h[i].t;
                let de = h[i].e - h[i + 1].e;
                if dt > EXT_TOL {
                    segs.push(Seg {
                        rate: de / dt,
                        dt,
                        de,
                        group: gi,
                        idx: i,
                    });
                }
            }
        }
        segs.sort_by(|a, b| {
            a.rate
                .partial_cmp(&b.rate)
                .unwrap()
                .then(a.group.cmp(&b.group))
                .then(b.idx.cmp(&a.idx))
        });
        for s in &segs {
            if need <= EXT_TOL {
                break;
            }
            let take = need.min(s.dt);
            let frac = take / s.dt;
            rate = s.rate;
            levels[s.group] = (s.idx + 1) as f64 - frac;
            objective += frac * s.de;
            total_t -= take;
            need -= take;
        }
        if need > EXT_TOL {
            return Err(MilpError::Infeasible); // even all-fastest misses the deadline
        }
    }
    let _ = total_t;

    let mut values = vec![0.0f64; ladder.num_vars];
    for (h, &lvl) in hulls.iter().zip(&levels) {
        let lo = lvl.floor() as usize;
        let frac = lvl - lvl.floor();
        if frac <= EXT_TOL || lo + 1 >= h.len() {
            values[h[lo.min(h.len() - 1)].var] = 1.0;
        } else {
            values[h[lo].var] = 1.0 - frac;
            values[h[lo + 1].var] = frac;
        }
    }
    Ok(ContinuousOpt {
        objective,
        values,
        hulls,
        levels,
        rate,
    })
}

/// Rounds a fractional continuous solution to one point per group by
/// taking the *faster* hull endpoint of each fractional level. Returns the
/// 0/1 values, the rounded objective, and whether the continuous solution
/// was already integral (in which case the rounding is exact).
fn round_to_fast_endpoints(ladder: &Ladder, cont: &ContinuousOpt) -> (Vec<f64>, f64, bool) {
    let mut values = vec![0.0f64; ladder.num_vars];
    let mut objective = ladder.constant;
    let mut exact = true;
    for (h, &lvl) in cont.hulls.iter().zip(&cont.levels) {
        let lo = (lvl.floor() as usize).min(h.len() - 1);
        if lvl - lvl.floor() > EXT_TOL && lo + 1 < h.len() {
            exact = false;
        }
        values[h[lo].var] = 1.0;
        objective += h[lo].e;
    }
    (values, objective, exact)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinExpr, Model, SolveOptions};

    /// A little DVS-shaped ladder: `groups` of `(time, energy)` points,
    /// one exactly-one row per group, one deadline row.
    fn ladder_model(groups: &[&[(f64, f64)]], deadline: f64, integral: bool) -> Model {
        let mut m = Model::new(Sense::Minimize);
        let mut obj = LinExpr::zero();
        let mut time = LinExpr::zero();
        for (gi, pts) in groups.iter().enumerate() {
            let mut sum = LinExpr::zero();
            let mut vars = Vec::new();
            for (pi, &(t, e)) in pts.iter().enumerate() {
                let v = if integral {
                    m.bool_var(format!("g{gi}p{pi}"))
                } else {
                    m.num_var(format!("g{gi}p{pi}"), 0.0, 1.0)
                };
                obj += e * v;
                time += t * v;
                sum += LinExpr::from(v);
                vars.push(v);
            }
            m.add_eq(sum, 1.0);
            if integral {
                m.add_sos1(vars);
            }
        }
        m.set_objective(obj);
        m.add_le(time, deadline);
        m
    }

    const G3: &[&[(f64, f64)]] = &[
        &[(1.0, 9.0), (2.0, 4.0), (4.0, 1.0)],
        &[(1.5, 12.0), (3.0, 5.0), (6.0, 2.0)],
        &[(0.5, 6.0), (1.0, 3.0), (2.0, 1.5)],
    ];

    #[test]
    fn slack_deadline_picks_min_energy_points() {
        let m = ladder_model(G3, 100.0, false);
        let s = ContinuousYds.solve(&m, &SolveOptions::default()).unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - (1.0 + 2.0 + 1.5)).abs() < 1e-9);
    }

    #[test]
    fn continuous_matches_branch_and_bound_on_relaxation() {
        for &deadline in &[4.0, 5.5, 7.0, 9.0, 12.0] {
            let m = ladder_model(G3, deadline, false);
            let yds = ContinuousYds.solve(&m, &SolveOptions::default()).unwrap();
            let bnb = BranchAndBound.solve(&m, &SolveOptions::default()).unwrap();
            let rel = (yds.objective - bnb.objective).abs() / bnb.objective.abs().max(1.0);
            assert!(
                rel < 1e-6,
                "deadline {deadline}: yds {} vs bnb {}",
                yds.objective,
                bnb.objective
            );
            // And the reported point actually achieves the objective.
            let recomputed: f64 = m
                .objective()
                .terms()
                .map(|(v, c)| c * yds.values[v.index()])
                .sum();
            assert!((recomputed - yds.objective).abs() < 1e-9);
        }
    }

    #[test]
    fn fractional_mixing_on_tight_deadline() {
        // One group, two points (1, 9) and (4, 1); deadline 2.5 forces the
        // mixture x_fast = 0.5, x_slow = 0.5 -> energy 5.
        let m = ladder_model(&[&[(1.0, 9.0), (4.0, 1.0)]], 2.5, false);
        let s = ContinuousYds.solve(&m, &SolveOptions::default()).unwrap();
        assert!((s.objective - 5.0).abs() < 1e-9);
        assert!((s.values[0] - 0.5).abs() < 1e-9);
        assert!((s.values[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn impossible_deadline_is_infeasible() {
        let m = ladder_model(G3, 1.0, false); // fastest total time is 3.0
        assert!(matches!(
            ContinuousYds.solve(&m, &SolveOptions::default()),
            Err(MilpError::Infeasible)
        ));
    }

    #[test]
    fn integer_ladder_rounds_to_feasible_incumbent() {
        let m = ladder_model(G3, 7.0, true);
        let s = ContinuousYds.solve(&m, &SolveOptions::default()).unwrap();
        let exact = BranchAndBound.solve(&m, &SolveOptions::default()).unwrap();
        // The continuous optimum bounds from below; the rounding is a real
        // feasible point, so it bounds the MILP optimum from above.
        assert!(s.stats.best_bound <= exact.objective + 1e-9);
        assert!(s.objective >= exact.objective - 1e-9);
        // The rounded point satisfies the deadline.
        let time: f64 = (0..m.num_vars())
            .map(|j| s.values[j])
            .zip(m.constraints.last().unwrap().expr.terms())
            .map(|(x, (_, t))| x * t)
            .sum();
        assert!(time <= 7.0 + 1e-9);
    }

    #[test]
    fn unsupported_shapes_are_rejected_with_reasons() {
        // Maximize.
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", 0.0, 1.0);
        m.set_objective(LinExpr::from(x));
        m.add_eq(LinExpr::from(x), 1.0);
        assert!(matches!(
            ContinuousYds.solve(&m, &SolveOptions::default()),
            Err(MilpError::Unsupported { .. })
        ));
        // A >= row.
        let mut m2 = ladder_model(G3, 9.0, false);
        let extra = m2.num_var("extra", 0.0, 1.0);
        m2.add_ge(LinExpr::from(extra), 0.5);
        assert!(matches!(
            ContinuousYds.solve(&m2, &SolveOptions::default()),
            Err(MilpError::Unsupported { .. })
        ));
        // Two budget rows.
        let mut m3 = ladder_model(G3, 9.0, false);
        let v0 = crate::Var(0);
        m3.add_le(LinExpr::from(v0), 0.9);
        assert!(matches!(
            ContinuousYds.solve(&m3, &SolveOptions::default()),
            Err(MilpError::Unsupported { .. })
        ));
    }

    #[test]
    fn auto_resolves_by_shape_and_integrality() {
        let relaxed = ladder_model(G3, 9.0, false);
        assert_eq!(
            backend_for(SolverChoice::Auto, &relaxed).name(),
            "continuous-yds"
        );
        let integral = ladder_model(G3, 9.0, true);
        assert_eq!(
            backend_for(SolverChoice::Auto, &integral).name(),
            "branch-and-bound"
        );
        // Not a ladder at all: fall back to branch-and-bound.
        let mut lp = Model::new(Sense::Maximize);
        let x = lp.num_var("x", 0.0, 4.0);
        lp.set_objective(3.0 * x);
        assert_eq!(
            backend_for(SolverChoice::Auto, &lp).name(),
            "branch-and-bound"
        );
        assert_eq!(SolverChoice::parse("yds"), Some(SolverChoice::Continuous));
        assert_eq!(SolverChoice::parse("nope"), None);
        for c in [
            SolverChoice::Auto,
            SolverChoice::BranchAndBound,
            SolverChoice::Continuous,
        ] {
            assert_eq!(SolverChoice::parse(c.as_str()), Some(c));
        }
    }

    #[test]
    fn relaxation_bound_is_shared_and_exact_for_ladders() {
        let m = ladder_model(G3, 6.0, true);
        let opts = SolveOptions::default();
        let bound = relaxation_bound(&m, &opts).unwrap();
        // Same number the B&B backend would compute on the relaxation.
        let via_bnb = BranchAndBound.solve(&m.relax(), &opts).unwrap().objective;
        assert!((bound - via_bnb).abs() < 1e-6);
        // And it must lower-bound the integral optimum.
        let exact = BranchAndBound.solve(&m, &opts).unwrap();
        assert!(bound <= exact.objective + 1e-9);
        // The root seed agrees with the public path.
        let lb = continuous_lower_bound(&m).unwrap();
        assert!((lb - bound).abs() < 1e-9);
    }

    #[test]
    fn incumbent_trajectory_reported_by_both_backends() {
        let m = ladder_model(G3, 6.0, true);
        let opts = SolveOptions::default();
        for backend in [&BranchAndBound as &dyn SolverBackend, &ContinuousYds] {
            let s = backend.solve(&m, &opts).unwrap();
            assert!(
                !s.stats.incumbents.is_empty(),
                "{}: contract requires a trajectory",
                backend.name()
            );
            for w in s.stats.incumbents.windows(2) {
                assert!(
                    w[1].objective <= w[0].objective + 1e-9,
                    "{}",
                    backend.name()
                );
            }
        }
    }
}
