//! Branch-and-bound driver on top of the LP relaxation.
//!
//! The search keeps **one** [`SimplexEngine`] for the whole tree: the root
//! problem is presolved once (with integrality information, unlocking
//! coefficient reduction), the engine is built on the result, and each node
//! only rewrites variable bounds before solving. Children carry their
//! parent's optimal [`Basis`] and restart the **dual simplex** from it —
//! a bound tightening leaves the parent basis dual feasible, so most node
//! LPs finish in a handful of dual pivots instead of a full two-phase
//! primal solve. Any warm start the engine cannot certify falls back to a
//! fresh solve, so answers never depend on basis reuse being possible.
//!
//! Branching defaults to SOS1 group splits where groups are declared,
//! falling back to **pseudo-cost** variable selection with reliability-1
//! initialization: a variable is branched most-fractional until both of
//! its directions have at least one observed LP degradation, after which
//! the product of its per-direction average gains drives the choice.

use crate::presolve::{presolve_int, Presolved};
use crate::simplex::{solve_lp, Basis, LpProblem, LpSolution, LpStatus, RowKind, SimplexEngine};
use crate::{Cmp, Incumbent, MilpError, Model, Sense, Solution, SolveStats, Status, VarKind};
use std::rc::Rc;
use std::time::Instant;

const INT_TOL: f64 = 1e-6;
const OBJ_TOL: f64 = 1e-7;

/// How branching variables are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BranchRule {
    /// Prefer SOS1 group splits where groups are declared, falling back to
    /// pseudo-cost single-variable branching (reliability-1 initialized:
    /// most-fractional until both directions of a variable have been
    /// observed). The right default for the DVS formulation.
    #[default]
    Sos1ThenPseudoCost,
    /// Prefer SOS1 group splits, falling back to most-fractional
    /// single-variable branching (the pre-pseudo-cost behaviour, kept for
    /// comparison runs).
    Sos1ThenFractional,
    /// Always branch on the most fractional integer variable.
    MostFractional,
}

/// Tunables for [`solve_with`] and every [`crate::SolverBackend`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveOptions {
    /// Stop after this many nodes and return the incumbent (as
    /// [`Status::Feasible`]) or [`MilpError::LimitReached`].
    pub max_nodes: usize,
    /// Branch variable selection rule.
    pub rule: BranchRule,
    /// Absolute optimality gap at which a node is pruned against the
    /// incumbent.
    pub gap: f64,
    /// Run [`crate::presolve`] on the root problem before the search
    /// (bound tightening, row elimination, coefficient reduction, early
    /// infeasibility). Per-node bound propagation also rides on this flag.
    pub presolve: bool,
    /// Restart each node's LP from its parent's basis with the dual
    /// simplex instead of solving from scratch. Answers are identical
    /// either way (the engine falls back to a fresh solve whenever a warm
    /// start cannot be certified); disabling this exists for regression
    /// testing and diagnosis.
    pub reuse_basis: bool,
    /// Seed the search with the exact continuous-voltage (YDS) relaxation
    /// bound when the model has the pure ladder-selection shape, letting
    /// the search stop as soon as the incumbent provably meets it.
    pub seed_continuous: bool,
    /// With `jobs >= 2`, the two children of the *root* branch-and-bound
    /// split are solved as independent subproblems on a
    /// [`dvs_runtime::Pool`], each under an equal share of the node budget.
    /// Merging keeps best-bound pruning deterministic: the depth-first
    /// child wins ties, exactly as in the sequential search (the answer can
    /// differ from sequential only inside the `gap` tolerance). `0`/`1`
    /// solve entirely sequentially.
    pub jobs: usize,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            max_nodes: 500_000,
            rule: BranchRule::default(),
            gap: 1e-6,
            presolve: true,
            reuse_basis: true,
            seed_continuous: true,
            jobs: 1,
        }
    }
}

/// Former name of [`SolveOptions`], kept for one release.
#[deprecated(note = "renamed to `SolveOptions` in the solver-backend API")]
pub type BranchConfig = SolveOptions;

/// Solves `model` to proven optimality with default settings.
///
/// # Errors
///
/// [`MilpError::Infeasible`], [`MilpError::Unbounded`], or resource errors;
/// see [`solve_with`].
pub fn solve(model: &Model) -> Result<Solution, MilpError> {
    solve_with(model, &SolveOptions::default())
}

/// Solves `model` under explicit branch-and-bound settings.
///
/// # Errors
///
/// * [`MilpError::Infeasible`] — no feasible assignment exists;
/// * [`MilpError::Unbounded`] — the LP relaxation is unbounded;
/// * [`MilpError::LimitReached`] — node budget exhausted with no incumbent;
/// * [`MilpError::SimplexStalled`] — numerical failure in the LP layer;
/// * validation errors from [`Model::validate`].
pub fn solve_with(model: &Model, config: &SolveOptions) -> Result<Solution, MilpError> {
    solve_seeded(model, config, None)
}

/// [`solve_with`] warm-started from a known feasible point `start`
/// (variable values indexed like the model's variables). The point seeds
/// the incumbent, so branch-and-bound prunes against its objective from
/// node one; if the start violates any constraint or integrality it is
/// silently ignored.
///
/// # Errors
///
/// Same as [`solve_with`].
pub fn solve_seeded(
    model: &Model,
    config: &SolveOptions,
    start: Option<&[f64]>,
) -> Result<Solution, MilpError> {
    let _span = dvs_obs::span!("milp.solve");
    let result = if config.jobs >= 2 {
        solve_root_parallel(model, config, start)
    } else {
        solve_seeded_impl(model, config, start)
    };
    if dvs_obs::enabled() {
        dvs_obs::counter("milp.solves", 1);
        if let Ok(sol) = &result {
            dvs_obs::counter("milp.bnb_nodes", sol.stats.nodes as u64);
            dvs_obs::counter("milp.bnb_nodes_pruned", sol.stats.nodes_pruned as u64);
            dvs_obs::counter("milp.incumbents", sol.stats.incumbents.len() as u64);
            dvs_obs::counter("milp.pivots", sol.stats.pivots as u64);
            dvs_obs::counter("milp.dual_pivots", sol.stats.dual_pivots as u64);
            dvs_obs::histogram("milp.bnb_nodes_per_solve", sol.stats.nodes as f64);
            dvs_obs::histogram("milp.simplex_pivots_per_solve", sol.stats.pivots as f64);
            if sol.stats.mip_gap.is_finite() {
                dvs_obs::histogram("milp.final_mip_gap", sol.stats.mip_gap);
            }
        }
    }
    result
}

/// Folds one LP solve's work counters into the running search statistics.
fn absorb_lp(stats: &mut SolveStats, sol: &LpSolution) {
    stats.lp_iterations += sol.iterations;
    stats.pivots += sol.pivots;
    stats.degenerate_pivots += sol.degenerate_pivots;
    stats.bound_flips += sol.bound_flips;
    stats.refactorizations += sol.refactorizations;
    stats.dual_pivots += sol.dual_pivots;
}

/// Appends an incumbent-improvement record (minimization-form objective).
fn record_incumbent(stats: &mut SolveStats, objective: f64, t0: Instant) {
    stats.incumbents.push(Incumbent {
        objective,
        node: stats.nodes,
        at_us: t0.elapsed().as_secs_f64() * 1e6,
    });
}

/// Relative optimality gap of incumbent `obj` against `best_bound`, both
/// in minimization form.
fn relative_gap(obj: f64, best_bound: f64) -> f64 {
    if best_bound.is_finite() {
        ((obj - best_bound) / obj.abs().max(1.0)).max(0.0)
    } else {
        f64::INFINITY
    }
}

/// Per-variable branching history: average objective degradation per unit
/// of fractionality, separately for the down (floor) and up (ceil)
/// directions.
struct PseudoCosts {
    dn_sum: Vec<f64>,
    dn_cnt: Vec<u32>,
    up_sum: Vec<f64>,
    up_cnt: Vec<u32>,
}

impl PseudoCosts {
    fn new(n: usize) -> Self {
        PseudoCosts {
            dn_sum: vec![0.0; n],
            dn_cnt: vec![0; n],
            up_sum: vec![0.0; n],
            up_cnt: vec![0; n],
        }
    }

    fn record(&mut self, j: usize, is_up: bool, gain: f64) {
        if is_up {
            self.up_sum[j] += gain;
            self.up_cnt[j] += 1;
        } else {
            self.dn_sum[j] += gain;
            self.dn_cnt[j] += 1;
        }
    }

    /// Reliability-1: a variable's estimate is trusted once both
    /// directions have been observed at least once.
    fn reliable(&self, j: usize) -> bool {
        self.dn_cnt[j] > 0 && self.up_cnt[j] > 0
    }

    fn score(&self, j: usize, f_dn: f64, f_up: f64) -> f64 {
        const EPS: f64 = 1e-6;
        let dn = self.dn_sum[j] / f64::from(self.dn_cnt[j].max(1));
        let up = self.up_sum[j] / f64::from(self.up_cnt[j].max(1));
        (dn * f_dn).max(EPS) * (up * f_up).max(EPS)
    }
}

/// Integer-aware bound tightening applied per node (one activity pass over
/// the `<=` rows plus integral rounding of the integer variables' bounds).
/// Returns the number of tightenings, or `None` on proven infeasibility.
fn propagate_node_bounds(
    le_rows: &[(Vec<(usize, f64)>, f64)],
    int_vars: &[usize],
    lb: &mut [f64],
    ub: &mut [f64],
) -> Option<usize> {
    const PTOL: f64 = 1e-7;
    let mut tightened = 0usize;
    let round_ints = |lb: &mut [f64], ub: &mut [f64], tightened: &mut usize| -> bool {
        for &j in int_vars {
            if lb[j].is_finite() {
                let r = (lb[j] - 1e-9).ceil();
                if r > lb[j] + 1e-9 {
                    lb[j] = r;
                    *tightened += 1;
                }
            }
            if ub[j].is_finite() {
                let r = (ub[j] + 1e-9).floor();
                if r < ub[j] - 1e-9 {
                    ub[j] = r;
                    *tightened += 1;
                }
            }
            if lb[j] > ub[j] + 1e-9 {
                return false;
            }
        }
        true
    };
    if !round_ints(lb, ub, &mut tightened) {
        return None;
    }
    for (terms, rhs) in le_rows {
        let mut min_act = 0.0f64;
        for &(j, a) in terms {
            min_act += if a > 0.0 { a * lb[j] } else { a * ub[j] };
        }
        if !min_act.is_finite() {
            continue;
        }
        if min_act > rhs + PTOL.max(1e-7 * rhs.abs()) {
            return None;
        }
        for &(j, a) in terms {
            let contrib = if a > 0.0 { a * lb[j] } else { a * ub[j] };
            let rest = min_act - contrib;
            if a > 0.0 {
                let new_ub = (rhs - rest) / a;
                if new_ub < ub[j] - PTOL.max(1e-7 * ub[j].abs()) {
                    ub[j] = new_ub;
                    tightened += 1;
                }
            } else {
                let new_lb = (rhs - rest) / a;
                if new_lb > lb[j] + PTOL.max(1e-7 * lb[j].abs()) {
                    lb[j] = new_lb;
                    tightened += 1;
                }
            }
            if lb[j] > ub[j] + PTOL {
                return None;
            }
        }
    }
    if !round_ints(lb, ub, &mut tightened) {
        return None;
    }
    Some(tightened)
}

/// Assignment-group (GUB) structure detected once at the root: rows of
/// the form `Σ_{j∈G} x_j = 1` over disjoint sets of binary variables —
/// exactly the per-edge mode-selection rows of the DVS formulation.
///
/// `rows` holds every `<=` row, plus the objective as a pseudo-row whose
/// right-hand side is the incumbent cutoff, split into ungrouped terms
/// and per-group member coefficients. That split makes activity bounds
/// group-aware: a group contributes the coefficient of its cheapest
/// still-available member (instead of zero), which both detects
/// infeasibility earlier and supports exact dominance fixing — a member
/// whose selection would push the cheapest completion past the row's
/// right-hand side can never be chosen in an improving solution.
struct Gub {
    /// Group membership (variable indices), disjoint by construction.
    groups: Vec<Vec<usize>>,
    rows: Vec<GubRow>,
}

struct GubRow {
    /// Terms over variables outside every group.
    nongroup: Vec<(usize, f64)>,
    /// Touched groups: the group's full membership with this row's
    /// coefficients (0.0 for members absent from the row).
    groups: Vec<Vec<(usize, f64)>>,
    rhs: f64,
    /// The objective pseudo-row: `rhs` is replaced by the incumbent
    /// cutoff at propagation time.
    is_objective: bool,
}

fn build_gub(lp: &LpProblem, mask: &[bool]) -> Gub {
    const GTOL: f64 = 1e-9;
    let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); lp.num_rows()];
    for (j, col) in lp.cols.iter().enumerate() {
        for &(r, a) in col {
            rows[r].push((j, a));
        }
    }
    let mut group_of = vec![usize::MAX; lp.num_vars];
    let mut groups: Vec<Vec<usize>> = Vec::new();
    'rows: for (r, terms) in rows.iter().enumerate() {
        if lp.row_kind[r] != RowKind::Eq || (lp.rhs[r] - 1.0).abs() > GTOL || terms.len() < 2 {
            continue;
        }
        for &(j, a) in terms {
            if (a - 1.0).abs() > GTOL
                || !mask[j]
                || lp.lb[j] < -GTOL
                || lp.ub[j] > 1.0 + GTOL
                || group_of[j] != usize::MAX
            {
                continue 'rows;
            }
        }
        for &(j, _) in terms {
            group_of[j] = groups.len();
        }
        groups.push(terms.iter().map(|&(j, _)| j).collect());
    }
    if groups.is_empty() {
        return Gub {
            groups,
            rows: Vec::new(),
        };
    }

    let mut coeff = vec![0.0f64; lp.num_vars];
    let mut build = |terms: &[(usize, f64)], rhs: f64, is_objective: bool| -> GubRow {
        let mut nongroup = Vec::new();
        let mut touched: Vec<usize> = Vec::new();
        for &(j, a) in terms {
            if group_of[j] == usize::MAX {
                nongroup.push((j, a));
            } else {
                touched.push(group_of[j]);
                coeff[j] = a;
            }
        }
        touched.sort_unstable();
        touched.dedup();
        let grouped = touched
            .iter()
            .map(|&g| groups[g].iter().map(|&j| (j, coeff[j])).collect())
            .collect();
        for &(j, _) in terms {
            coeff[j] = 0.0;
        }
        GubRow {
            nongroup,
            groups: grouped,
            rhs,
            is_objective,
        }
    };

    let obj_terms: Vec<(usize, f64)> = lp
        .obj
        .iter()
        .enumerate()
        .filter(|(_, c)| **c != 0.0)
        .map(|(j, &c)| (j, c))
        .collect();
    let mut out = vec![build(&obj_terms, f64::INFINITY, true)];
    for (r, terms) in rows.iter().enumerate() {
        if lp.row_kind[r] == RowKind::Le {
            out.push(build(terms, lp.rhs[r], false));
        }
    }
    Gub { groups, rows: out }
}

/// Group-aware bound tightening against the node bounds. `cutoff` is the
/// incumbent objective minus the gap (minus the objective offset), or
/// `+inf` while no incumbent exists. Returns the number of tightenings,
/// or `None` on proven infeasibility — meaning no *improving integral*
/// solution survives under these bounds (the node is pruned, which is
/// exactly how the search treats an LP bound at the cutoff).
fn propagate_gub(gub: &Gub, cutoff: f64, lb: &mut [f64], ub: &mut [f64]) -> Option<usize> {
    const PTOL: f64 = 1e-7;
    if gub.groups.is_empty() {
        return Some(0);
    }
    let mut tightened = 0usize;
    for row in &gub.rows {
        let rhs = if row.is_objective { cutoff } else { row.rhs };
        if !rhs.is_finite() {
            continue;
        }
        let mut min_act = 0.0f64;
        for &(j, a) in &row.nongroup {
            min_act += if a > 0.0 { a * lb[j] } else { a * ub[j] };
        }
        if !min_act.is_finite() {
            continue;
        }
        let mut gmins = Vec::with_capacity(row.groups.len());
        for members in &row.groups {
            let mut m = f64::INFINITY;
            for &(j, a) in members {
                if lb[j] >= 0.5 {
                    // Fixed to one: the group's contribution is exact.
                    m = a;
                    break;
                }
                if ub[j] >= 0.5 {
                    m = m.min(a);
                }
            }
            if m == f64::INFINITY {
                return None; // assignment row has no member left
            }
            gmins.push(m);
            min_act += m;
        }
        let tol = PTOL.max(1e-7 * rhs.abs());
        if min_act > rhs + tol {
            return None;
        }
        // Dominance fixing: choosing member j costs `a` where the bound
        // assumed the group's cheapest `m`; if the swap alone overshoots
        // the row, j cannot be the chosen member of its group.
        for (members, &m) in row.groups.iter().zip(&gmins) {
            for &(j, a) in members {
                if ub[j] >= 0.5 && lb[j] < 0.5 && min_act - m + a > rhs + tol {
                    ub[j] = 0.0;
                    tightened += 1;
                }
            }
        }
    }
    // Assignment-row consequences of the fixing above: a chosen member
    // zeroes its siblings, and a group down to one candidate must choose
    // it (bound conflicts surface downstream as lb > ub).
    for members in &gub.groups {
        if let Some(&one) = members.iter().find(|&&j| lb[j] >= 0.5) {
            for &j in members {
                if j != one && ub[j] >= 0.5 {
                    ub[j] = 0.0;
                    tightened += 1;
                }
            }
            continue;
        }
        let mut avail = members.iter().filter(|&&j| ub[j] >= 0.5);
        match (avail.next(), avail.next()) {
            (None, _) => return None,
            (Some(&j), None) if lb[j] < 0.5 => {
                lb[j] = 1.0;
                tightened += 1;
            }
            _ => {}
        }
    }
    Some(tightened)
}

fn int_mask(model: &Model) -> (Vec<usize>, Vec<bool>) {
    let int_vars: Vec<usize> = model
        .vars
        .iter()
        .enumerate()
        .filter(|(_, v)| v.kind == VarKind::Integer)
        .map(|(i, _)| i)
        .collect();
    let mut mask = vec![false; model.num_vars()];
    for &j in &int_vars {
        mask[j] = true;
    }
    (int_vars, mask)
}

fn solve_seeded_impl(
    model: &Model,
    config: &SolveOptions,
    start: Option<&[f64]>,
) -> Result<Solution, MilpError> {
    let t0 = Instant::now();
    model.validate()?;
    let base = lower_to_lp(model);
    let (int_vars, mask) = int_mask(model);
    let flip = match model.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };

    let mut stats = SolveStats {
        best_bound: f64::INFINITY,
        ..SolveStats::default()
    };
    let mut incumbent: Option<(f64, Vec<f64>)> = None;
    if let Some(x0) = start {
        if x0.len() == model.num_vars() && start_is_feasible(model, &base, &int_vars, x0) {
            let obj = recompute_objective(&base, x0);
            record_incumbent(&mut stats, obj, t0);
            incumbent = Some((obj, x0.to_vec()));
        }
    }

    // Exact continuous-voltage relaxation bound (minimization form) when
    // the model has the pure ladder shape; -inf otherwise. Lets the search
    // terminate the moment the incumbent provably meets the bound.
    let global_lb = if config.seed_continuous && !int_vars.is_empty() {
        crate::backend::continuous_lower_bound(model).unwrap_or(f64::NEG_INFINITY)
    } else {
        f64::NEG_INFINITY
    };

    // Root presolve, once: node bounds never remove rows, so the engine's
    // matrix stays valid for the whole search.
    let mut root_infeasible = false;
    let root_lp = if config.presolve {
        match presolve_int(&base, &mask) {
            Presolved::Reduced {
                problem,
                rows_removed,
                bounds_tightened,
            } => {
                stats.presolve_rows_removed += rows_removed;
                stats.presolve_bounds_tightened += bounds_tightened;
                problem
            }
            Presolved::Infeasible => {
                root_infeasible = true;
                base.clone()
            }
        }
    } else {
        base.clone()
    };

    // Each node records bound overrides for a subset of variables, the
    // parent's LP objective (for pruning before its own LP is paid for),
    // the parent's simplex basis (shared by both children), and which
    // branch created it (for pseudo-cost updates).
    struct Node {
        bounds: Vec<(usize, f64, f64)>,
        parent_bound: f64,
        basis: Option<Rc<Basis>>,
        branch: Option<(usize, bool, f64, f64)>, // (var, is_up, parent_obj, frac_dist)
    }
    let mut stack = if root_infeasible {
        Vec::new()
    } else {
        vec![Node {
            bounds: Vec::new(),
            parent_bound: f64::NEG_INFINITY,
            basis: None,
            branch: None,
        }]
    };
    // A seeded incumbent that already meets the continuous bound ends the
    // search before the first node.
    if let Some((inc, _)) = &incumbent {
        if *inc <= global_lb + config.gap {
            stack.clear();
        }
    }

    let mut engine = SimplexEngine::new(&root_lp);
    let mut pc = PseudoCosts::new(model.num_vars());
    let le_rows: Vec<(Vec<(usize, f64)>, f64)> = {
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); root_lp.num_rows()];
        for (j, col) in root_lp.cols.iter().enumerate() {
            for &(r, a) in col {
                rows[r].push((j, a));
            }
        }
        rows.into_iter()
            .zip(root_lp.row_kind.iter().zip(&root_lp.rhs))
            .filter(|(_, (k, _))| **k == RowKind::Le)
            .map(|(terms, (_, &rhs))| (terms, rhs))
            .collect()
    };
    let gub = build_gub(&root_lp, &mask);
    let mut root_bound: Option<f64> = None;

    while let Some(node) = stack.pop() {
        if stats.nodes >= config.max_nodes {
            return match incumbent {
                Some((obj, values)) => {
                    stats.mip_gap = relative_gap(obj, stats.best_bound);
                    Ok(Solution {
                        status: Status::Feasible,
                        objective: flip * obj,
                        values,
                        stats,
                    })
                }
                None => Err(MilpError::LimitReached { incumbent: None }),
            };
        }
        // Prune on the parent's bound before paying for an LP solve.
        if let Some((inc, _)) = &incumbent {
            if node.parent_bound >= inc - config.gap {
                stats.nodes_pruned += 1;
                continue;
            }
        }
        stats.nodes += 1;

        // Node bounds = root bounds ∩ overrides, then one propagation pass.
        let mut nlb = root_lp.lb.clone();
        let mut nub = root_lp.ub.clone();
        for &(j, lb, ub) in &node.bounds {
            nlb[j] = nlb[j].max(lb);
            nub[j] = nub[j].min(ub);
        }
        if config.presolve {
            // Group-aware pass first: with an incumbent, its objective
            // cutoff participates as a pseudo-row, so dominance fixing
            // can delete modes no improving solution selects.
            let cutoff = incumbent.as_ref().map_or(f64::INFINITY, |(inc, _)| {
                inc - config.gap - root_lp.obj_offset
            });
            // Iterate to a fixpoint (a fixed mode tightens row activity,
            // which fixes further modes); a handful of rounds suffices.
            let mut pruned = false;
            for _ in 0..4 {
                let mut round = 0usize;
                match propagate_gub(&gub, cutoff, &mut nlb, &mut nub) {
                    Some(tightened) => round += tightened,
                    None => {
                        pruned = true;
                        break;
                    }
                }
                match propagate_node_bounds(&le_rows, &int_vars, &mut nlb, &mut nub) {
                    Some(tightened) => round += tightened,
                    None => {
                        pruned = true;
                        break;
                    }
                }
                stats.presolve_bounds_tightened += round;
                if round == 0 {
                    break;
                }
            }
            if pruned {
                stats.nodes_pruned += 1;
                continue;
            }
        }
        engine.reset_bounds();
        for j in 0..root_lp.num_vars {
            engine.set_bound(j, nlb[j], nub[j]);
        }

        let sol = match (&node.basis, config.reuse_basis) {
            (Some(warm), true) => match engine.solve_warm(warm) {
                Some(s) => s,
                None => engine.solve_fresh()?,
            },
            _ => engine.solve_fresh()?,
        };
        absorb_lp(&mut stats, &sol);
        match sol.status {
            LpStatus::Infeasible => continue,
            LpStatus::Unbounded => {
                // Only the root relaxation can prove the MILP unbounded.
                if node.bounds.is_empty() {
                    return Err(MilpError::Unbounded);
                }
                continue;
            }
            LpStatus::Optimal => {}
        }
        if root_bound.is_none() {
            root_bound = Some(sol.objective);
            stats.best_bound = sol.objective.max(global_lb);
        }
        if let Some((j, is_up, pobj, fdist)) = node.branch {
            let gain = ((sol.objective - pobj) / fdist.max(1e-9)).max(0.0);
            pc.record(j, is_up, gain);
        }
        if let Some((inc, _)) = &incumbent {
            if sol.objective >= inc - config.gap {
                stats.nodes_pruned += 1;
                continue;
            }
        }

        // Integral?
        let frac = |v: f64| (v - v.round()).abs();
        let violated: Vec<usize> = int_vars
            .iter()
            .copied()
            .filter(|&j| frac(sol.x[j]) > INT_TOL)
            .collect();
        if violated.is_empty() {
            let mut x = sol.x.clone();
            for &j in &int_vars {
                x[j] = x[j].round();
            }
            let obj = recompute_objective(&base, &x);
            if incumbent
                .as_ref()
                .is_none_or(|(inc, _)| obj < inc - OBJ_TOL)
            {
                record_incumbent(&mut stats, obj, t0);
                incumbent = Some((obj, x));
                // Incumbent meets the exact continuous bound: optimal.
                if obj <= global_lb + config.gap {
                    break;
                }
            }
            continue;
        }

        // Branch. Both children share the parent's optimal basis.
        let shared = Rc::new(engine.basis());
        let children = plan_children(model, config.rule, &pc, &sol.x, &violated, &node.bounds);
        for (bounds, info) in children {
            stack.push(Node {
                bounds,
                parent_bound: sol.objective,
                basis: Some(Rc::clone(&shared)),
                branch: info.map(|(j, is_up, fdist)| (j, is_up, sol.objective, fdist)),
            });
        }
    }

    match incumbent {
        Some((obj, values)) => {
            stats.best_bound = obj;
            stats.mip_gap = 0.0;
            Ok(Solution {
                status: Status::Optimal,
                objective: flip * obj,
                values,
                stats,
            })
        }
        None => Err(MilpError::Infeasible),
    }
}

/// The `jobs >= 2` path: solve the root relaxation, branch once, then solve
/// the two child subproblems to completion as *independent models* (child
/// bounds folded into variable bounds) on a [`dvs_runtime::Pool`].
///
/// Determinism: the sequential search explores the last-pushed (most
/// promising) child's subtree first and replaces its incumbent only on a
/// strict `OBJ_TOL` improvement. The merge below applies the same rule in
/// the same order — seeded incumbent, then the depth-first child, then the
/// other child — so ties resolve identically regardless of which worker
/// finished first. The only divergence from sequential is that neither
/// child prunes against the *other's* incumbent, which can surface a
/// solution that differs inside the `gap` tolerance.
fn solve_root_parallel(
    model: &Model,
    config: &SolveOptions,
    start: Option<&[f64]>,
) -> Result<Solution, MilpError> {
    let t0 = Instant::now();
    model.validate()?;
    let base = lower_to_lp(model);
    let (int_vars, mask) = int_mask(model);
    let flip = match model.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };

    let mut stats = SolveStats {
        best_bound: f64::INFINITY,
        ..SolveStats::default()
    };
    let mut incumbent: Option<(f64, Vec<f64>)> = None;
    if let Some(x0) = start {
        if x0.len() == model.num_vars() && start_is_feasible(model, &base, &int_vars, x0) {
            let obj = recompute_objective(&base, x0);
            record_incumbent(&mut stats, obj, t0);
            incumbent = Some((obj, x0.to_vec()));
        }
    }
    let done = |status: Status, obj: f64, values: Vec<f64>, stats: SolveStats| {
        Ok(Solution {
            status,
            objective: flip * obj,
            values,
            stats,
        })
    };
    if config.max_nodes == 0 {
        return match incumbent {
            Some((obj, values)) => {
                stats.mip_gap = relative_gap(obj, stats.best_bound);
                done(Status::Feasible, obj, values, stats)
            }
            None => Err(MilpError::LimitReached { incumbent: None }),
        };
    }

    // Root relaxation (node 1).
    stats.nodes = 1;
    let mut lp = base.clone();
    let mut root_infeasible = false;
    if config.presolve {
        match presolve_int(&lp, &mask) {
            Presolved::Reduced {
                problem,
                rows_removed,
                bounds_tightened,
            } => {
                stats.presolve_rows_removed += rows_removed;
                stats.presolve_bounds_tightened += bounds_tightened;
                lp = problem;
            }
            Presolved::Infeasible => root_infeasible = true,
        }
    }
    let sol = if root_infeasible {
        None
    } else {
        let s = solve_lp(&lp)?;
        absorb_lp(&mut stats, &s);
        match s.status {
            LpStatus::Infeasible => None,
            LpStatus::Unbounded => return Err(MilpError::Unbounded),
            LpStatus::Optimal => Some(s),
        }
    };
    let Some(sol) = sol else {
        // Root infeasible: only a seeded incumbent can save the answer
        // (matching the sequential search, which would drain its stack).
        return match incumbent {
            Some((obj, values)) => {
                stats.best_bound = obj;
                done(Status::Optimal, obj, values, stats)
            }
            None => Err(MilpError::Infeasible),
        };
    };
    stats.best_bound = sol.objective;

    let frac = |v: f64| (v - v.round()).abs();
    let violated: Vec<usize> = int_vars
        .iter()
        .copied()
        .filter(|&j| frac(sol.x[j]) > INT_TOL)
        .collect();
    let root_pruned = incumbent
        .as_ref()
        .is_some_and(|(inc, _)| sol.objective >= inc - config.gap);
    if violated.is_empty() || root_pruned {
        if !root_pruned {
            let mut x = sol.x.clone();
            for &j in &int_vars {
                x[j] = x[j].round();
            }
            let obj = recompute_objective(&base, &x);
            if incumbent
                .as_ref()
                .is_none_or(|(inc, _)| obj < inc - OBJ_TOL)
            {
                record_incumbent(&mut stats, obj, t0);
                incumbent = Some((obj, x));
            }
        }
        return match incumbent {
            Some((obj, values)) => {
                stats.best_bound = obj;
                stats.mip_gap = 0.0;
                done(Status::Optimal, obj, values, stats)
            }
            None => Err(MilpError::Infeasible),
        };
    }

    // One root split; each child becomes a standalone model with the branch
    // bounds folded into its variable bounds, solved sequentially under an
    // equal share of the remaining node budget.
    let children = branch_children(model, config.rule, &sol.x, &violated, &[]);
    let child_budget = config.max_nodes.saturating_sub(1) / children.len().max(1);
    let child_config = SolveOptions {
        jobs: 1,
        max_nodes: child_budget,
        ..*config
    };
    let domain = dvs_obs::current_domain();
    let results =
        dvs_runtime::Pool::new(config.jobs.min(children.len())).map(children, |_, bounds| {
            let _dg = dvs_obs::enter_domain(domain);
            let mut child = model.clone();
            for (j, lb, ub) in bounds {
                child.vars[j].lb = child.vars[j].lb.max(lb);
                child.vars[j].ub = child.vars[j].ub.min(ub);
            }
            solve_seeded_impl(&child, &child_config, start)
        });

    // Merge in the sequential exploration order: the most promising child
    // (pushed last, popped first) before its sibling. Child trajectories
    // re-record the shared seed at their own node 0 and number nodes from
    // their own root, so the merge renumbers them into the global node
    // order and keeps only strict improvements over the running best —
    // the merged trajectory is monotone and ends at the final incumbent,
    // exactly as a sequential run's would.
    let mut hit_limit = false;
    let mut node_offset = stats.nodes;
    let mut traj_best: Option<f64> = incumbent.as_ref().map(|(obj, _)| *obj);
    for r in results.iter().rev() {
        match r {
            Ok(s) => {
                if s.status == Status::Feasible {
                    hit_limit = true;
                }
                let obj = flip * s.objective;
                stats.absorb(&s.stats);
                for inc in &s.stats.incumbents {
                    if traj_best.is_none_or(|best| inc.objective < best - OBJ_TOL) {
                        stats.incumbents.push(Incumbent {
                            objective: inc.objective,
                            node: node_offset + inc.node,
                            at_us: inc.at_us,
                        });
                        traj_best = Some(inc.objective);
                    }
                }
                node_offset += s.stats.nodes;
                if incumbent
                    .as_ref()
                    .is_none_or(|(inc, _)| obj < inc - OBJ_TOL)
                {
                    incumbent = Some((obj, s.values.clone()));
                }
            }
            Err(MilpError::Infeasible) => {}
            // The sequential search only raises `LimitReached` when it has
            // no incumbent of its own; any feasible point it found comes
            // back as a `Status::Feasible` solution handled above.
            Err(MilpError::LimitReached { .. }) => hit_limit = true,
            Err(e) => return Err(e.clone()),
        }
    }
    match incumbent {
        Some((obj, values)) => {
            let status = if hit_limit {
                stats.mip_gap = relative_gap(obj, stats.best_bound);
                Status::Feasible
            } else {
                stats.best_bound = obj;
                stats.mip_gap = 0.0;
                Status::Optimal
            };
            done(status, obj, values, stats)
        }
        None if hit_limit => Err(MilpError::LimitReached { incumbent: None }),
        None => Err(MilpError::Infeasible),
    }
}

/// Bound sets for the children of a fractional LP solution, without
/// pseudo-cost history (used by the parallel root split, where no history
/// exists yet). Children are in push order: the most promising last.
fn branch_children(
    model: &Model,
    rule: BranchRule,
    x: &[f64],
    violated: &[usize],
    parent_bounds: &[(usize, f64, f64)],
) -> Vec<Vec<(usize, f64, f64)>> {
    let pc = PseudoCosts::new(model.num_vars());
    plan_children(model, rule, &pc, x, violated, parent_bounds)
        .into_iter()
        .map(|(bounds, _)| bounds)
        .collect()
}

/// Produces child bound sets (plus per-child branch metadata for
/// pseudo-cost updates: `(var, is_up, frac_dist)`, `None` for SOS1 splits)
/// for a fractional LP solution. Children are returned in the order they
/// should be *pushed* (the most promising child last, so depth-first
/// search explores it first).
#[allow(clippy::type_complexity)]
fn plan_children(
    model: &Model,
    rule: BranchRule,
    pc: &PseudoCosts,
    x: &[f64],
    violated: &[usize],
    parent_bounds: &[(usize, f64, f64)],
) -> Vec<(Vec<(usize, f64, f64)>, Option<(usize, bool, f64)>)> {
    if rule == BranchRule::Sos1ThenFractional || rule == BranchRule::Sos1ThenPseudoCost {
        // Find an SOS1 group with at least two "active" fractional members.
        let mut best_group: Option<(usize, f64)> = None;
        for (gi, group) in model.sos1_groups.iter().enumerate() {
            let fractional: Vec<f64> = group
                .iter()
                .map(|v| x[v.index()])
                .filter(|&v| v > INT_TOL && v < 1.0 - INT_TOL)
                .collect();
            if fractional.len() >= 2 {
                // Prefer the most "balanced" group (entropy proxy: product
                // of top two values).
                let mut vals = fractional.clone();
                vals.sort_by(|a, b| b.partial_cmp(a).unwrap());
                let score = vals[0] * vals[1];
                if best_group.is_none_or(|(_, s)| score > s) {
                    best_group = Some((gi, score));
                }
            }
        }
        if let Some((gi, _)) = best_group {
            let group = &model.sos1_groups[gi];
            // Split members into two halves around the weighted median of
            // their LP values.
            let mut members: Vec<(usize, f64)> =
                group.iter().map(|v| (v.index(), x[v.index()])).collect();
            members.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            let total: f64 = members.iter().map(|(_, v)| v).sum();
            let mut acc = 0.0;
            let mut cut = 0;
            for (i, (_, v)) in members.iter().enumerate() {
                acc += v;
                if acc >= total * 0.5 {
                    cut = i + 1;
                    break;
                }
            }
            cut = cut.clamp(1, members.len() - 1);
            let (half_a, half_b) = members.split_at(cut);
            // Child A: everything in half_b forced to 0; child B: half_a to 0.
            let zero = |half: &[(usize, f64)]| {
                let mut b = parent_bounds.to_vec();
                for &(j, _) in half {
                    b.push((j, 0.0, 0.0));
                }
                b
            };
            // half_a holds more LP mass; explore the child keeping it first.
            return vec![(zero(half_a), None), (zero(half_b), None)];
        }
    }

    // Single-variable branching.
    let j = match rule {
        BranchRule::Sos1ThenPseudoCost => select_pseudocost_var(pc, x, violated),
        BranchRule::Sos1ThenFractional | BranchRule::MostFractional => *violated
            .iter()
            .max_by(|&&a, &&b| {
                let fa = (x[a] - x[a].round()).abs();
                let fb = (x[b] - x[b].round()).abs();
                fa.partial_cmp(&fb).unwrap()
            })
            .expect("violated is non-empty"),
    };
    let floor = x[j].floor();
    let f_dn = x[j] - floor;
    let f_up = 1.0 - f_dn;
    let mut down = parent_bounds.to_vec();
    down.push((j, f64::NEG_INFINITY, floor));
    let mut up = parent_bounds.to_vec();
    up.push((j, floor + 1.0, f64::INFINITY));
    let down = (down, Some((j, false, f_dn)));
    let up = (up, Some((j, true, f_up)));
    // Explore the side nearer the LP value first.
    if f_dn > 0.5 {
        vec![down, up]
    } else {
        vec![up, down]
    }
}

/// Pseudo-cost variable selection with reliability-1 initialization:
/// while any fractional variable lacks history in either direction, pick
/// the most fractional of those; once all are reliable, maximize the
/// product of the per-direction expected degradations. Ties break to the
/// smallest variable index for determinism.
fn select_pseudocost_var(pc: &PseudoCosts, x: &[f64], violated: &[usize]) -> usize {
    let mut best: Option<(usize, f64)> = None;
    for &j in violated {
        if !pc.reliable(j) {
            let f = (x[j] - x[j].round()).abs();
            if best.is_none_or(|(_, bf)| f > bf + 1e-12) {
                best = Some((j, f));
            }
        }
    }
    if let Some((j, _)) = best {
        return j;
    }
    let mut best: Option<(usize, f64)> = None;
    for &j in violated {
        let f_dn = x[j] - x[j].floor();
        let score = pc.score(j, f_dn, 1.0 - f_dn);
        if best.is_none_or(|(_, bs)| score > bs + 1e-15) {
            best = Some((j, score));
        }
    }
    best.expect("violated is non-empty").0
}

/// Converts a [`Model`] to minimization computational form.
pub(crate) fn lower_to_lp(model: &Model) -> LpProblem {
    let n = model.num_vars();
    let mut p = LpProblem::new(n);
    let flip = match model.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    for (v, c) in model.objective().terms() {
        p.obj[v.index()] = flip * c;
    }
    p.obj_offset = flip * model.objective().constant();
    for (j, def) in model.vars.iter().enumerate() {
        p.lb[j] = def.lb;
        p.ub[j] = def.ub;
    }
    for c in &model.constraints {
        let rhs = c.rhs - c.expr.constant();
        let terms: Vec<(usize, f64)> = c.expr.terms().map(|(v, a)| (v.index(), a)).collect();
        match c.cmp {
            Cmp::Le => p.add_row(&terms, RowKind::Le, rhs),
            Cmp::Eq => p.add_row(&terms, RowKind::Eq, rhs),
            Cmp::Ge => {
                let neg: Vec<(usize, f64)> = terms.iter().map(|&(j, a)| (j, -a)).collect();
                p.add_row(&neg, RowKind::Le, -rhs);
            }
        }
    }
    p
}

/// Checks bounds, integrality and every row of the computational-form
/// problem at `x`.
fn start_is_feasible(model: &Model, p: &LpProblem, int_vars: &[usize], x: &[f64]) -> bool {
    const FEAS_TOL: f64 = 1e-6;
    for (j, &xj) in x.iter().enumerate().take(p.num_vars) {
        if xj < p.lb[j] - FEAS_TOL || xj > p.ub[j] + FEAS_TOL {
            return false;
        }
    }
    for &j in int_vars {
        if (x[j] - x[j].round()).abs() > FEAS_TOL {
            return false;
        }
    }
    let _ = model;
    let mut activity = vec![0.0; p.num_rows()];
    for (j, col) in p.cols.iter().enumerate() {
        for &(r, a) in col {
            activity[r] += a * x[j];
        }
    }
    for (r, &act) in activity.iter().enumerate().take(p.num_rows()) {
        let scale = p.rhs[r].abs().max(1.0);
        match p.row_kind[r] {
            crate::simplex::RowKind::Le => {
                if act > p.rhs[r] + FEAS_TOL * scale {
                    return false;
                }
            }
            crate::simplex::RowKind::Eq => {
                if (act - p.rhs[r]).abs() > FEAS_TOL * scale {
                    return false;
                }
            }
        }
    }
    true
}

pub(crate) fn recompute_objective(p: &LpProblem, x: &[f64]) -> f64 {
    p.obj_offset + p.obj.iter().zip(x).map(|(c, v)| c * v).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinExpr, Model, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn pure_lp_passthrough() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", 0.0, 10.0);
        let y = m.num_var("y", 0.0, 10.0);
        m.set_objective(3.0 * x + 2.0 * y);
        m.add_le(x + y, 4.0);
        m.add_le(x + 3.0 * y, 6.0);
        let s = solve(&m).unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.objective, 12.0); // x=4, y=0
    }

    #[test]
    fn knapsack() {
        // Classic 0/1 knapsack: values [60,100,120], weights [10,20,30], cap 50.
        let mut m = Model::new(Sense::Maximize);
        let items: Vec<_> = (0..3).map(|i| m.bool_var(format!("i{i}"))).collect();
        m.set_objective(60.0 * items[0] + 100.0 * items[1] + 120.0 * items[2]);
        m.add_le(10.0 * items[0] + 20.0 * items[1] + 30.0 * items[2], 50.0);
        let s = solve(&m).unwrap();
        assert_close(s.objective, 220.0); // items 1 and 2
        assert_eq!(s.int_value(items[0]), 0);
        assert_eq!(s.int_value(items[1]), 1);
        assert_eq!(s.int_value(items[2]), 1);
    }

    #[test]
    fn integer_rounding_matters() {
        // max x + y s.t. 2x + 2y <= 5, integers -> LP gives 2.5, MILP 2.
        let mut m = Model::new(Sense::Maximize);
        let x = m.int_var("x", 0.0, 10.0);
        let y = m.int_var("y", 0.0, 10.0);
        m.set_objective(x + y);
        m.add_le(2.0 * x + 2.0 * y, 5.0);
        let s = solve(&m).unwrap();
        assert_close(s.objective, 2.0);
    }

    #[test]
    fn infeasible_milp() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.bool_var("x");
        m.set_objective(LinExpr::from(x));
        m.add_ge(LinExpr::from(x), 2.0);
        assert!(matches!(solve(&m), Err(MilpError::Infeasible)));
    }

    #[test]
    fn unbounded_milp() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", 0.0, f64::INFINITY);
        m.set_objective(LinExpr::from(x));
        assert!(matches!(solve(&m), Err(MilpError::Unbounded)));
    }

    #[test]
    fn assignment_problem_with_sos1() {
        // 3 workers x 3 tasks, minimize cost; optimal = 5 (1+2+2? compute).
        let cost = [[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]];
        let mut m = Model::new(Sense::Minimize);
        let mut vars = vec![vec![]; 3];
        for (w, row) in vars.iter_mut().enumerate() {
            for t in 0..3 {
                row.push(m.bool_var(format!("w{w}t{t}")));
            }
        }
        let mut obj = LinExpr::zero();
        for (w, row) in vars.iter().enumerate() {
            for (t, &v) in row.iter().enumerate() {
                obj += cost[w][t] * v;
            }
        }
        m.set_objective(obj);
        for row in &vars {
            let e = row[0] + row[1] + row[2];
            m.add_eq(e, 1.0);
            m.add_sos1(row.clone());
        }
        for ((&a, &b), &c) in vars[0].iter().zip(&vars[1]).zip(&vars[2]) {
            m.add_eq(a + b + c, 1.0);
        }
        let s = solve(&m).unwrap();
        // Optimal assignment: w0->t1 (1), w1->t0 (2), w2->t2 (2) = 5.
        assert_close(s.objective, 5.0);
        assert_eq!(s.int_value(vars[0][1]), 1);
        assert_eq!(s.int_value(vars[1][0]), 1);
        assert_eq!(s.int_value(vars[2][2]), 1);
    }

    #[test]
    fn equality_constrained_binaries() {
        // Pick exactly 2 of 4 items maximizing value.
        let vals = [3.0, 7.0, 1.0, 5.0];
        let mut m = Model::new(Sense::Maximize);
        let xs: Vec<_> = (0..4).map(|i| m.bool_var(format!("x{i}"))).collect();
        let mut obj = LinExpr::zero();
        let mut sum = LinExpr::zero();
        for (i, &x) in xs.iter().enumerate() {
            obj += vals[i] * x;
            sum += LinExpr::from(x);
        }
        m.set_objective(obj);
        m.add_eq(sum, 2.0);
        let s = solve(&m).unwrap();
        assert_close(s.objective, 12.0); // items 1 and 3
    }

    #[test]
    fn negative_objective_and_maximize_flip() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.int_var("x", -3.0, 3.0);
        m.set_objective(LinExpr::from(x) * -2.0 + 1.0);
        let s = solve(&m).unwrap();
        assert_close(s.objective, -5.0); // x = 3
        assert_eq!(s.int_value(x), 3);
    }

    #[test]
    fn node_limit_reports_incumbent_or_error() {
        let mut m = Model::new(Sense::Maximize);
        // A 12-var knapsack that needs some branching.
        let xs: Vec<_> = (0..12).map(|i| m.bool_var(format!("x{i}"))).collect();
        let mut obj = LinExpr::zero();
        let mut w = LinExpr::zero();
        for (i, &x) in xs.iter().enumerate() {
            obj += ((i % 5) as f64 + 1.5) * x;
            w += ((i % 7) as f64 + 2.0) * x;
        }
        m.set_objective(obj);
        m.add_le(w, 11.0);
        let cfg = SolveOptions {
            max_nodes: 1,
            ..SolveOptions::default()
        };
        match solve_with(&m, &cfg) {
            Ok(s) => assert_eq!(s.status, Status::Feasible),
            Err(MilpError::LimitReached { .. }) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn mixed_integer_continuous() {
        // min 3x + 2y, x integer in [0,10], y continuous,
        // s.t. x + y >= 4.3, y <= 2.1  -> x = ceil(2.2) ... optimal x=3, y=1.3.
        let mut m = Model::new(Sense::Minimize);
        let x = m.int_var("x", 0.0, 10.0);
        let y = m.num_var("y", 0.0, 2.1);
        m.set_objective(3.0 * x + 2.0 * y);
        m.add_ge(x + y, 4.3);
        let s = solve(&m).unwrap();
        // Candidates: x=3,y=1.3 -> 11.6; x=4,y=0.3 -> 12.6; x=3 wins.
        assert_close(s.objective, 11.6);
        assert_eq!(s.int_value(x), 3);
        assert_close(s.value(y), 1.3);
    }

    #[test]
    fn warm_start_is_used_and_never_worsens_the_answer() {
        // Knapsack where greedy (items 0..) gives a decent start.
        let mut m = Model::new(Sense::Maximize);
        let xs: Vec<_> = (0..10).map(|i| m.bool_var(format!("x{i}"))).collect();
        let mut obj = LinExpr::zero();
        let mut w = LinExpr::zero();
        for (i, &x) in xs.iter().enumerate() {
            obj += ((i % 4) as f64 + 1.0) * x;
            w += ((i % 5) as f64 + 1.5) * x;
        }
        m.set_objective(obj);
        m.add_le(w, 9.0);
        let cold = solve_with(&m, &SolveOptions::default()).unwrap();
        // A trivially feasible start: everything zero.
        let start = vec![0.0; 10];
        let warm = solve_seeded(&m, &SolveOptions::default(), Some(&start)).unwrap();
        assert!((cold.objective - warm.objective).abs() < 1e-6);
        // An infeasible start must be ignored, not believed.
        let bogus = vec![1.0; 10];
        let still = solve_seeded(&m, &SolveOptions::default(), Some(&bogus)).unwrap();
        assert!((cold.objective - still.objective).abs() < 1e-6);
    }

    #[test]
    fn warm_start_survives_node_limit() {
        // With a 0-node budget, the seeded incumbent is returned as the
        // feasible answer instead of erroring.
        let mut m = Model::new(Sense::Maximize);
        let xs: Vec<_> = (0..8).map(|i| m.bool_var(format!("x{i}"))).collect();
        let mut obj = LinExpr::zero();
        let mut w = LinExpr::zero();
        for (i, &x) in xs.iter().enumerate() {
            obj += (i as f64 + 1.0) * x;
            w += 2.0 * x;
        }
        m.set_objective(obj);
        m.add_le(w, 7.0);
        let mut start = vec![0.0; 8];
        start[7] = 1.0; // weight 2 <= 7, objective 8
        let cfg = SolveOptions {
            max_nodes: 0,
            ..SolveOptions::default()
        };
        let sol = solve_seeded(&m, &cfg, Some(&start)).unwrap();
        assert_eq!(sol.status, Status::Feasible);
        assert!((sol.objective - 8.0).abs() < 1e-9);
    }

    /// A knapsack family used to compare the sequential and parallel
    /// searches over several instances.
    fn knapsack_instance(seed: u64, n: usize) -> Model {
        let mut m = Model::new(Sense::Maximize);
        let xs: Vec<_> = (0..n).map(|i| m.bool_var(format!("x{i}"))).collect();
        let mut obj = LinExpr::zero();
        let mut w = LinExpr::zero();
        let mut state = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            ((state >> 33) % 97) as f64
        };
        let mut cap = 0.0;
        for &x in &xs {
            obj += (next() + 1.0) * x;
            let wt = next() + 1.0;
            w += wt * x;
            cap += wt;
        }
        m.set_objective(obj);
        m.add_le(w, cap * 0.4);
        m
    }

    #[test]
    fn parallel_root_split_matches_sequential_objective() {
        for seed in 0..6u64 {
            let m = knapsack_instance(seed, 14);
            let seq = solve(&m).unwrap();
            let par = solve_with(
                &m,
                &SolveOptions {
                    jobs: 2,
                    ..SolveOptions::default()
                },
            )
            .unwrap();
            assert_eq!(par.status, Status::Optimal, "seed {seed}");
            assert!(
                (seq.objective - par.objective).abs() < 1e-6,
                "seed {seed}: sequential {} vs parallel {}",
                seq.objective,
                par.objective
            );
            // Deterministic merge: the chosen assignment must be feasible
            // and repeatable run-to-run.
            let again = solve_with(
                &m,
                &SolveOptions {
                    jobs: 2,
                    ..SolveOptions::default()
                },
            )
            .unwrap();
            assert_eq!(par.values, again.values, "seed {seed}: unstable values");
        }
    }

    #[test]
    fn parallel_split_on_sos1_model() {
        // The DVS shape: SOS1 mode groups. Root split is a group split.
        let cost = [[4.0, 1.0, 3.0], [2.0, 0.5, 5.0], [3.0, 2.0, 2.0]];
        let mut m = Model::new(Sense::Minimize);
        let mut vars = vec![vec![]; 3];
        for (w, row) in vars.iter_mut().enumerate() {
            for t in 0..3 {
                row.push(m.bool_var(format!("w{w}t{t}")));
            }
        }
        let mut obj = LinExpr::zero();
        for (w, row) in vars.iter().enumerate() {
            for (t, &v) in row.iter().enumerate() {
                obj += cost[w][t] * v;
            }
        }
        m.set_objective(obj);
        for row in &vars {
            m.add_eq(row[0] + row[1] + row[2], 1.0);
            m.add_sos1(row.clone());
        }
        for ((&a, &b), &c) in vars[0].iter().zip(&vars[1]).zip(&vars[2]) {
            m.add_eq(a + b + c, 1.0);
        }
        let seq = solve(&m).unwrap();
        let par = solve_with(
            &m,
            &SolveOptions {
                jobs: 4,
                ..SolveOptions::default()
            },
        )
        .unwrap();
        assert!((seq.objective - par.objective).abs() < 1e-6);
        assert_eq!(seq.values, par.values);
    }

    #[test]
    fn parallel_infeasible_and_trivial_cases() {
        let cfg = SolveOptions {
            jobs: 2,
            ..SolveOptions::default()
        };
        // Infeasible.
        let mut m = Model::new(Sense::Minimize);
        let x = m.bool_var("x");
        m.set_objective(LinExpr::from(x));
        m.add_ge(LinExpr::from(x), 2.0);
        assert!(matches!(solve_with(&m, &cfg), Err(MilpError::Infeasible)));
        // Root-integral (no split needed).
        let mut m2 = Model::new(Sense::Maximize);
        let y = m2.bool_var("y");
        m2.set_objective(2.0 * y);
        let s = solve_with(&m2, &cfg).unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 2.0).abs() < 1e-9);
        // Pure LP under jobs=2.
        let mut m3 = Model::new(Sense::Maximize);
        let a = m3.num_var("a", 0.0, 4.0);
        m3.set_objective(3.0 * a);
        let s3 = solve_with(&m3, &cfg).unwrap();
        assert!((s3.objective - 12.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_respects_node_budget() {
        let m = knapsack_instance(3, 16);
        let cfg = SolveOptions {
            jobs: 2,
            max_nodes: 3,
            ..SolveOptions::default()
        };
        match solve_with(&m, &cfg) {
            Ok(s) => assert_eq!(s.status, Status::Feasible),
            Err(MilpError::LimitReached { .. }) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
        // Zero budget behaves like the sequential search.
        let zero = SolveOptions {
            jobs: 2,
            max_nodes: 0,
            ..SolveOptions::default()
        };
        assert!(matches!(
            solve_with(&m, &zero),
            Err(MilpError::LimitReached { incumbent: None })
        ));
    }

    #[test]
    fn parallel_warm_start_survives_tiny_budget() {
        let m = knapsack_instance(5, 12);
        let seq = solve(&m).unwrap();
        let cfg = SolveOptions {
            jobs: 2,
            ..SolveOptions::default()
        };
        let warm = solve_seeded(&m, &cfg, Some(&seq.values)).unwrap();
        assert!((warm.objective - seq.objective).abs() < 1e-6);
    }

    #[test]
    fn stats_populated() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.int_var("x", 0.0, 9.0);
        let y = m.int_var("y", 0.0, 9.0);
        m.set_objective(x + y);
        m.add_le(3.0 * x + 7.0 * y, 21.5);
        let s = solve(&m).unwrap();
        assert!(s.stats.nodes >= 1);
        assert!(
            !s.stats.incumbents.is_empty(),
            "optimum implies an incumbent"
        );
        assert_eq!(s.stats.mip_gap, 0.0, "proven optimal means zero gap");
    }

    #[test]
    fn incumbent_trajectory_is_monotone_and_deterministic() {
        for seed in 0..4u64 {
            let m = knapsack_instance(seed, 14);
            let a = solve(&m).unwrap();
            let b = solve(&m).unwrap();
            // Minimization-form objectives strictly improve along the run.
            for w in a.stats.incumbents.windows(2) {
                assert!(
                    w[1].objective < w[0].objective,
                    "seed {seed}: trajectory not strictly improving"
                );
            }
            // Everything except the wall-clock stamps is deterministic.
            let key = |s: &Solution| {
                (
                    s.stats.nodes,
                    s.stats.nodes_pruned,
                    s.stats.lp_iterations,
                    s.stats.pivots,
                    s.stats.bound_flips,
                    s.stats.refactorizations,
                    s.stats.dual_pivots,
                    s.stats.presolve_rows_removed,
                    s.stats.presolve_bounds_tightened,
                    s.stats
                        .incumbents
                        .iter()
                        .map(|i| (i.node, i.objective.to_bits()))
                        .collect::<Vec<_>>(),
                )
            };
            assert_eq!(key(&a), key(&b), "seed {seed}: counters not deterministic");
        }
    }

    #[test]
    fn search_work_counters_are_consistent() {
        let m = knapsack_instance(1, 16);
        let s = solve(&m).unwrap();
        let st = &s.stats;
        assert!(
            st.pivots + st.bound_flips <= st.lp_iterations,
            "pivots and bound flips are each one simplex iteration"
        );
        assert!(
            st.refactorizations >= 1,
            "a nontrivial LP solve starts with a factorization"
        );
        assert!(st.degenerate_pivots <= st.pivots);
        assert!(st.dual_pivots <= st.pivots, "dual pivots are pivots too");
    }

    #[test]
    fn basis_reuse_matches_from_scratch_objectives() {
        // Pure-binary knapsacks: the reported objective comes from
        // `recompute_objective` over rounded integer values, so basis reuse
        // must reproduce it *bit for bit* while doing less simplex work.
        for seed in 0..5u64 {
            let m = knapsack_instance(seed, 14);
            let reuse = solve_with(
                &m,
                &SolveOptions {
                    reuse_basis: true,
                    ..SolveOptions::default()
                },
            )
            .unwrap();
            let scratch = solve_with(
                &m,
                &SolveOptions {
                    reuse_basis: false,
                    ..SolveOptions::default()
                },
            )
            .unwrap();
            assert_eq!(
                reuse.objective.to_bits(),
                scratch.objective.to_bits(),
                "seed {seed}: objectives must be bit-identical"
            );
            assert_eq!(scratch.stats.dual_pivots, 0);
        }
    }

    #[test]
    fn pseudocost_rule_agrees_with_fractional_rule() {
        for seed in 0..5u64 {
            let m = knapsack_instance(seed, 14);
            let a = solve_with(
                &m,
                &SolveOptions {
                    rule: BranchRule::Sos1ThenPseudoCost,
                    ..SolveOptions::default()
                },
            )
            .unwrap();
            let b = solve_with(
                &m,
                &SolveOptions {
                    rule: BranchRule::Sos1ThenFractional,
                    ..SolveOptions::default()
                },
            )
            .unwrap();
            assert!(
                (a.objective - b.objective).abs() < 1e-6,
                "seed {seed}: {} vs {}",
                a.objective,
                b.objective
            );
        }
    }
}
