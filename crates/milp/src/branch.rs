//! Branch-and-bound driver on top of the LP relaxation.

use crate::presolve::{presolve, Presolved};
use crate::simplex::{solve_lp, LpProblem, LpSolution, LpStatus, RowKind};
use crate::{Cmp, Incumbent, MilpError, Model, Sense, Solution, SolveStats, Status, VarKind};
use std::time::Instant;

const INT_TOL: f64 = 1e-6;
const OBJ_TOL: f64 = 1e-7;

/// How branching variables are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BranchRule {
    /// Prefer SOS1 group splits where groups are declared, falling back to
    /// most-fractional single-variable branching. The right default for the
    /// DVS formulation.
    #[default]
    Sos1ThenFractional,
    /// Always branch on the most fractional integer variable.
    MostFractional,
}

/// Tunables for [`solve_with`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchConfig {
    /// Stop after this many nodes and return the incumbent (as
    /// [`Status::Feasible`]) or [`MilpError::LimitReached`].
    pub max_nodes: usize,
    /// Branch variable selection rule.
    pub rule: BranchRule,
    /// Absolute optimality gap at which a node is pruned against the
    /// incumbent.
    pub gap: f64,
    /// Run [`crate::presolve`] at every node before the LP (bound
    /// tightening, row elimination, early infeasibility).
    pub presolve: bool,
    /// With `jobs >= 2`, the two children of the *root* branch-and-bound
    /// split are solved as independent subproblems on a
    /// [`dvs_runtime::Pool`], each under an equal share of the node budget.
    /// Merging keeps best-bound pruning deterministic: the depth-first
    /// child wins ties, exactly as in the sequential search (the answer can
    /// differ from sequential only inside the `gap` tolerance). `0`/`1`
    /// solve entirely sequentially.
    pub jobs: usize,
}

impl Default for BranchConfig {
    fn default() -> Self {
        BranchConfig {
            max_nodes: 500_000,
            rule: BranchRule::default(),
            gap: 1e-6,
            presolve: true,
            jobs: 1,
        }
    }
}

/// Solves `model` to proven optimality with default settings.
///
/// # Errors
///
/// [`MilpError::Infeasible`], [`MilpError::Unbounded`], or resource errors;
/// see [`solve_with`].
pub fn solve(model: &Model) -> Result<Solution, MilpError> {
    solve_with(model, &BranchConfig::default())
}

/// Solves `model` under explicit branch-and-bound settings.
///
/// # Errors
///
/// * [`MilpError::Infeasible`] — no feasible assignment exists;
/// * [`MilpError::Unbounded`] — the LP relaxation is unbounded;
/// * [`MilpError::LimitReached`] — node budget exhausted with no incumbent;
/// * [`MilpError::SimplexStalled`] — numerical failure in the LP layer;
/// * validation errors from [`Model::validate`].
pub fn solve_with(model: &Model, config: &BranchConfig) -> Result<Solution, MilpError> {
    solve_seeded(model, config, None)
}

/// [`solve_with`] warm-started from a known feasible point `start`
/// (variable values indexed like the model's variables). The point seeds
/// the incumbent, so branch-and-bound prunes against its objective from
/// node one; if the start violates any constraint or integrality it is
/// silently ignored.
///
/// # Errors
///
/// Same as [`solve_with`].
pub fn solve_seeded(
    model: &Model,
    config: &BranchConfig,
    start: Option<&[f64]>,
) -> Result<Solution, MilpError> {
    let _span = dvs_obs::span!("milp.solve");
    let result = if config.jobs >= 2 {
        solve_root_parallel(model, config, start)
    } else {
        solve_seeded_impl(model, config, start)
    };
    if dvs_obs::enabled() {
        dvs_obs::counter("milp.solves", 1);
        if let Ok(sol) = &result {
            dvs_obs::counter("milp.bnb_nodes", sol.stats.nodes as u64);
            dvs_obs::counter("milp.bnb_nodes_pruned", sol.stats.nodes_pruned as u64);
            dvs_obs::counter("milp.incumbents", sol.stats.incumbents.len() as u64);
            dvs_obs::histogram("milp.bnb_nodes_per_solve", sol.stats.nodes as f64);
            dvs_obs::histogram("milp.simplex_pivots_per_solve", sol.stats.pivots as f64);
            if sol.stats.mip_gap.is_finite() {
                dvs_obs::histogram("milp.final_mip_gap", sol.stats.mip_gap);
            }
        }
    }
    result
}

/// Folds one LP solve's work counters into the running search statistics.
fn absorb_lp(stats: &mut SolveStats, sol: &LpSolution) {
    stats.lp_iterations += sol.iterations;
    stats.pivots += sol.pivots;
    stats.degenerate_pivots += sol.degenerate_pivots;
    stats.bound_flips += sol.bound_flips;
    stats.refactorizations += sol.refactorizations;
}

/// Appends an incumbent-improvement record (minimization-form objective).
fn record_incumbent(stats: &mut SolveStats, objective: f64, t0: Instant) {
    stats.incumbents.push(Incumbent {
        objective,
        node: stats.nodes,
        at_us: t0.elapsed().as_secs_f64() * 1e6,
    });
}

/// Relative optimality gap of incumbent `obj` against `best_bound`, both
/// in minimization form.
fn relative_gap(obj: f64, best_bound: f64) -> f64 {
    if best_bound.is_finite() {
        ((obj - best_bound) / obj.abs().max(1.0)).max(0.0)
    } else {
        f64::INFINITY
    }
}

fn solve_seeded_impl(
    model: &Model,
    config: &BranchConfig,
    start: Option<&[f64]>,
) -> Result<Solution, MilpError> {
    let t0 = Instant::now();
    model.validate()?;
    let base = lower_to_lp(model);
    let int_vars: Vec<usize> = model
        .vars
        .iter()
        .enumerate()
        .filter(|(_, v)| v.kind == VarKind::Integer)
        .map(|(i, _)| i)
        .collect();
    let flip = match model.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };

    // Each node records bound overrides for a subset of variables.
    struct Node {
        bounds: Vec<(usize, f64, f64)>,
        parent_bound: f64,
    }
    let mut stack = vec![Node {
        bounds: Vec::new(),
        parent_bound: f64::NEG_INFINITY,
    }];
    let mut stats = SolveStats {
        best_bound: f64::INFINITY,
        ..SolveStats::default()
    };
    let mut incumbent: Option<(f64, Vec<f64>)> = None;
    if let Some(x0) = start {
        if x0.len() == model.num_vars() && start_is_feasible(model, &base, &int_vars, x0) {
            let obj = recompute_objective(&base, x0);
            record_incumbent(&mut stats, obj, t0);
            incumbent = Some((obj, x0.to_vec()));
        }
    }
    let mut root_bound: Option<f64> = None;

    while let Some(node) = stack.pop() {
        if stats.nodes >= config.max_nodes {
            return match incumbent {
                Some((obj, values)) => {
                    stats.mip_gap = relative_gap(obj, stats.best_bound);
                    Ok(Solution {
                        status: Status::Feasible,
                        objective: flip * obj,
                        values,
                        stats,
                    })
                }
                None => Err(MilpError::LimitReached { incumbent: None }),
            };
        }
        // Prune on the parent's bound before paying for an LP solve.
        if let Some((inc, _)) = &incumbent {
            if node.parent_bound >= inc - config.gap {
                stats.nodes_pruned += 1;
                continue;
            }
        }
        stats.nodes += 1;

        let mut lp = base.clone();
        for &(j, lb, ub) in &node.bounds {
            lp.lb[j] = lp.lb[j].max(lb);
            lp.ub[j] = lp.ub[j].min(ub);
        }
        if config.presolve {
            match presolve(&lp) {
                Presolved::Reduced {
                    problem,
                    rows_removed,
                    bounds_tightened,
                } => {
                    stats.presolve_rows_removed += rows_removed;
                    stats.presolve_bounds_tightened += bounds_tightened;
                    lp = problem;
                }
                Presolved::Infeasible => {
                    stats.nodes_pruned += 1;
                    continue;
                }
            }
        }
        let sol = solve_lp(&lp)?;
        absorb_lp(&mut stats, &sol);
        match sol.status {
            LpStatus::Infeasible => continue,
            LpStatus::Unbounded => {
                // Only the root relaxation can prove the MILP unbounded.
                if node.bounds.is_empty() && int_vars.is_empty() {
                    return Err(MilpError::Unbounded);
                }
                if node.bounds.is_empty() {
                    return Err(MilpError::Unbounded);
                }
                continue;
            }
            LpStatus::Optimal => {}
        }
        if root_bound.is_none() {
            root_bound = Some(sol.objective);
            stats.best_bound = sol.objective;
        }
        if let Some((inc, _)) = &incumbent {
            if sol.objective >= inc - config.gap {
                stats.nodes_pruned += 1;
                continue;
            }
        }

        // Integral?
        let frac = |v: f64| (v - v.round()).abs();
        let violated: Vec<usize> = int_vars
            .iter()
            .copied()
            .filter(|&j| frac(sol.x[j]) > INT_TOL)
            .collect();
        if violated.is_empty() {
            let mut x = sol.x.clone();
            for &j in &int_vars {
                x[j] = x[j].round();
            }
            let obj = recompute_objective(&base, &x);
            if incumbent
                .as_ref()
                .is_none_or(|(inc, _)| obj < inc - OBJ_TOL)
            {
                record_incumbent(&mut stats, obj, t0);
                incumbent = Some((obj, x));
            }
            continue;
        }

        // Branch.
        let children = branch_children(model, config.rule, &sol.x, &violated, &node.bounds);
        for bounds in children {
            stack.push(Node {
                bounds,
                parent_bound: sol.objective,
            });
        }
    }

    match incumbent {
        Some((obj, values)) => {
            stats.best_bound = obj;
            stats.mip_gap = 0.0;
            Ok(Solution {
                status: Status::Optimal,
                objective: flip * obj,
                values,
                stats,
            })
        }
        None => Err(MilpError::Infeasible),
    }
}

/// The `jobs >= 2` path: solve the root relaxation, branch once, then solve
/// the two child subproblems to completion as *independent models* (child
/// bounds folded into variable bounds) on a [`dvs_runtime::Pool`].
///
/// Determinism: the sequential search explores the last-pushed (most
/// promising) child's subtree first and replaces its incumbent only on a
/// strict `OBJ_TOL` improvement. The merge below applies the same rule in
/// the same order — seeded incumbent, then the depth-first child, then the
/// other child — so ties resolve identically regardless of which worker
/// finished first. The only divergence from sequential is that neither
/// child prunes against the *other's* incumbent, which can surface a
/// solution that differs inside the `gap` tolerance.
fn solve_root_parallel(
    model: &Model,
    config: &BranchConfig,
    start: Option<&[f64]>,
) -> Result<Solution, MilpError> {
    let t0 = Instant::now();
    model.validate()?;
    let base = lower_to_lp(model);
    let int_vars: Vec<usize> = model
        .vars
        .iter()
        .enumerate()
        .filter(|(_, v)| v.kind == VarKind::Integer)
        .map(|(i, _)| i)
        .collect();
    let flip = match model.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };

    let mut stats = SolveStats {
        best_bound: f64::INFINITY,
        ..SolveStats::default()
    };
    let mut incumbent: Option<(f64, Vec<f64>)> = None;
    if let Some(x0) = start {
        if x0.len() == model.num_vars() && start_is_feasible(model, &base, &int_vars, x0) {
            let obj = recompute_objective(&base, x0);
            record_incumbent(&mut stats, obj, t0);
            incumbent = Some((obj, x0.to_vec()));
        }
    }
    let done = |status: Status, obj: f64, values: Vec<f64>, stats: SolveStats| {
        Ok(Solution {
            status,
            objective: flip * obj,
            values,
            stats,
        })
    };
    if config.max_nodes == 0 {
        return match incumbent {
            Some((obj, values)) => {
                stats.mip_gap = relative_gap(obj, stats.best_bound);
                done(Status::Feasible, obj, values, stats)
            }
            None => Err(MilpError::LimitReached { incumbent: None }),
        };
    }

    // Root relaxation (node 1).
    stats.nodes = 1;
    let mut lp = base.clone();
    let mut root_infeasible = false;
    if config.presolve {
        match presolve(&lp) {
            Presolved::Reduced {
                problem,
                rows_removed,
                bounds_tightened,
            } => {
                stats.presolve_rows_removed += rows_removed;
                stats.presolve_bounds_tightened += bounds_tightened;
                lp = problem;
            }
            Presolved::Infeasible => root_infeasible = true,
        }
    }
    let sol = if root_infeasible {
        None
    } else {
        let s = solve_lp(&lp)?;
        absorb_lp(&mut stats, &s);
        match s.status {
            LpStatus::Infeasible => None,
            LpStatus::Unbounded => return Err(MilpError::Unbounded),
            LpStatus::Optimal => Some(s),
        }
    };
    let Some(sol) = sol else {
        // Root infeasible: only a seeded incumbent can save the answer
        // (matching the sequential search, which would drain its stack).
        return match incumbent {
            Some((obj, values)) => {
                stats.best_bound = obj;
                done(Status::Optimal, obj, values, stats)
            }
            None => Err(MilpError::Infeasible),
        };
    };
    stats.best_bound = sol.objective;

    let frac = |v: f64| (v - v.round()).abs();
    let violated: Vec<usize> = int_vars
        .iter()
        .copied()
        .filter(|&j| frac(sol.x[j]) > INT_TOL)
        .collect();
    let root_pruned = incumbent
        .as_ref()
        .is_some_and(|(inc, _)| sol.objective >= inc - config.gap);
    if violated.is_empty() || root_pruned {
        if !root_pruned {
            let mut x = sol.x.clone();
            for &j in &int_vars {
                x[j] = x[j].round();
            }
            let obj = recompute_objective(&base, &x);
            if incumbent
                .as_ref()
                .is_none_or(|(inc, _)| obj < inc - OBJ_TOL)
            {
                record_incumbent(&mut stats, obj, t0);
                incumbent = Some((obj, x));
            }
        }
        return match incumbent {
            Some((obj, values)) => {
                stats.best_bound = obj;
                stats.mip_gap = 0.0;
                done(Status::Optimal, obj, values, stats)
            }
            None => Err(MilpError::Infeasible),
        };
    }

    // One root split; each child becomes a standalone model with the branch
    // bounds folded into its variable bounds, solved sequentially under an
    // equal share of the remaining node budget.
    let children = branch_children(model, config.rule, &sol.x, &violated, &[]);
    let child_budget = config.max_nodes.saturating_sub(1) / children.len().max(1);
    let child_config = BranchConfig {
        jobs: 1,
        max_nodes: child_budget,
        ..*config
    };
    let domain = dvs_obs::current_domain();
    let results =
        dvs_runtime::Pool::new(config.jobs.min(children.len())).map(children, |_, bounds| {
            let _dg = dvs_obs::enter_domain(domain);
            let mut child = model.clone();
            for (j, lb, ub) in bounds {
                child.vars[j].lb = child.vars[j].lb.max(lb);
                child.vars[j].ub = child.vars[j].ub.min(ub);
            }
            solve_seeded_impl(&child, &child_config, start)
        });

    // Merge in the sequential exploration order: the most promising child
    // (pushed last, popped first) before its sibling.
    let mut hit_limit = false;
    for r in results.iter().rev() {
        match r {
            Ok(s) => {
                if s.status == Status::Feasible {
                    hit_limit = true;
                }
                let obj = flip * s.objective;
                stats.absorb(&s.stats);
                if incumbent
                    .as_ref()
                    .is_none_or(|(inc, _)| obj < inc - OBJ_TOL)
                {
                    incumbent = Some((obj, s.values.clone()));
                }
            }
            Err(MilpError::Infeasible) => {}
            // The sequential search only raises `LimitReached` when it has
            // no incumbent of its own; any feasible point it found comes
            // back as a `Status::Feasible` solution handled above.
            Err(MilpError::LimitReached { .. }) => hit_limit = true,
            Err(e) => return Err(e.clone()),
        }
    }
    match incumbent {
        Some((obj, values)) => {
            let status = if hit_limit {
                stats.mip_gap = relative_gap(obj, stats.best_bound);
                Status::Feasible
            } else {
                stats.best_bound = obj;
                stats.mip_gap = 0.0;
                Status::Optimal
            };
            done(status, obj, values, stats)
        }
        None if hit_limit => Err(MilpError::LimitReached { incumbent: None }),
        None => Err(MilpError::Infeasible),
    }
}

/// Produces child bound sets for a fractional LP solution. Children are
/// returned in the order they should be *pushed* (the most promising child
/// last, so depth-first search explores it first).
fn branch_children(
    model: &Model,
    rule: BranchRule,
    x: &[f64],
    violated: &[usize],
    parent_bounds: &[(usize, f64, f64)],
) -> Vec<Vec<(usize, f64, f64)>> {
    if rule == BranchRule::Sos1ThenFractional {
        // Find an SOS1 group with at least two "active" fractional members.
        let mut best_group: Option<(usize, f64)> = None;
        for (gi, group) in model.sos1_groups.iter().enumerate() {
            let fractional: Vec<f64> = group
                .iter()
                .map(|v| x[v.index()])
                .filter(|&v| v > INT_TOL && v < 1.0 - INT_TOL)
                .collect();
            if fractional.len() >= 2 {
                // Prefer the most "balanced" group (entropy proxy: product
                // of top two values).
                let mut vals = fractional.clone();
                vals.sort_by(|a, b| b.partial_cmp(a).unwrap());
                let score = vals[0] * vals[1];
                if best_group.is_none_or(|(_, s)| score > s) {
                    best_group = Some((gi, score));
                }
            }
        }
        if let Some((gi, _)) = best_group {
            let group = &model.sos1_groups[gi];
            // Split members into two halves around the weighted median of
            // their LP values.
            let mut members: Vec<(usize, f64)> =
                group.iter().map(|v| (v.index(), x[v.index()])).collect();
            members.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            let total: f64 = members.iter().map(|(_, v)| v).sum();
            let mut acc = 0.0;
            let mut cut = 0;
            for (i, (_, v)) in members.iter().enumerate() {
                acc += v;
                if acc >= total * 0.5 {
                    cut = i + 1;
                    break;
                }
            }
            cut = cut.clamp(1, members.len() - 1);
            let (half_a, half_b) = members.split_at(cut);
            // Child A: everything in half_b forced to 0; child B: half_a to 0.
            let zero = |half: &[(usize, f64)]| {
                let mut b = parent_bounds.to_vec();
                for &(j, _) in half {
                    b.push((j, 0.0, 0.0));
                }
                b
            };
            // half_a holds more LP mass; explore the child keeping it first.
            return vec![zero(half_a), zero(half_b)];
        }
    }

    // Most-fractional single variable.
    let j = *violated
        .iter()
        .max_by(|&&a, &&b| {
            let fa = (x[a] - x[a].round()).abs();
            let fb = (x[b] - x[b].round()).abs();
            fa.partial_cmp(&fb).unwrap()
        })
        .expect("violated is non-empty");
    let floor = x[j].floor();
    let mut down = parent_bounds.to_vec();
    down.push((j, f64::NEG_INFINITY, floor));
    let mut up = parent_bounds.to_vec();
    up.push((j, floor + 1.0, f64::INFINITY));
    // Explore the side nearer the LP value first.
    if x[j] - floor > 0.5 {
        vec![down, up]
    } else {
        vec![up, down]
    }
}

/// Converts a [`Model`] to minimization computational form.
fn lower_to_lp(model: &Model) -> LpProblem {
    let n = model.num_vars();
    let mut p = LpProblem::new(n);
    let flip = match model.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    for (v, c) in model.objective().terms() {
        p.obj[v.index()] = flip * c;
    }
    p.obj_offset = flip * model.objective().constant();
    for (j, def) in model.vars.iter().enumerate() {
        p.lb[j] = def.lb;
        p.ub[j] = def.ub;
    }
    for c in &model.constraints {
        let rhs = c.rhs - c.expr.constant();
        let terms: Vec<(usize, f64)> = c.expr.terms().map(|(v, a)| (v.index(), a)).collect();
        match c.cmp {
            Cmp::Le => p.add_row(&terms, RowKind::Le, rhs),
            Cmp::Eq => p.add_row(&terms, RowKind::Eq, rhs),
            Cmp::Ge => {
                let neg: Vec<(usize, f64)> = terms.iter().map(|&(j, a)| (j, -a)).collect();
                p.add_row(&neg, RowKind::Le, -rhs);
            }
        }
    }
    p
}

/// Checks bounds, integrality and every row of the computational-form
/// problem at `x`.
fn start_is_feasible(model: &Model, p: &LpProblem, int_vars: &[usize], x: &[f64]) -> bool {
    const FEAS_TOL: f64 = 1e-6;
    for (j, &xj) in x.iter().enumerate().take(p.num_vars) {
        if xj < p.lb[j] - FEAS_TOL || xj > p.ub[j] + FEAS_TOL {
            return false;
        }
    }
    for &j in int_vars {
        if (x[j] - x[j].round()).abs() > FEAS_TOL {
            return false;
        }
    }
    let _ = model;
    let mut activity = vec![0.0; p.num_rows()];
    for (j, col) in p.cols.iter().enumerate() {
        for &(r, a) in col {
            activity[r] += a * x[j];
        }
    }
    for (r, &act) in activity.iter().enumerate().take(p.num_rows()) {
        let scale = p.rhs[r].abs().max(1.0);
        match p.row_kind[r] {
            crate::simplex::RowKind::Le => {
                if act > p.rhs[r] + FEAS_TOL * scale {
                    return false;
                }
            }
            crate::simplex::RowKind::Eq => {
                if (act - p.rhs[r]).abs() > FEAS_TOL * scale {
                    return false;
                }
            }
        }
    }
    true
}

fn recompute_objective(p: &LpProblem, x: &[f64]) -> f64 {
    p.obj_offset + p.obj.iter().zip(x).map(|(c, v)| c * v).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinExpr, Model, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn pure_lp_passthrough() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", 0.0, 10.0);
        let y = m.num_var("y", 0.0, 10.0);
        m.set_objective(3.0 * x + 2.0 * y);
        m.add_le(x + y, 4.0);
        m.add_le(x + 3.0 * y, 6.0);
        let s = solve(&m).unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert_close(s.objective, 12.0); // x=4, y=0
    }

    #[test]
    fn knapsack() {
        // Classic 0/1 knapsack: values [60,100,120], weights [10,20,30], cap 50.
        let mut m = Model::new(Sense::Maximize);
        let items: Vec<_> = (0..3).map(|i| m.bool_var(format!("i{i}"))).collect();
        m.set_objective(60.0 * items[0] + 100.0 * items[1] + 120.0 * items[2]);
        m.add_le(10.0 * items[0] + 20.0 * items[1] + 30.0 * items[2], 50.0);
        let s = solve(&m).unwrap();
        assert_close(s.objective, 220.0); // items 1 and 2
        assert_eq!(s.int_value(items[0]), 0);
        assert_eq!(s.int_value(items[1]), 1);
        assert_eq!(s.int_value(items[2]), 1);
    }

    #[test]
    fn integer_rounding_matters() {
        // max x + y s.t. 2x + 2y <= 5, integers -> LP gives 2.5, MILP 2.
        let mut m = Model::new(Sense::Maximize);
        let x = m.int_var("x", 0.0, 10.0);
        let y = m.int_var("y", 0.0, 10.0);
        m.set_objective(x + y);
        m.add_le(2.0 * x + 2.0 * y, 5.0);
        let s = solve(&m).unwrap();
        assert_close(s.objective, 2.0);
    }

    #[test]
    fn infeasible_milp() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.bool_var("x");
        m.set_objective(LinExpr::from(x));
        m.add_ge(LinExpr::from(x), 2.0);
        assert!(matches!(solve(&m), Err(MilpError::Infeasible)));
    }

    #[test]
    fn unbounded_milp() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", 0.0, f64::INFINITY);
        m.set_objective(LinExpr::from(x));
        assert!(matches!(solve(&m), Err(MilpError::Unbounded)));
    }

    #[test]
    fn assignment_problem_with_sos1() {
        // 3 workers x 3 tasks, minimize cost; optimal = 5 (1+2+2? compute).
        let cost = [[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]];
        let mut m = Model::new(Sense::Minimize);
        let mut vars = vec![vec![]; 3];
        for (w, row) in vars.iter_mut().enumerate() {
            for t in 0..3 {
                row.push(m.bool_var(format!("w{w}t{t}")));
            }
        }
        let mut obj = LinExpr::zero();
        for (w, row) in vars.iter().enumerate() {
            for (t, &v) in row.iter().enumerate() {
                obj += cost[w][t] * v;
            }
        }
        m.set_objective(obj);
        for row in &vars {
            let e = row[0] + row[1] + row[2];
            m.add_eq(e, 1.0);
            m.add_sos1(row.clone());
        }
        for ((&a, &b), &c) in vars[0].iter().zip(&vars[1]).zip(&vars[2]) {
            m.add_eq(a + b + c, 1.0);
        }
        let s = solve(&m).unwrap();
        // Optimal assignment: w0->t1 (1), w1->t0 (2), w2->t2 (2) = 5.
        assert_close(s.objective, 5.0);
        assert_eq!(s.int_value(vars[0][1]), 1);
        assert_eq!(s.int_value(vars[1][0]), 1);
        assert_eq!(s.int_value(vars[2][2]), 1);
    }

    #[test]
    fn equality_constrained_binaries() {
        // Pick exactly 2 of 4 items maximizing value.
        let vals = [3.0, 7.0, 1.0, 5.0];
        let mut m = Model::new(Sense::Maximize);
        let xs: Vec<_> = (0..4).map(|i| m.bool_var(format!("x{i}"))).collect();
        let mut obj = LinExpr::zero();
        let mut sum = LinExpr::zero();
        for (i, &x) in xs.iter().enumerate() {
            obj += vals[i] * x;
            sum += LinExpr::from(x);
        }
        m.set_objective(obj);
        m.add_eq(sum, 2.0);
        let s = solve(&m).unwrap();
        assert_close(s.objective, 12.0); // items 1 and 3
    }

    #[test]
    fn negative_objective_and_maximize_flip() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.int_var("x", -3.0, 3.0);
        m.set_objective(LinExpr::from(x) * -2.0 + 1.0);
        let s = solve(&m).unwrap();
        assert_close(s.objective, -5.0); // x = 3
        assert_eq!(s.int_value(x), 3);
    }

    #[test]
    fn node_limit_reports_incumbent_or_error() {
        let mut m = Model::new(Sense::Maximize);
        // A 12-var knapsack that needs some branching.
        let xs: Vec<_> = (0..12).map(|i| m.bool_var(format!("x{i}"))).collect();
        let mut obj = LinExpr::zero();
        let mut w = LinExpr::zero();
        for (i, &x) in xs.iter().enumerate() {
            obj += ((i % 5) as f64 + 1.5) * x;
            w += ((i % 7) as f64 + 2.0) * x;
        }
        m.set_objective(obj);
        m.add_le(w, 11.0);
        let cfg = BranchConfig {
            max_nodes: 1,
            ..BranchConfig::default()
        };
        match solve_with(&m, &cfg) {
            Ok(s) => assert_eq!(s.status, Status::Feasible),
            Err(MilpError::LimitReached { .. }) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn mixed_integer_continuous() {
        // min 3x + 2y, x integer in [0,10], y continuous,
        // s.t. x + y >= 4.3, y <= 2.1  -> x = ceil(2.2) ... optimal x=3, y=1.3.
        let mut m = Model::new(Sense::Minimize);
        let x = m.int_var("x", 0.0, 10.0);
        let y = m.num_var("y", 0.0, 2.1);
        m.set_objective(3.0 * x + 2.0 * y);
        m.add_ge(x + y, 4.3);
        let s = solve(&m).unwrap();
        // Candidates: x=3,y=1.3 -> 11.6; x=4,y=0.3 -> 12.6; x=3 wins.
        assert_close(s.objective, 11.6);
        assert_eq!(s.int_value(x), 3);
        assert_close(s.value(y), 1.3);
    }

    #[test]
    fn warm_start_is_used_and_never_worsens_the_answer() {
        // Knapsack where greedy (items 0..) gives a decent start.
        let mut m = Model::new(Sense::Maximize);
        let xs: Vec<_> = (0..10).map(|i| m.bool_var(format!("x{i}"))).collect();
        let mut obj = LinExpr::zero();
        let mut w = LinExpr::zero();
        for (i, &x) in xs.iter().enumerate() {
            obj += ((i % 4) as f64 + 1.0) * x;
            w += ((i % 5) as f64 + 1.5) * x;
        }
        m.set_objective(obj);
        m.add_le(w, 9.0);
        let cold = solve_with(&m, &BranchConfig::default()).unwrap();
        // A trivially feasible start: everything zero.
        let start = vec![0.0; 10];
        let warm = solve_seeded(&m, &BranchConfig::default(), Some(&start)).unwrap();
        assert!((cold.objective - warm.objective).abs() < 1e-6);
        // An infeasible start must be ignored, not believed.
        let bogus = vec![1.0; 10];
        let still = solve_seeded(&m, &BranchConfig::default(), Some(&bogus)).unwrap();
        assert!((cold.objective - still.objective).abs() < 1e-6);
    }

    #[test]
    fn warm_start_survives_node_limit() {
        // With a 0-node budget, the seeded incumbent is returned as the
        // feasible answer instead of erroring.
        let mut m = Model::new(Sense::Maximize);
        let xs: Vec<_> = (0..8).map(|i| m.bool_var(format!("x{i}"))).collect();
        let mut obj = LinExpr::zero();
        let mut w = LinExpr::zero();
        for (i, &x) in xs.iter().enumerate() {
            obj += (i as f64 + 1.0) * x;
            w += 2.0 * x;
        }
        m.set_objective(obj);
        m.add_le(w, 7.0);
        let mut start = vec![0.0; 8];
        start[7] = 1.0; // weight 2 <= 7, objective 8
        let cfg = BranchConfig {
            max_nodes: 0,
            ..BranchConfig::default()
        };
        let sol = solve_seeded(&m, &cfg, Some(&start)).unwrap();
        assert_eq!(sol.status, Status::Feasible);
        assert!((sol.objective - 8.0).abs() < 1e-9);
    }

    /// A knapsack family used to compare the sequential and parallel
    /// searches over several instances.
    fn knapsack_instance(seed: u64, n: usize) -> Model {
        let mut m = Model::new(Sense::Maximize);
        let xs: Vec<_> = (0..n).map(|i| m.bool_var(format!("x{i}"))).collect();
        let mut obj = LinExpr::zero();
        let mut w = LinExpr::zero();
        let mut state = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            ((state >> 33) % 97) as f64
        };
        let mut cap = 0.0;
        for &x in &xs {
            obj += (next() + 1.0) * x;
            let wt = next() + 1.0;
            w += wt * x;
            cap += wt;
        }
        m.set_objective(obj);
        m.add_le(w, cap * 0.4);
        m
    }

    #[test]
    fn parallel_root_split_matches_sequential_objective() {
        for seed in 0..6u64 {
            let m = knapsack_instance(seed, 14);
            let seq = solve(&m).unwrap();
            let par = solve_with(
                &m,
                &BranchConfig {
                    jobs: 2,
                    ..BranchConfig::default()
                },
            )
            .unwrap();
            assert_eq!(par.status, Status::Optimal, "seed {seed}");
            assert!(
                (seq.objective - par.objective).abs() < 1e-6,
                "seed {seed}: sequential {} vs parallel {}",
                seq.objective,
                par.objective
            );
            // Deterministic merge: the chosen assignment must be feasible
            // and repeatable run-to-run.
            let again = solve_with(
                &m,
                &BranchConfig {
                    jobs: 2,
                    ..BranchConfig::default()
                },
            )
            .unwrap();
            assert_eq!(par.values, again.values, "seed {seed}: unstable values");
        }
    }

    #[test]
    fn parallel_split_on_sos1_model() {
        // The DVS shape: SOS1 mode groups. Root split is a group split.
        let cost = [[4.0, 1.0, 3.0], [2.0, 0.5, 5.0], [3.0, 2.0, 2.0]];
        let mut m = Model::new(Sense::Minimize);
        let mut vars = vec![vec![]; 3];
        for (w, row) in vars.iter_mut().enumerate() {
            for t in 0..3 {
                row.push(m.bool_var(format!("w{w}t{t}")));
            }
        }
        let mut obj = LinExpr::zero();
        for (w, row) in vars.iter().enumerate() {
            for (t, &v) in row.iter().enumerate() {
                obj += cost[w][t] * v;
            }
        }
        m.set_objective(obj);
        for row in &vars {
            m.add_eq(row[0] + row[1] + row[2], 1.0);
            m.add_sos1(row.clone());
        }
        for ((&a, &b), &c) in vars[0].iter().zip(&vars[1]).zip(&vars[2]) {
            m.add_eq(a + b + c, 1.0);
        }
        let seq = solve(&m).unwrap();
        let par = solve_with(
            &m,
            &BranchConfig {
                jobs: 4,
                ..BranchConfig::default()
            },
        )
        .unwrap();
        assert!((seq.objective - par.objective).abs() < 1e-6);
        assert_eq!(seq.values, par.values);
    }

    #[test]
    fn parallel_infeasible_and_trivial_cases() {
        let cfg = BranchConfig {
            jobs: 2,
            ..BranchConfig::default()
        };
        // Infeasible.
        let mut m = Model::new(Sense::Minimize);
        let x = m.bool_var("x");
        m.set_objective(LinExpr::from(x));
        m.add_ge(LinExpr::from(x), 2.0);
        assert!(matches!(solve_with(&m, &cfg), Err(MilpError::Infeasible)));
        // Root-integral (no split needed).
        let mut m2 = Model::new(Sense::Maximize);
        let y = m2.bool_var("y");
        m2.set_objective(2.0 * y);
        let s = solve_with(&m2, &cfg).unwrap();
        assert_eq!(s.status, Status::Optimal);
        assert!((s.objective - 2.0).abs() < 1e-9);
        // Pure LP under jobs=2.
        let mut m3 = Model::new(Sense::Maximize);
        let a = m3.num_var("a", 0.0, 4.0);
        m3.set_objective(3.0 * a);
        let s3 = solve_with(&m3, &cfg).unwrap();
        assert!((s3.objective - 12.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_respects_node_budget() {
        let m = knapsack_instance(3, 16);
        let cfg = BranchConfig {
            jobs: 2,
            max_nodes: 3,
            ..BranchConfig::default()
        };
        match solve_with(&m, &cfg) {
            Ok(s) => assert_eq!(s.status, Status::Feasible),
            Err(MilpError::LimitReached { .. }) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
        // Zero budget behaves like the sequential search.
        let zero = BranchConfig {
            jobs: 2,
            max_nodes: 0,
            ..BranchConfig::default()
        };
        assert!(matches!(
            solve_with(&m, &zero),
            Err(MilpError::LimitReached { incumbent: None })
        ));
    }

    #[test]
    fn parallel_warm_start_survives_tiny_budget() {
        let m = knapsack_instance(5, 12);
        let seq = solve(&m).unwrap();
        let cfg = BranchConfig {
            jobs: 2,
            ..BranchConfig::default()
        };
        let warm = solve_seeded(&m, &cfg, Some(&seq.values)).unwrap();
        assert!((warm.objective - seq.objective).abs() < 1e-6);
    }

    #[test]
    fn stats_populated() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.int_var("x", 0.0, 9.0);
        let y = m.int_var("y", 0.0, 9.0);
        m.set_objective(x + y);
        m.add_le(3.0 * x + 7.0 * y, 21.5);
        let s = solve(&m).unwrap();
        assert!(s.stats.nodes >= 1);
        assert!(
            !s.stats.incumbents.is_empty(),
            "optimum implies an incumbent"
        );
        assert_eq!(s.stats.mip_gap, 0.0, "proven optimal means zero gap");
    }

    #[test]
    fn incumbent_trajectory_is_monotone_and_deterministic() {
        for seed in 0..4u64 {
            let m = knapsack_instance(seed, 14);
            let a = solve(&m).unwrap();
            let b = solve(&m).unwrap();
            // Minimization-form objectives strictly improve along the run.
            for w in a.stats.incumbents.windows(2) {
                assert!(
                    w[1].objective < w[0].objective,
                    "seed {seed}: trajectory not strictly improving"
                );
            }
            // Everything except the wall-clock stamps is deterministic.
            let key = |s: &Solution| {
                (
                    s.stats.nodes,
                    s.stats.nodes_pruned,
                    s.stats.lp_iterations,
                    s.stats.pivots,
                    s.stats.bound_flips,
                    s.stats.refactorizations,
                    s.stats.presolve_rows_removed,
                    s.stats.presolve_bounds_tightened,
                    s.stats
                        .incumbents
                        .iter()
                        .map(|i| (i.node, i.objective.to_bits()))
                        .collect::<Vec<_>>(),
                )
            };
            assert_eq!(key(&a), key(&b), "seed {seed}: counters not deterministic");
        }
    }

    #[test]
    fn search_work_counters_are_consistent() {
        let m = knapsack_instance(1, 16);
        let s = solve(&m).unwrap();
        let st = &s.stats;
        assert!(
            st.pivots + st.bound_flips <= st.lp_iterations,
            "pivots and bound flips are each one simplex iteration"
        );
        assert!(
            st.refactorizations >= 1,
            "a nontrivial LP solve starts with a factorization"
        );
        assert!(st.degenerate_pivots <= st.pivots);
    }
}
