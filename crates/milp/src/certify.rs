//! Post-solve proof logging: turns a solved [`Model`] into a
//! [`dvs_cert::Certificate`] that the independent checker can replay.
//!
//! The prover never trusts the search that produced the solution. For the
//! branch-and-bound backend it runs a *certifying replay*: a fresh
//! depth-first disjunction search over the lowered LP that accepts a leaf
//! only when the exact dyadic weak-duality bound (the same inequality
//! `dvs_cert::check` verifies) already holds — so the emitted tree is
//! accepted by the checker by construction, or certification fails
//! loudly. For the continuous-voltage backend it emits the single-leaf
//! KKT certificate of the hull walk: the deadline row's multiplier is the
//! marginal energy rate where the walk stopped, each selection row's
//! multiplier is the group's best `e + rate·t`, and the declared
//! `tolerance` is the exactly-computed rounding gap between the claimed
//! (endpoint-rounded) objective and the continuous lower bound.
//!
//! The replay deliberately leaves the solver's counters and incumbent
//! trajectory untouched: certification is observation, not search, and
//! [`Solution`] stats stay bit-identical whether or not a proof is
//! emitted.

use std::cmp::Ordering;

use crate::backend::{backend_for, extract_ladder, solve_ladder, SolverChoice};
use crate::branch::{lower_to_lp, SolveOptions};
use crate::model::{Model, Sense, VarKind};
use crate::simplex::{LpProblem, LpStatus, RowKind, SimplexEngine};
use crate::solution::{Solution, Status};
use crate::MilpError;
use dvs_cert::dyadic::Dyadic;
use dvs_cert::{CertNode, CertRow, CertRowKind, CertVar, Certificate, Snapshot};
use dvs_obs::json::Json;

/// Declared incumbent row/bound slack (matches the solver's feasibility
/// tolerance).
const FEAS_TOL: f64 = 1e-6;
/// Declared incumbent integrality slack (matches the solver's).
const INT_TOL: f64 = 1e-6;
/// Declared slack between the exactly-recomputed incumbent objective and
/// the solver's claimed value (relative; covers f64 summation-order
/// noise, which is ~1e-13 in practice).
const OBJ_TOL: f64 = 1e-9;
/// Extra relative slack folded into the branch-and-bound certificate's
/// `tolerance` on top of the solver's gap, absorbing the floating-point
/// distance between the solver's pruning decisions and the exact bound.
const SLACK_REL: f64 = 1e-7;

fn dy(v: f64) -> Dyadic {
    Dyadic::from_f64(v).expect("finite value")
}

fn unsupported(reason: impl Into<String>) -> MilpError {
    MilpError::Unsupported {
        reason: reason.into(),
    }
}

/// Produces an optimality certificate for `sol`, which must be the result
/// of solving `model` under `opts` with the backend selected by `choice`.
///
/// The certificate is deterministic: it depends only on the model, the
/// incumbent, and the claimed objective — never on wall clock, thread
/// count, or the search path the original solve happened to take. Solving
/// with `jobs = 1` and `jobs = N` therefore certifies to identical bytes
/// as long as both runs agree on the answer.
///
/// # Errors
///
/// [`MilpError::Unsupported`] when the solution cannot be certified (not
/// proven optimal, or a replay node is unprovable), [`MilpError::LimitReached`]
/// when the replay exhausts `opts.max_nodes`, or LP-layer errors.
pub fn certify_solution(
    model: &Model,
    opts: &SolveOptions,
    choice: SolverChoice,
    sol: &Solution,
) -> Result<Certificate, MilpError> {
    match backend_for(choice, model).name() {
        "continuous-yds" => certify_continuous(model, sol),
        _ => certify_bnb(model, opts, sol),
    }
}

/// Checks `cert` with the independent checker and converts a rejection
/// into an error. Provers call this before handing a certificate out, so
/// a bug in the replay can never silently ship an unverifiable proof.
fn self_check(cert: &Certificate) -> Result<(), MilpError> {
    let report = dvs_cert::check(cert);
    match report.reject {
        None => Ok(()),
        Some(r) => Err(unsupported(format!(
            "certify: emitted certificate failed self-check ({}: {})",
            r.code, r.detail
        ))),
    }
}

fn snapshot_of(p: &LpProblem, model: &Model) -> Snapshot {
    let mut rows: Vec<CertRow> = p
        .row_kind
        .iter()
        .zip(&p.rhs)
        .map(|(&kind, &rhs)| CertRow {
            kind: match kind {
                RowKind::Le => CertRowKind::Le,
                RowKind::Eq => CertRowKind::Eq,
            },
            rhs,
            terms: Vec::new(),
        })
        .collect();
    // Column-major to row-major; the outer loop ascending in `j` leaves
    // every row's terms sorted by variable index (determinism).
    for (j, col) in p.cols.iter().enumerate() {
        for &(r, a) in col {
            rows[r].terms.push((j, a));
        }
    }
    Snapshot {
        vars: (0..p.num_vars)
            .map(|j| CertVar {
                lb: p.lb[j],
                ub: p.ub[j],
                integer: model.vars[j].kind == VarKind::Integer,
            })
            .collect(),
        obj: p.obj.clone(),
        obj_offset: p.obj_offset,
        rows,
        flipped: model.sense() == Sense::Maximize,
    }
}

/// Outcome of the exact Lagrangian evaluation over a box.
enum Eval {
    Value(Dyadic),
    /// The reduced cost on `var` points along an infinite bound
    /// (`dir > 0`: positive reduced cost with `lb = -inf`; `dir < 0`:
    /// negative with `ub = +inf`), making the bound `-inf`.
    Unbounded {
        var: usize,
        dir: i32,
    },
}

/// Exactly the inequality the checker verifies: `L(y) = offset + Σ yᵢbᵢ +
/// Σⱼ min(dⱼlⱼ, dⱼuⱼ)` with `dⱼ = cⱼ − (Aᵀy)ⱼ` (and `c = 0` for Farkas
/// rays). Computed in dyadic arithmetic — no rounding anywhere.
fn eval_lagrangian(
    snap: &Snapshot,
    lb: &[f64],
    ub: &[f64],
    duals: &[(usize, f64)],
    with_obj: bool,
) -> Eval {
    let n = snap.vars.len();
    let mut d: Vec<Dyadic> = if with_obj {
        snap.obj.iter().map(|&c| dy(c)).collect()
    } else {
        vec![Dyadic::zero(); n]
    };
    let mut sum = if with_obj {
        dy(snap.obj_offset)
    } else {
        Dyadic::zero()
    };
    for &(i, y) in duals {
        let yd = dy(y);
        let row = &snap.rows[i];
        sum = sum.add(&yd.mul(&dy(row.rhs)));
        for &(j, a) in &row.terms {
            d[j] = d[j].sub(&yd.mul(&dy(a)));
        }
    }
    for (j, dj) in d.iter().enumerate() {
        let sign = dj.signum();
        if sign == 0 {
            continue;
        }
        let b = if sign > 0 { lb[j] } else { ub[j] };
        if b.is_infinite() {
            return Eval::Unbounded { var: j, dir: sign };
        }
        sum = sum.add(&dj.mul(&dy(b)));
    }
    Eval::Value(sum)
}

// ---------------------------------------------------------------------------
// Branch-and-bound certifying replay
// ---------------------------------------------------------------------------

enum Branch {
    Sos1 {
        row: usize,
        zero_a: Vec<usize>,
        zero_b: Vec<usize>,
    },
    Split {
        var: usize,
        floor: f64,
    },
}

struct Replay {
    snap: Snapshot,
    engine: SimplexEngine,
    /// Current node box; mutated along the walk with the same update
    /// rules the checker applies (`ub.min(0)` for SOS1 zero-sets,
    /// `min`/`max` clamps for dichotomies), undone on return.
    lb: Vec<f64>,
    ub: Vec<f64>,
    /// Column-major coefficient view for dual repair.
    cols: Vec<Vec<(usize, f64)>>,
    /// SOS1-usable rows: `(row, support)` for every `Σx = 1` equality
    /// over non-negative integer variables.
    groups: Vec<(usize, Vec<usize>)>,
    /// Every leaf must prove at least this (claimed − tolerance), exact.
    target: Dyadic,
    nodes: usize,
    lp_solves: usize,
    budget: usize,
}

impl Replay {
    fn new(p: &LpProblem, snap: Snapshot, target: Dyadic, budget: usize) -> Replay {
        let groups =
            snap.rows
                .iter()
                .enumerate()
                .filter(|(_, row)| {
                    row.kind == CertRowKind::Eq
                        && row.rhs == 1.0
                        && row.terms.iter().all(|&(j, a)| {
                            a == 1.0 && snap.vars[j].integer && snap.vars[j].lb >= 0.0
                        })
                })
                .map(|(r, row)| (r, row.terms.iter().map(|&(j, _)| j).collect()))
                .collect();
        Replay {
            engine: SimplexEngine::new(p),
            lb: snap.vars.iter().map(|v| v.lb).collect(),
            ub: snap.vars.iter().map(|v| v.ub).collect(),
            cols: p.cols.clone(),
            groups,
            target,
            snap,
            nodes: 0,
            lp_solves: 0,
            budget,
        }
    }

    /// Proves the current box, branching as deep as needed. Every
    /// returned node is already known to satisfy the checker's test for
    /// it (the exact check ran before the leaf was accepted).
    fn node(&mut self) -> Result<CertNode, MilpError> {
        if self.lb.iter().zip(&self.ub).any(|(l, u)| l > u) {
            // Empty box: vacuously covered; the checker skips the proof.
            return Ok(CertNode::Bound { duals: Vec::new() });
        }
        self.nodes += 1;
        if self.nodes > self.budget {
            return Err(MilpError::LimitReached { incumbent: None });
        }
        self.engine.reset_bounds();
        for j in 0..self.snap.vars.len() {
            if self.lb[j] != self.snap.vars[j].lb || self.ub[j] != self.snap.vars[j].ub {
                self.engine.set_bound(j, self.lb[j], self.ub[j]);
            }
        }
        self.lp_solves += 1;
        let lp = self.engine.solve_fresh()?;

        let x = match lp.status {
            LpStatus::Optimal => {
                if let Some(duals) = self.try_leaf(&lp.duals, true) {
                    return Ok(CertNode::Bound { duals });
                }
                Some(lp.x)
            }
            LpStatus::Infeasible => {
                if let Some(duals) = self.try_leaf(&lp.duals, false) {
                    return Ok(CertNode::Farkas { duals });
                }
                if let Some(duals) = self.fixed_row_farkas() {
                    return Ok(CertNode::Farkas { duals });
                }
                if let Some(duals) = self.composite_farkas() {
                    return Ok(CertNode::Farkas { duals });
                }
                None
            }
            LpStatus::Unbounded => {
                return Err(unsupported("certify: node LP is unbounded below"));
            }
        };

        let Some(br) = self.pick_branch(x.as_deref()) else {
            return Err(unsupported(
                "certify: node is unprovable with nothing left to branch on",
            ));
        };
        match br {
            Branch::Sos1 {
                row,
                zero_a,
                zero_b,
            } => {
                let mut kids = Vec::with_capacity(2);
                for zero in [&zero_a, &zero_b] {
                    let saved: Vec<(usize, f64)> = zero.iter().map(|&j| (j, self.ub[j])).collect();
                    for &j in zero.iter() {
                        self.ub[j] = self.ub[j].min(0.0);
                    }
                    let kid = self.node();
                    for &(j, u) in &saved {
                        self.ub[j] = u;
                    }
                    kids.push(kid?);
                }
                Ok(CertNode::Sos1 {
                    row,
                    zero_a,
                    zero_b,
                    kids,
                })
            }
            Branch::Split { var, floor } => {
                let (old_l, old_u) = (self.lb[var], self.ub[var]);
                self.ub[var] = old_u.min(floor);
                let down = self.node();
                self.ub[var] = old_u;
                let down = down?;
                self.lb[var] = old_l.max(floor + 1.0);
                let up = self.node();
                self.lb[var] = old_l;
                Ok(CertNode::Split {
                    var,
                    floor,
                    kids: vec![down, up?],
                })
            }
        }
    }

    /// Tries to turn an LP dual vector into an exactly-verified leaf:
    /// clamps sign violations, repairs reduced costs that point along
    /// infinite bounds, and accepts only when the dyadic inequality
    /// holds. `None` means "branch deeper instead".
    fn try_leaf(&self, dense: &[f64], with_obj: bool) -> Option<Vec<(usize, f64)>> {
        let m = self.snap.rows.len();
        if dense.len() != m && !dense.is_empty() {
            return None;
        }
        let mut y: Vec<f64> = (0..m)
            .map(|i| {
                let v = dense.get(i).copied().unwrap_or(0.0);
                if !v.is_finite() {
                    0.0
                } else if self.snap.rows[i].kind == CertRowKind::Le {
                    v.min(0.0)
                } else {
                    v
                }
            })
            .collect();
        let mut mult = 1.0f64;
        let passes = 16 + 4 * self.snap.vars.len();
        for _ in 0..passes {
            let sparse: Vec<(usize, f64)> = y
                .iter()
                .enumerate()
                .filter(|&(_, &v)| v != 0.0)
                .map(|(i, &v)| (i, v))
                .collect();
            match eval_lagrangian(&self.snap, &self.lb, &self.ub, &sparse, with_obj) {
                Eval::Value(v) => {
                    let ok = if with_obj {
                        v.cmp_val(&self.target) != Ordering::Less
                    } else {
                        v.signum() > 0
                    };
                    return ok.then_some(sparse);
                }
                Eval::Unbounded { var, dir } => {
                    if !self.repair(&mut y, var, dir, with_obj, mult) {
                        return None;
                    }
                    mult *= 2.0;
                }
            }
        }
        None
    }

    /// Nudges one dual toward zero to lift variable `j`'s reduced cost
    /// off an infinite direction. Moving `yᵢ` toward zero by `δ` changes
    /// `dⱼ` by `sign(yᵢ)·aᵢⱼ·δ` and never breaks the `Le` sign condition,
    /// so repair is monotone-safe; the caller re-verifies exactly.
    fn repair(&self, y: &mut [f64], j: usize, dir: i32, with_obj: bool, mult: f64) -> bool {
        let c = if with_obj { self.snap.obj[j] } else { 0.0 };
        // The deficit must be measured exactly: an f64 dot product here can
        // round a −2⁻⁶⁰ deficit (real to the dyadic evaluator) to zero, and
        // a step sized from that zero never moves `y` at all.
        let mut dj_exact = dy(c);
        for &(i, a) in &self.cols[j] {
            dj_exact = dj_exact.sub(&dy(y[i]).mul(&dy(a)));
        }
        let dj = dj_exact.to_f64_lossy();
        // dir < 0: dⱼ < 0 with ub = ∞, need dⱼ raised; dir > 0: mirrored.
        let wanted = if dir < 0 { 1.0 } else { -1.0 };
        let mut best: Option<(usize, f64, f64)> = None; // (row, coeff, capacity)
        for &(i, a) in &self.cols[j] {
            if y[i] == 0.0 || a == 0.0 || y[i].signum() * a.signum() != wanted {
                continue;
            }
            let cap = (y[i] * a).abs();
            if best.is_none_or(|(_, _, bc)| cap > bc) {
                best = Some((i, a, cap));
            }
        }
        let Some((i, a, _)) = best else {
            return false;
        };
        // The f64 approximation only sizes the step; `mult` escalates on
        // repeat so exactness of the retry loop never depends on it.
        // Floor the step at a few ulps of the dual being nudged so each
        // pass makes representable progress even for sub-ulp deficits;
        // `mult` escalation still guarantees the loop cannot stall.
        let need = (dj.abs() * 1.25 + 1e-300) * mult;
        let delta = (need / a.abs())
            .max(y[i].abs() * (f64::EPSILON * 4.0))
            .min(y[i].abs());
        y[i] = if delta >= y[i].abs() {
            0.0
        } else {
            y[i] - y[i].signum() * delta
        };
        true
    }

    /// Last-resort Farkas rays that need no LP duals: a unit multiplier
    /// on any single row proves the box empty whenever that row alone is
    /// violated at the box's worst corner — an SOS1 equality zeroed out
    /// entirely, or the deadline row once the fixed binaries' block time
    /// alone exceeds the budget. The exact evaluator vets every
    /// candidate, so this can only ever add verifiable leaves.
    fn fixed_row_farkas(&self) -> Option<Vec<(usize, f64)>> {
        for (i, row) in self.snap.rows.iter().enumerate() {
            let signs: &[f64] = match row.kind {
                CertRowKind::Eq => &[1.0, -1.0],
                CertRowKind::Le => &[-1.0],
            };
            for &s in signs {
                let cand = vec![(i, s)];
                if let Eval::Value(v) =
                    eval_lagrangian(&self.snap, &self.lb, &self.ub, &cand, false)
                {
                    if v.signum() > 0 {
                        return Some(cand);
                    }
                }
            }
        }
        None
    }

    /// Second-resort Farkas rays for boxes whose violation hides behind
    /// auxiliary variables: a base `Le` row (think: the deadline row) at
    /// multiplier −1 alone undercounts, because its continuous aux terms
    /// sit at `lb = 0` while their defining rows force them higher. For
    /// each such aux the defining row is imported at the *exactly
    /// representable* multiplier `−a/±1` — the two products the exact
    /// evaluator forms then cancel to a true dyadic zero, so no reduced
    /// cost ever points along the aux's infinite bound. Imports are chosen
    /// greedily by exact gain and the final ray is vetted exactly, so this
    /// can only add verifiable leaves.
    fn composite_farkas(&self) -> Option<Vec<(usize, f64)>> {
        for i in 0..self.snap.rows.len() {
            if self.snap.rows[i].kind != CertRowKind::Le {
                continue;
            }
            let base = vec![(i, -1.0)];
            let Eval::Value(l0) = eval_lagrangian(&self.snap, &self.lb, &self.ub, &base, false)
            else {
                continue;
            };
            let mut cand = base.clone();
            for &(j, a) in &self.snap.rows[i].terms {
                if self.snap.vars[j].integer || a <= 0.0 || self.lb[j] >= self.ub[j] {
                    continue;
                }
                let mut best: Option<(usize, f64, Dyadic)> = None;
                for (r, row) in self.snap.rows.iter().enumerate() {
                    if r == i {
                        continue;
                    }
                    let Some(&(_, arj)) = row.terms.iter().find(|&&(k, _)| k == j) else {
                        continue;
                    };
                    if arj.abs() != 1.0 {
                        continue; // multiplier would not divide exactly
                    }
                    // Cancellation: the base contributes `+a` to the aux's
                    // reduced cost, the import `−mult·arj`; `mult = a/arj`
                    // (exact for `|arj| = 1`) zeroes it dyadically.
                    let mult = a / arj;
                    if row.kind == CertRowKind::Le && mult > 0.0 {
                        continue; // would violate the Le sign condition
                    }
                    let mut with = base.clone();
                    with.push((r, mult));
                    let Eval::Value(l1) =
                        eval_lagrangian(&self.snap, &self.lb, &self.ub, &with, false)
                    else {
                        continue;
                    };
                    let gain = l1.sub(&l0);
                    if gain.signum() > 0
                        && best
                            .as_ref()
                            .is_none_or(|(_, _, bg)| gain.cmp_val(bg) == Ordering::Greater)
                    {
                        best = Some((r, mult, gain));
                    }
                }
                if let Some((r, mult, _)) = best {
                    cand.push((r, mult));
                }
            }
            self.eq_row_ascent(&mut cand);
            if cand.len() > 1 {
                cand.sort_unstable_by_key(|&(r, _)| r);
                if let Eval::Value(v) =
                    eval_lagrangian(&self.snap, &self.lb, &self.ub, &cand, false)
                {
                    if v.signum() > 0 {
                        return Some(cand);
                    }
                }
            }
        }
        None
    }

    /// Dual ascent over the exactly-one selection rows, the third leg of
    /// the composite ray. When a box is infeasible because the *fastest
    /// still-available mode of every group* already overruns the deadline,
    /// the ray needs a positive multiplier on each selection row equal to
    /// that group's smallest remaining reduced cost — the base/import legs
    /// above never touch the `Eq` rows at all. Each row's multiplier is
    /// the exact minimum reduced cost over its non-eliminated columns
    /// (rounded to `f64` conservatively), accepted only when the exact
    /// Lagrangian strictly improves, so the ascent can only strengthen a
    /// candidate ray, never invalidate one.
    fn eq_row_ascent(&self, cand: &mut Vec<(usize, f64)>) {
        let Eval::Value(mut best) = eval_lagrangian(&self.snap, &self.lb, &self.ub, cand, false)
        else {
            return;
        };
        // Exact reduced costs under the current candidate ray.
        let mut d = vec![Dyadic::zero(); self.snap.vars.len()];
        for &(i, y) in cand.iter() {
            let yd = dy(y);
            for &(j, a) in &self.snap.rows[i].terms {
                d[j] = d[j].sub(&yd.mul(&dy(a)));
            }
        }
        for (r, row) in self.snap.rows.iter().enumerate() {
            if row.kind != CertRowKind::Eq
                || row.terms.iter().any(|&(_, a)| a != 1.0)
                || cand.iter().any(|&(i, _)| i == r)
            {
                continue;
            }
            // Columns eliminated by branching (`ub = 0`) cannot absorb the
            // row's right-hand side and put no floor on the multiplier.
            let min_d = row
                .terms
                .iter()
                .filter(|&&(j, _)| self.ub[j] > 0.0)
                .map(|&(j, _)| &d[j])
                .min_by(|a, b| a.cmp_val(b));
            let Some(min_d) = min_d else { continue };
            let y = min_d.to_f64_lossy();
            if !(y.is_finite() && y > 0.0) {
                continue;
            }
            cand.push((r, y));
            match eval_lagrangian(&self.snap, &self.lb, &self.ub, cand, false) {
                Eval::Value(l1) if l1.cmp_val(&best) == Ordering::Greater => {
                    best = l1;
                    let yd = dy(y);
                    for &(j, a) in &row.terms {
                        d[j] = d[j].sub(&yd.mul(&dy(a)));
                    }
                }
                _ => {
                    cand.pop();
                }
            }
        }
    }

    /// Chooses the next disjunction, mirroring the solver's preference:
    /// an SOS1 group with at least two active members (scored by the
    /// product of its two largest LP values, split at the weighted
    /// median), else a dichotomy on the most fractional integer
    /// variable, else — when the node's LP gave no point to steer by — a
    /// deterministic index split of the first splittable group.
    fn pick_branch(&self, x: Option<&[f64]>) -> Option<Branch> {
        if let Some(x) = x {
            let mut best: Option<(f64, usize, Vec<usize>)> = None;
            for (gi, (_, support)) in self.groups.iter().enumerate() {
                let mut active: Vec<usize> = support
                    .iter()
                    .copied()
                    .filter(|&j| self.ub[j] > 0.0 && x[j] > INT_TOL)
                    .collect();
                if active.len() < 2 {
                    continue;
                }
                active.sort_by(|&a, &b| x[b].partial_cmp(&x[a]).unwrap().then(a.cmp(&b)));
                let score = x[active[0]] * x[active[1]];
                if best.as_ref().is_none_or(|(bs, _, _)| score > *bs) {
                    best = Some((score, gi, active));
                }
            }
            if let Some((_, gi, active)) = best {
                let total: f64 = active.iter().map(|&j| x[j]).sum();
                let mut acc = 0.0;
                let mut cut = active.len() - 1;
                for (k, &j) in active.iter().enumerate() {
                    acc += x[j];
                    if acc >= total * 0.5 {
                        cut = k + 1;
                        break;
                    }
                }
                let cut = cut.clamp(1, active.len() - 1);
                let (head, tail) = active.split_at(cut);
                return Some(Branch::Sos1 {
                    row: self.groups[gi].0,
                    zero_a: tail.to_vec(),
                    zero_b: head.to_vec(),
                });
            }
            let mut best: Option<(usize, f64)> = None;
            for (j, v) in self.snap.vars.iter().enumerate() {
                if !v.integer || self.lb[j] >= self.ub[j] {
                    continue;
                }
                let frac = x[j] - x[j].floor();
                let dist = frac.min(1.0 - frac);
                if dist > INT_TOL && best.is_none_or(|(_, bd)| dist > bd) {
                    best = Some((j, dist));
                }
            }
            if let Some((j, _)) = best {
                return Some(Branch::Split {
                    var: j,
                    floor: x[j].floor(),
                });
            }
        }
        // No LP point (infeasible node) or nothing fractional: fall back
        // to deterministic structural splits so infeasibility margins can
        // grow until a Farkas ray verifies.
        for (row, support) in &self.groups {
            let free: Vec<usize> = support
                .iter()
                .copied()
                .filter(|&j| self.ub[j] > 0.0)
                .collect();
            if free.len() >= 2 {
                let (head, tail) = free.split_at(free.len() / 2);
                return Some(Branch::Sos1 {
                    row: *row,
                    zero_a: tail.to_vec(),
                    zero_b: head.to_vec(),
                });
            }
        }
        for (j, v) in self.snap.vars.iter().enumerate() {
            if v.integer && self.lb[j] < self.ub[j] {
                let floor = if self.lb[j].is_finite() {
                    self.lb[j]
                } else if self.ub[j].is_finite() {
                    self.ub[j] - 1.0
                } else {
                    0.0
                };
                return Some(Branch::Split { var: j, floor });
            }
        }
        None
    }
}

/// Re-derives the incumbent embedded in the certificate as the canonical
/// completion of the solver's integer assignment: integers fixed to their
/// rounded values, continuous variables re-solved by one sequential LP.
///
/// A parallel solve can surface a different-but-equivalent completion of
/// the same integer answer — the continuous aux values carry whichever
/// worker's LP noise found the incumbent first, and that noise would leak
/// into the encoded certificate. The completion LP depends only on the
/// model and the integer assignment, so `jobs = 1` and `jobs = N`
/// certify to identical bytes. Returns the canonical incumbent together
/// with its objective in minimization form (the lowered problem's sense).
fn canonical_incumbent(
    p: &LpProblem,
    model: &Model,
    sol: &Solution,
) -> Result<(Vec<f64>, f64), MilpError> {
    let mut engine = SimplexEngine::new(p);
    for (j, var) in model.vars.iter().enumerate() {
        if var.kind == VarKind::Integer {
            let v = sol.values[j].round();
            engine.set_bound(j, v, v);
        }
    }
    let lp = engine.solve_fresh()?;
    if lp.status != LpStatus::Optimal {
        return Err(unsupported(
            "certify: the incumbent's integer assignment has no feasible completion",
        ));
    }
    let flip = if model.sense() == Sense::Maximize {
        -1.0
    } else {
        1.0
    };
    let solver_claim = flip * sol.objective;
    if (lp.objective - solver_claim).abs() > 1e-6 * solver_claim.abs().max(1.0) {
        return Err(unsupported(format!(
            "certify: canonical completion objective {} disagrees with the solver's claim {}",
            lp.objective, solver_claim
        )));
    }
    Ok((lp.x, lp.objective))
}

fn certify_bnb(
    model: &Model,
    opts: &SolveOptions,
    sol: &Solution,
) -> Result<Certificate, MilpError> {
    if sol.status != Status::Optimal {
        return Err(unsupported(
            "certify: branch-and-bound solution is not proven optimal",
        ));
    }
    let p = lower_to_lp(model);
    let snap = snapshot_of(&p, model);
    let (incumbent, claimed) = canonical_incumbent(&p, model, sol)?;
    let tolerance = opts.gap + SLACK_REL * claimed.abs().max(1.0);
    let target = dy(claimed).sub(&dy(tolerance));
    let mut replay = Replay::new(&p, snap, target, opts.max_nodes);
    let tree = replay.node()?;
    let cert = Certificate {
        backend: "bnb".into(),
        snapshot: replay.snap,
        incumbent,
        objective: claimed,
        tolerance,
        feas_tol: FEAS_TOL,
        int_tol: INT_TOL,
        obj_tol: OBJ_TOL,
        tree,
        meta: Json::Obj(vec![
            ("replay_nodes".into(), Json::from(replay.nodes as u64)),
            (
                "replay_lp_solves".into(),
                Json::from(replay.lp_solves as u64),
            ),
        ]),
    };
    self_check(&cert)?;
    Ok(cert)
}

// ---------------------------------------------------------------------------
// Continuous-voltage (YDS) KKT certificate
// ---------------------------------------------------------------------------

fn next_up(v: f64) -> f64 {
    debug_assert!(v >= 0.0 && v.is_finite());
    if v == 0.0 {
        f64::from_bits(1)
    } else {
        f64::from_bits(v.to_bits() + 1)
    }
}

fn certify_continuous(model: &Model, sol: &Solution) -> Result<Certificate, MilpError> {
    let p = lower_to_lp(model);
    let snap = snapshot_of(&p, model);
    let ladder = extract_ladder(model)?;
    let cont = solve_ladder(&ladder)?;
    let rate = cont.rate;

    // Row order in the snapshot matches `model.constraints` (lowering
    // preserves it), and `extract_ladder` builds its groups in the same
    // equality-row order — so walking the snapshot rows pairs each
    // selection row with its group and finds the deadline row.
    let mut duals: Vec<(usize, f64)> = Vec::new();
    let mut g = 0usize;
    for (r, row) in snap.rows.iter().enumerate() {
        match row.kind {
            CertRowKind::Eq => {
                // KKT multiplier of the exactly-one row: the group's best
                // deadline-adjusted energy over its available points.
                let mu = ladder.groups[g]
                    .iter()
                    .map(|pt| pt.e + rate * pt.t)
                    .fold(f64::INFINITY, f64::min);
                if mu.is_finite() && mu != 0.0 {
                    duals.push((r, mu));
                }
                g += 1;
            }
            CertRowKind::Le => {
                // KKT multiplier of the deadline row: minus the marginal
                // energy rate where the hull walk stopped.
                if rate != 0.0 {
                    duals.push((r, -rate));
                }
            }
        }
    }

    let lb: Vec<f64> = snap.vars.iter().map(|v| v.lb).collect();
    let ub: Vec<f64> = snap.vars.iter().map(|v| v.ub).collect();
    let bound = match eval_lagrangian(&snap, &lb, &ub, &duals, true) {
        Eval::Value(v) => v,
        Eval::Unbounded { var, .. } => {
            return Err(unsupported(format!(
                "certify: continuous KKT certificate has an unbounded direction on var {var}"
            )));
        }
    };

    // The declared rounding bound: the smallest tolerance that makes the
    // exact inequality `claimed − tolerance ≤ bound` hold. For an exact
    // (integral) continuous solve this is ~0; for an endpoint-rounded
    // solve it is precisely the rounding gap the backend reported.
    let claimed = sol.objective;
    let claimed_dy = dy(claimed);
    let mut tolerance = claimed_dy.sub(&bound).to_f64_lossy().max(0.0);
    for _ in 0..128 {
        if claimed_dy.sub(&dy(tolerance)).cmp_val(&bound) != Ordering::Greater {
            break;
        }
        tolerance = next_up(tolerance);
    }
    if claimed_dy.sub(&dy(tolerance)).cmp_val(&bound) == Ordering::Greater {
        return Err(unsupported(
            "certify: continuous KKT bound is unexpectedly weak",
        ));
    }

    let cert = Certificate {
        backend: "continuous".into(),
        snapshot: snap,
        incumbent: sol.values.clone(),
        objective: claimed,
        tolerance,
        feas_tol: FEAS_TOL,
        int_tol: INT_TOL,
        obj_tol: OBJ_TOL,
        tree: CertNode::Bound { duals },
        meta: Json::Obj(vec![
            ("rate".into(), Json::Num(rate)),
            ("continuous_bound".into(), Json::Num(bound.to_f64_lossy())),
        ]),
    };
    self_check(&cert)?;
    Ok(cert)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve_with_choice;
    use crate::LinExpr;

    /// A ladder-shaped model: groups of `(time, energy)` points, one
    /// exactly-one row per group (plus an SOS1 hint), one deadline row.
    fn ladder_model(groups: &[&[(f64, f64)]], deadline: f64) -> Model {
        let mut m = Model::new(Sense::Minimize);
        let mut obj = LinExpr::zero();
        let mut time = LinExpr::zero();
        for (gi, pts) in groups.iter().enumerate() {
            let mut sum = LinExpr::zero();
            let mut vars = Vec::new();
            for (pi, &(t, e)) in pts.iter().enumerate() {
                let v = m.bool_var(format!("g{gi}p{pi}"));
                obj += e * v;
                time += t * v;
                sum += 1.0 * v;
                vars.push(v);
            }
            m.add_sos1(vars);
            m.add_eq(sum, 1.0);
        }
        m.add_le(time, deadline);
        m.set_objective(obj);
        m
    }

    fn opts() -> SolveOptions {
        SolveOptions::default()
    }

    #[test]
    fn bnb_certificate_passes_the_checker() {
        let m = ladder_model(
            &[
                &[(1.0, 9.0), (2.0, 4.0), (4.0, 1.0)],
                &[(1.0, 7.0), (3.0, 2.0)],
                &[(2.0, 5.0), (5.0, 1.5)],
            ],
            7.0,
        );
        let sol = solve_with_choice(&m, SolverChoice::BranchAndBound, &opts()).unwrap();
        let cert = certify_solution(&m, &opts(), SolverChoice::BranchAndBound, &sol).unwrap();
        let report = dvs_cert::check(&cert);
        assert!(report.ok(), "{:?}", report.reject);
        assert!(report.bound_leaves + report.empty_leaves >= 1);
        assert_eq!(cert.backend, "bnb");
    }

    #[test]
    fn continuous_certificate_declares_the_rounding_gap() {
        let m = ladder_model(
            &[
                &[(1.0, 9.0), (2.0, 4.0), (4.0, 1.0)],
                &[(1.0, 7.0), (3.0, 2.0)],
            ],
            5.0,
        );
        let sol = solve_with_choice(&m, SolverChoice::Continuous, &opts()).unwrap();
        let cert = certify_solution(&m, &opts(), SolverChoice::Continuous, &sol).unwrap();
        let report = dvs_cert::check(&cert);
        assert!(report.ok(), "{:?}", report.reject);
        assert_eq!(cert.backend, "continuous");
        assert_eq!(report.bound_leaves, 1);
        // The declared tolerance is the rounding gap: claimed − bound.
        assert!(cert.tolerance >= 0.0);
    }

    #[test]
    fn certificates_are_deterministic_bytes() {
        let m = ladder_model(
            &[
                &[(1.0, 9.0), (2.0, 4.0), (4.0, 1.0)],
                &[(1.0, 7.0), (3.0, 2.0)],
            ],
            6.0,
        );
        let sol = solve_with_choice(&m, SolverChoice::BranchAndBound, &opts()).unwrap();
        let a = certify_solution(&m, &opts(), SolverChoice::BranchAndBound, &sol).unwrap();
        let b = certify_solution(&m, &opts(), SolverChoice::BranchAndBound, &sol).unwrap();
        assert_eq!(a.encode(), b.encode());
    }

    #[test]
    fn corrupted_claim_is_rejected_not_certified() {
        let m = ladder_model(&[&[(1.0, 9.0), (2.0, 4.0)]], 2.0);
        let mut sol = solve_with_choice(&m, SolverChoice::BranchAndBound, &opts()).unwrap();
        // Claim a better objective than the true optimum: the replay
        // cannot prove the tighter target and must refuse to certify.
        sol.objective -= 1.0;
        let err = certify_solution(&m, &opts(), SolverChoice::BranchAndBound, &sol);
        assert!(err.is_err());
    }

    #[test]
    fn infeasible_branches_get_farkas_leaves() {
        // Tight deadline: only the fastest point of each group fits, so
        // most disjunction children are infeasible.
        let m = ladder_model(
            &[
                &[(1.0, 9.0), (2.0, 4.0), (4.0, 1.0)],
                &[(1.0, 7.0), (3.0, 2.0)],
            ],
            2.0,
        );
        let sol = solve_with_choice(&m, SolverChoice::BranchAndBound, &opts()).unwrap();
        let cert = certify_solution(&m, &opts(), SolverChoice::BranchAndBound, &sol).unwrap();
        let report = dvs_cert::check(&cert);
        assert!(report.ok(), "{:?}", report.reject);
    }
}
