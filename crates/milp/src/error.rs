use std::fmt;

/// Errors from model construction or solving.
#[derive(Debug, Clone, PartialEq)]
pub enum MilpError {
    /// The problem has no feasible solution.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The branch-and-bound node or iteration limit was exhausted before the
    /// optimum was proven; carries the best incumbent objective if one was
    /// found.
    LimitReached {
        /// Best feasible objective found, if any.
        incumbent: Option<f64>,
    },
    /// A variable id referenced a different (or newer) model.
    BadVariable {
        /// The raw variable index.
        index: usize,
    },
    /// A variable was created with `lb > ub`.
    BadBounds {
        /// The raw variable index.
        index: usize,
        /// Lower bound.
        lb: f64,
        /// Upper bound.
        ub: f64,
    },
    /// The simplex failed to converge within its iteration budget (numerical
    /// trouble).
    SimplexStalled,
    /// The selected solver backend cannot represent this model (e.g. the
    /// `ContinuousYds` backend was forced on a model that is not a pure
    /// voltage-ladder selection problem).
    Unsupported {
        /// Human-readable description of the unsupported structure.
        reason: String,
    },
}

impl fmt::Display for MilpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MilpError::Infeasible => write!(f, "problem is infeasible"),
            MilpError::Unbounded => write!(f, "objective is unbounded"),
            MilpError::LimitReached { incumbent: Some(x) } => {
                write!(f, "node limit reached; best incumbent {x}")
            }
            MilpError::LimitReached { incumbent: None } => {
                write!(f, "node limit reached with no incumbent")
            }
            MilpError::BadVariable { index } => write!(f, "unknown variable #{index}"),
            MilpError::BadBounds { index, lb, ub } => {
                write!(f, "variable #{index} has inverted bounds [{lb}, {ub}]")
            }
            MilpError::SimplexStalled => write!(f, "simplex iteration limit exceeded"),
            MilpError::Unsupported { reason } => {
                write!(f, "solver backend does not support this model: {reason}")
            }
        }
    }
}

impl std::error::Error for MilpError {}
