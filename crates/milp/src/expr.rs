use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A decision variable handle. Cheap to copy; only meaningful together with
/// the [`crate::Model`] that created it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) usize);

impl Var {
    /// The variable's dense index within its model.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A linear expression `Σ c_j x_j + constant`, built with ordinary `+`,
/// `-` and `*` operators.
///
/// ```
/// use dvs_milp::{Model, Sense};
/// let mut m = Model::new(Sense::Minimize);
/// let x = m.num_var("x", 0.0, 10.0);
/// let y = m.num_var("y", 0.0, 10.0);
/// let e = 2.0 * x - y + 1.0;
/// assert_eq!(e.coeff(x), 2.0);
/// assert_eq!(e.coeff(y), -1.0);
/// assert_eq!(e.constant(), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinExpr {
    terms: BTreeMap<Var, f64>,
    constant: f64,
}

impl LinExpr {
    /// The zero expression.
    #[must_use]
    pub fn zero() -> Self {
        LinExpr::default()
    }

    /// A constant expression.
    #[must_use]
    pub fn constant_expr(c: f64) -> Self {
        LinExpr {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// Adds `coeff * var` to the expression.
    pub fn add_term(&mut self, var: Var, coeff: f64) {
        let entry = self.terms.entry(var).or_insert(0.0);
        *entry += coeff;
        if *entry == 0.0 {
            self.terms.remove(&var);
        }
    }

    /// Adds a constant.
    pub fn add_constant(&mut self, c: f64) {
        self.constant += c;
    }

    /// The coefficient of `var` (zero if absent).
    #[must_use]
    pub fn coeff(&self, var: Var) -> f64 {
        self.terms.get(&var).copied().unwrap_or(0.0)
    }

    /// The constant term.
    #[must_use]
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// Iterates `(var, coeff)` pairs in variable order.
    pub fn terms(&self) -> impl Iterator<Item = (Var, f64)> + '_ {
        self.terms.iter().map(|(&v, &c)| (v, c))
    }

    /// Number of variables with non-zero coefficients.
    #[must_use]
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the expression has no variable terms.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluates the expression at a point given as a dense value vector
    /// indexed by variable index.
    #[must_use]
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|(v, c)| c * values.get(v.0).copied().unwrap_or(0.0))
                .sum::<f64>()
    }
}

impl From<Var> for LinExpr {
    fn from(v: Var) -> Self {
        let mut e = LinExpr::zero();
        e.add_term(v, 1.0);
        e
    }
}

impl From<f64> for LinExpr {
    fn from(c: f64) -> Self {
        LinExpr::constant_expr(c)
    }
}

// --- operator plumbing ------------------------------------------------

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        for (v, c) in rhs.terms {
            self.add_term(v, c);
        }
        self.constant += rhs.constant;
        self
    }
}

impl AddAssign for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        for (v, c) in rhs.terms {
            self.add_term(v, c);
        }
        self.constant += rhs.constant;
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: LinExpr) -> LinExpr {
        for (v, c) in rhs.terms {
            self.add_term(v, -c);
        }
        self.constant -= rhs.constant;
        self
    }
}

impl SubAssign for LinExpr {
    fn sub_assign(&mut self, rhs: LinExpr) {
        for (v, c) in rhs.terms {
            self.add_term(v, -c);
        }
        self.constant -= rhs.constant;
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(mut self) -> LinExpr {
        for c in self.terms.values_mut() {
            *c = -*c;
        }
        self.constant = -self.constant;
        self
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, k: f64) -> LinExpr {
        if k == 0.0 {
            return LinExpr::zero();
        }
        for c in self.terms.values_mut() {
            *c *= k;
        }
        self.constant *= k;
        self
    }
}

impl Mul<LinExpr> for f64 {
    type Output = LinExpr;
    fn mul(self, e: LinExpr) -> LinExpr {
        e * self
    }
}

// Var-flavoured sugar: Var op Var, Var op LinExpr, f64 * Var, Var + f64 ...

impl Add<Var> for Var {
    type Output = LinExpr;
    fn add(self, rhs: Var) -> LinExpr {
        LinExpr::from(self) + LinExpr::from(rhs)
    }
}

impl Sub<Var> for Var {
    type Output = LinExpr;
    fn sub(self, rhs: Var) -> LinExpr {
        LinExpr::from(self) - LinExpr::from(rhs)
    }
}

impl Mul<f64> for Var {
    type Output = LinExpr;
    fn mul(self, k: f64) -> LinExpr {
        LinExpr::from(self) * k
    }
}

impl Mul<Var> for f64 {
    type Output = LinExpr;
    fn mul(self, v: Var) -> LinExpr {
        LinExpr::from(v) * self
    }
}

impl Add<f64> for Var {
    type Output = LinExpr;
    fn add(self, c: f64) -> LinExpr {
        LinExpr::from(self) + LinExpr::constant_expr(c)
    }
}

impl Sub<f64> for Var {
    type Output = LinExpr;
    fn sub(self, c: f64) -> LinExpr {
        LinExpr::from(self) - LinExpr::constant_expr(c)
    }
}

impl Add<LinExpr> for Var {
    type Output = LinExpr;
    fn add(self, e: LinExpr) -> LinExpr {
        LinExpr::from(self) + e
    }
}

impl Sub<LinExpr> for Var {
    type Output = LinExpr;
    fn sub(self, e: LinExpr) -> LinExpr {
        LinExpr::from(self) - e
    }
}

impl Add<Var> for LinExpr {
    type Output = LinExpr;
    fn add(self, v: Var) -> LinExpr {
        self + LinExpr::from(v)
    }
}

impl Sub<Var> for LinExpr {
    type Output = LinExpr;
    fn sub(self, v: Var) -> LinExpr {
        self - LinExpr::from(v)
    }
}

impl Add<f64> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, c: f64) -> LinExpr {
        self.constant += c;
        self
    }
}

impl Sub<f64> for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, c: f64) -> LinExpr {
        self.constant -= c;
        self
    }
}

impl Neg for Var {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        -LinExpr::from(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> Var {
        Var(i)
    }

    #[test]
    fn builds_and_merges_terms() {
        let e = 2.0 * v(0) + 3.0 * v(1) - v(0) + 5.0;
        assert_eq!(e.coeff(v(0)), 1.0);
        assert_eq!(e.coeff(v(1)), 3.0);
        assert_eq!(e.constant(), 5.0);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn cancelled_terms_are_removed() {
        let e = v(0) + v(1) - v(0);
        assert_eq!(e.coeff(v(0)), 0.0);
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn scalar_multiplication_distributes() {
        let e = (v(0) + 2.0 * v(1) + 3.0) * 2.0;
        assert_eq!(e.coeff(v(0)), 2.0);
        assert_eq!(e.coeff(v(1)), 4.0);
        assert_eq!(e.constant(), 6.0);
        let z = e * 0.0;
        assert!(z.is_empty());
        assert_eq!(z.constant(), 0.0);
    }

    #[test]
    fn negation() {
        let e = -(v(0) - 2.0 * v(1) + 1.0);
        assert_eq!(e.coeff(v(0)), -1.0);
        assert_eq!(e.coeff(v(1)), 2.0);
        assert_eq!(e.constant(), -1.0);
    }

    #[test]
    fn eval_at_point() {
        let e = 2.0 * v(0) + 3.0 * v(1) + 1.0;
        assert_eq!(e.eval(&[1.0, 2.0]), 9.0);
        // Missing values read as zero.
        assert_eq!(e.eval(&[1.0]), 3.0);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut e = LinExpr::zero();
        e += LinExpr::from(v(0));
        e += 2.0 * v(0) + 1.0;
        assert_eq!(e.coeff(v(0)), 3.0);
        assert_eq!(e.constant(), 1.0);
        e -= LinExpr::from(v(0)) * 3.0;
        assert!(e.is_empty());
    }
}
