//! A self-contained mixed-integer linear programming (MILP) solver.
//!
//! The paper solves its DVS mode-assignment problem with AMPL + CPLEX;
//! since CPLEX is closed-source, this crate provides the substrate from
//! scratch:
//!
//! * a **model-building API** ([`Model`], [`LinExpr`]) for assembling
//!   objectives and constraints over continuous, integer and binary
//!   variables;
//! * a **bounded-variable revised simplex** ([`simplex`]) with a phase-1
//!   artificial start, Dantzig pricing, a Bland anti-cycling fallback, and
//!   a warm-start **dual simplex** that restarts a node LP from its
//!   parent's basis — variable bounds are handled natively rather than as
//!   extra rows, which keeps the DVS formulations small;
//! * a **branch-and-bound** driver ([`solve`]) with depth-first diving for
//!   fast incumbents, best-bound pruning, basis reuse across nodes,
//!   pseudo-cost branching, integrality-aware presolve, and SOS1-aware
//!   group splits for the `Σ_m k_ijm = 1` mode-selection groups that
//!   dominate the DVS MILP;
//! * a **pluggable backend layer** ([`SolverBackend`]) with an exact
//!   `O(n log n)` continuous-voltage algorithm ([`ContinuousYds`]) next to
//!   the general search, selected explicitly or by shape via
//!   [`SolverChoice::Auto`].
//!
//! # Example
//!
//! ```
//! use dvs_milp::{Model, Sense};
//!
//! // max x + 2y  s.t.  x + y <= 4, x <= 3, y <= 2, x,y integer >= 0
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.int_var("x", 0.0, 3.0);
//! let y = m.int_var("y", 0.0, 2.0);
//! m.set_objective(x + 2.0 * y);
//! m.add_le(x + y, 4.0);
//! let sol = dvs_milp::solve(&m).unwrap();
//! assert_eq!(sol.objective.round() as i64, 6); // x=2, y=2
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod branch;
mod certify;
mod error;
mod expr;
mod model;
pub mod presolve;
pub mod simplex;
mod solution;

pub use backend::{
    backend_for, relaxation_bound, solve_with_choice, BranchAndBound, ContinuousYds, SolverBackend,
    SolverChoice,
};
#[allow(deprecated)]
pub use branch::BranchConfig;
pub use branch::{solve, solve_seeded, solve_with, BranchRule, SolveOptions};
pub use certify::certify_solution;
pub use error::MilpError;
pub use expr::{LinExpr, Var};
pub use model::{Cmp, Constraint, Model, Sense, VarKind};
pub use presolve::{presolve, presolve_int, Presolved};
pub use solution::{Incumbent, Solution, SolveStats, Status};
