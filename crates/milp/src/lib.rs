//! A self-contained mixed-integer linear programming (MILP) solver.
//!
//! The paper solves its DVS mode-assignment problem with AMPL + CPLEX;
//! since CPLEX is closed-source, this crate provides the substrate from
//! scratch:
//!
//! * a **model-building API** ([`Model`], [`LinExpr`]) for assembling
//!   objectives and constraints over continuous, integer and binary
//!   variables;
//! * a **bounded-variable revised primal simplex** ([`simplex`]) with a
//!   phase-1 artificial start, Dantzig pricing and a Bland anti-cycling
//!   fallback — variable bounds are handled natively rather than as extra
//!   rows, which keeps the DVS formulations small;
//! * a **branch-and-bound** driver ([`solve`]) with depth-first diving for
//!   fast incumbents, best-bound pruning, reduced-cost-free presolve of
//!   fixed variables, and SOS1-aware branching for the `Σ_m k_ijm = 1`
//!   mode-selection groups that dominate the DVS MILP.
//!
//! # Example
//!
//! ```
//! use dvs_milp::{Model, Sense};
//!
//! // max x + 2y  s.t.  x + y <= 4, x <= 3, y <= 2, x,y integer >= 0
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.int_var("x", 0.0, 3.0);
//! let y = m.int_var("y", 0.0, 2.0);
//! m.set_objective(x + 2.0 * y);
//! m.add_le(x + y, 4.0);
//! let sol = dvs_milp::solve(&m).unwrap();
//! assert_eq!(sol.objective.round() as i64, 6); // x=2, y=2
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
mod error;
mod expr;
mod model;
pub mod presolve;
pub mod simplex;
mod solution;

pub use branch::{solve, solve_seeded, solve_with, BranchConfig, BranchRule};
pub use error::MilpError;
pub use expr::{LinExpr, Var};
pub use model::{Cmp, Constraint, Model, Sense, VarKind};
pub use presolve::{presolve, Presolved};
pub use solution::{Incumbent, Solution, SolveStats, Status};
