use crate::{LinExpr, MilpError, Var};

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Variable domain kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Continuous within its bounds.
    Continuous,
    /// Integer within its bounds (binaries are integers with bounds [0, 1]).
    Integer,
}

/// Constraint comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

/// A linear constraint `expr cmp rhs` (any constant inside `expr` is folded
/// into `rhs` at solve time).
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Left-hand side.
    pub expr: LinExpr,
    /// Comparison.
    pub cmp: Cmp,
    /// Right-hand side constant.
    pub rhs: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct VarDef {
    pub name: String,
    pub lb: f64,
    pub ub: f64,
    pub kind: VarKind,
}

/// A mixed-integer linear program under construction.
///
/// Variables are created through [`Model::num_var`], [`Model::int_var`] and
/// [`Model::bool_var`]; constraints through [`Model::add_le`] /
/// [`Model::add_ge`] / [`Model::add_eq`]. Solve with [`crate::solve`].
#[derive(Debug, Clone)]
pub struct Model {
    sense: Sense,
    pub(crate) vars: Vec<VarDef>,
    pub(crate) constraints: Vec<Constraint>,
    objective: LinExpr,
    pub(crate) sos1_groups: Vec<Vec<Var>>,
}

impl Model {
    /// Creates an empty model optimizing in `sense`.
    #[must_use]
    pub fn new(sense: Sense) -> Self {
        Model {
            sense,
            vars: Vec::new(),
            constraints: Vec::new(),
            objective: LinExpr::zero(),
            sos1_groups: Vec::new(),
        }
    }

    /// The optimization direction.
    #[must_use]
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Adds a continuous variable with bounds `[lb, ub]` (`f64::INFINITY`
    /// allowed for `ub`, `f64::NEG_INFINITY` for `lb`).
    pub fn num_var(&mut self, name: impl Into<String>, lb: f64, ub: f64) -> Var {
        self.push_var(name.into(), lb, ub, VarKind::Continuous)
    }

    /// Adds an integer variable with bounds `[lb, ub]`.
    pub fn int_var(&mut self, name: impl Into<String>, lb: f64, ub: f64) -> Var {
        self.push_var(name.into(), lb, ub, VarKind::Integer)
    }

    /// Adds a binary (0/1) variable.
    pub fn bool_var(&mut self, name: impl Into<String>) -> Var {
        self.push_var(name.into(), 0.0, 1.0, VarKind::Integer)
    }

    fn push_var(&mut self, name: String, lb: f64, ub: f64, kind: VarKind) -> Var {
        let v = Var(self.vars.len());
        self.vars.push(VarDef { name, lb, ub, kind });
        v
    }

    /// Sets the objective expression.
    pub fn set_objective(&mut self, obj: impl Into<LinExpr>) {
        self.objective = obj.into();
    }

    /// The current objective.
    #[must_use]
    pub fn objective(&self) -> &LinExpr {
        &self.objective
    }

    /// Adds `expr <= rhs`.
    pub fn add_le(&mut self, expr: impl Into<LinExpr>, rhs: f64) {
        self.constraints.push(Constraint {
            expr: expr.into(),
            cmp: Cmp::Le,
            rhs,
        });
    }

    /// Adds `expr >= rhs`.
    pub fn add_ge(&mut self, expr: impl Into<LinExpr>, rhs: f64) {
        self.constraints.push(Constraint {
            expr: expr.into(),
            cmp: Cmp::Ge,
            rhs,
        });
    }

    /// Adds `expr == rhs`.
    pub fn add_eq(&mut self, expr: impl Into<LinExpr>, rhs: f64) {
        self.constraints.push(Constraint {
            expr: expr.into(),
            cmp: Cmp::Eq,
            rhs,
        });
    }

    /// Adds the two-sided constraint `lo <= expr <= hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn add_range(&mut self, expr: impl Into<LinExpr>, lo: f64, hi: f64) {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        let e = expr.into();
        self.constraints.push(Constraint {
            expr: e.clone(),
            cmp: Cmp::Ge,
            rhs: lo,
        });
        self.constraints.push(Constraint {
            expr: e,
            cmp: Cmp::Le,
            rhs: hi,
        });
    }

    /// Declares that the given binary variables form an SOS1 group (at most
    /// one non-zero — for the DVS formulation, exactly one by an
    /// accompanying equality). The branch-and-bound uses groups for
    /// split-the-set branching, which is far more effective than 0/1
    /// branching on individual members.
    pub fn add_sos1(&mut self, vars: Vec<Var>) {
        if vars.len() > 1 {
            self.sos1_groups.push(vars);
        }
    }

    /// The continuous (LP) relaxation of this model: every integer
    /// variable becomes continuous over the same bounds and all SOS1
    /// branching groups are dropped. Solving the relaxation yields a valid
    /// lower bound on the MILP objective (for minimization) — the
    /// differential-testing oracle uses this to cross-check the
    /// branch-and-bound result.
    #[must_use]
    pub fn relax(&self) -> Model {
        let mut relaxed = self.clone();
        for v in &mut relaxed.vars {
            v.kind = VarKind::Continuous;
        }
        relaxed.sos1_groups.clear();
        relaxed
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Number of integer (including binary) variables.
    #[must_use]
    pub fn num_int_vars(&self) -> usize {
        self.vars
            .iter()
            .filter(|v| v.kind == VarKind::Integer)
            .count()
    }

    /// The name given to `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this model.
    #[must_use]
    pub fn var_name(&self, var: Var) -> &str {
        &self.vars[var.0].name
    }

    /// Bounds of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this model.
    #[must_use]
    pub fn bounds(&self, var: Var) -> (f64, f64) {
        (self.vars[var.0].lb, self.vars[var.0].ub)
    }

    /// Validates variable bounds and constraint variable references.
    ///
    /// # Errors
    ///
    /// [`MilpError::BadBounds`] or [`MilpError::BadVariable`].
    pub fn validate(&self) -> Result<(), MilpError> {
        for (i, v) in self.vars.iter().enumerate() {
            if v.lb > v.ub {
                return Err(MilpError::BadBounds {
                    index: i,
                    lb: v.lb,
                    ub: v.ub,
                });
            }
        }
        let check = |e: &LinExpr| -> Result<(), MilpError> {
            for (v, _) in e.terms() {
                if v.0 >= self.vars.len() {
                    return Err(MilpError::BadVariable { index: v.0 });
                }
            }
            Ok(())
        };
        check(&self.objective)?;
        for c in &self.constraints {
            check(&c.expr)?;
        }
        for g in &self.sos1_groups {
            for v in g {
                if v.0 >= self.vars.len() {
                    return Err(MilpError::BadVariable { index: v.0 });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_accumulates_vars_and_constraints() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.num_var("x", 0.0, 1.0);
        let y = m.bool_var("y");
        let z = m.int_var("z", -5.0, 5.0);
        m.set_objective(x + y + z);
        m.add_le(x + y, 1.0);
        m.add_ge(LinExpr::from(z), -1.0);
        m.add_eq(x - z, 0.0);
        assert_eq!(m.num_vars(), 3);
        assert_eq!(m.num_constraints(), 3);
        assert_eq!(m.num_int_vars(), 2);
        assert_eq!(m.var_name(y), "y");
        assert_eq!(m.bounds(z), (-5.0, 5.0));
        assert!(m.validate().is_ok());
    }

    #[test]
    fn inverted_bounds_detected() {
        let mut m = Model::new(Sense::Minimize);
        m.num_var("x", 2.0, 1.0);
        assert!(matches!(m.validate(), Err(MilpError::BadBounds { .. })));
    }

    #[test]
    fn foreign_variable_detected() {
        let mut m = Model::new(Sense::Minimize);
        let _x = m.num_var("x", 0.0, 1.0);
        m.set_objective(LinExpr::from(Var(7)));
        assert!(matches!(
            m.validate(),
            Err(MilpError::BadVariable { index: 7 })
        ));
    }

    #[test]
    fn add_range_expands_to_two_rows() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.num_var("x", 0.0, 10.0);
        m.set_objective(LinExpr::from(x));
        m.add_range(2.0 * x, 3.0, 8.0);
        assert_eq!(m.num_constraints(), 2);
        let s = crate::solve(&m).unwrap();
        assert!((s.value(x) - 4.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn add_range_rejects_inverted() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.num_var("x", 0.0, 1.0);
        m.add_range(LinExpr::from(x), 2.0, 1.0);
    }

    #[test]
    fn relaxation_lower_bounds_the_milp() {
        // min x + y s.t. 4x + 3y >= 6 with binaries: integral optimum picks
        // x = y = 1 (cost 2); the relaxation sits on the constraint at
        // x = 1, y = 2/3 (cost 5/3).
        let mut m = Model::new(Sense::Minimize);
        let x = m.bool_var("x");
        let y = m.bool_var("y");
        m.set_objective(x + y);
        m.add_ge(4.0 * x + 3.0 * y, 6.0);
        // An unrelated exactly-one pair exercises SOS1 clearing.
        let u = m.bool_var("u");
        let v = m.bool_var("v");
        m.add_eq(u + v, 1.0);
        m.add_sos1(vec![u, v]);
        let integral = crate::solve(&m).unwrap();
        assert!((integral.objective - 2.0).abs() < 1e-6);

        let r = m.relax();
        assert_eq!(r.num_int_vars(), 0);
        assert_eq!(r.num_vars(), m.num_vars());
        assert!(r.sos1_groups.is_empty());
        let relaxed = crate::solve(&r).unwrap();
        assert!((relaxed.objective - 5.0 / 3.0).abs() < 1e-6);
        assert!(relaxed.objective <= integral.objective + 1e-9);
        // Bounds survive the relaxation.
        assert_eq!(r.bounds(x), (0.0, 1.0));
    }

    #[test]
    fn sos1_singletons_ignored() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.bool_var("x");
        let y = m.bool_var("y");
        m.add_sos1(vec![x]);
        assert!(m.sos1_groups.is_empty());
        m.add_sos1(vec![x, y]);
        assert_eq!(m.sos1_groups.len(), 1);
    }
}
