//! LP presolve: cheap logical reductions applied before the simplex.
//!
//! Operates on an [`LpProblem`] without changing its variable space (so
//! solutions map back 1:1):
//!
//! * **singleton rows** `a·x ≤/= b` become bound tightenings and are
//!   dropped;
//! * **activity bounds**: rows whose minimum activity already exceeds the
//!   rhs prove infeasibility; rows whose maximum activity cannot reach the
//!   rhs are redundant and dropped;
//! * **bound propagation**: for `≤` rows, each variable's bound is
//!   tightened against the row's residual activity;
//! * **coefficient reduction** ([`presolve_int`] only): for a binary
//!   variable `x_j` with `a_j > 0` in a `≤` row whose maximum activity `M`
//!   exceeds the rhs but satisfies `M − a_j < b`, the pair `(a_j, b)` is
//!   replaced by `(M − b, M − a_j)` — the classic Savelsbergh improvement
//!   that leaves the integer feasible set untouched while cutting the LP
//!   relaxation;
//! * iterated to a fixpoint (bounded rounds).
//!
//! Inside branch-and-bound this runs at every node (node bounds arrive as
//! variable-bound overrides, which is exactly what presolve feeds on), and
//! typically removes most of the mode-selection rows once a few binaries
//! are fixed.

use crate::simplex::{LpProblem, RowKind};

/// Outcome of presolving: either a reduced problem or a proof of
/// infeasibility.
#[derive(Debug, Clone)]
pub enum Presolved {
    /// The reduced problem (same variables, possibly fewer rows and
    /// tighter bounds) plus statistics.
    Reduced {
        /// The reduced problem.
        problem: LpProblem,
        /// Rows removed.
        rows_removed: usize,
        /// Bound tightenings applied.
        bounds_tightened: usize,
    },
    /// The constraints are unsatisfiable within the bounds.
    Infeasible,
}

const TOL: f64 = 1e-9;
/// Presolve rounds before giving up on reaching a fixpoint.
const MAX_ROUNDS: usize = 8;

/// Runs presolve with no integrality information (every variable treated
/// as continuous). The returned problem has identical optimal solutions
/// (over the same variable indices) as the input.
#[must_use]
pub fn presolve(p: &LpProblem) -> Presolved {
    presolve_int(p, &[])
}

/// Runs presolve with an integrality mask: `is_int[j]` marks variable `j`
/// as integer, unlocking coefficient reduction on binary variables. The
/// returned problem has the same *integer* feasible set and optimum as the
/// input (its LP relaxation may be strictly tighter). An empty mask
/// disables the integer-only reductions.
#[must_use]
pub fn presolve_int(p: &LpProblem, is_int: &[bool]) -> Presolved {
    let n = p.num_vars;
    let mut lb = p.lb.clone();
    let mut ub = p.ub.clone();
    let mut rhs_v = p.rhs.clone();
    let mut live_row = vec![true; p.num_rows()];
    let mut bounds_tightened = 0usize;

    // Row-major view of the matrix for activity computations.
    let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); p.num_rows()];
    for (j, col) in p.cols.iter().enumerate() {
        for &(r, a) in col {
            rows[r].push((j, a));
        }
    }

    for _ in 0..MAX_ROUNDS {
        let mut changed = false;
        for r in 0..rows.len() {
            if !live_row[r] {
                continue;
            }
            let terms = &rows[r];
            let rhs = rhs_v[r];
            let kind = p.row_kind[r];

            // Activity bounds of the row.
            let mut min_act = 0.0f64;
            let mut max_act = 0.0f64;
            for &(j, a) in terms {
                if a > 0.0 {
                    min_act += a * lb[j];
                    max_act += a * ub[j];
                } else {
                    min_act += a * ub[j];
                    max_act += a * lb[j];
                }
            }

            // Infeasibility / redundancy by activity.
            match kind {
                RowKind::Le => {
                    if min_act > rhs + TOL.max(1e-7 * rhs.abs()) {
                        return Presolved::Infeasible;
                    }
                    if max_act <= rhs + TOL {
                        live_row[r] = false;
                        changed = true;
                        continue;
                    }
                }
                RowKind::Eq => {
                    if min_act > rhs + TOL.max(1e-7 * rhs.abs())
                        || max_act < rhs - TOL.max(1e-7 * rhs.abs())
                    {
                        return Presolved::Infeasible;
                    }
                    if (min_act - max_act).abs() <= TOL && (min_act - rhs).abs() <= TOL {
                        live_row[r] = false;
                        changed = true;
                        continue;
                    }
                }
            }

            // Singleton rows tighten a bound and disappear.
            if terms.len() == 1 {
                let (j, a) = terms[0];
                let v = rhs / a;
                match (kind, a > 0.0) {
                    (RowKind::Le, true) => {
                        if v < ub[j] - TOL {
                            ub[j] = v;
                            bounds_tightened += 1;
                        }
                    }
                    (RowKind::Le, false) => {
                        if v > lb[j] + TOL {
                            lb[j] = v;
                            bounds_tightened += 1;
                        }
                    }
                    (RowKind::Eq, _) => {
                        if v > lb[j] + TOL || v < ub[j] - TOL {
                            lb[j] = lb[j].max(v);
                            ub[j] = ub[j].min(v);
                            bounds_tightened += 1;
                        }
                    }
                }
                if lb[j] > ub[j] + TOL {
                    return Presolved::Infeasible;
                }
                live_row[r] = false;
                changed = true;
                continue;
            }

            // Bound propagation on <= rows: x_j <= (rhs - min_act_without_j)/a.
            if kind == RowKind::Le && min_act.is_finite() {
                for &(j, a) in terms {
                    let contrib_min = if a > 0.0 { a * lb[j] } else { a * ub[j] };
                    let rest = min_act - contrib_min;
                    if !rest.is_finite() {
                        continue;
                    }
                    if a > 0.0 {
                        let new_ub = (rhs - rest) / a;
                        if new_ub < ub[j] - TOL.max(1e-7 * ub[j].abs()) {
                            ub[j] = new_ub;
                            bounds_tightened += 1;
                            changed = true;
                        }
                    } else {
                        let new_lb = (rhs - rest) / a;
                        if new_lb > lb[j] + TOL.max(1e-7 * lb[j].abs()) {
                            lb[j] = new_lb;
                            bounds_tightened += 1;
                            changed = true;
                        }
                    }
                    if lb[j] > ub[j] + 1e-7 {
                        return Presolved::Infeasible;
                    }
                }
            }

            // Coefficient reduction on binary variables in <= rows.
            if kind == RowKind::Le && !is_int.is_empty() {
                let row_len = rows[r].len();
                for t in 0..row_len {
                    let (j, a) = rows[r][t];
                    if a <= TOL
                        || !is_int.get(j).copied().unwrap_or(false)
                        || lb[j].abs() > TOL
                        || (ub[j] - 1.0).abs() > TOL
                    {
                        continue;
                    }
                    // Max activity with the bounds as tightened so far.
                    let mut m = 0.0f64;
                    for &(k, ak) in &rows[r] {
                        m += if ak > 0.0 { ak * ub[k] } else { ak * lb[k] };
                    }
                    if !m.is_finite() {
                        break;
                    }
                    let b = rhs_v[r];
                    if m > b + TOL && m - a < b - TOL {
                        // (a, b) -> (m - b, m - a): same binary feasible
                        // set, strictly tighter LP relaxation.
                        rows[r][t].1 = m - b;
                        rhs_v[r] = m - a;
                        bounds_tightened += 1;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Assemble the reduced problem.
    let mut out = LpProblem::new(n);
    out.obj = p.obj.clone();
    out.obj_offset = p.obj_offset;
    out.lb = lb;
    out.ub = ub;
    let mut rows_removed = 0;
    for r in 0..rows.len() {
        if live_row[r] {
            out.add_row(&rows[r], p.row_kind[r], rhs_v[r]);
        } else {
            rows_removed += 1;
        }
    }
    if dvs_obs::enabled() {
        dvs_obs::counter("milp.presolve_rows_removed", rows_removed as u64);
        dvs_obs::counter("milp.presolve_bounds_tightened", bounds_tightened as u64);
    }
    Presolved::Reduced {
        problem: out,
        rows_removed,
        bounds_tightened,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::{solve_lp, LpStatus};

    fn optimal_value(p: &LpProblem) -> f64 {
        let s = solve_lp(p).expect("lp solves");
        assert_eq!(s.status, LpStatus::Optimal);
        s.objective
    }

    #[test]
    fn singleton_rows_become_bounds() {
        // min -x - y s.t. x <= 3 (row), y <= 2 (row), x + y <= 4.
        let mut p = LpProblem::new(2);
        p.obj = vec![-1.0, -1.0];
        p.add_row(&[(0, 1.0)], RowKind::Le, 3.0);
        p.add_row(&[(1, 1.0)], RowKind::Le, 2.0);
        p.add_row(&[(0, 1.0), (1, 1.0)], RowKind::Le, 4.0);
        let before = optimal_value(&p);
        match presolve(&p) {
            Presolved::Reduced {
                problem,
                rows_removed,
                bounds_tightened,
            } => {
                assert_eq!(rows_removed, 2);
                assert!(bounds_tightened >= 2);
                assert!((problem.ub[0] - 3.0).abs() < 1e-9);
                assert!((problem.ub[1] - 2.0).abs() < 1e-9);
                assert!((optimal_value(&problem) - before).abs() < 1e-6);
            }
            Presolved::Infeasible => panic!("feasible problem"),
        }
    }

    #[test]
    fn redundant_rows_are_dropped() {
        // x in [0, 1]; row x <= 10 can never bind.
        let mut p = LpProblem::new(1);
        p.obj = vec![-1.0];
        p.ub = vec![1.0];
        p.add_row(&[(0, 1.0)], RowKind::Le, 10.0);
        match presolve(&p) {
            Presolved::Reduced {
                rows_removed,
                problem,
                ..
            } => {
                assert_eq!(rows_removed, 1);
                assert_eq!(problem.num_rows(), 0);
            }
            Presolved::Infeasible => panic!("feasible"),
        }
    }

    #[test]
    fn activity_infeasibility_detected() {
        // x + y >= 5 (as -x - y <= -5) with x, y in [0, 1].
        let mut p = LpProblem::new(2);
        p.ub = vec![1.0, 1.0];
        p.add_row(&[(0, -1.0), (1, -1.0)], RowKind::Le, -5.0);
        assert!(matches!(presolve(&p), Presolved::Infeasible));
    }

    #[test]
    fn equality_activity_infeasibility_detected() {
        // x + y = 5 with x, y in [0, 1].
        let mut p = LpProblem::new(2);
        p.ub = vec![1.0, 1.0];
        p.add_row(&[(0, 1.0), (1, 1.0)], RowKind::Eq, 5.0);
        assert!(matches!(presolve(&p), Presolved::Infeasible));
    }

    #[test]
    fn bound_propagation_tightens() {
        // 2x + y <= 4 with y >= 2 forces x <= 1.
        let mut p = LpProblem::new(2);
        p.lb = vec![0.0, 2.0];
        p.ub = vec![100.0, 100.0];
        p.add_row(&[(0, 2.0), (1, 1.0)], RowKind::Le, 4.0);
        match presolve(&p) {
            Presolved::Reduced { problem, .. } => {
                assert!(problem.ub[0] <= 1.0 + 1e-9, "ub[0] = {}", problem.ub[0]);
                assert!(problem.ub[1] <= 4.0 + 1e-9, "ub[1] = {}", problem.ub[1]);
            }
            Presolved::Infeasible => panic!("feasible"),
        }
    }

    #[test]
    fn coefficient_reduction_tightens_binary_relaxation() {
        // 2x + 3y <= 4 over binaries has integer optimum -1 for
        // min -x - y, but its LP relaxation reaches -5/3. Coefficient
        // reduction rewrites the row (to x + y <= 1 after two passes), so
        // the reduced relaxation already attains the integer optimum.
        let mut p = LpProblem::new(2);
        p.obj = vec![-1.0, -1.0];
        p.ub = vec![1.0, 1.0];
        p.add_row(&[(0, 2.0), (1, 3.0)], RowKind::Le, 4.0);
        let direct = optimal_value(&p);
        assert!((direct - (-5.0 / 3.0)).abs() < 1e-6, "direct {direct}");
        match presolve_int(&p, &[true, true]) {
            Presolved::Reduced {
                problem,
                bounds_tightened,
                ..
            } => {
                assert!(bounds_tightened >= 1);
                let reduced = optimal_value(&problem);
                assert!((reduced - (-1.0)).abs() < 1e-6, "reduced {reduced}");
            }
            Presolved::Infeasible => panic!("feasible"),
        }
    }

    #[test]
    fn continuous_presolve_never_reduces_coefficients() {
        // Same row, but continuous variables: the relaxation optimum must
        // be preserved exactly, so no coefficient reduction may fire.
        let mut p = LpProblem::new(2);
        p.obj = vec![-1.0, -1.0];
        p.ub = vec![1.0, 1.0];
        p.add_row(&[(0, 2.0), (1, 3.0)], RowKind::Le, 4.0);
        let direct = optimal_value(&p);
        match presolve(&p) {
            Presolved::Reduced { problem, .. } => {
                let reduced = optimal_value(&problem);
                assert!((direct - reduced).abs() < 1e-9);
            }
            Presolved::Infeasible => panic!("feasible"),
        }
    }

    #[test]
    fn presolve_preserves_optimum_on_random_lps() {
        let mut seed = 0xC0FFEEu64;
        let mut rnd = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) % 1000) as f64 / 100.0
        };
        for _ in 0..30 {
            let n = 4;
            let mut p = LpProblem::new(n);
            for j in 0..n {
                p.obj[j] = rnd() - 5.0;
                p.ub[j] = 5.0 + rnd();
            }
            for _ in 0..4 {
                let terms: Vec<(usize, f64)> = (0..n).map(|j| (j, rnd() - 3.0)).collect();
                p.add_row(&terms, RowKind::Le, 10.0 + rnd());
            }
            let direct = solve_lp(&p).expect("solves");
            match presolve(&p) {
                Presolved::Reduced { problem, .. } => {
                    let reduced = solve_lp(&problem).expect("solves");
                    assert_eq!(direct.status, reduced.status);
                    if direct.status == LpStatus::Optimal {
                        assert!(
                            (direct.objective - reduced.objective).abs()
                                < 1e-5 * direct.objective.abs().max(1.0),
                            "direct {} vs reduced {}",
                            direct.objective,
                            reduced.objective
                        );
                    }
                }
                Presolved::Infeasible => {
                    assert_eq!(direct.status, LpStatus::Infeasible);
                }
            }
        }
    }
}
