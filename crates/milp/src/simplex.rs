//! Bounded-variable revised simplex: primal for cold starts, dual for
//! warm starts from a parent basis.
//!
//! Solves `min c'x` subject to `Ax ≤/= b` and `l ≤ x ≤ u`, handling the
//! bounds natively (no extra rows), with:
//!
//! * slack-plus-artificial phase 1 (artificials only where the slack basis
//!   is infeasible);
//! * dense explicit basis inverse, refactorized periodically for stability;
//! * Dantzig pricing with an automatic Bland's-rule fallback against
//!   cycling;
//! * bound-flip ("long step") handling for boxed variables;
//! * a **dual simplex** ([`SimplexEngine::solve_warm`]) that restarts from
//!   a previously optimal [`Basis`] after bound tightenings — the
//!   branch-and-bound driver reuses the parent node's basis instead of
//!   re-solving each child from scratch.
//!
//! Columns are stored in a flat compressed-sparse-column layout
//! (`col_ptr`/`row_idx`/`col_val`), shared by every solve on the same
//! [`SimplexEngine`]; slack and artificial columns are materialized once at
//! construction so a warm start never reallocates.
//!
//! Callers normally go through [`crate::solve`], which adds branch-and-bound
//! on top; this module is public so the LP layer can be tested and used
//! directly.

use crate::MilpError;

/// Row comparison in an [`LpProblem`] — `Le` (`≤`) or `Eq` (`=`).
/// `≥` rows must be pre-negated by the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowKind {
    /// `a·x ≤ b`
    Le,
    /// `a·x = b`
    Eq,
}

/// A linear program in computational form: minimize `obj·x` over
/// `l ≤ x ≤ u` subject to the rows.
#[derive(Debug, Clone)]
pub struct LpProblem {
    /// Number of structural variables.
    pub num_vars: usize,
    /// Sparse columns: `cols[j]` lists `(row, coefficient)` pairs.
    pub cols: Vec<Vec<(usize, f64)>>,
    /// Objective coefficients (length `num_vars`).
    pub obj: Vec<f64>,
    /// Constant added to the objective value.
    pub obj_offset: f64,
    /// Lower bounds (may be `NEG_INFINITY`).
    pub lb: Vec<f64>,
    /// Upper bounds (may be `INFINITY`).
    pub ub: Vec<f64>,
    /// Row kinds (length = number of rows).
    pub row_kind: Vec<RowKind>,
    /// Row right-hand sides.
    pub rhs: Vec<f64>,
}

impl LpProblem {
    /// An empty problem with `num_vars` variables, all in `[0, ∞)`, zero
    /// objective and no rows.
    #[must_use]
    pub fn new(num_vars: usize) -> Self {
        LpProblem {
            num_vars,
            cols: vec![Vec::new(); num_vars],
            obj: vec![0.0; num_vars],
            obj_offset: 0.0,
            lb: vec![0.0; num_vars],
            ub: vec![f64::INFINITY; num_vars],
            row_kind: Vec::new(),
            rhs: Vec::new(),
        }
    }

    /// Appends a row given as sparse `(var, coeff)` terms.
    pub fn add_row(&mut self, terms: &[(usize, f64)], kind: RowKind, rhs: f64) {
        let r = self.row_kind.len();
        for &(j, a) in terms {
            if a != 0.0 {
                self.cols[j].push((r, a));
            }
        }
        self.row_kind.push(kind);
        self.rhs.push(rhs);
    }

    /// Number of rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.row_kind.len()
    }
}

/// Outcome status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// Proven optimal.
    Optimal,
    /// No feasible point.
    Infeasible,
    /// Objective unbounded below.
    Unbounded,
}

/// Result of [`solve_lp`].
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Solve status.
    pub status: LpStatus,
    /// Objective value (meaningful only when `status == Optimal`).
    pub objective: f64,
    /// Primal values for the structural variables.
    pub x: Vec<f64>,
    /// Row dual values `y = c_B B⁻¹` at the optimum (empty unless
    /// `Optimal`). For a minimization with `≤` rows, `y_i ≤ 0`; `-y_i` is
    /// the shadow price of row `i`'s right-hand side.
    pub duals: Vec<f64>,
    /// Simplex iterations used (both phases, primal and dual).
    pub iterations: usize,
    /// Basis-change pivots (iterations that replaced a basic variable),
    /// primal and dual combined.
    pub pivots: usize,
    /// Pivots with a zero step length (degenerate).
    pub degenerate_pivots: usize,
    /// Nonbasic bound-to-bound flips (iterations without a basis change).
    pub bound_flips: usize,
    /// Basis-inverse rebuilds (initial factorization, periodic refresh,
    /// and post-repair rebuilds).
    pub refactorizations: usize,
    /// Basis changes performed by the warm-start dual simplex (a subset
    /// of `pivots`; zero for cold solves).
    pub dual_pivots: usize,
}

impl LpSolution {
    fn empty(status: LpStatus, n: usize) -> Self {
        LpSolution {
            status,
            objective: 0.0,
            x: vec![0.0; n],
            duals: Vec::new(),
            iterations: 0,
            pivots: 0,
            degenerate_pivots: 0,
            bound_flips: 0,
            refactorizations: 0,
            dual_pivots: 0,
        }
    }
}

const TOL: f64 = 1e-9;
const RATIO_TOL: f64 = 1e-10;
/// Minimum magnitude for an acceptable pivot element; rows with smaller
/// direction components are treated as unaffected, keeping the basis
/// well-conditioned.
const PIVOT_TOL: f64 = 1e-7;
/// Tolerance on reduced-cost signs when deciding whether a restored basis
/// is still dual feasible, and on primal bound violations in the dual
/// simplex.
const WARM_TOL: f64 = 1e-7;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColState {
    Basic(usize),
    AtLower,
    AtUpper,
}

/// A snapshot of the simplex basis at the end of a solve, reusable to
/// warm-start a later solve on the same [`SimplexEngine`] after bound
/// changes. Opaque: the only useful operations are cloning it and handing
/// it back to [`SimplexEngine::solve_warm`].
#[derive(Debug, Clone)]
pub struct Basis {
    state: Vec<ColState>,
    basis: Vec<usize>,
    art_sign: Vec<f64>,
}

/// A reusable simplex solver bound to one problem's constraint matrix.
///
/// The engine owns the columns (structural, slack and artificial) in a
/// cache-friendly flat CSC layout plus the full working tableau state.
/// Between solves only the variable bounds may change
/// ([`SimplexEngine::set_bound`] / [`SimplexEngine::reset_bounds`]), which
/// is exactly the branch-and-bound use case: each node tightens a few
/// bounds, solves, and passes its [`Basis`] down to its children.
pub struct SimplexEngine {
    n: usize,
    m: usize,
    ncols: usize,
    // Flat CSC over all columns: structural 0..n, slack n..n+m,
    // artificial n+m..n+2m. Artificial columns have exactly one entry
    // whose value is rewritten to ±1 per solve (`art_sign`).
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    col_val: Vec<f64>,
    obj: Vec<f64>,
    obj_offset: f64,
    rhs: Vec<f64>,
    // Original structural bounds, restored by `reset_bounds`.
    base_lb: Vec<f64>,
    base_ub: Vec<f64>,
    // Working state.
    lb: Vec<f64>,
    ub: Vec<f64>,
    cost: Vec<f64>,
    state: Vec<ColState>,
    x: Vec<f64>,
    basis: Vec<usize>,
    binv: Vec<f64>, // row-major m x m
    art_sign: Vec<f64>,
    // Counters for the solve in progress.
    iterations: usize,
    pivots: usize,
    pivots_since_refactor: usize,
    degenerate_pivots: usize,
    bound_flips: usize,
    refactorizations: usize,
    dual_pivots: usize,
}

impl SimplexEngine {
    /// Builds an engine for `p`, copying its matrix into the flat CSC
    /// layout and materializing the slack and artificial columns.
    #[must_use]
    pub fn new(p: &LpProblem) -> Self {
        let n = p.num_vars;
        let m = p.num_rows();
        let ncols = n + 2 * m;
        let nnz: usize = p.cols.iter().map(Vec::len).sum::<usize>() + 2 * m;
        let mut col_ptr = Vec::with_capacity(ncols + 1);
        let mut row_idx = Vec::with_capacity(nnz);
        let mut col_val = Vec::with_capacity(nnz);
        col_ptr.push(0);
        for col in &p.cols {
            for &(r, v) in col {
                row_idx.push(r);
                col_val.push(v);
            }
            col_ptr.push(row_idx.len());
        }
        for i in 0..m {
            // Slack column.
            row_idx.push(i);
            col_val.push(1.0);
            col_ptr.push(row_idx.len());
        }
        for i in 0..m {
            // Artificial column; sign rewritten per solve.
            row_idx.push(i);
            col_val.push(1.0);
            col_ptr.push(row_idx.len());
        }
        let mut lb = vec![0.0; ncols];
        let mut ub = vec![0.0; ncols];
        lb[..n].copy_from_slice(&p.lb);
        ub[..n].copy_from_slice(&p.ub);
        for i in 0..m {
            let s = n + i;
            match p.row_kind[i] {
                RowKind::Le => {
                    lb[s] = 0.0;
                    ub[s] = f64::INFINITY;
                }
                RowKind::Eq => {
                    lb[s] = 0.0;
                    ub[s] = 0.0;
                }
            }
        }
        SimplexEngine {
            n,
            m,
            ncols,
            col_ptr,
            row_idx,
            col_val,
            obj: p.obj.clone(),
            obj_offset: p.obj_offset,
            rhs: p.rhs.clone(),
            base_lb: p.lb.clone(),
            base_ub: p.ub.clone(),
            lb,
            ub,
            cost: vec![0.0; ncols],
            state: vec![ColState::AtLower; ncols],
            x: vec![0.0; ncols],
            basis: Vec::with_capacity(m),
            binv: vec![0.0; m * m],
            art_sign: vec![1.0; m],
            iterations: 0,
            pivots: 0,
            pivots_since_refactor: 0,
            degenerate_pivots: 0,
            bound_flips: 0,
            refactorizations: 0,
            dual_pivots: 0,
        }
    }

    /// Restores every structural variable's bounds to the problem the
    /// engine was built from.
    pub fn reset_bounds(&mut self) {
        self.lb[..self.n].copy_from_slice(&self.base_lb);
        self.ub[..self.n].copy_from_slice(&self.base_ub);
    }

    /// Tightens variable `j`'s working bounds to the intersection with
    /// `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is not a structural variable index.
    pub fn set_bound(&mut self, j: usize, lo: f64, hi: f64) {
        assert!(j < self.n, "set_bound on non-structural column {j}");
        self.lb[j] = self.lb[j].max(lo);
        self.ub[j] = self.ub[j].min(hi);
    }

    /// Current working bounds of structural variable `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is not a structural variable index.
    #[must_use]
    pub fn bound(&self, j: usize) -> (f64, f64) {
        assert!(j < self.n, "bound on non-structural column {j}");
        (self.lb[j], self.ub[j])
    }

    /// Snapshots the basis left by the previous solve for later reuse
    /// through [`SimplexEngine::solve_warm`].
    #[must_use]
    pub fn basis(&self) -> Basis {
        Basis {
            state: self.state.clone(),
            basis: self.basis.clone(),
            art_sign: self.art_sign.clone(),
        }
    }

    fn reset_counters(&mut self) {
        self.iterations = 0;
        self.pivots = 0;
        self.pivots_since_refactor = 0;
        self.degenerate_pivots = 0;
        self.bound_flips = 0;
        self.refactorizations = 0;
        self.dual_pivots = 0;
    }

    fn col(
        &self,
        j: usize,
    ) -> std::iter::Zip<
        std::iter::Copied<std::slice::Iter<'_, usize>>,
        std::iter::Copied<std::slice::Iter<'_, f64>>,
    > {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        self.row_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.col_val[lo..hi].iter().copied())
    }

    fn binv_at(&self, i: usize, j: usize) -> f64 {
        self.binv[i * self.m + j]
    }

    /// w = B^{-1} · a_j for column j.
    fn ftran(&self, j: usize) -> Vec<f64> {
        let mut w = vec![0.0; self.m];
        for (r, v) in self.col(j) {
            for (i, wi) in w.iter_mut().enumerate() {
                *wi += self.binv_at(i, r) * v;
            }
        }
        w
    }

    /// y = c_B^T · B^{-1}.
    fn btran(&self, cb: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.m];
        for (i, &c) in cb.iter().enumerate().take(self.m) {
            if c != 0.0 {
                for (j, yj) in y.iter_mut().enumerate() {
                    *yj += c * self.binv_at(i, j);
                }
            }
        }
        y
    }

    fn reduced_cost(&self, j: usize, y: &[f64]) -> f64 {
        let mut d = self.cost[j];
        for (r, v) in self.col(j) {
            d -= y[r] * v;
        }
        d
    }

    /// Recompute basic variable values from nonbasic bound values.
    fn recompute_basics(&mut self) {
        // residual = rhs - A x_N
        let mut resid = self.rhs.clone();
        for j in 0..self.ncols {
            if let ColState::Basic(_) = self.state[j] {
                continue;
            }
            let xj = self.x[j];
            if xj != 0.0 {
                for (r, v) in self.col(j) {
                    resid[r] -= v * xj;
                }
            }
        }
        // x_B = B^{-1} residual
        for i in 0..self.m {
            let mut s = 0.0;
            for (r, &res) in resid.iter().enumerate().take(self.m) {
                s += self.binv_at(i, r) * res;
            }
            self.x[self.basis[i]] = s;
        }
    }

    /// Rebuild B^{-1} from scratch by Gauss–Jordan elimination with partial
    /// pivoting. Returns `false` if the basis matrix is numerically
    /// singular.
    fn refactorize(&mut self) -> bool {
        let m = self.m;
        // Build dense basis matrix.
        let mut bmat = vec![0.0; m * m];
        for (i, &bj) in self.basis.iter().enumerate() {
            for (r, v) in self.col(bj) {
                bmat[r * m + i] = v;
            }
        }
        // Augment with identity, eliminate.
        let mut inv = vec![0.0; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        for col in 0..m {
            // Partial pivot.
            let mut piv = col;
            let mut best = bmat[col * m + col].abs();
            for r in (col + 1)..m {
                let v = bmat[r * m + col].abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            if best < 1e-12 {
                return false;
            }
            if piv != col {
                for k in 0..m {
                    bmat.swap(col * m + k, piv * m + k);
                    inv.swap(col * m + k, piv * m + k);
                }
            }
            let d = bmat[col * m + col];
            for k in 0..m {
                bmat[col * m + k] /= d;
                inv[col * m + k] /= d;
            }
            for r in 0..m {
                if r != col {
                    let f = bmat[r * m + col];
                    if f != 0.0 {
                        for k in 0..m {
                            bmat[r * m + k] -= f * bmat[col * m + k];
                            inv[r * m + k] -= f * inv[col * m + k];
                        }
                    }
                }
            }
        }
        self.binv = inv;
        self.pivots_since_refactor = 0;
        self.refactorizations += 1;
        true
    }

    /// Repairs a numerically singular basis: runs Gaussian elimination over
    /// the basis columns, and replaces each dependent column with the slack
    /// or artificial unit column of a row that received no pivot. Returns
    /// `false` only if no replacement column is available (should not
    /// happen: every row owns a slack and an artificial).
    fn repair_basis(&mut self) -> bool {
        let m = self.m;
        let n = self.n;
        // Dense copy of the basis matrix, column-major.
        let mut cols: Vec<Vec<f64>> = self
            .basis
            .iter()
            .map(|&bj| {
                let mut v = vec![0.0; m];
                for (r, a) in self.col(bj) {
                    v[r] = a;
                }
                v
            })
            .collect();
        let mut row_used = vec![false; m];
        let mut col_ok = vec![false; m];
        for k in 0..m {
            // Find the largest remaining pivot in column k.
            let mut best = 0.0;
            let mut piv = usize::MAX;
            for r in 0..m {
                if !row_used[r] && cols[k][r].abs() > best {
                    best = cols[k][r].abs();
                    piv = r;
                }
            }
            if best < 1e-9 {
                continue; // dependent column
            }
            col_ok[k] = true;
            row_used[piv] = true;
            // Eliminate this row from the remaining columns.
            let pv = cols[k][piv];
            let pivot_col = cols[k].clone();
            for c in cols.iter_mut().skip(k + 1) {
                let f = c[piv] / pv;
                if f != 0.0 {
                    for r in 0..m {
                        c[r] -= f * pivot_col[r];
                    }
                }
            }
        }
        // Replace dependent columns with unit columns of unused rows.
        let mut free_rows: Vec<usize> = (0..m).filter(|&r| !row_used[r]).collect();
        for (k, &ok) in col_ok.iter().enumerate().take(m) {
            if ok {
                continue;
            }
            let Some(r) = free_rows.pop() else {
                return false;
            };
            let slack = n + r;
            let art = n + m + r;
            let replacement = if !matches!(self.state[slack], ColState::Basic(_)) {
                slack
            } else if !matches!(self.state[art], ColState::Basic(_)) {
                art
            } else {
                return false;
            };
            let out = self.basis[k];
            // Park the ejected variable at its nearest finite bound.
            let (lo, hi) = (self.lb[out], self.ub[out]);
            let xv = self.x[out];
            let (st, val) =
                if lo.is_finite() && (!hi.is_finite() || (xv - lo).abs() <= (hi - xv).abs()) {
                    (ColState::AtLower, lo)
                } else if hi.is_finite() {
                    (ColState::AtUpper, hi)
                } else {
                    (ColState::AtLower, 0.0)
                };
            self.state[out] = st;
            self.x[out] = val;
            self.basis[k] = replacement;
            self.state[replacement] = ColState::Basic(k);
        }
        true
    }

    /// Update B^{-1} after column `j_in` (with direction vector `w`)
    /// replaces the basic variable in row `r`.
    fn update_binv(&mut self, r: usize, w: &[f64]) {
        let m = self.m;
        let wr = w[r];
        for k in 0..m {
            self.binv[r * m + k] /= wr;
        }
        for (i, &f) in w.iter().enumerate().take(m) {
            if i != r && f.abs() > 1e-14 {
                for k in 0..m {
                    self.binv[i * m + k] -= f * self.binv[r * m + k];
                }
            }
        }
        self.pivots += 1;
        self.pivots_since_refactor += 1;
    }

    fn max_iters(&self) -> usize {
        5000 + 200 * (self.n + self.m)
    }

    fn structural_objective(&self) -> f64 {
        (0..self.n).map(|j| self.obj[j] * self.x[j]).sum::<f64>() + self.obj_offset
    }

    fn finish(&self, status: LpStatus) -> LpSolution {
        let objective = match status {
            LpStatus::Unbounded => f64::NEG_INFINITY,
            _ => self.structural_objective(),
        };
        let duals = if status == LpStatus::Optimal {
            let cb: Vec<f64> = self.basis.iter().map(|&j| self.cost[j]).collect();
            self.btran(&cb)
        } else {
            Vec::new()
        };
        LpSolution {
            status,
            objective,
            x: self.x[..self.n].to_vec(),
            duals,
            iterations: self.iterations,
            pivots: self.pivots,
            degenerate_pivots: self.degenerate_pivots,
            bound_flips: self.bound_flips,
            refactorizations: self.refactorizations,
            dual_pivots: self.dual_pivots,
        }
    }

    fn counters_only(&self, status: LpStatus) -> LpSolution {
        LpSolution {
            status,
            objective: 0.0,
            x: self.x[..self.n].to_vec(),
            duals: Vec::new(),
            iterations: self.iterations,
            pivots: self.pivots,
            degenerate_pivots: self.degenerate_pivots,
            bound_flips: self.bound_flips,
            refactorizations: self.refactorizations,
            dual_pivots: self.dual_pivots,
        }
    }

    /// Solves the problem from scratch under the current working bounds
    /// (phase-1 artificial start, then primal simplex).
    ///
    /// # Errors
    ///
    /// [`MilpError::SimplexStalled`] on iteration-budget exhaustion or an
    /// unrepairable singular basis.
    pub fn solve_fresh(&mut self) -> Result<LpSolution, MilpError> {
        self.reset_counters();
        let n = self.n;
        let m = self.m;

        if m == 0 {
            // Bound-only problem: each variable goes to whichever bound its
            // cost prefers.
            let mut sol = LpSolution::empty(LpStatus::Optimal, n);
            let mut obj = self.obj_offset;
            for j in 0..n {
                if self.lb[j] > self.ub[j] + TOL {
                    sol.status = LpStatus::Infeasible;
                    return Ok(sol);
                }
                let c = self.obj[j];
                let v = if c > 0.0 {
                    self.lb[j]
                } else if c < 0.0 {
                    self.ub[j]
                } else if self.lb[j].is_finite() {
                    self.lb[j]
                } else if self.ub[j].is_finite() {
                    self.ub[j]
                } else {
                    0.0
                };
                if !v.is_finite() && c != 0.0 {
                    sol.status = LpStatus::Unbounded;
                    sol.objective = f64::NEG_INFINITY;
                    return Ok(sol);
                }
                sol.x[j] = if v.is_finite() { v } else { 0.0 };
                obj += c * sol.x[j];
            }
            sol.objective = obj;
            return Ok(sol);
        }

        // Quick bound sanity.
        for j in 0..n {
            if self.lb[j] > self.ub[j] + TOL {
                return Ok(LpSolution::empty(LpStatus::Infeasible, n));
            }
        }

        // Nonbasic structurals sit at their finite bound (prefer lower).
        for j in 0..n {
            if self.lb[j].is_finite() {
                self.state[j] = ColState::AtLower;
                self.x[j] = self.lb[j];
            } else if self.ub[j].is_finite() {
                self.state[j] = ColState::AtUpper;
                self.x[j] = self.ub[j];
            } else {
                self.state[j] = ColState::AtLower; // free var pinned at 0 initially
                self.x[j] = 0.0;
            }
        }

        // Residuals decide which rows need an artificial.
        let mut resid = self.rhs.clone();
        for j in 0..n {
            if self.x[j] != 0.0 {
                let xj = self.x[j];
                for (r, v) in self.col(j) {
                    resid[r] -= v * xj;
                }
            }
        }
        self.basis.clear();
        let mut any_artificial = false;
        for (i, &res) in resid.iter().enumerate().take(m) {
            let s = n + i;
            let a = n + m + i;
            let fits = res >= self.lb[s] - TOL && res <= self.ub[s] + TOL;
            if fits {
                self.basis.push(s);
                self.state[s] = ColState::Basic(i);
                self.x[s] = res;
                // Artificial stays fixed at 0.
                self.state[a] = ColState::AtLower;
                self.x[a] = 0.0;
                self.lb[a] = 0.0;
                self.ub[a] = 0.0;
            } else {
                // Slack pinned at nearest bound, artificial absorbs the rest.
                let sv = res.clamp(self.lb[s], self.ub[s].min(1e18));
                self.x[s] = sv;
                self.state[s] = if (sv - self.lb[s]).abs() <= (self.ub[s] - sv).abs() {
                    ColState::AtLower
                } else {
                    ColState::AtUpper
                };
                let gap = res - sv;
                self.set_art_sign(i, gap.signum());
                self.lb[a] = 0.0;
                self.ub[a] = f64::INFINITY;
                self.basis.push(a);
                self.state[a] = ColState::Basic(i);
                self.x[a] = gap.abs();
                any_artificial = true;
            }
        }

        if !self.refactorize() {
            if std::env::var_os("DVS_MILP_DEBUG").is_some() {
                eprintln!("simplex: initial basis singular");
            }
            return Err(MilpError::SimplexStalled);
        }
        self.recompute_basics();

        let max_iters = self.max_iters();

        // ---- Phase 1 ----
        if any_artificial {
            self.cost.fill(0.0);
            for i in 0..m {
                self.cost[n + m + i] = 1.0;
            }
            let status = self.run_primal(max_iters)?;
            if status == LpStatus::Unbounded {
                // Phase-1 objective is bounded below by 0; cannot be unbounded.
                if std::env::var_os("DVS_MILP_DEBUG").is_some() {
                    eprintln!("simplex: phase-1 reported unbounded");
                }
                return Err(MilpError::SimplexStalled);
            }
            let phase1: f64 = (0..m)
                .map(|i| self.cost[n + m + i] * self.x[n + m + i])
                .sum();
            if phase1 > 1e-6 {
                // The phase-1 optimal duals form a Farkas ray: `cost` is
                // still the phase-1 objective here, so btran of the basic
                // costs prices the rows of the infeasibility LP. Certifying
                // replays pick them up to prove the prune.
                let cb: Vec<f64> = self.basis.iter().map(|&j| self.cost[j]).collect();
                let mut sol = self.counters_only(LpStatus::Infeasible);
                sol.duals = self.btran(&cb);
                return Ok(sol);
            }
            // Freeze artificials.
            for i in 0..m {
                let a = n + m + i;
                self.cost[a] = 0.0;
                self.ub[a] = 0.0;
                // A basic artificial at ~0 is harmless (degenerate).
                if !matches!(self.state[a], ColState::Basic(_)) {
                    self.x[a] = 0.0;
                    self.state[a] = ColState::AtLower;
                }
            }
        }

        // ---- Phase 2 ----
        self.cost[..n].copy_from_slice(&self.obj);
        for j in n..self.ncols {
            self.cost[j] = 0.0;
        }
        let status = self.run_primal(max_iters)?;
        if dvs_obs::enabled() {
            dvs_obs::counter("milp.degenerate_pivots", self.degenerate_pivots as u64);
            dvs_obs::counter("milp.bound_flips", self.bound_flips as u64);
            dvs_obs::counter("milp.refactorizations", self.refactorizations as u64);
        }
        Ok(self.finish(status))
    }

    fn set_art_sign(&mut self, i: usize, sign: f64) {
        self.art_sign[i] = sign;
        let a = self.n + self.m + i;
        let at = self.col_ptr[a];
        self.col_val[at] = sign;
    }

    /// Re-solves after bound changes, restarting the dual simplex from
    /// `warm` (normally the parent node's optimal basis). Returns `None`
    /// when the warm start cannot be used soundly — the basis is stale,
    /// numerically singular, no longer dual feasible, or the dual loop hits
    /// its budget — in which case the caller should fall back to
    /// [`SimplexEngine::solve_fresh`]. `Some` results are exactly as
    /// trustworthy as a fresh solve: primal and dual feasibility both hold
    /// at `Optimal`, and `Infeasible` is a proof by dual unboundedness.
    pub fn solve_warm(&mut self, warm: &Basis) -> Option<LpSolution> {
        let n = self.n;
        let m = self.m;
        if m == 0 || warm.state.len() != self.ncols || warm.basis.len() != m {
            return None;
        }
        self.reset_counters();
        // Crossed working bounds are an immediate (cheap) infeasibility.
        for j in 0..n {
            if self.lb[j] > self.ub[j] + TOL {
                return Some(LpSolution::empty(LpStatus::Infeasible, n));
            }
        }
        self.state.copy_from_slice(&warm.state);
        self.basis.clear();
        self.basis.extend_from_slice(&warm.basis);
        for i in 0..m {
            self.set_art_sign(i, warm.art_sign[i]);
            // Artificials stay frozen at zero in a warm solve.
            let a = n + m + i;
            self.lb[a] = 0.0;
            self.ub[a] = 0.0;
        }
        // Phase-2 costs only: the dual simplex restores primal feasibility
        // while keeping dual feasibility of the final objective.
        self.cost[..n].copy_from_slice(&self.obj);
        for j in n..self.ncols {
            self.cost[j] = 0.0;
        }
        // Snap nonbasic variables to the bound their state names; a bound
        // that moved past the old value is exactly what the dual simplex
        // repairs next.
        for j in 0..self.ncols {
            match self.state[j] {
                ColState::Basic(_) => {}
                ColState::AtLower => {
                    if self.lb[j].is_finite() {
                        self.x[j] = self.lb[j];
                    } else if self.ub[j].is_finite() {
                        self.state[j] = ColState::AtUpper;
                        self.x[j] = self.ub[j];
                    } else {
                        self.x[j] = 0.0;
                    }
                }
                ColState::AtUpper => {
                    if self.ub[j].is_finite() {
                        self.x[j] = self.ub[j];
                    } else if self.lb[j].is_finite() {
                        self.state[j] = ColState::AtLower;
                        self.x[j] = self.lb[j];
                    } else {
                        self.state[j] = ColState::AtLower;
                        self.x[j] = 0.0;
                    }
                }
            }
        }
        if !(self.refactorize() || self.repair_basis() && self.refactorize()) {
            return None;
        }
        self.recompute_basics();

        // The restored basis must still price out dual feasible under the
        // phase-2 costs; anything else (e.g. a bound flip above changed a
        // sign requirement) falls back to the primal path.
        let cb: Vec<f64> = self.basis.iter().map(|&j| self.cost[j]).collect();
        let y = self.btran(&cb);
        for j in 0..self.ncols {
            let ok = match self.state[j] {
                ColState::Basic(_) => true,
                _ if (self.ub[j] - self.lb[j]).abs() < 1e-15 => true,
                ColState::AtLower => self.reduced_cost(j, &y) >= -WARM_TOL,
                ColState::AtUpper => self.reduced_cost(j, &y) <= WARM_TOL,
            };
            if !ok {
                return None;
            }
        }

        let status = self.run_dual(self.max_iters())?;
        Some(self.finish(status))
    }

    /// The bounded-variable dual simplex loop: repeatedly picks the basic
    /// variable with the largest bound violation, prices an entering column
    /// that keeps the reduced costs sign-feasible, and pivots until primal
    /// feasibility (optimality) or a proof of infeasibility. Returns `None`
    /// on numerical trouble (budget, singular basis) — never a wrong
    /// answer.
    fn run_dual(&mut self, max_iters: usize) -> Option<LpStatus> {
        let m = self.m;
        loop {
            if self.iterations >= max_iters {
                return None;
            }
            self.iterations += 1;
            if self.pivots_since_refactor >= 150 {
                if !(self.refactorize() || (self.repair_basis() && self.refactorize())) {
                    return None;
                }
                self.recompute_basics();
            }

            // Leaving: the basic variable most outside its bounds.
            let mut leave: Option<(usize, f64, bool)> = None; // (row, violation, above_upper)
            for i in 0..m {
                let bj = self.basis[i];
                let v = self.x[bj];
                let (viol, above) = if v < self.lb[bj] - WARM_TOL {
                    (self.lb[bj] - v, false)
                } else if v > self.ub[bj] + WARM_TOL {
                    (v - self.ub[bj], true)
                } else {
                    continue;
                };
                let better = match leave {
                    None => true,
                    Some((li, lv, _)) => {
                        viol > lv + RATIO_TOL
                            || ((viol - lv).abs() <= RATIO_TOL && self.basis[i] < self.basis[li])
                    }
                };
                if better {
                    leave = Some((i, viol, above));
                }
            }
            let Some((r, _, above)) = leave else {
                return Some(LpStatus::Optimal);
            };
            // e = direction the basic value must move, seen from the ratio
            // test: +1 when above its upper bound, -1 when below its lower.
            let e = if above { 1.0 } else { -1.0 };
            let target = if above {
                self.ub[self.basis[r]]
            } else {
                self.lb[self.basis[r]]
            };

            // Row r of B^{-1}, then duals for reduced costs.
            let rho: Vec<f64> = (0..m).map(|k| self.binv_at(r, k)).collect();
            let cb: Vec<f64> = self.basis.iter().map(|&j| self.cost[j]).collect();
            let y = self.btran(&cb);

            // Entering: minimize the dual ratio d_j / (e·α_j) over
            // admissible nonbasic columns. Ties prefer the larger |α|
            // (stability), then the smaller index (determinism).
            let mut enter: Option<(usize, f64, f64)> = None; // (col, ratio, alpha)
            for j in 0..self.ncols {
                let st = self.state[j];
                if matches!(st, ColState::Basic(_)) || (self.ub[j] - self.lb[j]).abs() < 1e-15 {
                    continue;
                }
                let mut alpha = 0.0;
                for (rr, v) in self.col(j) {
                    alpha += rho[rr] * v;
                }
                let ea = e * alpha;
                let admissible = match st {
                    ColState::AtLower => ea > PIVOT_TOL,
                    ColState::AtUpper => ea < -PIVOT_TOL,
                    ColState::Basic(_) => unreachable!(),
                };
                if !admissible {
                    continue;
                }
                let d = self.reduced_cost(j, &y);
                let ratio = (d / ea).max(0.0);
                let better = match enter {
                    None => true,
                    Some((bj, br, ba)) => {
                        ratio < br - RATIO_TOL
                            || ((ratio - br).abs() <= RATIO_TOL
                                && (alpha.abs() > ba.abs() + RATIO_TOL
                                    || ((alpha.abs() - ba.abs()).abs() <= RATIO_TOL && j < bj)))
                    }
                };
                if better {
                    enter = Some((j, ratio, alpha));
                }
            }
            // No column can restore the violated bound: the dual is
            // unbounded, so the (bound-tightened) primal is infeasible.
            let Some((j_in, _, _)) = enter else {
                return Some(LpStatus::Infeasible);
            };

            let w = self.ftran(j_in);
            if w[r].abs() <= PIVOT_TOL {
                return None; // numerically useless pivot
            }
            let j_out = self.basis[r];
            let delta = (self.x[j_out] - target) / w[r];
            if delta.abs() <= RATIO_TOL {
                self.degenerate_pivots += 1;
            }
            for (i, &wi) in w.iter().enumerate().take(m) {
                if i != r {
                    let bj = self.basis[i];
                    self.x[bj] -= wi * delta;
                }
            }
            self.x[j_in] += delta;
            self.x[j_out] = target;
            self.state[j_out] = if above {
                ColState::AtUpper
            } else {
                ColState::AtLower
            };
            self.state[j_in] = ColState::Basic(r);
            self.basis[r] = j_in;
            self.update_binv(r, &w);
            self.dual_pivots += 1;
        }
    }

    /// Runs the primal simplex loop to optimality on the current cost
    /// vector.
    fn run_primal(&mut self, max_iters: usize) -> Result<LpStatus, MilpError> {
        let mut stall = 0usize;
        let mut last_obj = f64::INFINITY;
        // Once degeneracy is detected, Bland's rule stays on for the rest of
        // this phase — toggling it off after a productive pivot can re-enter
        // the same cycle.
        let mut bland_sticky = false;
        loop {
            if self.iterations >= max_iters {
                if std::env::var_os("DVS_MILP_DEBUG").is_some() {
                    eprintln!(
                        "simplex stalled: m={} iters={} obj={last_obj} stall={stall}",
                        self.m, self.iterations
                    );
                }
                return Err(MilpError::SimplexStalled);
            }
            self.iterations += 1;
            if self.pivots_since_refactor >= 150 {
                let rebuilt = self.refactorize() || (self.repair_basis() && self.refactorize());
                if !rebuilt {
                    return Err(MilpError::SimplexStalled);
                }
                self.recompute_basics();
            }

            let cb: Vec<f64> = self.basis.iter().map(|&j| self.cost[j]).collect();
            let y = self.btran(&cb);

            // Pricing.
            if stall > self.m + 20 {
                bland_sticky = true;
            }
            let use_bland = bland_sticky;
            let mut enter: Option<(usize, f64, f64)> = None; // (col, rd, dir)
            for j in 0..self.ncols {
                let (st, range_zero) = match self.state[j] {
                    ColState::Basic(_) => continue,
                    s => (s, (self.ub[j] - self.lb[j]).abs() < 1e-15),
                };
                if range_zero {
                    continue; // fixed variable can never move
                }
                let rd = self.reduced_cost(j, &y);
                let (eligible, dir) = match st {
                    ColState::AtLower => (rd < -TOL, 1.0),
                    ColState::AtUpper => (rd > TOL, -1.0),
                    ColState::Basic(_) => unreachable!(),
                };
                if eligible {
                    if use_bland {
                        enter = Some((j, rd, dir));
                        break;
                    }
                    let score = rd.abs();
                    if enter.is_none_or(|(_, brd, _)| score > brd.abs()) {
                        enter = Some((j, rd, dir));
                    }
                }
            }
            let Some((j_in, _rd, dir)) = enter else {
                return Ok(LpStatus::Optimal);
            };

            // Direction through the basis.
            let w = self.ftran(j_in);

            // Ratio test. Entering variable moves by `step >= 0` in direction
            // `dir`; basic i changes by -dir * w[i] * step. Ties are broken by
            // the largest pivot magnitude for stability, or by the smallest
            // variable index under Bland's rule (guaranteeing termination).
            let own_range = self.ub[j_in] - self.lb[j_in]; // may be inf
            let mut best_step = own_range;
            let mut leave: Option<(usize, bool)> = None; // (row, leaves_at_upper)
            for i in 0..self.m {
                let delta = -dir * w[i];
                if delta.abs() <= PIVOT_TOL {
                    continue;
                }
                let bj = self.basis[i];
                let xb = self.x[bj];
                let (step, at_upper) = if delta < 0.0 {
                    let lbi = self.lb[bj];
                    if !lbi.is_finite() {
                        continue;
                    }
                    ((xb - lbi) / -delta, false)
                } else {
                    let ubi = self.ub[bj];
                    if !ubi.is_finite() {
                        continue;
                    }
                    ((ubi - xb) / delta, true)
                };
                let better = if step < best_step - RATIO_TOL {
                    true
                } else if step < best_step + RATIO_TOL {
                    match leave {
                        None => best_step.is_infinite(),
                        Some((li, _)) => {
                            if use_bland {
                                self.basis[i] < self.basis[li]
                            } else {
                                w[i].abs() > w[li].abs()
                            }
                        }
                    }
                } else {
                    false
                };
                if better {
                    best_step = step.max(0.0);
                    leave = Some((i, at_upper));
                }
            }

            if best_step.is_infinite() {
                return Ok(LpStatus::Unbounded);
            }

            // Apply the move.
            let step = best_step.max(0.0);
            if step > 0.0 {
                for (i, &wi) in w.iter().enumerate().take(self.m) {
                    let bj = self.basis[i];
                    self.x[bj] -= dir * wi * step;
                }
            }

            match leave {
                None => {
                    // Bound flip of the entering variable.
                    self.bound_flips += 1;
                    self.x[j_in] = if dir > 0.0 {
                        self.ub[j_in]
                    } else {
                        self.lb[j_in]
                    };
                    self.state[j_in] = if dir > 0.0 {
                        ColState::AtUpper
                    } else {
                        ColState::AtLower
                    };
                }
                Some((r, at_upper)) => {
                    if step <= 0.0 {
                        self.degenerate_pivots += 1;
                    }
                    let j_out = self.basis[r];
                    self.x[j_in] += dir * step;
                    self.x[j_out] = if at_upper {
                        self.ub[j_out]
                    } else {
                        self.lb[j_out]
                    };
                    self.state[j_out] = if at_upper {
                        ColState::AtUpper
                    } else {
                        ColState::AtLower
                    };
                    self.state[j_in] = ColState::Basic(r);
                    self.basis[r] = j_in;
                    self.update_binv(r, &w);
                }
            }

            // Cycling monitor: objective (phase-aware) should not increase.
            let obj: f64 = (0..self.ncols).map(|j| self.cost[j] * self.x[j]).sum();
            if obj < last_obj - TOL {
                last_obj = obj;
                stall = 0;
            } else {
                stall += 1;
            }
        }
    }
}

/// Solves the LP with the bounded-variable revised simplex (one-shot
/// convenience over [`SimplexEngine`]).
///
/// # Errors
///
/// [`MilpError::SimplexStalled`] if the iteration budget is exhausted
/// (numerical cycling); infeasibility and unboundedness are reported through
/// [`LpStatus`], not as errors.
pub fn solve_lp(p: &LpProblem) -> Result<LpSolution, MilpError> {
    let result = SimplexEngine::new(p).solve_fresh();
    if dvs_obs::enabled() {
        dvs_obs::counter("milp.lp_solves", 1);
        if let Ok(sol) = &result {
            dvs_obs::counter("milp.pivots", sol.iterations as u64);
            dvs_obs::histogram("milp.lp_pivots", sol.iterations as f64);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn simple_two_var_lp() {
        // min -x - 2y  s.t. x + y <= 4, x <= 3, y <= 2  (x,y >= 0)
        let mut p = LpProblem::new(2);
        p.obj = vec![-1.0, -2.0];
        p.ub = vec![3.0, 2.0];
        p.add_row(&[(0, 1.0), (1, 1.0)], RowKind::Le, 4.0);
        let s = solve_lp(&p).unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, -6.0); // x=2, y=2
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 2.0);
    }

    #[test]
    fn equality_rows_need_artificials() {
        // min x + y  s.t. x + y = 3, x - y = 1  -> x=2, y=1
        let mut p = LpProblem::new(2);
        p.obj = vec![1.0, 1.0];
        p.add_row(&[(0, 1.0), (1, 1.0)], RowKind::Eq, 3.0);
        p.add_row(&[(0, 1.0), (1, -1.0)], RowKind::Eq, 1.0);
        let s = solve_lp(&p).unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 1.0);
        assert_close(s.objective, 3.0);
    }

    #[test]
    fn infeasible_detected() {
        // x <= 1 and x = 3 simultaneously.
        let mut p = LpProblem::new(1);
        p.obj = vec![1.0];
        p.add_row(&[(0, 1.0)], RowKind::Le, 1.0);
        p.add_row(&[(0, 1.0)], RowKind::Eq, 3.0);
        let s = solve_lp(&p).unwrap();
        assert_eq!(s.status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min -x with x >= 0 unbounded above and no rows limiting it.
        let mut p = LpProblem::new(1);
        p.obj = vec![-1.0];
        p.add_row(&[(0, -1.0)], RowKind::Le, 0.0); // -x <= 0, i.e. x >= 0
        let s = solve_lp(&p).unwrap();
        assert_eq!(s.status, LpStatus::Unbounded);
    }

    #[test]
    fn bounds_without_rows() {
        let mut p = LpProblem::new(2);
        p.obj = vec![1.0, -1.0];
        p.lb = vec![2.0, 0.0];
        p.ub = vec![5.0, 7.0];
        let s = solve_lp(&p).unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 7.0);
        assert_close(s.objective, -5.0);
    }

    #[test]
    fn upper_bounds_respected_via_bound_flips() {
        // max x1 + x2 + x3 s.t. x1 + x2 + x3 <= 10, each x in [0, 4].
        let mut p = LpProblem::new(3);
        p.obj = vec![-1.0, -1.0, -1.0];
        p.ub = vec![4.0, 4.0, 4.0];
        p.add_row(&[(0, 1.0), (1, 1.0), (2, 1.0)], RowKind::Le, 10.0);
        let s = solve_lp(&p).unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, -10.0);
        let total: f64 = s.x.iter().sum();
        assert_close(total, 10.0);
        for v in &s.x {
            assert!(*v <= 4.0 + 1e-9);
        }
    }

    #[test]
    fn negative_lower_bounds() {
        // min x s.t. x >= -5 (bound), x + y = 0, y <= 3  -> x = -3.
        let mut p = LpProblem::new(2);
        p.obj = vec![1.0, 0.0];
        p.lb = vec![-5.0, 0.0];
        p.ub = vec![f64::INFINITY, 3.0];
        p.add_row(&[(0, 1.0), (1, 1.0)], RowKind::Eq, 0.0);
        let s = solve_lp(&p).unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.x[0], -3.0);
        assert_close(s.x[1], 3.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple redundant constraints through the same vertex.
        let mut p = LpProblem::new(2);
        p.obj = vec![-1.0, -1.0];
        p.add_row(&[(0, 1.0)], RowKind::Le, 1.0);
        p.add_row(&[(0, 1.0), (1, 0.0)], RowKind::Le, 1.0);
        p.add_row(&[(0, 2.0)], RowKind::Le, 2.0);
        p.add_row(&[(1, 1.0)], RowKind::Le, 1.0);
        p.add_row(&[(0, 1.0), (1, 1.0)], RowKind::Le, 2.0);
        let s = solve_lp(&p).unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, -2.0);
    }

    #[test]
    fn objective_offset_carried_through() {
        let mut p = LpProblem::new(1);
        p.obj = vec![1.0];
        p.obj_offset = 10.0;
        p.lb = vec![3.0];
        p.add_row(&[(0, 1.0)], RowKind::Le, 5.0);
        let s = solve_lp(&p).unwrap();
        assert_close(s.objective, 13.0);
    }

    #[test]
    fn fixed_variables_stay_fixed() {
        // y fixed at 2 via lb=ub; min x s.t. x + y >= 5 (as -x - y <= -5).
        let mut p = LpProblem::new(2);
        p.obj = vec![1.0, 0.0];
        p.lb = vec![0.0, 2.0];
        p.ub = vec![f64::INFINITY, 2.0];
        p.add_row(&[(0, -1.0), (1, -1.0)], RowKind::Le, -5.0);
        let s = solve_lp(&p).unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.x[0], 3.0);
        assert_close(s.x[1], 2.0);
    }

    #[test]
    fn beale_cycling_example_terminates() {
        // Beale's classic example cycles forever under naive Dantzig
        // pricing with textbook tie-breaking; the anti-cycling safeguards
        // must terminate at the optimum (objective -0.05).
        //   min -0.75x1 + 150x2 - 0.02x3 + 6x4
        //   s.t. 0.25x1 - 60x2 - 0.04x3 + 9x4 <= 0
        //        0.5 x1 - 90x2 - 0.02x3 + 3x4 <= 0
        //        x3 <= 1,   x >= 0
        let mut p = LpProblem::new(4);
        p.obj = vec![-0.75, 150.0, -0.02, 6.0];
        p.add_row(
            &[(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)],
            RowKind::Le,
            0.0,
        );
        p.add_row(
            &[(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)],
            RowKind::Le,
            0.0,
        );
        p.add_row(&[(2, 1.0)], RowKind::Le, 1.0);
        let s = solve_lp(&p).unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert!(
            (s.objective - (-0.05)).abs() < 1e-9,
            "obj = {}",
            s.objective
        );
        assert!((s.x[2] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn strong_duality_on_random_instances() {
        // min c'x, Ax <= b, x >= 0 (no upper bounds): at an optimum,
        // c'x* = y'b, A'y <= c, and y <= 0. This is a complete
        // end-to-end correctness certificate for the simplex.
        let mut seed = 0xD0A1u64;
        let mut rnd = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) % 1000) as f64 / 100.0
        };
        let mut checked = 0;
        for _ in 0..40 {
            let (n, m) = (4, 3);
            let mut p = LpProblem::new(n);
            for j in 0..n {
                p.obj[j] = rnd(); // non-negative costs keep it bounded
            }
            for _ in 0..m {
                let terms: Vec<(usize, f64)> = (0..n).map(|j| (j, rnd() - 4.0)).collect();
                // b mixed in sign so some instances need phase 1.
                p.add_row(&terms, RowKind::Le, rnd() - 2.0);
            }
            let s = solve_lp(&p).unwrap();
            if s.status != LpStatus::Optimal {
                continue;
            }
            checked += 1;
            let y = &s.duals;
            assert_eq!(y.len(), m);
            // Strong duality.
            let primal = s.objective;
            let dual: f64 = y.iter().zip(&p.rhs).map(|(yi, bi)| yi * bi).sum();
            assert!(
                (primal - dual).abs() < 1e-5 * primal.abs().max(1.0),
                "duality gap: primal {primal} dual {dual}"
            );
            // Dual feasibility: A'y <= c and y <= 0.
            for (i, yi) in y.iter().enumerate() {
                assert!(*yi <= 1e-7, "y[{i}] = {yi} must be <= 0");
            }
            for j in 0..n {
                let aty: f64 = p.cols[j].iter().map(|&(r, a)| a * y[r]).sum();
                assert!(aty <= p.obj[j] + 1e-6, "dual infeasible at column {j}");
            }
        }
        assert!(checked >= 10, "too few optimal instances ({checked})");
    }

    #[test]
    fn larger_transportation_lp() {
        // 3 suppliers x 4 consumers transportation problem.
        let supply = [20.0, 30.0, 25.0];
        let demand = [10.0, 25.0, 20.0, 20.0];
        let cost = [
            [4.0, 6.0, 8.0, 11.0],
            [5.0, 5.0, 7.0, 9.0],
            [6.0, 4.0, 3.0, 5.0],
        ];
        let nv = 12;
        let mut p = LpProblem::new(nv);
        for (i, row) in cost.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                p.obj[i * 4 + j] = c;
            }
        }
        for (i, &s) in supply.iter().enumerate() {
            let terms: Vec<_> = (0..4).map(|j| (i * 4 + j, 1.0)).collect();
            p.add_row(&terms, RowKind::Le, s);
        }
        for (j, &d) in demand.iter().enumerate() {
            let terms: Vec<_> = (0..3).map(|i| (i * 4 + j, 1.0)).collect();
            p.add_row(&terms, RowKind::Eq, d);
        }
        let s = solve_lp(&p).unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        // Validate feasibility of the returned plan.
        for (i, &cap) in supply.iter().enumerate() {
            let used: f64 = (0..4).map(|j| s.x[i * 4 + j]).sum();
            assert!(used <= cap + 1e-6);
        }
        for (j, &want) in demand.iter().enumerate() {
            let got: f64 = (0..3).map(|i| s.x[i * 4 + j]).sum();
            assert_close(got, want);
        }
        // Optimum verified by hand (s0: t0=10,t1=10; s1: t1=15,t3=15; s2: t2=20,t3=5).
        assert_close(s.objective, 395.0);
    }

    // ---- warm-start dual simplex -------------------------------------

    /// Fresh-solve `p`, tighten bounds, then compare the warm dual-simplex
    /// answer against an independent from-scratch solve of the tightened
    /// problem.
    fn warm_vs_fresh(p: &LpProblem, tighten: &[(usize, f64, f64)]) {
        let mut engine = SimplexEngine::new(p);
        let root = engine.solve_fresh().unwrap();
        assert_eq!(root.status, LpStatus::Optimal);
        let basis = engine.basis();

        engine.reset_bounds();
        for &(j, lo, hi) in tighten {
            engine.set_bound(j, lo, hi);
        }
        let warm = engine.solve_warm(&basis).expect("warm start usable");

        let mut q = p.clone();
        for &(j, lo, hi) in tighten {
            q.lb[j] = q.lb[j].max(lo);
            q.ub[j] = q.ub[j].min(hi);
        }
        let fresh = solve_lp(&q).unwrap();
        assert_eq!(warm.status, fresh.status, "status mismatch");
        if fresh.status == LpStatus::Optimal {
            assert!(
                (warm.objective - fresh.objective).abs() < 1e-7 * fresh.objective.abs().max(1.0),
                "warm {} vs fresh {}",
                warm.objective,
                fresh.objective
            );
        }
    }

    #[test]
    fn warm_start_matches_fresh_after_tightening() {
        let mut p = LpProblem::new(2);
        p.obj = vec![-1.0, -2.0];
        p.ub = vec![3.0, 2.0];
        p.add_row(&[(0, 1.0), (1, 1.0)], RowKind::Le, 4.0);
        // Branching-style fixings in both directions.
        warm_vs_fresh(&p, &[(1, 0.0, 1.0)]);
        warm_vs_fresh(&p, &[(0, 0.0, 0.0)]);
        warm_vs_fresh(&p, &[(0, 3.0, 3.0), (1, 0.0, 0.0)]);
    }

    #[test]
    fn warm_start_detects_infeasible_children() {
        // x + y = 3 with both variables forced to 0 is infeasible.
        let mut p = LpProblem::new(2);
        p.obj = vec![1.0, 1.0];
        p.ub = vec![2.0, 2.0];
        p.add_row(&[(0, 1.0), (1, 1.0)], RowKind::Eq, 3.0);
        let mut engine = SimplexEngine::new(&p);
        let root = engine.solve_fresh().unwrap();
        assert_eq!(root.status, LpStatus::Optimal);
        let basis = engine.basis();
        engine.reset_bounds();
        engine.set_bound(0, 0.0, 0.0);
        engine.set_bound(1, 0.0, 0.0);
        let warm = engine.solve_warm(&basis).expect("warm start usable");
        assert_eq!(warm.status, LpStatus::Infeasible);
    }

    #[test]
    fn warm_start_on_transportation_lp() {
        let supply = [20.0, 30.0, 25.0];
        let demand = [10.0, 25.0, 20.0, 20.0];
        let cost = [
            [4.0, 6.0, 8.0, 11.0],
            [5.0, 5.0, 7.0, 9.0],
            [6.0, 4.0, 3.0, 5.0],
        ];
        let mut p = LpProblem::new(12);
        for (i, row) in cost.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                p.obj[i * 4 + j] = c;
            }
        }
        for (i, &s) in supply.iter().enumerate() {
            let terms: Vec<_> = (0..4).map(|j| (i * 4 + j, 1.0)).collect();
            p.add_row(&terms, RowKind::Le, s);
        }
        for (j, &d) in demand.iter().enumerate() {
            let terms: Vec<_> = (0..3).map(|i| (i * 4 + j, 1.0)).collect();
            p.add_row(&terms, RowKind::Eq, d);
        }
        // Forbid the cheapest lane and cap another; warm must track fresh.
        warm_vs_fresh(&p, &[(2 * 4 + 2, 0.0, 0.0)]);
        warm_vs_fresh(&p, &[(0, 0.0, 5.0), (5, 0.0, 0.0)]);
    }

    #[test]
    fn warm_start_counts_dual_pivots() {
        let mut p = LpProblem::new(3);
        p.obj = vec![1.0, 2.0, 3.0];
        p.ub = vec![10.0, 10.0, 10.0];
        p.add_row(&[(0, -1.0), (1, -1.0), (2, -1.0)], RowKind::Le, -6.0);
        let mut engine = SimplexEngine::new(&p);
        let root = engine.solve_fresh().unwrap();
        assert_eq!(root.status, LpStatus::Optimal);
        assert_eq!(root.dual_pivots, 0, "cold solves never pivot dually");
        let basis = engine.basis();
        engine.reset_bounds();
        engine.set_bound(0, 0.0, 1.0); // optimal had x0 = 6
        let warm = engine.solve_warm(&basis).expect("warm start usable");
        assert_eq!(warm.status, LpStatus::Optimal);
        assert!(warm.dual_pivots >= 1, "tightening must force a dual pivot");
        assert!(warm.dual_pivots <= warm.pivots);
        assert_close(warm.objective, 1.0 + 2.0 * 5.0);
    }

    #[test]
    fn warm_start_rejects_stale_basis() {
        let mut p = LpProblem::new(2);
        p.obj = vec![1.0, 1.0];
        p.add_row(&[(0, 1.0), (1, 1.0)], RowKind::Eq, 3.0);
        let mut engine = SimplexEngine::new(&p);
        engine.solve_fresh().unwrap();
        let mut other = LpProblem::new(5);
        other.add_row(&[(0, 1.0)], RowKind::Le, 1.0);
        let mut other_engine = SimplexEngine::new(&other);
        other_engine.solve_fresh().unwrap();
        let foreign = other_engine.basis();
        assert!(engine.solve_warm(&foreign).is_none());
    }

    #[test]
    fn warm_start_random_lps_agree_with_fresh() {
        // Randomized cross-check of the dual simplex: solve, tighten a
        // random variable, and require agreement with the primal path.
        let mut seed = 0xBEEFu64;
        let mut rnd = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) % 1000) as f64 / 100.0
        };
        let mut warm_used = 0;
        for _ in 0..30 {
            let (n, m) = (5, 4);
            let mut p = LpProblem::new(n);
            for j in 0..n {
                p.obj[j] = rnd();
                p.ub[j] = 5.0 + rnd();
            }
            for _ in 0..m {
                let terms: Vec<(usize, f64)> = (0..n).map(|j| (j, rnd() - 4.0)).collect();
                p.add_row(&terms, RowKind::Le, rnd() - 2.0);
            }
            let mut engine = SimplexEngine::new(&p);
            let Ok(root) = engine.solve_fresh() else {
                continue;
            };
            if root.status != LpStatus::Optimal {
                continue;
            }
            let basis = engine.basis();
            let j = (rnd() as usize) % n;
            let hi = root.x[j] * 0.5;
            engine.reset_bounds();
            engine.set_bound(j, 0.0, hi.max(0.0));
            let mut q = p.clone();
            q.ub[j] = q.ub[j].min(hi.max(0.0));
            let fresh = solve_lp(&q).unwrap();
            if let Some(warm) = engine.solve_warm(&basis) {
                warm_used += 1;
                assert_eq!(warm.status, fresh.status);
                if fresh.status == LpStatus::Optimal {
                    assert!(
                        (warm.objective - fresh.objective).abs()
                            < 1e-6 * fresh.objective.abs().max(1.0),
                        "warm {} vs fresh {}",
                        warm.objective,
                        fresh.objective
                    );
                }
            }
        }
        assert!(
            warm_used >= 10,
            "warm path exercised only {warm_used} times"
        );
    }
}
