//! Bounded-variable revised primal simplex.
//!
//! Solves `min c'x` subject to `Ax ≤/= b` and `l ≤ x ≤ u`, handling the
//! bounds natively (no extra rows), with:
//!
//! * slack-plus-artificial phase 1 (artificials only where the slack basis
//!   is infeasible);
//! * dense explicit basis inverse, refactorized periodically for stability;
//! * Dantzig pricing with an automatic Bland's-rule fallback against
//!   cycling;
//! * bound-flip ("long step") handling for boxed variables.
//!
//! Callers normally go through [`crate::solve`], which adds branch-and-bound
//! on top; this module is public so the LP layer can be tested and used
//! directly.

use crate::MilpError;

/// Row comparison in an [`LpProblem`] — `Le` (`≤`) or `Eq` (`=`).
/// `≥` rows must be pre-negated by the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowKind {
    /// `a·x ≤ b`
    Le,
    /// `a·x = b`
    Eq,
}

/// A linear program in computational form: minimize `obj·x` over
/// `l ≤ x ≤ u` subject to the rows.
#[derive(Debug, Clone)]
pub struct LpProblem {
    /// Number of structural variables.
    pub num_vars: usize,
    /// Sparse columns: `cols[j]` lists `(row, coefficient)` pairs.
    pub cols: Vec<Vec<(usize, f64)>>,
    /// Objective coefficients (length `num_vars`).
    pub obj: Vec<f64>,
    /// Constant added to the objective value.
    pub obj_offset: f64,
    /// Lower bounds (may be `NEG_INFINITY`).
    pub lb: Vec<f64>,
    /// Upper bounds (may be `INFINITY`).
    pub ub: Vec<f64>,
    /// Row kinds (length = number of rows).
    pub row_kind: Vec<RowKind>,
    /// Row right-hand sides.
    pub rhs: Vec<f64>,
}

impl LpProblem {
    /// An empty problem with `num_vars` variables, all in `[0, ∞)`, zero
    /// objective and no rows.
    #[must_use]
    pub fn new(num_vars: usize) -> Self {
        LpProblem {
            num_vars,
            cols: vec![Vec::new(); num_vars],
            obj: vec![0.0; num_vars],
            obj_offset: 0.0,
            lb: vec![0.0; num_vars],
            ub: vec![f64::INFINITY; num_vars],
            row_kind: Vec::new(),
            rhs: Vec::new(),
        }
    }

    /// Appends a row given as sparse `(var, coeff)` terms.
    pub fn add_row(&mut self, terms: &[(usize, f64)], kind: RowKind, rhs: f64) {
        let r = self.row_kind.len();
        for &(j, a) in terms {
            if a != 0.0 {
                self.cols[j].push((r, a));
            }
        }
        self.row_kind.push(kind);
        self.rhs.push(rhs);
    }

    /// Number of rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.row_kind.len()
    }
}

/// Outcome status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// Proven optimal.
    Optimal,
    /// No feasible point.
    Infeasible,
    /// Objective unbounded below.
    Unbounded,
}

/// Result of [`solve_lp`].
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Solve status.
    pub status: LpStatus,
    /// Objective value (meaningful only when `status == Optimal`).
    pub objective: f64,
    /// Primal values for the structural variables.
    pub x: Vec<f64>,
    /// Row dual values `y = c_B B⁻¹` at the optimum (empty unless
    /// `Optimal`). For a minimization with `≤` rows, `y_i ≤ 0`; `-y_i` is
    /// the shadow price of row `i`'s right-hand side.
    pub duals: Vec<f64>,
    /// Simplex iterations used (both phases).
    pub iterations: usize,
    /// Basis-change pivots (iterations that replaced a basic variable).
    pub pivots: usize,
    /// Pivots with a zero step length (degenerate).
    pub degenerate_pivots: usize,
    /// Nonbasic bound-to-bound flips (iterations without a basis change).
    pub bound_flips: usize,
    /// Basis-inverse rebuilds (initial factorization, periodic refresh,
    /// and post-repair rebuilds).
    pub refactorizations: usize,
}

const TOL: f64 = 1e-9;
const RATIO_TOL: f64 = 1e-10;
/// Minimum magnitude for an acceptable pivot element; rows with smaller
/// direction components are treated as unaffected, keeping the basis
/// well-conditioned.
const PIVOT_TOL: f64 = 1e-7;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColState {
    Basic(usize),
    AtLower,
    AtUpper,
}

struct Tableau {
    m: usize,
    ncols: usize,
    cols: Vec<Vec<(usize, f64)>>,
    lb: Vec<f64>,
    ub: Vec<f64>,
    cost: Vec<f64>,
    state: Vec<ColState>,
    x: Vec<f64>,
    basis: Vec<usize>,
    binv: Vec<f64>, // row-major m x m
    iterations: usize,
    pivots: usize,
    pivots_since_refactor: usize,
    degenerate_pivots: usize,
    bound_flips: usize,
    refactorizations: usize,
}

impl Tableau {
    fn binv_at(&self, i: usize, j: usize) -> f64 {
        self.binv[i * self.m + j]
    }

    /// w = B^{-1} · a_j for sparse column j.
    fn ftran(&self, j: usize) -> Vec<f64> {
        let mut w = vec![0.0; self.m];
        for &(r, v) in &self.cols[j] {
            for (i, wi) in w.iter_mut().enumerate() {
                *wi += self.binv_at(i, r) * v;
            }
        }
        w
    }

    /// y = c_B^T · B^{-1}.
    fn btran(&self, cb: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.m];
        for (i, &c) in cb.iter().enumerate().take(self.m) {
            if c != 0.0 {
                for (j, yj) in y.iter_mut().enumerate() {
                    *yj += c * self.binv_at(i, j);
                }
            }
        }
        y
    }

    fn reduced_cost(&self, j: usize, y: &[f64]) -> f64 {
        let mut d = self.cost[j];
        for &(r, v) in &self.cols[j] {
            d -= y[r] * v;
        }
        d
    }

    /// Recompute basic variable values from nonbasic bound values.
    fn recompute_basics(&mut self, rhs: &[f64]) {
        // residual = rhs - A x_N
        let mut resid = rhs.to_vec();
        for j in 0..self.ncols {
            if let ColState::Basic(_) = self.state[j] {
                continue;
            }
            let xj = self.x[j];
            if xj != 0.0 {
                for &(r, v) in &self.cols[j] {
                    resid[r] -= v * xj;
                }
            }
        }
        // x_B = B^{-1} residual
        for i in 0..self.m {
            let mut s = 0.0;
            for (r, &res) in resid.iter().enumerate().take(self.m) {
                s += self.binv_at(i, r) * res;
            }
            self.x[self.basis[i]] = s;
        }
    }

    /// Rebuild B^{-1} from scratch by Gauss–Jordan elimination with partial
    /// pivoting. Returns `false` if the basis matrix is numerically
    /// singular.
    fn refactorize(&mut self) -> bool {
        let m = self.m;
        // Build dense basis matrix.
        let mut bmat = vec![0.0; m * m];
        for (i, &bj) in self.basis.iter().enumerate() {
            for &(r, v) in &self.cols[bj] {
                bmat[r * m + i] = v;
            }
        }
        // Augment with identity, eliminate.
        let mut inv = vec![0.0; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        for col in 0..m {
            // Partial pivot.
            let mut piv = col;
            let mut best = bmat[col * m + col].abs();
            for r in (col + 1)..m {
                let v = bmat[r * m + col].abs();
                if v > best {
                    best = v;
                    piv = r;
                }
            }
            if best < 1e-12 {
                return false;
            }
            if piv != col {
                for k in 0..m {
                    bmat.swap(col * m + k, piv * m + k);
                    inv.swap(col * m + k, piv * m + k);
                }
            }
            let d = bmat[col * m + col];
            for k in 0..m {
                bmat[col * m + k] /= d;
                inv[col * m + k] /= d;
            }
            for r in 0..m {
                if r != col {
                    let f = bmat[r * m + col];
                    if f != 0.0 {
                        for k in 0..m {
                            bmat[r * m + k] -= f * bmat[col * m + k];
                            inv[r * m + k] -= f * inv[col * m + k];
                        }
                    }
                }
            }
        }
        self.binv = inv;
        self.pivots_since_refactor = 0;
        self.refactorizations += 1;
        true
    }

    /// Repairs a numerically singular basis: runs Gaussian elimination over
    /// the basis columns, and replaces each dependent column with the slack
    /// or artificial unit column of a row that received no pivot. Returns
    /// `false` only if no replacement column is available (should not
    /// happen: every row owns a slack and an artificial).
    fn repair_basis(&mut self) -> bool {
        let m = self.m;
        let n = self.ncols - 2 * m;
        // Dense copy of the basis matrix, column-major.
        let mut cols: Vec<Vec<f64>> = self
            .basis
            .iter()
            .map(|&bj| {
                let mut v = vec![0.0; m];
                for &(r, a) in &self.cols[bj] {
                    v[r] = a;
                }
                v
            })
            .collect();
        let mut row_used = vec![false; m];
        let mut col_ok = vec![false; m];
        for k in 0..m {
            // Find the largest remaining pivot in column k.
            let mut best = 0.0;
            let mut piv = usize::MAX;
            for r in 0..m {
                if !row_used[r] && cols[k][r].abs() > best {
                    best = cols[k][r].abs();
                    piv = r;
                }
            }
            if best < 1e-9 {
                continue; // dependent column
            }
            col_ok[k] = true;
            row_used[piv] = true;
            // Eliminate this row from the remaining columns.
            let pv = cols[k][piv];
            let pivot_col = cols[k].clone();
            for c in cols.iter_mut().skip(k + 1) {
                let f = c[piv] / pv;
                if f != 0.0 {
                    for r in 0..m {
                        c[r] -= f * pivot_col[r];
                    }
                }
            }
        }
        // Replace dependent columns with unit columns of unused rows.
        let mut free_rows: Vec<usize> = (0..m).filter(|&r| !row_used[r]).collect();
        for (k, &ok) in col_ok.iter().enumerate().take(m) {
            if ok {
                continue;
            }
            let Some(r) = free_rows.pop() else {
                return false;
            };
            let slack = n + r;
            let art = n + m + r;
            let replacement = if !matches!(self.state[slack], ColState::Basic(_)) {
                slack
            } else if !matches!(self.state[art], ColState::Basic(_)) {
                art
            } else {
                return false;
            };
            let out = self.basis[k];
            // Park the ejected variable at its nearest finite bound.
            let (lo, hi) = (self.lb[out], self.ub[out]);
            let xv = self.x[out];
            let (st, val) =
                if lo.is_finite() && (!hi.is_finite() || (xv - lo).abs() <= (hi - xv).abs()) {
                    (ColState::AtLower, lo)
                } else if hi.is_finite() {
                    (ColState::AtUpper, hi)
                } else {
                    (ColState::AtLower, 0.0)
                };
            self.state[out] = st;
            self.x[out] = val;
            self.basis[k] = replacement;
            self.state[replacement] = ColState::Basic(k);
        }
        true
    }

    /// Update B^{-1} after column `j_in` (with direction vector `w`)
    /// replaces the basic variable in row `r`.
    fn update_binv(&mut self, r: usize, w: &[f64]) {
        let m = self.m;
        let wr = w[r];
        for k in 0..m {
            self.binv[r * m + k] /= wr;
        }
        for (i, &f) in w.iter().enumerate().take(m) {
            if i != r && f.abs() > 1e-14 {
                for k in 0..m {
                    self.binv[i * m + k] -= f * self.binv[r * m + k];
                }
            }
        }
        self.pivots += 1;
        self.pivots_since_refactor += 1;
    }
}

/// Solves the LP with the bounded-variable revised simplex.
///
/// # Errors
///
/// [`MilpError::SimplexStalled`] if the iteration budget is exhausted
/// (numerical cycling); infeasibility and unboundedness are reported through
/// [`LpStatus`], not as errors.
pub fn solve_lp(p: &LpProblem) -> Result<LpSolution, MilpError> {
    let result = solve_lp_impl(p);
    if dvs_obs::enabled() {
        dvs_obs::counter("milp.lp_solves", 1);
        if let Ok(sol) = &result {
            dvs_obs::counter("milp.pivots", sol.iterations as u64);
            dvs_obs::histogram("milp.lp_pivots", sol.iterations as f64);
        }
    }
    result
}

fn solve_lp_impl(p: &LpProblem) -> Result<LpSolution, MilpError> {
    let n = p.num_vars;
    let m = p.num_rows();

    if m == 0 {
        // Bound-only problem: each variable goes to whichever bound its cost
        // prefers.
        let mut x = vec![0.0; n];
        let mut obj = p.obj_offset;
        for j in 0..n {
            if p.lb[j] > p.ub[j] + TOL {
                return Ok(LpSolution {
                    status: LpStatus::Infeasible,
                    objective: 0.0,
                    x,
                    duals: Vec::new(),
                    iterations: 0,
                    pivots: 0,
                    degenerate_pivots: 0,
                    bound_flips: 0,
                    refactorizations: 0,
                });
            }
            let c = p.obj[j];
            let v = if c > 0.0 {
                p.lb[j]
            } else if c < 0.0 {
                p.ub[j]
            } else if p.lb[j].is_finite() {
                p.lb[j]
            } else if p.ub[j].is_finite() {
                p.ub[j]
            } else {
                0.0
            };
            if !v.is_finite() && c != 0.0 {
                return Ok(LpSolution {
                    status: LpStatus::Unbounded,
                    objective: f64::NEG_INFINITY,
                    x,
                    duals: Vec::new(),
                    iterations: 0,
                    pivots: 0,
                    degenerate_pivots: 0,
                    bound_flips: 0,
                    refactorizations: 0,
                });
            }
            x[j] = if v.is_finite() { v } else { 0.0 };
            obj += c * x[j];
        }
        return Ok(LpSolution {
            status: LpStatus::Optimal,
            objective: obj,
            x,
            duals: Vec::new(),
            iterations: 0,
            pivots: 0,
            degenerate_pivots: 0,
            bound_flips: 0,
            refactorizations: 0,
        });
    }

    // Quick bound sanity.
    for j in 0..n {
        if p.lb[j] > p.ub[j] + TOL {
            return Ok(LpSolution {
                status: LpStatus::Infeasible,
                objective: 0.0,
                x: vec![0.0; n],
                duals: Vec::new(),
                iterations: 0,
                pivots: 0,
                degenerate_pivots: 0,
                bound_flips: 0,
                refactorizations: 0,
            });
        }
    }

    // Column layout: [structural 0..n | slack n..n+m | artificial n+m..n+2m]
    let ncols = n + 2 * m;
    let mut cols = p.cols.clone();
    cols.resize(ncols, Vec::new());
    let mut lb = p.lb.clone();
    let mut ub = p.ub.clone();
    lb.resize(ncols, 0.0);
    ub.resize(ncols, 0.0);
    for i in 0..m {
        let s = n + i;
        cols[s] = vec![(i, 1.0)];
        match p.row_kind[i] {
            RowKind::Le => {
                lb[s] = 0.0;
                ub[s] = f64::INFINITY;
            }
            RowKind::Eq => {
                lb[s] = 0.0;
                ub[s] = 0.0;
            }
        }
    }

    // Nonbasic structurals sit at their finite bound (prefer lower).
    let mut state = vec![ColState::AtLower; ncols];
    let mut x = vec![0.0; ncols];
    for j in 0..n {
        if lb[j].is_finite() {
            state[j] = ColState::AtLower;
            x[j] = lb[j];
        } else if ub[j].is_finite() {
            state[j] = ColState::AtUpper;
            x[j] = ub[j];
        } else {
            state[j] = ColState::AtLower; // free var pinned at 0 initially
            x[j] = 0.0;
        }
    }

    // Residuals decide which rows need an artificial.
    let mut resid = p.rhs.clone();
    for j in 0..n {
        if x[j] != 0.0 {
            for &(r, v) in &cols[j] {
                resid[r] -= v * x[j];
            }
        }
    }
    let mut basis = Vec::with_capacity(m);
    let mut any_artificial = false;
    for (i, &res) in resid.iter().enumerate().take(m) {
        let s = n + i;
        let a = n + m + i;
        let fits = res >= lb[s] - TOL && res <= ub[s] + TOL;
        if fits {
            basis.push(s);
            state[s] = ColState::Basic(i);
            x[s] = res;
            // artificial stays fixed at 0
            state[a] = ColState::AtLower;
        } else {
            // Slack pinned at nearest bound, artificial absorbs the rest.
            let sv = res.clamp(lb[s], ub[s].min(1e18));
            x[s] = sv;
            state[s] = if (sv - lb[s]).abs() <= (ub[s] - sv).abs() {
                ColState::AtLower
            } else {
                ColState::AtUpper
            };
            let gap = res - sv;
            cols[a] = vec![(i, gap.signum())];
            lb[a] = 0.0;
            ub[a] = f64::INFINITY;
            basis.push(a);
            state[a] = ColState::Basic(i);
            x[a] = gap.abs();
            any_artificial = true;
        }
    }

    let mut t = Tableau {
        m,
        ncols,
        cols,
        lb,
        ub,
        cost: vec![0.0; ncols],
        state,
        x,
        basis,
        binv: {
            let mut id = vec![0.0; m * m];
            for i in 0..m {
                id[i * m + i] = 1.0;
            }
            id
        },
        iterations: 0,
        pivots: 0,
        pivots_since_refactor: 0,
        degenerate_pivots: 0,
        bound_flips: 0,
        refactorizations: 0,
    };
    if !t.refactorize() {
        if std::env::var_os("DVS_MILP_DEBUG").is_some() {
            eprintln!("simplex: initial basis singular");
        }
        return Err(MilpError::SimplexStalled);
    }
    t.recompute_basics(&p.rhs);

    let max_iters = 5000 + 200 * (n + m);

    // ---- Phase 1 ----
    if any_artificial {
        for i in 0..m {
            t.cost[n + m + i] = 1.0;
        }
        let status = run_simplex(&mut t, &p.rhs, max_iters, true)?;
        if status == LpStatus::Unbounded {
            // Phase-1 objective is bounded below by 0; cannot be unbounded.
            if std::env::var_os("DVS_MILP_DEBUG").is_some() {
                eprintln!("simplex: phase-1 reported unbounded");
            }
            return Err(MilpError::SimplexStalled);
        }
        let phase1: f64 = (0..m).map(|i| t.cost[n + m + i] * t.x[n + m + i]).sum();
        if phase1 > 1e-6 {
            return Ok(LpSolution {
                status: LpStatus::Infeasible,
                objective: 0.0,
                x: t.x[..n].to_vec(),
                duals: Vec::new(),
                iterations: t.iterations,
                pivots: t.pivots,
                degenerate_pivots: t.degenerate_pivots,
                bound_flips: t.bound_flips,
                refactorizations: t.refactorizations,
            });
        }
        // Freeze artificials.
        for i in 0..m {
            let a = n + m + i;
            t.cost[a] = 0.0;
            t.ub[a] = 0.0;
            // A basic artificial at ~0 is harmless (degenerate).
            if !matches!(t.state[a], ColState::Basic(_)) {
                t.x[a] = 0.0;
                t.state[a] = ColState::AtLower;
            }
        }
    }

    // ---- Phase 2 ----
    for j in 0..n {
        t.cost[j] = p.obj[j];
    }
    for j in n..ncols {
        t.cost[j] = 0.0;
    }
    let status = run_simplex(&mut t, &p.rhs, max_iters, false)?;

    let objective = match status {
        LpStatus::Unbounded => f64::NEG_INFINITY,
        _ => (0..n).map(|j| p.obj[j] * t.x[j]).sum::<f64>() + p.obj_offset,
    };
    let duals = if status == LpStatus::Optimal {
        let cb: Vec<f64> = t.basis.iter().map(|&j| t.cost[j]).collect();
        t.btran(&cb)
    } else {
        Vec::new()
    };
    if dvs_obs::enabled() {
        dvs_obs::counter("milp.degenerate_pivots", t.degenerate_pivots as u64);
        dvs_obs::counter("milp.bound_flips", t.bound_flips as u64);
        dvs_obs::counter("milp.refactorizations", t.refactorizations as u64);
    }
    Ok(LpSolution {
        status,
        objective,
        x: t.x[..n].to_vec(),
        duals,
        iterations: t.iterations,
        pivots: t.pivots,
        degenerate_pivots: t.degenerate_pivots,
        bound_flips: t.bound_flips,
        refactorizations: t.refactorizations,
    })
}

/// Runs the simplex loop to optimality on the current cost vector.
fn run_simplex(
    t: &mut Tableau,
    rhs: &[f64],
    max_iters: usize,
    phase1: bool,
) -> Result<LpStatus, MilpError> {
    let mut stall = 0usize;
    let mut last_obj = f64::INFINITY;
    // Once degeneracy is detected, Bland's rule stays on for the rest of
    // this phase — toggling it off after a productive pivot can re-enter
    // the same cycle.
    let mut bland_sticky = false;
    loop {
        if t.iterations >= max_iters {
            if std::env::var_os("DVS_MILP_DEBUG").is_some() {
                eprintln!(
                    "simplex stalled: phase1={phase1} m={} iters={} obj={last_obj} stall={stall}",
                    t.m, t.iterations
                );
            }
            return Err(MilpError::SimplexStalled);
        }
        t.iterations += 1;
        if t.pivots_since_refactor >= 150 {
            let rebuilt = t.refactorize() || (t.repair_basis() && t.refactorize());
            if !rebuilt {
                return Err(MilpError::SimplexStalled);
            }
            t.recompute_basics(rhs);
        }

        let cb: Vec<f64> = t.basis.iter().map(|&j| t.cost[j]).collect();
        let y = t.btran(&cb);

        // Pricing.
        if stall > t.m + 20 {
            bland_sticky = true;
        }
        let use_bland = bland_sticky;
        let mut enter: Option<(usize, f64, f64)> = None; // (col, rd, dir)
        for j in 0..t.ncols {
            let (st, range_zero) = match t.state[j] {
                ColState::Basic(_) => continue,
                s => (s, (t.ub[j] - t.lb[j]).abs() < 1e-15),
            };
            if range_zero {
                continue; // fixed variable can never move
            }
            let rd = t.reduced_cost(j, &y);
            let (eligible, dir) = match st {
                ColState::AtLower => (rd < -TOL, 1.0),
                ColState::AtUpper => (rd > TOL, -1.0),
                ColState::Basic(_) => unreachable!(),
            };
            if eligible {
                if use_bland {
                    enter = Some((j, rd, dir));
                    break;
                }
                let score = rd.abs();
                if enter.is_none_or(|(_, brd, _)| score > brd.abs()) {
                    enter = Some((j, rd, dir));
                }
            }
        }
        let Some((j_in, _rd, dir)) = enter else {
            return Ok(LpStatus::Optimal);
        };

        // Direction through the basis.
        let w = t.ftran(j_in);

        // Ratio test. Entering variable moves by `step >= 0` in direction
        // `dir`; basic i changes by -dir * w[i] * step. Ties are broken by
        // the largest pivot magnitude for stability, or by the smallest
        // variable index under Bland's rule (guaranteeing termination).
        let own_range = t.ub[j_in] - t.lb[j_in]; // may be inf
        let mut best_step = own_range;
        let mut leave: Option<(usize, bool)> = None; // (row, leaves_at_upper)
        for i in 0..t.m {
            let delta = -dir * w[i];
            if delta.abs() <= PIVOT_TOL {
                continue;
            }
            let bj = t.basis[i];
            let xb = t.x[bj];
            let (step, at_upper) = if delta < 0.0 {
                let lbi = t.lb[bj];
                if !lbi.is_finite() {
                    continue;
                }
                ((xb - lbi) / -delta, false)
            } else {
                let ubi = t.ub[bj];
                if !ubi.is_finite() {
                    continue;
                }
                ((ubi - xb) / delta, true)
            };
            let better = if step < best_step - RATIO_TOL {
                true
            } else if step < best_step + RATIO_TOL {
                match leave {
                    None => best_step.is_infinite(),
                    Some((li, _)) => {
                        if use_bland {
                            t.basis[i] < t.basis[li]
                        } else {
                            w[i].abs() > w[li].abs()
                        }
                    }
                }
            } else {
                false
            };
            if better {
                best_step = step.max(0.0);
                leave = Some((i, at_upper));
            }
        }

        if best_step.is_infinite() {
            return Ok(LpStatus::Unbounded);
        }

        // Apply the move.
        let step = best_step.max(0.0);
        if step > 0.0 {
            for (i, &wi) in w.iter().enumerate().take(t.m) {
                let bj = t.basis[i];
                t.x[bj] -= dir * wi * step;
            }
        }

        match leave {
            None => {
                // Bound flip of the entering variable.
                t.bound_flips += 1;
                t.x[j_in] = if dir > 0.0 { t.ub[j_in] } else { t.lb[j_in] };
                t.state[j_in] = if dir > 0.0 {
                    ColState::AtUpper
                } else {
                    ColState::AtLower
                };
            }
            Some((r, at_upper)) => {
                if step <= 0.0 {
                    t.degenerate_pivots += 1;
                }
                let j_out = t.basis[r];
                t.x[j_in] += dir * step;
                t.x[j_out] = if at_upper { t.ub[j_out] } else { t.lb[j_out] };
                t.state[j_out] = if at_upper {
                    ColState::AtUpper
                } else {
                    ColState::AtLower
                };
                t.state[j_in] = ColState::Basic(r);
                t.basis[r] = j_in;
                t.update_binv(r, &w);
            }
        }

        // Cycling monitor: objective (phase-aware) should not increase.
        let obj: f64 = t
            .basis
            .iter()
            .map(|&j| t.cost[j] * t.x[j])
            .chain((0..t.ncols).filter_map(|j| match t.state[j] {
                ColState::Basic(_) => None,
                _ => Some(t.cost[j] * t.x[j]),
            }))
            .sum();
        if obj < last_obj - TOL {
            last_obj = obj;
            stall = 0;
        } else {
            stall += 1;
        }
        let _ = phase1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn simple_two_var_lp() {
        // min -x - 2y  s.t. x + y <= 4, x <= 3, y <= 2  (x,y >= 0)
        let mut p = LpProblem::new(2);
        p.obj = vec![-1.0, -2.0];
        p.ub = vec![3.0, 2.0];
        p.add_row(&[(0, 1.0), (1, 1.0)], RowKind::Le, 4.0);
        let s = solve_lp(&p).unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, -6.0); // x=2, y=2
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 2.0);
    }

    #[test]
    fn equality_rows_need_artificials() {
        // min x + y  s.t. x + y = 3, x - y = 1  -> x=2, y=1
        let mut p = LpProblem::new(2);
        p.obj = vec![1.0, 1.0];
        p.add_row(&[(0, 1.0), (1, 1.0)], RowKind::Eq, 3.0);
        p.add_row(&[(0, 1.0), (1, -1.0)], RowKind::Eq, 1.0);
        let s = solve_lp(&p).unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 1.0);
        assert_close(s.objective, 3.0);
    }

    #[test]
    fn infeasible_detected() {
        // x <= 1 and x = 3 simultaneously.
        let mut p = LpProblem::new(1);
        p.obj = vec![1.0];
        p.add_row(&[(0, 1.0)], RowKind::Le, 1.0);
        p.add_row(&[(0, 1.0)], RowKind::Eq, 3.0);
        let s = solve_lp(&p).unwrap();
        assert_eq!(s.status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min -x with x >= 0 unbounded above and no rows limiting it.
        let mut p = LpProblem::new(1);
        p.obj = vec![-1.0];
        p.add_row(&[(0, -1.0)], RowKind::Le, 0.0); // -x <= 0, i.e. x >= 0
        let s = solve_lp(&p).unwrap();
        assert_eq!(s.status, LpStatus::Unbounded);
    }

    #[test]
    fn bounds_without_rows() {
        let mut p = LpProblem::new(2);
        p.obj = vec![1.0, -1.0];
        p.lb = vec![2.0, 0.0];
        p.ub = vec![5.0, 7.0];
        let s = solve_lp(&p).unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 7.0);
        assert_close(s.objective, -5.0);
    }

    #[test]
    fn upper_bounds_respected_via_bound_flips() {
        // max x1 + x2 + x3 s.t. x1 + x2 + x3 <= 10, each x in [0, 4].
        let mut p = LpProblem::new(3);
        p.obj = vec![-1.0, -1.0, -1.0];
        p.ub = vec![4.0, 4.0, 4.0];
        p.add_row(&[(0, 1.0), (1, 1.0), (2, 1.0)], RowKind::Le, 10.0);
        let s = solve_lp(&p).unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, -10.0);
        let total: f64 = s.x.iter().sum();
        assert_close(total, 10.0);
        for v in &s.x {
            assert!(*v <= 4.0 + 1e-9);
        }
    }

    #[test]
    fn negative_lower_bounds() {
        // min x s.t. x >= -5 (bound), x + y = 0, y <= 3  -> x = -3.
        let mut p = LpProblem::new(2);
        p.obj = vec![1.0, 0.0];
        p.lb = vec![-5.0, 0.0];
        p.ub = vec![f64::INFINITY, 3.0];
        p.add_row(&[(0, 1.0), (1, 1.0)], RowKind::Eq, 0.0);
        let s = solve_lp(&p).unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.x[0], -3.0);
        assert_close(s.x[1], 3.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple redundant constraints through the same vertex.
        let mut p = LpProblem::new(2);
        p.obj = vec![-1.0, -1.0];
        p.add_row(&[(0, 1.0)], RowKind::Le, 1.0);
        p.add_row(&[(0, 1.0), (1, 0.0)], RowKind::Le, 1.0);
        p.add_row(&[(0, 2.0)], RowKind::Le, 2.0);
        p.add_row(&[(1, 1.0)], RowKind::Le, 1.0);
        p.add_row(&[(0, 1.0), (1, 1.0)], RowKind::Le, 2.0);
        let s = solve_lp(&p).unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, -2.0);
    }

    #[test]
    fn objective_offset_carried_through() {
        let mut p = LpProblem::new(1);
        p.obj = vec![1.0];
        p.obj_offset = 10.0;
        p.lb = vec![3.0];
        p.add_row(&[(0, 1.0)], RowKind::Le, 5.0);
        let s = solve_lp(&p).unwrap();
        assert_close(s.objective, 13.0);
    }

    #[test]
    fn fixed_variables_stay_fixed() {
        // y fixed at 2 via lb=ub; min x s.t. x + y >= 5 (as -x - y <= -5).
        let mut p = LpProblem::new(2);
        p.obj = vec![1.0, 0.0];
        p.lb = vec![0.0, 2.0];
        p.ub = vec![f64::INFINITY, 2.0];
        p.add_row(&[(0, -1.0), (1, -1.0)], RowKind::Le, -5.0);
        let s = solve_lp(&p).unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.x[0], 3.0);
        assert_close(s.x[1], 2.0);
    }

    #[test]
    fn beale_cycling_example_terminates() {
        // Beale's classic example cycles forever under naive Dantzig
        // pricing with textbook tie-breaking; the anti-cycling safeguards
        // must terminate at the optimum (objective -0.05).
        //   min -0.75x1 + 150x2 - 0.02x3 + 6x4
        //   s.t. 0.25x1 - 60x2 - 0.04x3 + 9x4 <= 0
        //        0.5 x1 - 90x2 - 0.02x3 + 3x4 <= 0
        //        x3 <= 1,   x >= 0
        let mut p = LpProblem::new(4);
        p.obj = vec![-0.75, 150.0, -0.02, 6.0];
        p.add_row(
            &[(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)],
            RowKind::Le,
            0.0,
        );
        p.add_row(
            &[(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)],
            RowKind::Le,
            0.0,
        );
        p.add_row(&[(2, 1.0)], RowKind::Le, 1.0);
        let s = solve_lp(&p).unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert!(
            (s.objective - (-0.05)).abs() < 1e-9,
            "obj = {}",
            s.objective
        );
        assert!((s.x[2] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn strong_duality_on_random_instances() {
        // min c'x, Ax <= b, x >= 0 (no upper bounds): at an optimum,
        // c'x* = y'b, A'y <= c, and y <= 0. This is a complete
        // end-to-end correctness certificate for the simplex.
        let mut seed = 0xD0A1u64;
        let mut rnd = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) % 1000) as f64 / 100.0
        };
        let mut checked = 0;
        for _ in 0..40 {
            let (n, m) = (4, 3);
            let mut p = LpProblem::new(n);
            for j in 0..n {
                p.obj[j] = rnd(); // non-negative costs keep it bounded
            }
            for _ in 0..m {
                let terms: Vec<(usize, f64)> = (0..n).map(|j| (j, rnd() - 4.0)).collect();
                // b mixed in sign so some instances need phase 1.
                p.add_row(&terms, RowKind::Le, rnd() - 2.0);
            }
            let s = solve_lp(&p).unwrap();
            if s.status != LpStatus::Optimal {
                continue;
            }
            checked += 1;
            let y = &s.duals;
            assert_eq!(y.len(), m);
            // Strong duality.
            let primal = s.objective;
            let dual: f64 = y.iter().zip(&p.rhs).map(|(yi, bi)| yi * bi).sum();
            assert!(
                (primal - dual).abs() < 1e-5 * primal.abs().max(1.0),
                "duality gap: primal {primal} dual {dual}"
            );
            // Dual feasibility: A'y <= c and y <= 0.
            for (i, yi) in y.iter().enumerate() {
                assert!(*yi <= 1e-7, "y[{i}] = {yi} must be <= 0");
            }
            for j in 0..n {
                let aty: f64 = p.cols[j].iter().map(|&(r, a)| a * y[r]).sum();
                assert!(aty <= p.obj[j] + 1e-6, "dual infeasible at column {j}");
            }
        }
        assert!(checked >= 10, "too few optimal instances ({checked})");
    }

    #[test]
    fn larger_transportation_lp() {
        // 3 suppliers x 4 consumers transportation problem.
        let supply = [20.0, 30.0, 25.0];
        let demand = [10.0, 25.0, 20.0, 20.0];
        let cost = [
            [4.0, 6.0, 8.0, 11.0],
            [5.0, 5.0, 7.0, 9.0],
            [6.0, 4.0, 3.0, 5.0],
        ];
        let nv = 12;
        let mut p = LpProblem::new(nv);
        for (i, row) in cost.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                p.obj[i * 4 + j] = c;
            }
        }
        for (i, &s) in supply.iter().enumerate() {
            let terms: Vec<_> = (0..4).map(|j| (i * 4 + j, 1.0)).collect();
            p.add_row(&terms, RowKind::Le, s);
        }
        for (j, &d) in demand.iter().enumerate() {
            let terms: Vec<_> = (0..3).map(|i| (i * 4 + j, 1.0)).collect();
            p.add_row(&terms, RowKind::Eq, d);
        }
        let s = solve_lp(&p).unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        // Validate feasibility of the returned plan.
        for (i, &cap) in supply.iter().enumerate() {
            let used: f64 = (0..4).map(|j| s.x[i * 4 + j]).sum();
            assert!(used <= cap + 1e-6);
        }
        for (j, &want) in demand.iter().enumerate() {
            let got: f64 = (0..3).map(|i| s.x[i * 4 + j]).sum();
            assert_close(got, want);
        }
        // Optimum verified by hand (s0: t0=10,t1=10; s1: t1=15,t3=15; s2: t2=20,t3=5).
        assert_close(s.objective, 395.0);
    }
}
