use crate::Var;

/// Quality of a returned MILP solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Proven optimal within tolerances.
    Optimal,
    /// Feasible but optimality not proven (node limit hit).
    Feasible,
}

/// Search statistics from a branch-and-bound run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SolveStats {
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
    /// Total simplex iterations across all LP solves.
    pub lp_iterations: usize,
    /// Best proven lower bound on the (minimization-form) objective.
    pub best_bound: f64,
}

/// A feasible (and usually optimal) solution to a [`crate::Model`].
#[derive(Debug, Clone)]
pub struct Solution {
    /// Whether optimality was proven.
    pub status: Status,
    /// Objective value in the model's own sense.
    pub objective: f64,
    /// Variable values, indexed by [`Var::index`].
    pub values: Vec<f64>,
    /// Search statistics.
    pub stats: SolveStats,
}

impl Solution {
    /// The value of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to the solved model.
    #[must_use]
    pub fn value(&self, var: Var) -> f64 {
        self.values[var.index()]
    }

    /// The value of `var` rounded to the nearest integer — convenient for
    /// binary/integer variables.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to the solved model.
    #[must_use]
    pub fn int_value(&self, var: Var) -> i64 {
        self.values[var.index()].round() as i64
    }
}
