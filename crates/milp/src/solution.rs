use crate::Var;

/// Quality of a returned MILP solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Proven optimal within tolerances.
    Optimal,
    /// Feasible but optimality not proven (node limit hit).
    Feasible,
}

/// One improvement of the best known feasible solution during the search.
///
/// The `(node, objective)` pair is a deterministic function of the model
/// and solver configuration; `at_us` is wall clock and is **not** — it
/// exists for profiling output only and must never flow into canonical
/// (byte-stable) serializations.
#[derive(Debug, Clone, PartialEq)]
pub struct Incumbent {
    /// Objective value of the new incumbent in **minimization form** (the
    /// sign flip for maximization models is *not* applied), so a
    /// sequential search's trajectory is always monotone nonincreasing.
    pub objective: f64,
    /// Branch-and-bound nodes explored when this incumbent was found
    /// (0 = warm-start seed accepted before the search began).
    pub node: usize,
    /// Microseconds since the solve started (wall clock, nondeterministic).
    pub at_us: f64,
}

/// Search statistics from a branch-and-bound run.
///
/// Every field except `at_us` inside [`SolveStats::incumbents`] is
/// deterministic for a fixed model and sequential configuration, which is
/// what lets `dvsc bench-solver` pin them in `BENCH_solver.json` across
/// PRs and job counts.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SolveStats {
    /// Branch-and-bound nodes explored (an LP was solved for each).
    pub nodes: usize,
    /// Nodes discarded without an LP solve or whose relaxation could not
    /// beat the incumbent: parent-bound prunes, presolve-infeasible
    /// nodes, and LP-bound prunes.
    pub nodes_pruned: usize,
    /// Total simplex iterations across all LP solves (pivots plus bound
    /// flips).
    pub lp_iterations: usize,
    /// Simplex basis-change pivots across all LP solves.
    pub pivots: usize,
    /// Pivots with a zero step length (degenerate).
    pub degenerate_pivots: usize,
    /// Nonbasic bound-to-bound flips (iterations without a basis change).
    pub bound_flips: usize,
    /// Basis-inverse rebuilds across all LP solves (initial factorization,
    /// periodic refresh, and repair paths).
    pub refactorizations: usize,
    /// Basis changes performed by the warm-start dual simplex when a node
    /// reuses its parent's basis (a subset of `pivots`; 0 when basis reuse
    /// is disabled or never applicable).
    pub dual_pivots: usize,
    /// Rows eliminated by presolve, summed over every node it ran on.
    pub presolve_rows_removed: usize,
    /// Variable bounds tightened by presolve, summed over every node.
    pub presolve_bounds_tightened: usize,
    /// Best proven lower bound on the (minimization-form) objective.
    pub best_bound: f64,
    /// Relative gap `(incumbent − best_bound) / max(1, |incumbent|)` in
    /// minimization form at the end of the search; 0 when optimality was
    /// proven.
    pub mip_gap: f64,
    /// Every improvement of the incumbent, in the order found. Objectives
    /// are recorded in minimization form and the trajectory is monotone
    /// strictly decreasing, ending at the returned solution's objective —
    /// for sequential searches by construction, and for a parallel root
    /// split because the merge renumbers child improvements into the
    /// deterministic depth-first exploration order and keeps only the
    /// strict improvements.
    pub incumbents: Vec<Incumbent>,
}

impl SolveStats {
    /// Folds another run's statistics into this one (used when merging
    /// the results of a parallel root split). Counter fields add;
    /// `best_bound` takes the minimum. The incumbent trajectory is *not*
    /// touched: children of a parallel split re-record the shared seed and
    /// number nodes from their own root, so a blind concatenation would
    /// duplicate entries and break monotonicity — the merge site filters
    /// and renumbers instead.
    pub fn absorb(&mut self, other: &SolveStats) {
        self.nodes += other.nodes;
        self.nodes_pruned += other.nodes_pruned;
        self.lp_iterations += other.lp_iterations;
        self.pivots += other.pivots;
        self.degenerate_pivots += other.degenerate_pivots;
        self.bound_flips += other.bound_flips;
        self.refactorizations += other.refactorizations;
        self.dual_pivots += other.dual_pivots;
        self.presolve_rows_removed += other.presolve_rows_removed;
        self.presolve_bounds_tightened += other.presolve_bounds_tightened;
        self.best_bound = self.best_bound.min(other.best_bound);
    }
}

/// A feasible (and usually optimal) solution to a [`crate::Model`].
#[derive(Debug, Clone)]
pub struct Solution {
    /// Whether optimality was proven.
    pub status: Status,
    /// Objective value in the model's own sense.
    pub objective: f64,
    /// Variable values, indexed by [`Var::index`].
    pub values: Vec<f64>,
    /// Search statistics.
    pub stats: SolveStats,
}

impl Solution {
    /// The value of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to the solved model.
    #[must_use]
    pub fn value(&self, var: Var) -> f64 {
        self.values[var.index()]
    }

    /// The value of `var` rounded to the nearest integer — convenient for
    /// binary/integer variables.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to the solved model.
    #[must_use]
    pub fn int_value(&self, var: Var) -> i64 {
        self.values[var.index()].round() as i64
    }
}
