//! Randomized tests: the simplex and branch-and-bound against brute force.
//!
//! * For random small **binary** programs, enumerate all 2^n assignments and
//!   check the MILP solver finds exactly the best feasible one.
//! * For random small **LPs over boxes**, sample many feasible points and
//!   verify none beats the simplex optimum, and that the simplex solution
//!   satisfies every constraint.
//!
//! Instances come from a fixed-seed SplitMix64 generator so failures
//! reproduce exactly; each test sweeps the same instance counts the old
//! property-testing setup used.

use dvs_milp::{solve, solve_with, BranchRule, LinExpr, MilpError, Model, Sense, SolveOptions};

/// SplitMix64: tiny, seedable, and statistically fine for test-case
/// generation.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[lo, hi)`.
    fn int(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }

    /// Uniform f64 in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Enumerates all binary assignments, returning the best feasible objective.
fn brute_force_binary(
    n: usize,
    obj: &[f64],
    cons: &[(Vec<f64>, f64)], // (coeffs, rhs) meaning coeffs . x <= rhs
) -> Option<f64> {
    let mut best: Option<f64> = None;
    for mask in 0u32..(1 << n) {
        let x: Vec<f64> = (0..n).map(|i| f64::from((mask >> i) & 1)).collect();
        let feasible = cons
            .iter()
            .all(|(a, b)| a.iter().zip(&x).map(|(c, v)| c * v).sum::<f64>() <= b + 1e-9);
        if feasible {
            let v: f64 = obj.iter().zip(&x).map(|(c, v)| c * v).sum();
            best = Some(best.map_or(v, |b: f64| b.max(v)));
        }
    }
    best
}

#[test]
fn binary_milp_matches_brute_force() {
    let mut rng = Rng(0xD5_5EED_0001);
    for case in 0..64 {
        let n = rng.int(2, 8) as usize;
        let obj: Vec<f64> = (0..n).map(|_| rng.int(-10, 10) as f64).collect();
        let num_cons = rng.int(1, 4) as usize;
        let cons: Vec<(Vec<f64>, f64)> = (0..num_cons)
            .map(|_| {
                let a: Vec<f64> = (0..n).map(|_| rng.int(-5, 6) as f64).collect();
                (a, rng.int(0, 20) as f64)
            })
            .collect();

        let mut m = Model::new(Sense::Maximize);
        let xs: Vec<_> = (0..n).map(|i| m.bool_var(format!("x{i}"))).collect();
        let mut e = LinExpr::zero();
        for (i, &x) in xs.iter().enumerate() {
            e += obj[i] * x;
        }
        m.set_objective(e);
        for (a, b) in &cons {
            let mut lhs = LinExpr::zero();
            for (i, &x) in xs.iter().enumerate() {
                lhs += a[i] * x;
            }
            m.add_le(lhs, *b);
        }

        let expected = brute_force_binary(n, &obj, &cons);
        match (solve(&m), expected) {
            (Ok(sol), Some(best)) => {
                assert!(
                    (sol.objective - best).abs() < 1e-6,
                    "case {case}: solver {} vs brute force {}",
                    sol.objective,
                    best
                );
                // Returned assignment must itself be feasible and binary.
                for &x in &xs {
                    let v = sol.value(x);
                    assert!((v - v.round()).abs() < 1e-6, "case {case}: non-binary {v}");
                }
                for (a, b) in &cons {
                    let lhs: f64 = xs
                        .iter()
                        .enumerate()
                        .map(|(i, &x)| a[i] * sol.value(x))
                        .sum();
                    assert!(lhs <= b + 1e-6, "case {case}: violated constraint");
                }
            }
            (Err(MilpError::Infeasible), None) => {}
            (got, want) => panic!(
                "case {case}: solver {:?} vs brute force {:?}",
                got.map(|s| s.objective),
                want
            ),
        }
    }
}

#[test]
fn lp_optimum_dominates_random_feasible_points() {
    let mut rng = Rng(0xD5_5EED_0002);
    for case in 0..64 {
        // Constraints use non-negative coefficients so x=0 is always
        // feasible and the instance is never infeasible; the box [0, 10]^n
        // keeps it bounded.
        let n = rng.int(2, 6) as usize;
        let obj: Vec<f64> = (0..n).map(|_| rng.int(-10, 10) as f64).collect();
        let num_cons = rng.int(1, 4) as usize;
        let cons: Vec<(Vec<f64>, f64)> = (0..num_cons)
            .map(|_| {
                let a: Vec<f64> = (0..n).map(|_| rng.int(0, 6) as f64).collect();
                (a, rng.int(1, 30) as f64)
            })
            .collect();

        let mut m = Model::new(Sense::Maximize);
        let xs: Vec<_> = (0..n)
            .map(|i| m.num_var(format!("x{i}"), 0.0, 10.0))
            .collect();
        let mut e = LinExpr::zero();
        for (i, &x) in xs.iter().enumerate() {
            e += obj[i] * x;
        }
        m.set_objective(e);
        for (a, b) in &cons {
            let mut lhs = LinExpr::zero();
            for (i, &x) in xs.iter().enumerate() {
                lhs += a[i] * x;
            }
            m.add_le(lhs, *b);
        }
        let sol = solve(&m).unwrap();

        // The solver's point is feasible.
        for (a, b) in &cons {
            let lhs: f64 = xs
                .iter()
                .enumerate()
                .map(|(i, &x)| a[i] * sol.value(x))
                .sum();
            assert!(lhs <= b + 1e-6, "case {case}: infeasible optimum");
        }
        for &x in &xs {
            let v = sol.value(x);
            assert!(
                (-1e-9..=10.0 + 1e-9).contains(&v),
                "case {case}: out of box {v}"
            );
        }

        // No sampled feasible point beats it. Scale samples into the box and
        // reject infeasible ones.
        for _ in 0..20 {
            let x: Vec<f64> = (0..n).map(|_| rng.unit() * 10.0).collect();
            let feasible = cons
                .iter()
                .all(|(a, b)| a.iter().zip(&x).map(|(c, v)| c * v).sum::<f64>() <= *b);
            if feasible {
                let v: f64 = obj.iter().zip(&x).map(|(c, v)| c * v).sum();
                assert!(
                    v <= sol.objective + 1e-6,
                    "case {case}: sample {v} beats optimum {}",
                    sol.objective
                );
            }
        }
    }
}

/// SOS1 branching and plain most-fractional branching must agree on
/// the optimal objective of random assignment-like instances (they
/// explore different trees, same optimum).
#[test]
fn branch_rules_agree_on_optimum() {
    let mut rng = Rng(0xD5_5EED_0003);
    for case in 0..48 {
        let costs: Vec<f64> = (0..9).map(|_| rng.int(0, 12) as f64).collect();
        let cap = rng.int(1, 4) as f64;

        let mut m = Model::new(Sense::Minimize);
        let mut vars = vec![vec![]; 3];
        let mut obj = LinExpr::zero();
        for g in 0..3 {
            for i in 0..3 {
                let v = m.bool_var(format!("x{g}{i}"));
                obj += costs[g * 3 + i] * v;
                vars[g].push(v);
            }
            let mut sum = LinExpr::zero();
            for &v in &vars[g] {
                sum += LinExpr::from(v);
            }
            m.add_eq(sum, 1.0);
            m.add_sos1(vars[g].clone());
        }
        // A side constraint coupling the groups so the LP relaxation is
        // usually fractional: at most `cap` of the "column 0" picks.
        let mut col0 = LinExpr::zero();
        for group in &vars {
            col0 += LinExpr::from(group[0]);
        }
        m.add_le(col0, cap);
        m.set_objective(obj);

        let sos = solve_with(
            &m,
            &SolveOptions {
                rule: BranchRule::Sos1ThenFractional,
                ..SolveOptions::default()
            },
        );
        let frac = solve_with(
            &m,
            &SolveOptions {
                rule: BranchRule::MostFractional,
                ..SolveOptions::default()
            },
        );
        match (sos, frac) {
            (Ok(a), Ok(b)) => assert!(
                (a.objective - b.objective).abs() < 1e-6,
                "case {case}: sos {} vs fractional {}",
                a.objective,
                b.objective
            ),
            (a, b) => panic!(
                "case {case}: solver disagreement: {:?} vs {:?}",
                a.map(|s| s.objective),
                b.map(|s| s.objective)
            ),
        }
    }
}

/// Presolve on/off agree on the optimum.
#[test]
fn presolve_preserves_milp_optimum() {
    let mut rng = Rng(0xD5_5EED_0004);
    for case in 0..48 {
        let n = 6;
        let obj_raw: Vec<f64> = (0..n).map(|_| rng.int(-8, 8) as f64).collect();
        let rhs = rng.int(2, 16) as f64;

        let mut m = Model::new(Sense::Maximize);
        let xs: Vec<_> = (0..n).map(|i| m.bool_var(format!("x{i}"))).collect();
        let mut obj = LinExpr::zero();
        let mut w = LinExpr::zero();
        for (i, &x) in xs.iter().enumerate() {
            obj += obj_raw[i] * x;
            w += ((i % 3 + 1) as f64) * x;
        }
        m.set_objective(obj);
        m.add_le(w, rhs);
        let with = solve_with(
            &m,
            &SolveOptions {
                presolve: true,
                ..SolveOptions::default()
            },
        )
        .expect("feasible: all-zero works");
        let without = solve_with(
            &m,
            &SolveOptions {
                presolve: false,
                ..SolveOptions::default()
            },
        )
        .expect("feasible");
        assert!(
            (with.objective - without.objective).abs() < 1e-6,
            "case {case}: presolve {} vs raw {}",
            with.objective,
            without.objective
        );
    }
}

/// Basis reuse is a pure acceleration: warm-starting every node from its
/// parent's basis must leave the optimum bit-identical to fresh solves,
/// and over a batch of assignment-like instances the dual simplex must
/// actually do the restarting work (dual pivots observed, never more
/// simplex iterations in total than solving every node from scratch).
#[test]
fn basis_reuse_preserves_optimum_and_saves_pivots() {
    let mut rng = Rng(0xD5_5EED_0005);
    let mut branched = 0usize;
    let mut warm_iters = 0u64;
    let mut cold_iters = 0u64;
    let mut dual_pivots = 0u64;
    for case in 0..48 {
        // Mode selection per group plus a tight "deadline" knapsack over
        // random per-mode times — the DVS shape, with fractional data so
        // the LP relaxation usually branches.
        let mut m = Model::new(Sense::Minimize);
        let mut obj = LinExpr::zero();
        let mut time = LinExpr::zero();
        let mut min_t = 0.0;
        let mut max_t = 0.0;
        for g in 0..4 {
            let mut group = Vec::new();
            let mut fastest: f64 = f64::INFINITY;
            let mut slowest: f64 = 0.0;
            for i in 0..3 {
                let v = m.bool_var(format!("x{g}{i}"));
                let energy = rng.unit() * 10.0;
                let t = rng.unit() * 10.0;
                obj += energy * v;
                time += t * v;
                fastest = fastest.min(t);
                slowest = slowest.max(t);
                group.push(v);
            }
            min_t += fastest;
            max_t += slowest;
            let mut sum = LinExpr::zero();
            for &v in &group {
                sum += LinExpr::from(v);
            }
            m.add_eq(sum, 1.0);
        }
        m.add_le(time, min_t + 0.35 * (max_t - min_t));
        m.set_objective(obj);

        let warm = solve_with(
            &m,
            &SolveOptions {
                reuse_basis: true,
                ..SolveOptions::default()
            },
        )
        .expect("all-fastest assignment is feasible");
        let cold = solve_with(
            &m,
            &SolveOptions {
                reuse_basis: false,
                ..SolveOptions::default()
            },
        )
        .expect("all-fastest assignment is feasible");
        assert_eq!(
            warm.objective.to_bits(),
            cold.objective.to_bits(),
            "case {case}: warm {} vs cold {}",
            warm.objective,
            cold.objective
        );
        if warm.stats.nodes > 1 {
            branched += 1;
        }
        warm_iters += warm.stats.lp_iterations as u64;
        cold_iters += cold.stats.lp_iterations as u64;
        dual_pivots += warm.stats.dual_pivots as u64;
    }
    assert!(
        branched >= 10,
        "batch too easy to exercise warm starts ({branched} branched)"
    );
    assert!(
        dual_pivots > 0,
        "warm starts never engaged the dual simplex across the batch"
    );
    assert!(
        warm_iters < cold_iters,
        "basis reuse must save iterations over the batch: warm {warm_iters} vs cold {cold_iters}"
    );
}
