//! Property tests: the simplex and branch-and-bound against brute force.
//!
//! * For random small **binary** programs, enumerate all 2^n assignments and
//!   check the MILP solver finds exactly the best feasible one.
//! * For random small **LPs over boxes**, sample many feasible points and
//!   verify none beats the simplex optimum, and that the simplex solution
//!   satisfies every constraint.

use dvs_milp::{solve, solve_with, BranchConfig, BranchRule, LinExpr, Model, MilpError, Sense};
use proptest::prelude::*;

/// Enumerates all binary assignments, returning the best feasible objective.
fn brute_force_binary(
    n: usize,
    obj: &[f64],
    cons: &[(Vec<f64>, f64)], // (coeffs, rhs) meaning coeffs . x <= rhs
) -> Option<f64> {
    let mut best: Option<f64> = None;
    for mask in 0u32..(1 << n) {
        let x: Vec<f64> = (0..n).map(|i| f64::from((mask >> i) & 1)).collect();
        let feasible = cons
            .iter()
            .all(|(a, b)| a.iter().zip(&x).map(|(c, v)| c * v).sum::<f64>() <= b + 1e-9);
        if feasible {
            let v: f64 = obj.iter().zip(&x).map(|(c, v)| c * v).sum();
            best = Some(best.map_or(v, |b: f64| b.max(v)));
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binary_milp_matches_brute_force(
        n in 2usize..8,
        obj_raw in prop::collection::vec(-10i32..10, 8),
        con_raw in prop::collection::vec((prop::collection::vec(-5i32..6, 8), 0i32..20), 1..4),
    ) {
        let obj: Vec<f64> = obj_raw[..n].iter().map(|&c| f64::from(c)).collect();
        let cons: Vec<(Vec<f64>, f64)> = con_raw
            .iter()
            .map(|(a, b)| (a[..n].iter().map(|&c| f64::from(c)).collect(), f64::from(*b)))
            .collect();

        let mut m = Model::new(Sense::Maximize);
        let xs: Vec<_> = (0..n).map(|i| m.bool_var(format!("x{i}"))).collect();
        let mut e = LinExpr::zero();
        for (i, &x) in xs.iter().enumerate() {
            e += obj[i] * x;
        }
        m.set_objective(e);
        for (a, b) in &cons {
            let mut lhs = LinExpr::zero();
            for (i, &x) in xs.iter().enumerate() {
                lhs += a[i] * x;
            }
            m.add_le(lhs, *b);
        }

        let expected = brute_force_binary(n, &obj, &cons);
        match (solve(&m), expected) {
            (Ok(sol), Some(best)) => {
                prop_assert!((sol.objective - best).abs() < 1e-6,
                    "solver {} vs brute force {}", sol.objective, best);
                // Returned assignment must itself be feasible and binary.
                for &x in &xs {
                    let v = sol.value(x);
                    prop_assert!((v - v.round()).abs() < 1e-6);
                }
                for (a, b) in &cons {
                    let lhs: f64 = xs.iter().enumerate()
                        .map(|(i, &x)| a[i] * sol.value(x)).sum();
                    prop_assert!(lhs <= b + 1e-6);
                }
            }
            (Err(MilpError::Infeasible), None) => {}
            (got, want) => prop_assert!(false, "solver {:?} vs brute force {:?}",
                got.map(|s| s.objective), want),
        }
    }

    #[test]
    fn lp_optimum_dominates_random_feasible_points(
        n in 2usize..6,
        obj_raw in prop::collection::vec(-10i32..10, 6),
        con_raw in prop::collection::vec((prop::collection::vec(0i32..6, 6), 1i32..30), 1..4),
        samples in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 6), 20),
    ) {
        // Constraints use non-negative coefficients so x=0 is always
        // feasible and the instance is never infeasible; the box [0, 10]^n
        // keeps it bounded.
        let obj: Vec<f64> = obj_raw[..n].iter().map(|&c| f64::from(c)).collect();
        let cons: Vec<(Vec<f64>, f64)> = con_raw
            .iter()
            .map(|(a, b)| (a[..n].iter().map(|&c| f64::from(c)).collect(), f64::from(*b)))
            .collect();

        let mut m = Model::new(Sense::Maximize);
        let xs: Vec<_> = (0..n).map(|i| m.num_var(format!("x{i}"), 0.0, 10.0)).collect();
        let mut e = LinExpr::zero();
        for (i, &x) in xs.iter().enumerate() {
            e += obj[i] * x;
        }
        m.set_objective(e);
        for (a, b) in &cons {
            let mut lhs = LinExpr::zero();
            for (i, &x) in xs.iter().enumerate() {
                lhs += a[i] * x;
            }
            m.add_le(lhs, *b);
        }
        let sol = solve(&m).unwrap();

        // The solver's point is feasible.
        for (a, b) in &cons {
            let lhs: f64 = xs.iter().enumerate().map(|(i, &x)| a[i] * sol.value(x)).sum();
            prop_assert!(lhs <= b + 1e-6);
        }
        for &x in &xs {
            let v = sol.value(x);
            prop_assert!((-1e-9..=10.0 + 1e-9).contains(&v));
        }

        // No sampled feasible point beats it. Scale samples into the box and
        // reject infeasible ones.
        for s in &samples {
            let x: Vec<f64> = s[..n].iter().map(|v| v * 10.0).collect();
            let feasible = cons.iter().all(|(a, b)| {
                a.iter().zip(&x).map(|(c, v)| c * v).sum::<f64>() <= *b
            });
            if feasible {
                let v: f64 = obj.iter().zip(&x).map(|(c, v)| c * v).sum();
                prop_assert!(v <= sol.objective + 1e-6,
                    "sample {v} beats optimum {}", sol.objective);
            }
        }
    }
}


proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SOS1 branching and plain most-fractional branching must agree on
    /// the optimal objective of random assignment-like instances (they
    /// explore different trees, same optimum).
    #[test]
    fn branch_rules_agree_on_optimum(
        costs in prop::collection::vec(0i32..12, 9),
        cap in 1i32..4,
    ) {
        let mut m = Model::new(Sense::Minimize);
        let mut vars = vec![vec![]; 3];
        let mut obj = LinExpr::zero();
        for g in 0..3 {
            for i in 0..3 {
                let v = m.bool_var(format!("x{g}{i}"));
                obj += f64::from(costs[g * 3 + i]) * v;
                vars[g].push(v);
            }
            let mut sum = LinExpr::zero();
            for &v in &vars[g] {
                sum += LinExpr::from(v);
            }
            m.add_eq(sum, 1.0);
            m.add_sos1(vars[g].clone());
        }
        // A side constraint coupling the groups so the LP relaxation is
        // usually fractional: at most `cap` of the "column 0" picks.
        let mut col0 = LinExpr::zero();
        for g in 0..3 {
            col0 += LinExpr::from(vars[g][0]);
        }
        m.add_le(col0, f64::from(cap));
        m.set_objective(obj);

        let sos = solve_with(
            &m,
            &BranchConfig { rule: BranchRule::Sos1ThenFractional, ..BranchConfig::default() },
        );
        let frac = solve_with(
            &m,
            &BranchConfig { rule: BranchRule::MostFractional, ..BranchConfig::default() },
        );
        match (sos, frac) {
            (Ok(a), Ok(b)) => prop_assert!(
                (a.objective - b.objective).abs() < 1e-6,
                "sos {} vs fractional {}", a.objective, b.objective
            ),
            (a, b) => prop_assert!(false, "solver disagreement: {:?} vs {:?}",
                a.map(|s| s.objective), b.map(|s| s.objective)),
        }
    }

    /// Presolve on/off agree on the optimum.
    #[test]
    fn presolve_preserves_milp_optimum(
        obj_raw in prop::collection::vec(-8i32..8, 6),
        rhs in 2i32..16,
    ) {
        let n = 6;
        let mut m = Model::new(Sense::Maximize);
        let xs: Vec<_> = (0..n).map(|i| m.bool_var(format!("x{i}"))).collect();
        let mut obj = LinExpr::zero();
        let mut w = LinExpr::zero();
        for (i, &x) in xs.iter().enumerate() {
            obj += f64::from(obj_raw[i]) * x;
            w += f64::from((i % 3 + 1) as i32) * x;
        }
        m.set_objective(obj);
        m.add_le(w, f64::from(rhs));
        let with = solve_with(
            &m,
            &BranchConfig { presolve: true, ..BranchConfig::default() },
        ).expect("feasible: all-zero works");
        let without = solve_with(
            &m,
            &BranchConfig { presolve: false, ..BranchConfig::default() },
        ).expect("feasible");
        prop_assert!((with.objective - without.objective).abs() < 1e-6);
    }
}
