use crate::ProgramParams;
use dvs_vf::AlphaPower;

/// Which structural case of §3.3 a `(program, deadline)` pair falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseKind {
    /// §3.3.1 / Fig. 2: `finvariant <= fideal` — one frequency is optimal,
    /// intra-program DVS saves nothing.
    ComputeDominated,
    /// §3.3.1 / Fig. 3: `finvariant > fideal` and `Noverlap > Ncache` — two
    /// frequencies beat one.
    MemoryDominated,
    /// §3.3.2 / Fig. 4: `Ncache >= Noverlap` — slowing the overlap region
    /// dilates the memory time itself; one frequency is again optimal.
    MemoryDominatedSlack,
}

/// The best single `(V, f)` meeting the deadline, and its model energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SingleFrequency {
    /// Clock frequency, MHz.
    pub f_mhz: f64,
    /// Supply voltage, volts.
    pub v: f64,
    /// Model energy, cycle·V².
    pub energy: f64,
}

/// Result of the continuous two-voltage optimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContinuousSolution {
    /// Structural case.
    pub case: CaseKind,
    /// Voltage of the overlap region.
    pub v1: f64,
    /// Frequency of the overlap region, MHz.
    pub f1_mhz: f64,
    /// Voltage of the dependent region.
    pub v2: f64,
    /// Frequency of the dependent region, MHz.
    pub f2_mhz: f64,
    /// Minimum model energy, cycle·V².
    pub energy: f64,
}

/// The continuous-voltage analytical model (§3.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContinuousModel {
    law: AlphaPower,
    /// Inclusive voltage search range.
    v_lo: f64,
    v_hi: f64,
}

impl ContinuousModel {
    /// Model with the paper's alpha-power parameters and a wide continuous
    /// voltage range (0.5 V – 4 V, matching the sweep range of Figs. 2–4).
    #[must_use]
    pub fn paper() -> Self {
        ContinuousModel {
            law: AlphaPower::paper(),
            v_lo: 0.5,
            v_hi: 4.0,
        }
    }

    /// Model with an explicit law and voltage range.
    #[must_use]
    pub fn new(law: AlphaPower, v_lo: f64, v_hi: f64) -> Self {
        ContinuousModel { law, v_lo, v_hi }
    }

    /// The alpha-power law in use.
    #[must_use]
    pub fn law(&self) -> &AlphaPower {
        &self.law
    }

    fn f_of(&self, v: f64) -> f64 {
        self.law.frequency_mhz(v).unwrap_or(0.0)
    }

    fn v_of(&self, f: f64) -> Option<f64> {
        let v = self.law.voltage_for(f).ok()?;
        if v > self.v_hi + 1e-9 {
            None
        } else {
            Some(v.max(self.v_lo))
        }
    }

    /// Classifies the program at this deadline.
    #[must_use]
    pub fn classify(&self, p: &ProgramParams, t_deadline_us: f64) -> CaseKind {
        if p.n_cache >= p.n_overlap {
            return CaseKind::MemoryDominatedSlack;
        }
        let fid = p.f_ideal_compute_mhz(t_deadline_us);
        match p.f_invariant_mhz() {
            Some(finv) if finv < fid => CaseKind::MemoryDominated,
            _ => CaseKind::ComputeDominated,
        }
    }

    /// The best single frequency meeting the deadline, or `None` when even
    /// the highest voltage in range is too slow.
    #[must_use]
    pub fn best_single(&self, p: &ProgramParams, t_deadline_us: f64) -> Option<SingleFrequency> {
        if !p.is_valid() || t_deadline_us <= p.t_invariant_us {
            return None;
        }
        // time(f) is strictly decreasing; bisect for the slowest f that
        // meets the deadline.
        let f_max = self.f_of(self.v_hi);
        if p.time_at_single_frequency(f_max) > t_deadline_us {
            return None;
        }
        let mut lo = 1e-9;
        let mut hi = f_max;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if p.time_at_single_frequency(mid) > t_deadline_us {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let f = hi;
        let v = self.v_of(f)?;
        let energy = (p.overlap_region_cycles() + p.n_dependent) * v * v;
        Some(SingleFrequency {
            f_mhz: f,
            v,
            energy,
        })
    }

    /// Model energy of a candidate overlap-region voltage `v1` with the
    /// dependent-region voltage chosen optimally under the active deadline
    /// constraint. `None` when `v1` leaves no feasible `v2`. This is the
    /// function plotted in Figs. 2–4.
    #[must_use]
    pub fn energy_at_v1(&self, p: &ProgramParams, t_deadline_us: f64, v1: f64) -> Option<f64> {
        let f1 = self.f_of(v1);
        if f1 <= 0.0 {
            return None;
        }
        let overlap_cycles = p.overlap_region_cycles();
        // Wall time of the overlap region at f1.
        let t1 = if p.n_cache >= p.n_overlap {
            p.t_invariant_us + p.n_cache / f1
        } else {
            (p.t_invariant_us + p.n_cache / f1).max(p.n_overlap / f1)
        };
        let budget = t_deadline_us - t1;
        if budget <= 0.0 {
            return if p.n_dependent == 0.0 && budget >= -1e-12 {
                Some(overlap_cycles * v1 * v1)
            } else {
                None
            };
        }
        if p.n_dependent == 0.0 {
            return Some(overlap_cycles * v1 * v1);
        }
        let f2 = p.n_dependent / budget;
        let v2 = self.v_of(f2)?;
        Some(overlap_cycles * v1 * v1 + p.n_dependent * v2 * v2)
    }

    /// The derivative `dE/dv1` of [`ContinuousModel::energy_at_v1`],
    /// assembled from the paper's §3.3 chain rule: with
    /// `E(v1) = X·v1² + Nd·v2(v1)²` and `v2` implied by the active deadline
    /// constraint,
    ///
    /// ```text
    /// dE/dv1 = 2·X·v1 + 2·Nd·v2 · (dv/df)(f2) · df2/dv1
    /// ```
    ///
    /// where `df/dv` comes from differentiating the alpha-power law and
    /// `df2/dv1` from the constraint piece in force (`f1 ≷ finvariant`).
    /// Returns `None` where the energy itself is undefined. At the optimum
    /// of the memory-dominated case this crosses zero — the condition the
    /// paper derives.
    #[must_use]
    pub fn energy_derivative_v1(
        &self,
        p: &ProgramParams,
        t_deadline_us: f64,
        v1: f64,
    ) -> Option<f64> {
        let f1 = self.f_of(v1);
        if f1 <= 0.0 || p.n_dependent == 0.0 {
            return None;
        }
        let x_cycles = p.overlap_region_cycles();
        // Active constraint piece decides how t1 moves with v1.
        let mem_arm = p.t_invariant_us + p.n_cache / f1;
        let comp_arm = p.n_overlap / f1;
        let (t1, governing_cycles) = if p.n_cache >= p.n_overlap || mem_arm >= comp_arm {
            (mem_arm, p.n_cache)
        } else {
            (comp_arm, p.n_overlap)
        };
        let budget = t_deadline_us - t1;
        if budget <= 0.0 {
            return None;
        }
        let f2 = p.n_dependent / budget;
        let v2 = self.v_of(f2)?;
        // df/dv of the alpha-power law at a voltage v.
        let dfdv = |v: f64| {
            let law = &self.law;
            let d = v - law.vt;
            law.k * (law.alpha * d.powf(law.alpha - 1.0) * v - d.powf(law.alpha)) / (v * v)
        };
        // dt1/dv1 = -governing_cycles / f1² · df/dv(v1).
        let dt1 = -governing_cycles / (f1 * f1) * dfdv(v1);
        // df2/dv1 = Nd / budget² · dt1/dv1.
        let df2 = p.n_dependent / (budget * budget) * dt1;
        // dv2/dv1 = df2 / (df/dv at v2).
        let dv2 = df2 / dfdv(v2);
        Some(2.0 * x_cycles * v1 + 2.0 * p.n_dependent * v2 * dv2)
    }

    /// The optimal continuous solution: one voltage in the
    /// computation-dominated and with-slack cases, two in the
    /// memory-dominated case (found numerically over `v1`, as the paper
    /// does). `None` when the deadline is infeasible.
    #[must_use]
    pub fn optimal(&self, p: &ProgramParams, t_deadline_us: f64) -> Option<ContinuousSolution> {
        let single = self.best_single(p, t_deadline_us)?;
        let case = self.classify(p, t_deadline_us);
        let mut best = ContinuousSolution {
            case,
            v1: single.v,
            f1_mhz: single.f_mhz,
            v2: single.v,
            f2_mhz: single.f_mhz,
            energy: single.energy,
        };
        if case != CaseKind::MemoryDominated {
            return Some(best);
        }
        // Scan v1 below the single-frequency voltage (slower overlap region)
        // and refine around the best grid point.
        let scan = |lo: f64, hi: f64, steps: usize, best: &mut ContinuousSolution| {
            for i in 0..=steps {
                let v1 = lo + (hi - lo) * i as f64 / steps as f64;
                if let Some(e) = self.energy_at_v1(p, t_deadline_us, v1) {
                    if e < best.energy {
                        let f1 = self.f_of(v1);
                        let t1 = (p.t_invariant_us + p.n_cache / f1).max(p.n_overlap / f1);
                        let f2 = p.n_dependent / (t_deadline_us - t1);
                        let v2 = self.v_of(f2).unwrap_or(v1);
                        *best = ContinuousSolution {
                            case: CaseKind::MemoryDominated,
                            v1,
                            f1_mhz: f1,
                            v2,
                            f2_mhz: f2,
                            energy: e,
                        };
                    }
                }
            }
        };
        scan(self.v_lo.max(self.law.vt + 0.01), self.v_hi, 800, &mut best);
        let dv = (self.v_hi - self.v_lo) / 800.0;
        let (lo, hi) = (best.v1 - dv, best.v1 + dv);
        scan(
            lo.max(self.law.vt + 0.01),
            hi.min(self.v_hi),
            200,
            &mut best,
        );
        Some(best)
    }

    /// Energy-savings ratio of the optimal schedule relative to the best
    /// single frequency: `1 - E_opt / E_single`, in `[0, 1)`. `None` when
    /// the deadline is infeasible.
    #[must_use]
    pub fn savings(&self, p: &ProgramParams, t_deadline_us: f64) -> Option<f64> {
        let single = self.best_single(p, t_deadline_us)?;
        let opt = self.optimal(p, t_deadline_us)?;
        if single.energy <= 0.0 {
            return Some(0.0);
        }
        Some(((single.energy - opt.energy) / single.energy).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compute_bound() -> ProgramParams {
        // Tiny memory time: fideal >> ... finvariant is huge, compute rules.
        ProgramParams {
            n_overlap: 1.0e6,
            n_dependent: 2.0e6,
            n_cache: 1.0e5,
            t_invariant_us: 1.0,
        }
    }

    fn memory_bound() -> ProgramParams {
        // Long invariant memory time relative to the deadline, plenty of
        // overlap compute to hide: finv = 350 MHz < fideal = 533 MHz.
        ProgramParams {
            n_overlap: 1.0e6,
            n_dependent: 6.0e5,
            n_cache: 3.0e5,
            t_invariant_us: 2000.0,
        }
    }

    fn slack_bound() -> ProgramParams {
        ProgramParams {
            n_overlap: 2.0e5,
            n_dependent: 5.0e6,
            n_cache: 3.0e6,
            t_invariant_us: 1000.0,
        }
    }

    #[test]
    fn classification_matches_paper_conditions() {
        let m = ContinuousModel::paper();
        assert_eq!(
            m.classify(&compute_bound(), 10_000.0),
            CaseKind::ComputeDominated
        );
        assert_eq!(
            m.classify(&memory_bound(), 3000.0),
            CaseKind::MemoryDominated
        );
        assert_eq!(
            m.classify(&slack_bound(), 20_000.0),
            CaseKind::MemoryDominatedSlack
        );
    }

    #[test]
    fn compute_dominated_saves_nothing() {
        let m = ContinuousModel::paper();
        let s = m.savings(&compute_bound(), 10_000.0).unwrap();
        assert!(s < 1e-9, "got {s}");
    }

    #[test]
    fn slack_case_saves_nothing() {
        let m = ContinuousModel::paper();
        let s = m.savings(&slack_bound(), 20_000.0).unwrap();
        assert!(s < 1e-9, "got {s}");
    }

    #[test]
    fn memory_dominated_saves_energy_with_two_voltages() {
        let m = ContinuousModel::paper();
        let p = memory_bound();
        let s = m.savings(&p, 3000.0).unwrap();
        assert!(s > 0.01, "got {s}");
        let opt = m.optimal(&p, 3000.0).unwrap();
        // Overlap region runs slower, dependent region faster.
        assert!(opt.v1 < opt.v2, "v1 {} v2 {}", opt.v1, opt.v2);
        // And the optimum beats the single frequency strictly.
        let single = m.best_single(&p, 3000.0).unwrap();
        assert!(opt.energy < single.energy);
        assert!(opt.v1 < single.v && single.v < opt.v2);
    }

    #[test]
    fn infeasible_deadline_returns_none() {
        let m = ContinuousModel::paper();
        let p = memory_bound();
        // Deadline inside tinvariant: impossible at any speed.
        assert!(m.best_single(&p, 900.0).is_none());
        assert!(m.savings(&p, 900.0).is_none());
    }

    #[test]
    fn energy_curve_is_u_shaped_in_memory_dominated_case() {
        // Fig. 3: energy decreases then increases as v1 sweeps.
        let m = ContinuousModel::paper();
        let p = memory_bound();
        let opt = m.optimal(&p, 3000.0).unwrap();
        let e_at = |v: f64| m.energy_at_v1(&p, 3000.0, v);
        let e_opt = e_at(opt.v1).unwrap();
        if let Some(e) = e_at(opt.v1 * 0.8) {
            assert!(e >= e_opt - 1e-6);
        }
        if let Some(e) = e_at(opt.v1 * 1.3) {
            assert!(e >= e_opt - 1e-6);
        }
    }

    #[test]
    fn analytic_derivative_matches_finite_differences() {
        let m = ContinuousModel::paper();
        let p = memory_bound();
        let tdl = 3000.0;
        for v1 in [1.0, 1.2, 1.4, 1.6, 1.8] {
            let (Some(d), Some(e_lo), Some(e_hi)) = (
                m.energy_derivative_v1(&p, tdl, v1),
                m.energy_at_v1(&p, tdl, v1 - 1e-5),
                m.energy_at_v1(&p, tdl, v1 + 1e-5),
            ) else {
                continue;
            };
            let fd = (e_hi - e_lo) / 2e-5;
            assert!(
                (d - fd).abs() < 1e-3 * fd.abs().max(1.0),
                "v1={v1}: analytic {d} vs finite-diff {fd}"
            );
        }
    }

    #[test]
    fn derivative_vanishes_at_scan_optimum() {
        let m = ContinuousModel::paper();
        let p = memory_bound();
        let tdl = 3000.0;
        let opt = m.optimal(&p, tdl).unwrap();
        let d = m.energy_derivative_v1(&p, tdl, opt.v1).unwrap();
        // Scale by a characteristic derivative magnitude away from the
        // optimum.
        let d_ref = m.energy_derivative_v1(&p, tdl, opt.v1 * 0.9).unwrap().abs();
        assert!(
            d.abs() < 0.05 * d_ref.max(1.0),
            "dE/dv1 at optimum = {d} (reference {d_ref})"
        );
    }

    #[test]
    fn best_single_exactly_meets_deadline() {
        let m = ContinuousModel::paper();
        let p = memory_bound();
        let s = m.best_single(&p, 3000.0).unwrap();
        let t = p.time_at_single_frequency(s.f_mhz);
        assert!((t - 3000.0).abs() < 1e-3, "t = {t}");
    }

    #[test]
    fn laxer_deadline_never_costs_more_energy() {
        let m = ContinuousModel::paper();
        let p = memory_bound();
        let mut prev = f64::INFINITY;
        for tdl in [2600.0, 3000.0, 4000.0, 6000.0, 10_000.0] {
            let opt = m.optimal(&p, tdl).unwrap();
            assert!(
                opt.energy <= prev + 1e-6,
                "energy should fall with laxer deadline (tdl {tdl})"
            );
            prev = opt.energy;
        }
    }

    #[test]
    fn savings_condition_matches_paper_inequality() {
        // Savings require (Nov+Nd)/tdl > (Nov-Nc)/tinv, i.e. fideal >
        // finvariant is *false* (finv < fid ⇔ memory dominated).
        let m = ContinuousModel::paper();
        let p = memory_bound();
        let fid = p.f_ideal_compute_mhz(3000.0);
        let finv = p.f_invariant_mhz().unwrap();
        assert!(finv < fid, "memory-dominated needs finv {finv} < fid {fid}");
        assert!(m.savings(&p, 3000.0).unwrap() > 0.0);

        // Shrink tinvariant until finv > fid: computation dominates and
        // savings vanish.
        let mut q = p;
        q.t_invariant_us = 100.0;
        let finv = q.f_invariant_mhz().unwrap();
        let fid = q.f_ideal_compute_mhz(3000.0);
        assert!(finv > fid);
        assert!(m.savings(&q, 3000.0).unwrap() < 1e-9);
    }
}
