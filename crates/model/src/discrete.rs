use crate::{CaseKind, ContinuousModel, ProgramParams};
use dvs_vf::{ModeId, VoltageLadder};

/// Fractional assignment of cycles to ladder modes, split into the two
/// phases of the analytical model.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscretePlan {
    /// Overlap-region cycles per mode (indexed like the ladder).
    pub overlap_cycles: Vec<f64>,
    /// Dependent-region cycles per mode.
    pub dependent_cycles: Vec<f64>,
}

impl DiscretePlan {
    fn zero(n: usize) -> Self {
        DiscretePlan {
            overlap_cycles: vec![0.0; n],
            dependent_cycles: vec![0.0; n],
        }
    }

    /// Number of modes with non-zero assigned cycles.
    #[must_use]
    pub fn modes_used(&self) -> usize {
        (0..self.overlap_cycles.len())
            .filter(|&m| self.overlap_cycles[m] + self.dependent_cycles[m] > 1e-9)
            .count()
    }

    /// Model energy of the plan on `ladder`, cycle·V².
    #[must_use]
    pub fn energy(&self, ladder: &VoltageLadder) -> f64 {
        ladder
            .iter()
            .map(|(m, pt)| {
                (self.overlap_cycles[m.index()] + self.dependent_cycles[m.index()])
                    * pt.voltage
                    * pt.voltage
            })
            .sum()
    }
}

/// Result of the discrete optimization.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteSolution {
    /// Minimum model energy, cycle·V².
    pub energy: f64,
    /// The cycle assignment achieving it.
    pub plan: DiscretePlan,
    /// For memory-dominated programs, the optimal `y` (µs) of the Fig. 8
    /// scan; `None` when a two-mode construction won.
    pub y_us: Option<f64>,
}

/// The discrete-voltage analytical model (§3.4): cycles may be split
/// fractionally across the ladder's modes, two phases share the deadline,
/// and the memory-dominated case is solved by scanning `Emin(y)`.
///
/// # Example
///
/// ```
/// use dvs_model::{DiscreteModel, ProgramParams};
/// use dvs_vf::{AlphaPower, VoltageLadder};
///
/// let model = DiscreteModel::new(VoltageLadder::xscale3(&AlphaPower::paper()));
/// let p = ProgramParams {
///     n_overlap: 1.0e6,
///     n_dependent: 2.0e6,
///     n_cache: 1.0e5,
///     t_invariant_us: 1.0,
/// };
/// // 3e6 cycles: 5000 µs at 600 MHz; a 6000 µs deadline leaves slack a
/// // 200/600 split can exploit.
/// let savings = model.savings(&p, 6000.0).unwrap();
/// assert!(savings > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct DiscreteModel {
    ladder: VoltageLadder,
    continuous: ContinuousModel,
}

impl DiscreteModel {
    /// Builds the model over `ladder`, classifying cases with the paper's
    /// alpha-power law.
    #[must_use]
    pub fn new(ladder: VoltageLadder) -> Self {
        DiscreteModel {
            ladder,
            continuous: ContinuousModel::paper(),
        }
    }

    /// The ladder in use.
    #[must_use]
    pub fn ladder(&self) -> &VoltageLadder {
        &self.ladder
    }

    /// The slowest single mode that meets the deadline, with its model
    /// energy — the baseline every savings ratio is computed against
    /// ("best single-frequency setting that meets the deadline").
    #[must_use]
    pub fn best_single_mode(&self, p: &ProgramParams, t_deadline_us: f64) -> Option<(ModeId, f64)> {
        let cycles = p.overlap_region_cycles() + p.n_dependent;
        self.ladder
            .iter()
            .find(|(_, pt)| p.time_at_single_frequency(pt.frequency_mhz) <= t_deadline_us)
            .map(|(m, pt)| (m, cycles * pt.voltage * pt.voltage))
    }

    /// Splits `cycles` across the two ladder neighbours of the ideal
    /// frequency `cycles / budget_us` so the work finishes exactly at the
    /// budget (the §3.4 two-mode construction). Returns per-mode cycles and
    /// energy, or `None` if even the fastest mode cannot meet the budget.
    #[must_use]
    pub fn two_mode_split(&self, cycles: f64, budget_us: f64) -> Option<(Vec<f64>, f64)> {
        let n = self.ladder.len();
        let mut out = vec![0.0; n];
        if cycles <= 0.0 {
            return Some((out, 0.0));
        }
        if budget_us <= 0.0 {
            return None;
        }
        let f_ideal = cycles / budget_us;
        let (ma, mb) = self.ladder.neighbors(f_ideal);
        let (pa, pb) = (self.ladder.point(ma), self.ladder.point(mb));
        if ma == mb {
            // Single mode: must be fast enough.
            if pa.frequency_mhz + 1e-9 < f_ideal {
                return None;
            }
            out[ma.index()] = cycles;
            return Some((out, cycles * pa.voltage * pa.voltage));
        }
        let (fa, fb) = (pa.frequency_mhz, pb.frequency_mhz);
        // xa/fa + xb/fb = budget, xa + xb = cycles.
        let xa = fa * (fb * budget_us - cycles) / (fb - fa);
        let xb = cycles - xa;
        let xa = xa.clamp(0.0, cycles);
        let xb = xb.clamp(0.0, cycles);
        out[ma.index()] = xa;
        out[mb.index()] = xb;
        let energy = xa * pa.voltage * pa.voltage + xb * pb.voltage * pb.voltage;
        Some((out, energy))
    }

    /// `Emin(y)`: minimum energy when the cache-hit memory cycles are given
    /// exactly `y` µs (§3.4's four-frequency construction, Fig. 8).
    /// `None` when `y` is infeasible.
    #[must_use]
    pub fn emin_at_y(
        &self,
        p: &ProgramParams,
        t_deadline_us: f64,
        y_us: f64,
    ) -> Option<(f64, DiscretePlan)> {
        let n = self.ladder.len();
        let budget2 = t_deadline_us - p.t_invariant_us - y_us;
        if y_us < 0.0 || budget2 < 0.0 {
            return None;
        }
        let mut plan = DiscretePlan::zero(n);

        // Phase 1a: Ncache cycles within y at the neighbours of Nc/y.
        let pair = if p.n_cache > 0.0 {
            let (oc, _) = self.two_mode_split(p.n_cache, y_us)?;
            let mut used: Vec<usize> = (0..n).filter(|&m| oc[m] > 0.0).collect();
            if used.is_empty() {
                used.push(0);
            }
            for (m, c) in oc.iter().enumerate() {
                plan.overlap_cycles[m] += c;
            }
            (used[0], *used.last().expect("non-empty"))
        } else {
            (0, 0)
        };

        // Phase 1b: the remaining overlap compute (Nov - Nc) executes during
        // the invariant memory time; as much as fits runs at the slower of
        // the pair, the excess at the faster.
        let extra = (p.n_overlap - p.n_cache).max(0.0);
        if extra > 0.0 {
            let (slow_m, fast_m) = pair;
            let f_slow = self.ladder.point(ModeId(slow_m)).frequency_mhz;
            let capacity = p.t_invariant_us * f_slow;
            let at_slow = extra.min(capacity);
            plan.overlap_cycles[slow_m] += at_slow;
            plan.overlap_cycles[fast_m] += extra - at_slow;
        }

        // Phase 2: Ndependent cycles within the remaining budget.
        if p.n_dependent > 0.0 {
            let (dc, _) = self.two_mode_split(p.n_dependent, budget2)?;
            for (m, c) in dc.iter().enumerate() {
                plan.dependent_cycles[m] += c;
            }
        }

        let e = plan.energy(&self.ladder);
        Some((e, plan))
    }

    /// Samples `Emin(y)` on a grid — the curve of Fig. 8. Returns
    /// `(y, energy)` pairs for feasible `y` values.
    #[must_use]
    pub fn emin_curve(
        &self,
        p: &ProgramParams,
        t_deadline_us: f64,
        points: usize,
    ) -> Vec<(f64, f64)> {
        let f_max = self.ladder.fastest().frequency_mhz;
        let y_lo = p.n_cache / f_max;
        let y_hi = t_deadline_us - p.t_invariant_us - p.n_dependent / f_max;
        let mut out = Vec::new();
        if y_hi <= y_lo || points < 2 {
            return out;
        }
        for i in 0..=points {
            let y = y_lo + (y_hi - y_lo) * i as f64 / points as f64;
            if let Some((e, _)) = self.emin_at_y(p, t_deadline_us, y) {
                out.push((y, e));
            }
        }
        out
    }

    /// The optimal discrete solution: the cheapest of the single-mode
    /// baseline, the two-mode constructions (compute-dominated and
    /// with-slack), and the memory-dominated `Emin(y)` scan. `None` if no
    /// single mode meets the deadline.
    #[must_use]
    pub fn optimal(&self, p: &ProgramParams, t_deadline_us: f64) -> Option<DiscreteSolution> {
        let (single_mode, single_energy) = self.best_single_mode(p, t_deadline_us)?;
        let n = self.ladder.len();
        let mut best = DiscreteSolution {
            energy: single_energy,
            plan: {
                let mut pl = DiscretePlan::zero(n);
                pl.overlap_cycles[single_mode.index()] = p.overlap_region_cycles();
                pl.dependent_cycles[single_mode.index()] = p.n_dependent;
                pl
            },
            y_us: None,
        };

        match self.continuous.classify(p, t_deadline_us) {
            CaseKind::ComputeDominated => {
                let cycles = p.n_overlap + p.n_dependent;
                if let Some((oc, e)) = self.two_mode_split(cycles, t_deadline_us) {
                    if e < best.energy {
                        best = DiscreteSolution {
                            energy: e,
                            plan: DiscretePlan {
                                overlap_cycles: oc,
                                dependent_cycles: vec![0.0; n],
                            },
                            y_us: None,
                        };
                    }
                }
            }
            CaseKind::MemoryDominatedSlack => {
                let cycles = p.n_cache + p.n_dependent;
                let budget = t_deadline_us - p.t_invariant_us;
                if let Some((oc, e)) = self.two_mode_split(cycles, budget) {
                    if e < best.energy {
                        best = DiscreteSolution {
                            energy: e,
                            plan: DiscretePlan {
                                overlap_cycles: oc,
                                dependent_cycles: vec![0.0; n],
                            },
                            y_us: None,
                        };
                    }
                }
            }
            CaseKind::MemoryDominated => {
                let f_max = self.ladder.fastest().frequency_mhz;
                let y_lo = p.n_cache / f_max;
                let y_hi = t_deadline_us - p.t_invariant_us - p.n_dependent / f_max;
                if y_hi > y_lo {
                    let steps = 600;
                    for i in 0..=steps {
                        let y = y_lo + (y_hi - y_lo) * f64::from(i) / f64::from(steps);
                        if let Some((e, plan)) = self.emin_at_y(p, t_deadline_us, y) {
                            if e < best.energy {
                                best = DiscreteSolution {
                                    energy: e,
                                    plan,
                                    y_us: Some(y),
                                };
                            }
                        }
                    }
                }
                // The pure compute split is also admissible (runs everything
                // as if no memory window existed but slower overall).
                let cycles = p.n_overlap + p.n_dependent;
                if let Some((oc, e)) = self.two_mode_split(cycles, t_deadline_us) {
                    if e < best.energy
                        && p.time_at_single_frequency(cycles / t_deadline_us) <= t_deadline_us
                    {
                        best = DiscreteSolution {
                            energy: e,
                            plan: DiscretePlan {
                                overlap_cycles: oc,
                                dependent_cycles: vec![0.0; n],
                            },
                            y_us: None,
                        };
                    }
                }
            }
        }
        Some(best)
    }

    /// Energy-savings ratio vs the best single mode meeting the deadline.
    /// `None` if the deadline is infeasible at every mode.
    #[must_use]
    pub fn savings(&self, p: &ProgramParams, t_deadline_us: f64) -> Option<f64> {
        let (_, single_energy) = self.best_single_mode(p, t_deadline_us)?;
        let opt = self.optimal(p, t_deadline_us)?;
        if single_energy <= 0.0 {
            return Some(0.0);
        }
        Some(((single_energy - opt.energy) / single_energy).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvs_vf::AlphaPower;

    fn ladder(n: usize) -> VoltageLadder {
        let law = AlphaPower::paper();
        if n == 3 {
            VoltageLadder::xscale3(&law)
        } else {
            VoltageLadder::interpolated(&law, n).unwrap()
        }
    }

    fn compute_bound() -> ProgramParams {
        ProgramParams {
            n_overlap: 1.0e6,
            n_dependent: 2.0e6,
            n_cache: 1.0e5,
            t_invariant_us: 1.0,
        }
    }

    fn memory_bound() -> ProgramParams {
        ProgramParams {
            n_overlap: 1.0e6,
            n_dependent: 6.0e5,
            n_cache: 3.0e5,
            t_invariant_us: 2000.0,
        }
    }

    #[test]
    fn best_single_mode_is_slowest_feasible() {
        let m = DiscreteModel::new(ladder(3));
        let p = compute_bound();
        // 3e6 cycles: at 200 MHz takes 15000 µs (+eps); at 600 MHz 5000 µs.
        let (mode, _) = m.best_single_mode(&p, 20_000.0).unwrap();
        assert_eq!(mode, ModeId(0));
        let (mode, _) = m.best_single_mode(&p, 6000.0).unwrap();
        assert_eq!(mode, ModeId(1));
        let (mode, _) = m.best_single_mode(&p, 4000.0).unwrap();
        assert_eq!(mode, ModeId(2));
        assert!(m.best_single_mode(&p, 3000.0).is_none());
    }

    #[test]
    fn two_mode_split_exactly_fills_budget() {
        let m = DiscreteModel::new(ladder(3));
        // 1e6 cycles in 2500 µs -> ideal 400 MHz, between 200 and 600.
        let (cycles, energy) = m.two_mode_split(1.0e6, 2500.0).unwrap();
        let time: f64 = cycles
            .iter()
            .zip(m.ladder().iter())
            .map(|(c, (_, pt))| c / pt.frequency_mhz)
            .sum();
        assert!((time - 2500.0).abs() < 1e-6);
        let total: f64 = cycles.iter().sum();
        assert!((total - 1.0e6).abs() < 1e-6);
        // Energy between the pure-200 and pure-600 levels.
        assert!(energy > 1.0e6 * 0.49 - 1.0);
        assert!(energy < 1.0e6 * 1.69 + 1.0);
    }

    #[test]
    fn two_mode_split_on_exact_level_uses_one_mode() {
        let m = DiscreteModel::new(ladder(3));
        // Ideal = 600 MHz exactly.
        let (cycles, energy) = m.two_mode_split(6.0e5, 1000.0).unwrap();
        assert!((cycles[1] - 6.0e5).abs() < 1e-6);
        assert_eq!(cycles[0], 0.0);
        assert_eq!(cycles[2], 0.0);
        assert!((energy - 6.0e5 * 1.69).abs() < 1.0);
    }

    #[test]
    fn two_mode_split_infeasible_budget() {
        let m = DiscreteModel::new(ladder(3));
        // 1e6 cycles in 1000 µs needs 1000 MHz > 800 MHz max.
        assert!(m.two_mode_split(1.0e6, 1000.0).is_none());
        assert!(m.two_mode_split(1.0e6, -5.0).is_none());
    }

    #[test]
    fn discrete_beats_single_mode_between_levels() {
        let m = DiscreteModel::new(ladder(3));
        let p = compute_bound();
        // Deadline of 6000 µs: single mode must use 600 MHz (5000 µs),
        // wasting 1000 µs of slack; the split uses 200+600 and saves.
        let s = m.savings(&p, 6000.0).unwrap();
        assert!(s > 0.05, "got {s}");
        // At a deadline exactly matching a mode (5000 µs at 600 MHz +
        // epsilon for tinv), savings nearly vanish... at least shrink.
        let s_tight = m.savings(&p, 5002.0).unwrap();
        assert!(s_tight < s);
    }

    #[test]
    fn more_levels_reduce_savings_on_average() {
        // Table 1 trend: averaged over deadlines, finer ladders leave less
        // for intra-program DVS to exploit (pointwise the curve is bumpy —
        // savings peak where the ideal frequency falls between levels).
        let p = compute_bound();
        let deadlines: Vec<f64> = (0..10).map(|i| 5200.0 + 1000.0 * f64::from(i)).collect();
        let avg = |n: usize| -> f64 {
            let m = DiscreteModel::new(ladder(n));
            let vals: Vec<f64> = deadlines.iter().filter_map(|&t| m.savings(&p, t)).collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        let (a3, a7, a13) = (avg(3), avg(7), avg(13));
        assert!(a3 > a7, "avg3 {a3} vs avg7 {a7}");
        assert!(a7 > a13, "avg7 {a7} vs avg13 {a13}");
    }

    #[test]
    fn memory_dominated_y_scan_runs() {
        let m = DiscreteModel::new(ladder(7));
        let p = memory_bound();
        let sol = m.optimal(&p, 3400.0).unwrap();
        let (_, single) = m.best_single_mode(&p, 3400.0).unwrap();
        assert!(sol.energy <= single + 1e-9);
        // The plan conserves cycle counts.
        let total: f64 = sol
            .plan
            .overlap_cycles
            .iter()
            .chain(&sol.plan.dependent_cycles)
            .sum();
        let expect = p.n_overlap.max(p.n_cache) + p.n_dependent;
        assert!(
            (total - expect).abs() < 1e-3 * expect,
            "cycles {total} vs {expect}"
        );
    }

    #[test]
    fn emin_curve_has_interior_minimum_shape() {
        let m = DiscreteModel::new(ladder(7));
        let p = memory_bound();
        let curve = m.emin_curve(&p, 3400.0, 100);
        assert!(curve.len() > 50);
        let min = curve.iter().map(|&(_, e)| e).fold(f64::INFINITY, f64::min);
        let ends = curve[0].1.max(curve.last().unwrap().1);
        assert!(min < ends, "interior min {min} vs ends {ends}");
    }

    #[test]
    fn discrete_converges_to_continuous_for_compute_bound() {
        // For a computation-dominated program the continuous optimum (a
        // single ideal frequency) is the true lower bound: mixing the two
        // neighbouring levels always costs at least the exact ideal by
        // convexity of v²(f). More levels close the gap. (In the
        // memory-dominated case this bound does NOT hold — the paper's own
        // 4-frequency discrete construction uses two speeds inside the
        // overlap region, which its continuous single-v1 analysis never
        // does.)
        let p = compute_bound();
        let tdl = 6100.0;
        let cont = ContinuousModel::paper().optimal(&p, tdl).unwrap();
        let mut prev_gap = f64::INFINITY;
        for n in [3, 7, 13, 25] {
            let disc = DiscreteModel::new(ladder(n)).optimal(&p, tdl).unwrap();
            assert!(
                disc.energy >= cont.energy - 1e-6 * cont.energy,
                "{n} levels: discrete {} < continuous {}",
                disc.energy,
                cont.energy
            );
            let gap = disc.energy - cont.energy;
            assert!(gap <= prev_gap + 1e-6, "{n} levels widened the gap");
            prev_gap = gap;
        }
    }

    #[test]
    fn infeasible_deadline_gives_none() {
        let m = DiscreteModel::new(ladder(3));
        let p = memory_bound();
        assert!(m.optimal(&p, 900.0).is_none());
        assert!(m.savings(&p, 900.0).is_none());
    }

    #[test]
    fn plan_modes_used_counts() {
        let mut plan = DiscretePlan::zero(3);
        assert_eq!(plan.modes_used(), 0);
        plan.overlap_cycles[0] = 10.0;
        plan.dependent_cycles[2] = 5.0;
        assert_eq!(plan.modes_used(), 2);
    }
}
