//! The paper's §3 analytical model of compile-time DVS energy savings.
//!
//! Given four program parameters — `Noverlap`, `Ndependent`, `Ncache`
//! (cycles) and `tinvariant` (absolute memory-stall time) — plus a deadline
//! and the available voltage range or ladder, the model answers: *how much
//! energy can intra-program DVS save over the best single frequency that
//! meets the deadline?*
//!
//! Two variants, matching §3.3 and §3.4:
//!
//! * [`ContinuousModel`]: supply voltage scales continuously. The program
//!   falls into one of three structural cases ([`CaseKind`]); only the
//!   memory-dominated case benefits from two voltages, under the paper's
//!   condition `Noverlap > Ncache` **and** `fideal > finvariant`.
//! * [`DiscreteModel`]: a finite [`dvs_vf::VoltageLadder`]. Compute-bound
//!   and memory-bound-with-slack programs split cycles across the two
//!   ladder neighbours of the continuous optimum; memory-dominated
//!   programs need up to four modes, found by scanning the `Emin(y)` curve
//!   over the time `y` allotted to cache-hit memory operations (Fig. 8).
//!
//! Energy is reported in model units of **cycle·V²** — all the paper's
//! results are *ratios*, which are unit-free.
//!
//! # Example
//!
//! ```
//! use dvs_model::{ContinuousModel, ProgramParams};
//!
//! // A memory-dominated program: lots of overlap compute hidden behind a
//! // long invariant memory time, with a lax deadline.
//! let p = ProgramParams {
//!     n_overlap: 1.0e6,
//!     n_dependent: 6.0e5,
//!     n_cache: 3.0e5,
//!     t_invariant_us: 2000.0,
//! };
//! let m = ContinuousModel::paper();
//! let savings = m.savings(&p, 3000.0).unwrap();
//! assert!(savings > 0.0, "two voltages should beat one here");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod continuous;
mod discrete;
mod params;
mod surfaces;

pub use continuous::{CaseKind, ContinuousModel, ContinuousSolution, SingleFrequency};
pub use discrete::{DiscreteModel, DiscretePlan, DiscreteSolution};
pub use params::ProgramParams;
pub use surfaces::{Surface, SweepAxis};
