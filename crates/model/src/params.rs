/// The analytical model's program parameters (§3.2). Frequencies are in
/// MHz, so `cycles / frequency_mhz` yields µs directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgramParams {
    /// `Noverlap`: cycles of computation that can run in parallel with
    /// memory operations.
    pub n_overlap: f64,
    /// `Ndependent`: cycles of computation dependent on memory operations.
    pub n_dependent: f64,
    /// `Ncache`: cycles of memory operations that hit in the caches.
    pub n_cache: f64,
    /// `tinvariant`: execution time (µs) of cache-miss memory operations —
    /// absolute, because memory is asynchronous with the CPU clock.
    pub t_invariant_us: f64,
}

impl ProgramParams {
    /// Number of energy-bearing cycles in the overlap region: the compute
    /// cycles when computation outlasts the cache-hit memory time, the
    /// cache-hit cycles otherwise. The paper's case formulas charge
    /// `Noverlap·v1²` in the memory-dominated case and `Ncache·v1²` in the
    /// with-slack case; this is their common generalization.
    #[must_use]
    pub fn overlap_region_cycles(&self) -> f64 {
        self.n_overlap.max(self.n_cache)
    }

    /// Total execution time (µs) of the program when the *whole run* uses a
    /// single clock frequency `f_mhz` (§3.2):
    /// `max(tinvariant + Ncache/f, Noverlap/f) + Ndependent/f`.
    #[must_use]
    pub fn time_at_single_frequency(&self, f_mhz: f64) -> f64 {
        let mem = self.t_invariant_us + self.n_cache / f_mhz;
        let compute = self.n_overlap / f_mhz;
        mem.max(compute) + self.n_dependent / f_mhz
    }

    /// `finvariant` (MHz): the frequency at which `Noverlap - Ncache`
    /// cycles of computation exactly fill the miss-service time
    /// `tinvariant`. Returns `None` when `Ncache >= Noverlap` or
    /// `tinvariant == 0` (no meaningful balance point).
    #[must_use]
    pub fn f_invariant_mhz(&self) -> Option<f64> {
        if self.n_overlap > self.n_cache && self.t_invariant_us > 0.0 {
            Some((self.n_overlap - self.n_cache) / self.t_invariant_us)
        } else {
            None
        }
    }

    /// `fideal` (MHz) for the computation-dominated case: the single
    /// frequency that finishes `Noverlap + Ndependent` cycles exactly at
    /// the deadline.
    #[must_use]
    pub fn f_ideal_compute_mhz(&self, t_deadline_us: f64) -> f64 {
        (self.n_overlap + self.n_dependent) / t_deadline_us
    }

    /// `fideal` (MHz) for the memory-dominated-with-slack case: finishes
    /// `Ncache + Ndependent` cycles in the deadline minus the invariant
    /// memory time. `None` if the deadline is inside the invariant time.
    #[must_use]
    pub fn f_ideal_slack_mhz(&self, t_deadline_us: f64) -> Option<f64> {
        let budget = t_deadline_us - self.t_invariant_us;
        if budget > 0.0 {
            Some((self.n_cache + self.n_dependent) / budget)
        } else {
            None
        }
    }

    /// Validates non-negativity of all parameters.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.n_overlap >= 0.0
            && self.n_dependent >= 0.0
            && self.n_cache >= 0.0
            && self.t_invariant_us >= 0.0
            && (self.n_overlap + self.n_dependent + self.n_cache) > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> ProgramParams {
        ProgramParams {
            n_overlap: 1000.0,
            n_dependent: 2000.0,
            n_cache: 400.0,
            t_invariant_us: 10.0,
        }
    }

    #[test]
    fn single_frequency_time_piecewise() {
        let p = p();
        // At high f, memory dominates: t = tinv + (Nc + Nd)/f.
        let t = p.time_at_single_frequency(1000.0);
        assert!((t - (10.0 + 2.4)).abs() < 1e-12);
        // At low f, compute dominates: t = (Nov + Nd)/f.
        let t = p.time_at_single_frequency(10.0);
        assert!((t - 300.0).abs() < 1e-12);
    }

    #[test]
    fn f_invariant_balances_overlap_against_misses() {
        let p = p();
        let fi = p.f_invariant_mhz().unwrap();
        assert!((fi - 60.0).abs() < 1e-12); // (1000-400)/10
                                            // At exactly finvariant the two arms of the max are equal.
        let mem = p.t_invariant_us + p.n_cache / fi;
        let compute = p.n_overlap / fi;
        assert!((mem - compute).abs() < 1e-9);
    }

    #[test]
    fn f_invariant_absent_when_cache_dominates() {
        let mut q = p();
        q.n_cache = 1500.0;
        assert!(q.f_invariant_mhz().is_none());
        q.n_cache = 400.0;
        q.t_invariant_us = 0.0;
        assert!(q.f_invariant_mhz().is_none());
    }

    #[test]
    fn ideal_frequencies() {
        let p = p();
        assert!((p.f_ideal_compute_mhz(30.0) - 100.0).abs() < 1e-12);
        assert!((p.f_ideal_slack_mhz(30.0).unwrap() - 120.0).abs() < 1e-12);
        assert!(p.f_ideal_slack_mhz(5.0).is_none()); // inside tinv
    }

    #[test]
    fn overlap_region_cycles_takes_max() {
        let mut q = p();
        assert_eq!(q.overlap_region_cycles(), 1000.0);
        q.n_cache = 5000.0;
        assert_eq!(q.overlap_region_cycles(), 5000.0);
    }

    #[test]
    fn validity() {
        assert!(p().is_valid());
        let zero = ProgramParams {
            n_overlap: 0.0,
            n_dependent: 0.0,
            n_cache: 0.0,
            t_invariant_us: 0.0,
        };
        assert!(!zero.is_valid());
        let neg = ProgramParams {
            n_overlap: -1.0,
            ..p()
        };
        assert!(!neg.is_valid());
    }
}
