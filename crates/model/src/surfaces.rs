/// One axis of a parameter sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepAxis {
    /// Human-readable axis label (e.g. `"Noverlap (cycles)"`).
    pub label: String,
    /// Sample points, ascending.
    pub values: Vec<f64>,
}

impl SweepAxis {
    /// `n` evenly spaced samples over `[lo, hi]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `hi <= lo`.
    #[must_use]
    pub fn linspace(label: impl Into<String>, lo: f64, hi: f64, n: usize) -> Self {
        assert!(n >= 2, "need at least two samples");
        assert!(hi > lo, "empty range");
        let values = (0..n)
            .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
            .collect();
        SweepAxis {
            label: label.into(),
            values,
        }
    }
}

/// A 2-D sweep result: `z[i][j]` is the value at `(y.values[i],
/// x.values[j])` — the shape of the paper's savings-surface figures
/// (Figs. 5–7, 9–11).
#[derive(Debug, Clone, PartialEq)]
pub struct Surface {
    /// Horizontal axis.
    pub x: SweepAxis,
    /// Vertical axis.
    pub y: SweepAxis,
    /// Row-major samples, `z[y][x]`.
    pub z: Vec<Vec<f64>>,
}

impl Surface {
    /// Evaluates `f(x, y)` over the grid.
    #[must_use]
    pub fn sweep(x: SweepAxis, y: SweepAxis, f: impl Fn(f64, f64) -> f64) -> Self {
        let z = y
            .values
            .iter()
            .map(|&yv| x.values.iter().map(|&xv| f(xv, yv)).collect())
            .collect();
        Surface { x, y, z }
    }

    /// Maximum sampled value.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.z
            .iter()
            .flatten()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum sampled value.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.z
            .iter()
            .flatten()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// The `(x, y)` coordinates of the maximum sample.
    #[must_use]
    pub fn argmax(&self) -> (f64, f64) {
        let mut best = (0, 0);
        let mut bv = f64::NEG_INFINITY;
        for (i, row) in self.z.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v > bv {
                    bv = v;
                    best = (i, j);
                }
            }
        }
        (self.x.values[best.1], self.y.values[best.0])
    }

    /// Fraction of grid points with value above `threshold`.
    #[must_use]
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        let total = self.z.iter().map(Vec::len).sum::<usize>();
        if total == 0 {
            return 0.0;
        }
        let above = self.z.iter().flatten().filter(|&&v| v > threshold).count();
        above as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_endpoints() {
        let a = SweepAxis::linspace("x", 0.0, 10.0, 6);
        assert_eq!(a.values.len(), 6);
        assert_eq!(a.values[0], 0.0);
        assert_eq!(a.values[5], 10.0);
        assert!((a.values[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn linspace_rejects_single_point() {
        let _ = SweepAxis::linspace("x", 0.0, 1.0, 1);
    }

    #[test]
    fn sweep_evaluates_grid() {
        let s = Surface::sweep(
            SweepAxis::linspace("x", 0.0, 2.0, 3),
            SweepAxis::linspace("y", 0.0, 1.0, 2),
            |x, y| x + 10.0 * y,
        );
        assert_eq!(s.z.len(), 2);
        assert_eq!(s.z[0], vec![0.0, 1.0, 2.0]);
        assert_eq!(s.z[1], vec![10.0, 11.0, 12.0]);
        assert_eq!(s.max(), 12.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.argmax(), (2.0, 1.0));
        assert!((s.fraction_above(5.0) - 0.5).abs() < 1e-12);
    }
}
