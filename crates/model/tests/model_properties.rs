//! Randomized tests of the analytical model over random program parameters.
//!
//! Parameters come from a fixed-seed SplitMix64 generator so failures
//! reproduce exactly.

use dvs_model::{ContinuousModel, DiscreteModel, ProgramParams};
use dvs_vf::{AlphaPower, VoltageLadder};

struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[lo, hi)`.
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64)
    }
}

fn params(rng: &mut Rng) -> ProgramParams {
    ProgramParams {
        n_overlap: rng.range(1.0e4, 2.0e6),
        n_dependent: rng.range(1.0e4, 2.0e6),
        n_cache: rng.range(0.0, 2.0e6),
        t_invariant_us: rng.range(0.0, 3.0e3),
    }
}

fn ladder(n: usize) -> VoltageLadder {
    let law = AlphaPower::paper();
    if n == 3 {
        VoltageLadder::xscale3(&law)
    } else {
        VoltageLadder::interpolated(&law, n).expect("valid ladder")
    }
}

#[test]
fn savings_are_a_valid_ratio() {
    let mut rng = Rng(0xD5_5EED_0011);
    for case in 0..96 {
        let p = params(&mut rng);
        let slack = rng.range(1.01, 6.0);
        // Deadline set as a multiple of the fastest ladder runtime so the
        // discrete problem is often (not always) feasible.
        let l = ladder(7);
        let t_fast = p.time_at_single_frequency(l.fastest().frequency_mhz);
        let d = t_fast * slack;
        if let Some(s) = DiscreteModel::new(l).savings(&p, d) {
            assert!((0.0..1.0).contains(&s), "case {case}: savings {s}");
        }
        if let Some(s) = ContinuousModel::paper().savings(&p, d) {
            assert!(
                (0.0..1.0).contains(&s),
                "case {case}: continuous savings {s}"
            );
        }
    }
}

#[test]
fn single_frequency_time_is_monotone() {
    let mut rng = Rng(0xD5_5EED_0012);
    for case in 0..96 {
        let p = params(&mut rng);
        let f = rng.range(50.0, 1600.0);
        let t1 = p.time_at_single_frequency(f);
        let t2 = p.time_at_single_frequency(f * 1.5);
        assert!(t2 <= t1 + 1e-9, "case {case}: not monotone");
        // And bounded below by the invariant memory time.
        assert!(t1 >= p.t_invariant_us, "case {case}: below invariant time");
    }
}

#[test]
fn discrete_optimal_never_beats_nothing() {
    let mut rng = Rng(0xD5_5EED_0013);
    for case in 0..96 {
        let p = params(&mut rng);
        let slack = rng.range(1.05, 4.0);
        let l = ladder(3);
        let t_fast = p.time_at_single_frequency(l.fastest().frequency_mhz);
        let d = t_fast * slack;
        let model = DiscreteModel::new(l);
        let Some((_, single)) = model.best_single_mode(&p, d) else {
            continue;
        };
        let Some(opt) = model.optimal(&p, d) else {
            continue;
        };
        assert!(
            opt.energy <= single + 1e-6 * single,
            "case {case}: optimal above baseline"
        );
        assert!(opt.energy > 0.0, "case {case}: non-positive energy");
    }
}

#[test]
fn emin_plans_conserve_cycles() {
    let mut rng = Rng(0xD5_5EED_0014);
    for case in 0..96 {
        let p = params(&mut rng);
        let frac = rng.range(0.2, 0.8);
        let l = ladder(7);
        let f_max = l.fastest().frequency_mhz;
        let y_lo = p.n_cache / f_max;
        let y_hi =
            4.0 * p.time_at_single_frequency(f_max) - p.t_invariant_us - p.n_dependent / f_max;
        if y_hi <= y_lo {
            continue;
        }
        let y = y_lo + frac * (y_hi - y_lo);
        let tdl = y + p.t_invariant_us + p.n_dependent / f_max * 2.0;
        let model = DiscreteModel::new(l.clone());
        if let Some((energy, plan)) = model.emin_at_y(&p, tdl, y) {
            let total: f64 = plan
                .overlap_cycles
                .iter()
                .chain(&plan.dependent_cycles)
                .sum();
            let expect = p.overlap_region_cycles() + p.n_dependent;
            assert!(
                (total - expect).abs() < 1e-6 * expect.max(1.0),
                "case {case}: cycles {total} vs {expect}"
            );
            assert!(
                (energy - plan.energy(&l)).abs() < 1e-6 * energy.max(1.0),
                "case {case}: energy mismatch"
            );
            // The plan's phase-2 time fits its budget.
            let t2: f64 = plan
                .dependent_cycles
                .iter()
                .zip(l.iter())
                .map(|(c, (_, pt))| c / pt.frequency_mhz)
                .sum();
            assert!(
                t2 <= tdl - p.t_invariant_us - y + 1e-6,
                "case {case}: budget blown"
            );
        }
    }
}

#[test]
fn nested_ladder_optimum_dominates_coarse_baseline() {
    let mut rng = Rng(0xD5_5EED_0015);
    for case in 0..96 {
        // Evenly-interpolated ladders nest when the fine one has 2n-1
        // levels: every 4-level voltage appears among the 7 levels. The
        // fine ladder's optimum can then never exceed the coarse ladder's
        // single-mode baseline (the fine ladder contains that very mode).
        // (The XScale 3-level ladder is NOT on the alpha-power law — its
        // 200 MHz @ 0.7 V point is better than the law allows — so no such
        // relation holds against interpolated ladders; a random
        // counterexample found exactly that.)
        let p = params(&mut rng);
        let slack = rng.range(1.05, 4.0);
        let coarse = ladder(4);
        let fine = ladder(7);
        let t_fast = p.time_at_single_frequency(coarse.fastest().frequency_mhz);
        let d = t_fast * slack;
        let base4 = DiscreteModel::new(coarse).best_single_mode(&p, d);
        let o7 = DiscreteModel::new(fine).optimal(&p, d);
        if let (Some((_, base)), Some(fine_opt)) = (base4, o7) {
            assert!(
                fine_opt.energy <= base * (1.0 + 1e-9),
                "case {case}: 7-level optimum {} above 4-level baseline {base}",
                fine_opt.energy
            );
        }
    }
}
