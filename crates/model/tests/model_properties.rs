//! Property tests of the analytical model over random program parameters.

use dvs_model::{ContinuousModel, DiscreteModel, ProgramParams};
use dvs_vf::{AlphaPower, VoltageLadder};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = ProgramParams> {
    (
        1.0e4f64..2.0e6,
        1.0e4f64..2.0e6,
        0.0f64..2.0e6,
        0.0f64..3.0e3,
    )
        .prop_map(|(n_overlap, n_dependent, n_cache, t_invariant_us)| ProgramParams {
            n_overlap,
            n_dependent,
            n_cache,
            t_invariant_us,
        })
}

fn ladder(n: usize) -> VoltageLadder {
    let law = AlphaPower::paper();
    if n == 3 {
        VoltageLadder::xscale3(&law)
    } else {
        VoltageLadder::interpolated(&law, n).expect("valid ladder")
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn savings_are_a_valid_ratio(p in arb_params(), slack in 1.01f64..6.0) {
        // Deadline set as a multiple of the fastest ladder runtime so the
        // discrete problem is often (not always) feasible.
        let l = ladder(7);
        let t_fast = p.time_at_single_frequency(l.fastest().frequency_mhz);
        let d = t_fast * slack;
        if let Some(s) = DiscreteModel::new(l).savings(&p, d) {
            prop_assert!((0.0..1.0).contains(&s), "savings {s}");
        }
        if let Some(s) = ContinuousModel::paper().savings(&p, d) {
            prop_assert!((0.0..1.0).contains(&s), "continuous savings {s}");
        }
    }

    #[test]
    fn single_frequency_time_is_monotone(p in arb_params(), f in 50.0f64..1600.0) {
        let t1 = p.time_at_single_frequency(f);
        let t2 = p.time_at_single_frequency(f * 1.5);
        prop_assert!(t2 <= t1 + 1e-9);
        // And bounded below by the invariant memory time.
        prop_assert!(t1 >= p.t_invariant_us);
    }

    #[test]
    fn discrete_optimal_never_beats_nothing(p in arb_params(), slack in 1.05f64..4.0) {
        let l = ladder(3);
        let t_fast = p.time_at_single_frequency(l.fastest().frequency_mhz);
        let d = t_fast * slack;
        let model = DiscreteModel::new(l);
        let Some((_, single)) = model.best_single_mode(&p, d) else { return Ok(()) };
        let Some(opt) = model.optimal(&p, d) else { return Ok(()) };
        prop_assert!(opt.energy <= single + 1e-6 * single, "optimal above baseline");
        prop_assert!(opt.energy > 0.0);
    }

    #[test]
    fn emin_plans_conserve_cycles(p in arb_params(), frac in 0.2f64..0.8) {
        let l = ladder(7);
        let f_max = l.fastest().frequency_mhz;
        let y_lo = p.n_cache / f_max;
        let y_hi = 4.0 * p.time_at_single_frequency(f_max) - p.t_invariant_us
            - p.n_dependent / f_max;
        if y_hi <= y_lo {
            return Ok(());
        }
        let y = y_lo + frac * (y_hi - y_lo);
        let tdl = y + p.t_invariant_us + p.n_dependent / f_max * 2.0;
        let model = DiscreteModel::new(l.clone());
        if let Some((energy, plan)) = model.emin_at_y(&p, tdl, y) {
            let total: f64 = plan
                .overlap_cycles
                .iter()
                .chain(&plan.dependent_cycles)
                .sum();
            let expect = p.overlap_region_cycles() + p.n_dependent;
            prop_assert!(
                (total - expect).abs() < 1e-6 * expect.max(1.0),
                "cycles {total} vs {expect}"
            );
            prop_assert!((energy - plan.energy(&l)).abs() < 1e-6 * energy.max(1.0));
            // The plan's phase-2 time fits its budget.
            let t2: f64 = plan
                .dependent_cycles
                .iter()
                .zip(l.iter())
                .map(|(c, (_, pt))| c / pt.frequency_mhz)
                .sum();
            prop_assert!(t2 <= tdl - p.t_invariant_us - y + 1e-6);
        }
    }

    #[test]
    fn nested_ladder_optimum_dominates_coarse_baseline(
        p in arb_params(),
        slack in 1.05f64..4.0,
    ) {
        // Evenly-interpolated ladders nest when the fine one has 2n-1
        // levels: every 4-level voltage appears among the 7 levels. The
        // fine ladder's optimum can then never exceed the coarse ladder's
        // single-mode baseline (the fine ladder contains that very mode).
        // (The XScale 3-level ladder is NOT on the alpha-power law — its
        // 200 MHz @ 0.7 V point is better than the law allows — so no such
        // relation holds against interpolated ladders; a proptest
        // counterexample found exactly that.)
        let coarse = ladder(4);
        let fine = ladder(7);
        let t_fast = p.time_at_single_frequency(coarse.fastest().frequency_mhz);
        let d = t_fast * slack;
        let base4 = DiscreteModel::new(coarse).best_single_mode(&p, d);
        let o7 = DiscreteModel::new(fine).optimal(&p, d);
        if let (Some((_, base)), Some(fine_opt)) = (base4, o7) {
            prop_assert!(
                fine_opt.energy <= base * (1.0 + 1e-9),
                "7-level optimum {} above 4-level baseline {base}",
                fine_opt.energy
            );
        }
    }
}
