//! A small self-contained JSON value type with a parser and writers.
//!
//! The observability layer needs to *emit* JSON (Chrome trace events,
//! [`crate::MetricsSnapshot`]) and the rest of the workspace needs to
//! round-trip a handful of structures ([`dvs_ir::Cfg`]-style graphs,
//! voltage ladders) without any external crates being available. This
//! module provides exactly that: a [`Json`] tree, [`Json::parse`], and
//! compact/pretty writers. Object member order is preserved.
//!
//! Numbers are stored as `f64`; integers up to 2⁵³ round-trip exactly,
//! which covers every counter this workspace produces.

use std::fmt::Write as _;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; member order is preserved and duplicate keys are kept
    /// as-is (lookups return the first).
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus a short message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Arr(v)
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    #[must_use]
    pub fn obj<K: Into<String>, V: Into<Json>>(pairs: impl IntoIterator<Item = (K, V)>) -> Json {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }

    /// Member lookup on an object; `None` for other variants or missing
    /// keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number that is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => Some(*v as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Parses a JSON document (one value, with optional surrounding
    /// whitespace).
    ///
    /// # Errors
    ///
    /// [`JsonError`] with the byte position of the first offending
    /// character.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }

    /// Compact single-line rendering.
    #[must_use]
    pub fn dump(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, None, 0);
        s
    }

    /// Pretty rendering with 2-space indentation.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, Some(2), 0);
        s
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => write_number(out, *v),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                write_seq(
                    out,
                    indent,
                    depth,
                    '[',
                    ']',
                    items.iter(),
                    |out, item, depth| {
                        item.write(out, indent, depth);
                    },
                );
            }
            Json::Obj(members) => {
                write_seq(
                    out,
                    indent,
                    depth,
                    '{',
                    '}',
                    members.iter(),
                    |out, (k, v), depth| {
                        write_string(out, k);
                        out.push(':');
                        if indent.is_some() {
                            out.push(' ');
                        }
                        v.write(out, indent, depth);
                    },
                );
            }
        }
    }
}

fn write_seq<T>(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    items: impl ExactSizeIterator<Item = T>,
    mut write_item: impl FnMut(&mut String, T, usize),
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(out, item, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn write_number(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON has no Infinity/NaN; null is the least-wrong encoding and
        // keeps trace files loadable.
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        // `{}` on f64 prints the shortest string that round-trips.
        let _ = write!(out, "{v}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                s.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    s.push(self.escape()?);
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: a `\uXXXX` low half must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&lo) {
                            return Err(self.err("invalid low surrogate"));
                        }
                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                    } else {
                        return Err(self.err("lone high surrogate"));
                    }
                } else {
                    hi
                };
                char::from_u32(code).ok_or_else(|| self.err("invalid unicode escape"))?
            }
            c => return Err(self.err(format!("invalid escape `\\{}`", c as char))),
        })
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            pos: start,
            msg: format!("invalid number `{text}`"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(Json::parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1.2.3",
            "\"\\x\"",
            "[1] 2",
            "\"unterminated",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn dump_parse_round_trip() {
        let v = Json::obj([
            ("name", Json::from("q\"uote\n")),
            ("n", Json::from(0.1_f64)),
            ("big", Json::from(9_007_199_254_740_992_u64)),
            (
                "list",
                Json::Arr(vec![Json::Null, Json::Bool(false), Json::from(3_u64)]),
            ),
            ("empty", Json::Obj(vec![])),
        ]);
        let text = v.dump();
        assert_eq!(Json::parse(&text).unwrap(), v);
        let pretty = v.pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn integers_render_without_exponent() {
        assert_eq!(Json::from(480_814_u64).dump(), "480814");
        assert_eq!(Json::Num(2.5).dump(), "2.5");
        assert_eq!(Json::Num(f64::INFINITY).dump(), "null");
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(Json::parse(r#""\u00e9""#).unwrap(), Json::Str("é".into()));
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("😀".into())
        );
        assert!(Json::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn object_order_and_first_key_lookup() {
        let v = Json::parse(r#"{"z": 1, "a": 2, "z": 3}"#).unwrap();
        assert_eq!(v.get("z").and_then(Json::as_u64), Some(1));
        let keys: Vec<&str> = v
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "z"]);
    }
}
