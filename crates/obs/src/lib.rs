//! `dvs-obs` — zero-dependency observability for the DVS pipeline.
//!
//! The compile-time DVS pass is a multi-stage pipeline (profile →
//! formulate → filter → solve → emit → validate) whose behaviour used to
//! be visible only through final CSV numbers. This crate makes each stage
//! measurable:
//!
//! * **Spans** — RAII scope guards ([`span!`]) that record wall-clock
//!   intervals per thread, exportable as a Chrome trace-event JSON
//!   ([`chrome_trace_string`]) for `chrome://tracing` / Perfetto.
//! * **Metrics** — typed [`counter`]s (`milp.pivots`, `sim.cycles`, ...),
//!   [`gauge`]s (`pass.solve.wall_us`), and power-of-two-bucket
//!   [`histogram`]s.
//! * **Snapshots** — [`MetricsSnapshot::capture`] freezes everything into
//!   a plain value with JSON ([`MetricsSnapshot::to_json`]) and
//!   human-readable table ([`MetricsSnapshot::summary_table`]) renderings.
//!
//! Collection is **off by default** and the whole layer then costs one
//! relaxed atomic load per call site ([`enabled`]); the instrumented crates
//! additionally record only per-run/per-solve aggregates, never per-cycle
//! events, so the disabled overhead on the simulator hot loop is
//! unmeasurable (see `crates/bench/benches/simulator.rs`).
//!
//! ```
//! dvs_obs::enable();
//! dvs_obs::reset();
//! {
//!     let _g = dvs_obs::span!("demo.stage");
//!     dvs_obs::counter("demo.items", 3);
//! }
//! let snap = dvs_obs::MetricsSnapshot::capture();
//! assert_eq!(snap.counter("demo.items"), 3);
//! assert_eq!(snap.spans[0].name, "demo.stage");
//! dvs_obs::disable();
//! ```
//!
//! The [`json`] module is public and deliberately generic: it is the
//! workspace's replacement for external JSON crates (used by `dvs-ir` and
//! `dvs-vf` for their serialization round-trips as well as by the
//! exporters here).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
mod metrics;

pub use metrics::{
    chrome_trace, chrome_trace_string, counter, current_domain, disable, domain_name, enable,
    enabled, enter_domain, format_us, gauge, histogram, record_span, register_domain, reset,
    thread_id, DomainGuard, HistogramSummary, MetricsSnapshot, SpanEvent, SpanSummary,
};

use std::time::Instant;

/// An RAII guard that records a span from construction to drop.
///
/// Obtain one through [`span()`] or the [`span!`] macro. When collection is
/// disabled at construction time the guard is inert (no clock read, no
/// allocation, nothing recorded at drop).
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

impl SpanGuard {
    /// The span's name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            record_span(self.name, start, Instant::now());
        }
    }
}

/// Starts a span named `name`; the returned guard records it when dropped.
///
/// `name` must be `'static` (use dotted lower-case names, e.g.
/// `"pass.solve"`) so recording never allocates.
#[must_use]
pub fn span(name: &'static str) -> SpanGuard {
    let start = if enabled() {
        Some(Instant::now())
    } else {
        None
    };
    SpanGuard { name, start }
}

/// `span!("stage.name")` — sugar for [`span()`] that reads like the
/// `tracing` crate's macro. Bind the result (`let _g = span!(...)`) or the
/// span ends immediately.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global sink is process-wide, so the unit tests here stay within
    // one `#[test]` body per concern and serialize via a lock.
    static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disabled_layer_records_nothing() {
        let _l = TEST_LOCK.lock().unwrap();
        disable();
        reset();
        counter("off.counter", 7);
        gauge("off.gauge", 1.0);
        histogram("off.hist", 2.0);
        drop(span("off.span"));
        let snap = MetricsSnapshot::capture();
        assert_eq!(snap.counters.len(), 0);
        assert_eq!(snap.gauges.len(), 0);
        assert_eq!(snap.histograms.len(), 0);
        assert_eq!(snap.spans.len(), 0);
    }

    #[test]
    fn counters_gauges_histograms_and_spans_round_trip() {
        let _l = TEST_LOCK.lock().unwrap();
        enable();
        reset();
        counter("t.count", 2);
        counter("t.count", 3);
        gauge("t.gauge", 1.5);
        gauge("t.gauge", 2.5);
        for v in [0.5, 1.0, 3.0, 100.0] {
            histogram("t.hist", v);
        }
        {
            let _g = span!("t.span");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let snap = MetricsSnapshot::capture();
        disable();
        assert_eq!(snap.counter("t.count"), 5);
        assert_eq!(snap.counter("t.missing"), 0);
        assert_eq!(snap.gauge("t.gauge"), Some(2.5));
        let h = &snap.histograms[0];
        assert_eq!((h.count, h.min, h.max), (4, 0.5, 100.0));
        assert!((h.sum - 104.5).abs() < 1e-9);
        assert!(h.p50_est >= 1.0 && h.p50_est <= 100.0);
        let s = &snap.spans[0];
        assert_eq!(s.name, "t.span");
        assert_eq!(s.count, 1);
        assert!(
            s.total_us >= 1000.0,
            "span shorter than the sleep: {}",
            s.total_us
        );

        // JSON export and re-import of the scalar parts.
        let j = snap.to_json();
        let back = MetricsSnapshot::from_json(&j).unwrap();
        assert_eq!(back.counter("t.count"), 5);
        assert_eq!(back.gauge("t.gauge"), Some(2.5));
    }

    #[test]
    fn domains_partition_metrics_and_aggregate_cleanly() {
        let _l = TEST_LOCK.lock().unwrap();
        enable();
        reset();
        counter("d.count", 1); // domain 0
        gauge("d.gauge", 10.0);
        {
            let _d = enter_domain(7);
            counter("d.count", 20);
            gauge("d.gauge", 70.0); // later write: wins the aggregate
            histogram("d.hist", 4.0);
            {
                let _g = span!("d.span");
            }
            // Guards nest and restore.
            {
                let _inner = enter_domain(9);
                assert_eq!(current_domain(), 9);
                counter("d.count", 300);
            }
            assert_eq!(current_domain(), 7);
        }
        assert_eq!(current_domain(), 0);

        let all = MetricsSnapshot::capture();
        let d7 = MetricsSnapshot::capture_domain(7);
        let d9 = MetricsSnapshot::capture_domain(9);
        disable();

        assert_eq!(all.counter("d.count"), 321);
        assert_eq!(d7.counter("d.count"), 20);
        assert_eq!(d9.counter("d.count"), 300);
        assert_eq!(all.gauge("d.gauge"), Some(70.0));
        assert_eq!(d7.gauge("d.gauge"), Some(70.0));
        assert_eq!(d9.gauge("d.gauge"), None);
        assert_eq!(d7.histograms.len(), 1);
        assert_eq!(d9.histograms.len(), 0);
        assert_eq!(d7.spans.len(), 1);
        assert_eq!(d9.spans.len(), 0);
        assert_eq!(all.spans[0].count, 1);
    }

    #[test]
    fn registered_domains_have_stable_names() {
        let a = register_domain("bench.table1");
        let b = register_domain("serve.loadtest");
        assert_ne!(a, b);
        assert!(a >= 1 && b >= 1, "domain 0 stays anonymous");
        assert_eq!(domain_name(a).as_deref(), Some("bench.table1"));
        assert_eq!(domain_name(b).as_deref(), Some("serve.loadtest"));
        assert_eq!(domain_name(0), None);
        assert_eq!(domain_name(u32::MAX), None);
    }

    #[test]
    fn adaptive_units_keep_sub_microsecond_values_legible() {
        assert_eq!(format_us(0.25), "250.0 ns");
        assert_eq!(format_us(0.0), "0.00 µs");
        assert_eq!(format_us(42.5), "42.50 µs");
        assert_eq!(format_us(1_500.0), "1.50 ms");
        assert_eq!(format_us(2_000_000.0), "2.000 s");
    }

    #[test]
    fn summary_table_renders_sub_microsecond_histograms_with_units() {
        let _l = TEST_LOCK.lock().unwrap();
        enable();
        reset();
        // A time histogram whose mean is well under a microsecond: the old
        // fixed `{:.3}` rendering collapsed these rows to `0.000`.
        for _ in 0..4 {
            histogram("t.tiny_us", 0.1);
        }
        histogram("t.unitless", 0.5);
        let snap = MetricsSnapshot::capture();
        disable();
        let table = snap.summary_table();
        assert!(
            table.contains("t.tiny_us") && table.contains("ns"),
            "sub-µs histogram must render in nanoseconds:\n{table}"
        );
        assert!(
            !table.contains("mean=0.00 µs"),
            "sub-µs mean flattened to zero:\n{table}"
        );
        // Unitless histograms keep the plain numeric form.
        assert!(table.contains("t.unitless  n=1 sum=0.500"), "{table}");
    }

    // Worker threads must start in domain 0 even when spawned from a thread
    // that entered a domain — attribution is explicit, never ambient.
    #[test]
    fn threads_do_not_inherit_domains() {
        let _l = TEST_LOCK.lock().unwrap();
        let _d = enter_domain(42);
        let child = std::thread::spawn(current_domain).join().unwrap();
        assert_eq!(child, 0);
        assert_eq!(current_domain(), 42);
    }
}
